"""Virtual-machine model used for the Table II overhead comparison.

The paper compares the CPU idle rates of the native system, of one QEMU
virtual machine (ARM Versatile/PB, 256 MB) and of one container.  Full-system
emulation is expensive even when the guest is idle: the TCG vCPU thread keeps
translating and executing guest timer/idle code, and the device, RCU and
worker threads add load on the remaining cores.

The VM model therefore contributes a small set of always-running host threads
whose loads are calibrated against the published idle-rate band
(0.77--0.86); they are spread over the host cores the way libvirt/QEMU
threads spread in practice (vCPU thread heaviest, then I/O, then helpers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rtos.scheduler import MulticoreScheduler
from ..rtos.task import Task, TaskConfig

__all__ = ["VmConfig", "VirtualMachine"]


def _default_thread_loads() -> tuple[float, ...]:
    return (0.22, 0.18, 0.16, 0.09)


@dataclass(frozen=True)
class VmConfig:
    """Configuration of the emulated virtual machine."""

    name: str = "qemu-armv7"
    guest_memory_bytes: int = 256 * 1024 * 1024
    vcpus: int = 1
    #: Host CPU load of the QEMU threads while the guest idles, heaviest first
    #: (vCPU/TCG thread, I/O thread, RCU thread, worker thread).
    thread_loads: tuple[float, ...] = field(default_factory=_default_thread_loads)
    #: Period of the modelled emulation activity bursts [s].
    activity_period: float = 0.01
    #: Memory-stall fraction of the emulation threads.
    memory_stall_fraction: float = 0.25
    #: DRAM accesses per emulation burst.  An idle guest mostly re-executes
    #: already-translated code, so the traffic is modest.
    accesses_per_burst: int = 500

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ValueError("vcpus must be at least 1")
        if any(not 0.0 <= load < 1.0 for load in self.thread_loads):
            raise ValueError("thread loads must be within [0, 1)")


class VirtualMachine:
    """A QEMU-style VM contributing emulation overhead to the host scheduler."""

    def __init__(self, config: VmConfig | None = None) -> None:
        self.config = config or VmConfig()
        self.tasks: list[Task] = []
        self.running = False

    def start(self, scheduler: MulticoreScheduler) -> list[Task]:
        """Start the VM: registers its emulation threads with the scheduler.

        Threads are placed on the least-loaded cores first (heaviest thread on
        the least-loaded core), mimicking the host kernel's load balancing.
        """
        if self.running:
            raise RuntimeError("VM is already running")
        core_loads = {index: 0.0 for index in range(scheduler.num_cores)}
        for task in scheduler.tasks:
            core_loads[task.config.core] += task.config.utilization

        for thread_index, load in enumerate(self.config.thread_loads):
            if load <= 0.0:
                continue
            core = min(core_loads, key=lambda index: core_loads[index])
            config = TaskConfig(
                name=f"{self.config.name}-thread{thread_index}",
                period=self.config.activity_period,
                execution_time=load * self.config.activity_period,
                priority=5,
                core=core,
                memory_stall_fraction=self.config.memory_stall_fraction,
                accesses_per_job=self.config.accesses_per_burst,
            )
            task = Task(config)
            scheduler.add_task(task)
            self.tasks.append(task)
            core_loads[core] += load
        self.running = True
        return self.tasks

    def stop(self) -> None:
        """Stop the VM's emulation threads."""
        for task in self.tasks:
            task.stop()
        self.running = False

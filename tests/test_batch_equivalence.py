"""Batch-vs-scalar equivalence battery for the SoA simulation core.

The scalar :class:`~repro.sim.flight.FlightSimulation` is the golden
reference; :mod:`repro.sim.batch` is only trusted because of this battery.
Two different equivalence notions apply:

* **batch(N) == batch(1)** must be *bit-exact*: the replay uses only
  elementwise operations over the lane axis, so adding lanes may never
  change any lane's arithmetic.
* **batch vs scalar** is *tolerance-based*: the batched derivative fuses
  the quaternion rotation and drops structural zeros, which changes
  floating-point association.  Trajectories agree to ~1e-9 over short
  flights; discrete verdicts (crash, switch time, violation counts) must
  agree exactly except where the dynamics are chaotic (figure 4's
  memory-DoS geofence crash), which gets band assertions instead.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.campaign.backends import BatchBackend, get_backend
from repro.campaign.grid import ScenarioGrid
from repro.campaign.runner import run_campaign
from repro.dynamics.environment import Environment
from repro.dynamics.quadrotor import Quadrotor, QuadrotorParameters
from repro.sim.batch import run_batch, timing_fingerprint
from repro.sim.batch.physics import BatchPlant
from repro.sim.flight import run_scenario
from repro.sim.scenario import FlightScenario


def _assert_results_match(scalar, batch, pos_tol: float, time_tol: float = 0.0) -> None:
    """Scalar-vs-batch comparison for one flight.

    ``time_tol=0`` demands identical violation timestamps and messages; pass
    a small tolerance for scenarios whose timing is perturbed by diverging
    state (the attitude-error storm of figure 7 shifts monitor events by
    ~1e-4 s once the trajectories differ at floating-point-association
    level).
    """
    assert batch.crashed == scalar.crashed
    assert batch.switch_time == scalar.switch_time
    assert len(batch.violations) == len(scalar.violations)
    for got, want in zip(batch.violations, scalar.violations):
        assert got.rule == want.rule
        if time_tol:
            assert abs(got.time - want.time) <= time_tol
        else:
            assert got.time == want.time
            assert got.message == want.message
    st, bt = scalar.recorder.times(), batch.recorder.times()
    assert np.array_equal(st, bt)
    sp, bp = scalar.recorder.positions(), batch.recorder.positions()
    assert np.max(np.abs(sp - bp)) < pos_tol
    assert scalar.recorder.sources() == batch.recorder.sources()
    assert abs(batch.metrics.max_deviation - scalar.metrics.max_deviation) < pos_tol


def _short_figures() -> list[FlightScenario]:
    """The four paper figures compressed to 3 s with the attack moved early."""
    return [
        FlightScenario.figure4(attack_start=1.0, duration=3.0),
        FlightScenario.figure5(attack_start=1.0, duration=3.0),
        FlightScenario.figure6(kill_time=1.0, duration=3.0),
        FlightScenario.figure7(attack_start=1.0, duration=3.0),
    ]


class TestFigureEquivalence:
    @pytest.mark.parametrize("index", range(4), ids=["fig4", "fig5", "fig6", "fig7"])
    def test_short_figures_match_scalar(self, index):
        scenario = _short_figures()[index]
        scalar = run_scenario(scenario)
        (batch,) = run_batch([scenario])
        if index == 3:
            # Figure 7's attitude-error storm is chaotic: trajectories that
            # differ only in floating-point association drift visibly within
            # a couple of seconds, and the drifting state shifts monitor
            # timestamps by ~1e-4 s.
            _assert_results_match(scalar, batch, pos_tol=5e-2, time_tol=1e-3)
        else:
            _assert_results_match(scalar, batch, pos_tol=1e-6)

    def test_short_figures_batched_together(self):
        """All four figures in ONE batch: four distinct timing classes whose
        op streams the compiler must merge without cross-contamination."""
        scenarios = _short_figures()
        batched = run_batch(scenarios)
        singles = [run_batch([scenario])[0] for scenario in scenarios]
        for together, alone in zip(batched, singles):
            # Same core either way, so this leg is bit-exact.
            assert np.array_equal(
                together.recorder.positions(), alone.recorder.positions()
            )
            assert together.switch_time == alone.switch_time
            assert together.crashed == alone.crashed

    @pytest.mark.slow
    def test_full_duration_figures(self):
        """Full 30 s paper figures: the defence verdicts the paper reports."""
        scenarios = [
            FlightScenario.figure4(),
            FlightScenario.figure5(),
            FlightScenario.figure6(),
            FlightScenario.figure7(),
        ]
        scalars = [run_scenario(s) for s in scenarios]
        batches = run_batch(scenarios)
        fig4_s, fig5_s, fig6_s, fig7_s = scalars
        fig4_b, fig5_b, fig6_b, fig7_b = batches

        # Figure 4 (memory DoS, no MemGuard): both crash on the geofence, but
        # the post-attack trajectory is chaotic so the crash time only has to
        # land in the same band, not match.
        for result in (fig4_s, fig4_b):
            assert result.crashed
            assert result.switch_time is None
            assert 15.0 < result.crash_time < 35.0
            assert 5.5 < result.metrics.max_deviation < 6.5

        # Figure 5 (memory DoS with MemGuard): protected, no crash, no switch.
        for result in (fig5_s, fig5_b):
            assert not result.crashed
            assert result.switch_time is None
            assert result.metrics.final_deviation < 0.02
        assert (
            abs(fig5_b.metrics.max_deviation - fig5_s.metrics.max_deviation) < 5e-3
        )

        # Figure 6 (controller kill): the receiving-interval rule fires and
        # the switch lands on the same quantum in both cores.
        for scalar, batch in ((fig6_s, fig6_b), (fig7_s, fig7_b)):
            assert not scalar.crashed and not batch.crashed
            assert batch.switch_time == scalar.switch_time
            assert len(batch.violations) == len(scalar.violations)
            assert batch.violations[0].rule == scalar.violations[0].rule
        assert fig6_b.violations[0].rule == "receiving-interval"
        assert fig7_b.violations[0].rule == "attitude-error"
        assert (
            abs(fig7_b.metrics.max_deviation - fig7_s.metrics.max_deviation) < 5e-3
        )


class TestGridEquivalence:
    def test_acceptance_grid_matches_scalar(self):
        """The 12-variant benchmark grid: every verdict field must agree."""
        grid = ScenarioGrid(
            FlightScenario.figure5(duration=3.0).with_name("grid-equiv"),
            axes={
                "memguard_budget": [1500, 3000],
                "attack_start": [1.0, 2.0],
                "seed": [101, 102, 103],
            },
        )
        scenarios = [variant.scenario for variant in grid.variants()]
        batches = run_batch(scenarios)
        for scenario, batch in zip(scenarios, batches):
            scalar = run_scenario(scenario)
            _assert_results_match(scalar, batch, pos_tol=1e-6)


class TestBatchWidthInvariance:
    def test_batch_of_n_is_bit_exact_with_batch_of_one(self):
        grid = ScenarioGrid(
            FlightScenario.figure5(duration=2.0).with_name("width"),
            axes={"attack_start": [0.5, 1.0], "seed": [11, 12]},
        )
        scenarios = [variant.scenario for variant in grid.variants()]
        wide = run_batch(scenarios)
        for scenario, from_wide in zip(scenarios, wide):
            (narrow,) = run_batch([scenario])
            assert np.array_equal(
                from_wide.recorder.positions(), narrow.recorder.positions()
            )
            assert np.array_equal(
                from_wide.recorder.attitudes(), narrow.recorder.attitudes()
            )
            assert from_wide.switch_time == narrow.switch_time
            assert from_wide.crash_time == narrow.crash_time
            assert [v.time for v in from_wide.violations] == [
                v.time for v in narrow.violations
            ]

    def test_ragged_batch_spans_duration_groups(self):
        """Mixed durations and record rates force multiple lockstep groups;
        results still come back in input order, each bit-exact with its
        single-lane run."""
        base = FlightScenario.figure5(attack_start=0.5)
        scenarios = [
            dataclasses.replace(base, duration=1.5, name="ragged-a", seed=5),
            dataclasses.replace(base, duration=2.0, name="ragged-b", seed=6),
            dataclasses.replace(
                base, duration=1.5, name="ragged-c", seed=7, record_hz=50.0
            ),
            dataclasses.replace(base, duration=2.0, name="ragged-d", seed=8),
        ]
        results = run_batch(scenarios)
        assert [r.scenario.name for r in results] == [s.name for s in scenarios]
        for scenario, result in zip(scenarios, results):
            (alone,) = run_batch([scenario])
            assert np.array_equal(
                result.recorder.positions(), alone.recorder.positions()
            )
            assert np.array_equal(result.recorder.times(), alone.recorder.times())


class TestTimingFingerprint:
    def test_state_only_fields_share_a_timing_class(self):
        base = FlightScenario.figure5(attack_start=1.0, duration=2.0)
        fp = timing_fingerprint(base)
        assert timing_fingerprint(base.with_seed(999)) == fp
        assert timing_fingerprint(base.with_name("renamed")) == fp

    def test_timing_fields_split_classes(self):
        base = FlightScenario.figure5(attack_start=1.0, duration=2.0)
        assert timing_fingerprint(base.with_attack_start(1.5)) != timing_fingerprint(
            base
        )
        assert timing_fingerprint(
            FlightScenario.figure6(kill_time=1.0, duration=2.0)
        ) != timing_fingerprint(base)


class TestBatchPlant:
    def test_single_lane_matches_scalar_quadrotor(self):
        """The SoA plant vs the scalar plant under identical command streams.

        The batched derivative uses a different floating-point association
        (fused rotation), so the comparison is tight-tolerance, not exact.
        """
        params = QuadrotorParameters()
        environment = Environment()
        scalar = Quadrotor(params=params, environment=environment)
        batch = BatchPlant(
            np.zeros((1, 3)), params=params, environment=environment
        )
        scalar.arm()
        batch.arm()
        rng = np.random.default_rng(42)
        mask = np.ones(1, dtype=bool)
        for _ in range(500):
            commands = rng.uniform(0.55, 0.75, size=4)
            scalar.step(commands, 0.004)
            batch.step(commands[None, :], 0.004, mask)
        assert np.max(np.abs(batch.y[0] - scalar.state.as_vector())) < 1e-6
        assert bool(batch.crashed[0]) == scalar.crashed

    def test_crashed_lane_freezes_while_others_fly(self):
        batch = BatchPlant(np.array([[0.0, 0.0, -2.0], [0.0, 0.0, -2.0]]))
        batch.arm()
        mask = np.ones(2, dtype=bool)
        # Lane 0 free-falls (zero thrust), lane 1 hovers near full throttle.
        commands = np.array([[0.0, 0.0, 0.0, 0.0], [0.7, 0.7, 0.7, 0.7]])
        for _ in range(2000):
            batch.step(commands, 0.004, mask)
            if batch.crashed[0]:
                break
        assert batch.crashed[0] and not batch.crashed[1]
        frozen = batch.y[0].copy()
        for _ in range(50):
            batch.step(commands, 0.004, mask)
        assert np.array_equal(batch.y[0], frozen)
        assert not batch.crashed[1]


class TestBatchBackend:
    def test_registry_exposes_batch(self):
        backend = get_backend("batch")
        assert isinstance(backend, BatchBackend)
        assert backend.name == "batch"
        with pytest.raises(KeyError, match="batch"):
            get_backend("nope")

    def test_unrecognised_worker_falls_back_to_serial(self):
        seen = []
        backend = get_backend("batch")
        out = list(
            backend.map(
                lambda x: x * 10, [1, 2, 3], on_complete=lambda i, r: seen.append(i)
            )
        )
        assert out == [10, 20, 30]
        assert seen == [0, 1, 2]

    def test_campaign_agrees_with_serial_backend(self):
        grid = ScenarioGrid(
            FlightScenario.figure5(duration=1.5, attack_start=0.5).with_name(
                "backend-equiv"
            ),
            axes={"seed": [21, 22]},
        )
        serial = run_campaign(grid, backend=get_backend("serial"))
        batch = run_campaign(grid, backend=get_backend("batch"))
        assert len(serial.outcomes) == len(batch.outcomes) == 2
        for want, got in zip(serial.outcomes, batch.outcomes):
            assert got.name == want.name
            assert got.error is None and want.error is None
            assert got.summary["crashed"] == want.summary["crashed"]
            assert got.summary["switch_time"] == want.summary["switch_time"]
            assert (
                abs(got.summary["max_deviation"] - want.summary["max_deviation"])
                < 1e-6
            )

    def test_record_arrays_round_trip(self, tmp_path):
        from repro.store import CampaignStore

        grid = ScenarioGrid(
            FlightScenario.figure5(duration=1.0).with_name("backend-arrays"),
            axes={"seed": [31, 32]},
        )
        store = CampaignStore(tmp_path)
        cold = run_campaign(
            grid, backend=get_backend("batch"), store=store, record_arrays=True
        )
        assert all(outcome.error is None for outcome in cold.outcomes)
        for variant in grid.variants():
            assert store.has_arrays(variant)
        warm = run_campaign(
            grid, backend=get_backend("batch"), store=store, record_arrays=True
        )
        assert warm.cache_hits == 2

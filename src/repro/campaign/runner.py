"""Campaign execution: fan a set of scenario variants out over workers.

The runner executes each :class:`~repro.campaign.grid.GridVariant` in its own
:class:`~repro.sim.flight.FlightSimulation` and collects one
:class:`VariantOutcome` per variant.  Execution is embarrassingly parallel —
every variant carries its full configuration (including its seed) in the
pickled scenario, so results are identical whether the campaign runs serially
or on a process pool, and independent of completion order.

Three orthogonal concerns are layered here:

* **Backends** — *how* variants are mapped to outcomes is delegated to an
  :class:`~repro.campaign.backends.ExecutorBackend` (serial, process pool, or
  a future distributed substrate).  ``mode``/``max_workers`` remain as the
  convenient policy knobs that pick between the built-in backends.
* **Caching** — with a :class:`~repro.store.CampaignStore` attached, every
  variant's content hash is looked up first and only misses are dispatched;
  completed flights are persisted as they arrive, so a killed campaign
  resumes from disk.
* **Fallback** — a variant that raises is captured as an outcome with an
  ``error`` traceback string; the rest of the campaign keeps running.  If
  the backend itself fails (no fork support, pickling failure, broken pool),
  the runner finishes the remaining variants serially and records *why* in
  :attr:`CampaignResult.fallback_reason` instead of silently degrading.
"""

from __future__ import annotations

import os
import time
import traceback
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from ..sim.flight import FlightResult, run_scenario
from ..sim.scenario import FlightScenario
from .backends import ExecutorBackend, ProcessPoolBackend, SerialBackend
from .grid import RESERVED_AXIS_NAMES, GridVariant, ScenarioGrid
from .results import CampaignResult, VariantOutcome

if TYPE_CHECKING:
    from ..store import CampaignStore

__all__ = ["CampaignRunner", "run_campaign"]


def _summarise(variant: GridVariant, result: FlightResult) -> dict[str, Any]:
    """Build the per-variant summary dictionary shipped back to the parent.

    Summaries (not full results) cross the process boundary: they are small,
    cheap to pickle and enough for the aggregation layer.  ``recovery_latency``
    is the time from the first attack to the Simplex switch, the paper's
    "how fast does the defence react" quantity.
    """
    from ..analysis.export import result_to_dict

    summary = result_to_dict(result)
    attack_time = variant.scenario.first_attack_time()
    if attack_time is not None and summary["switch_time"] is not None:
        summary["recovery_latency"] = summary["switch_time"] - attack_time
    else:
        summary["recovery_latency"] = None
    return summary


def _execute_variant(variant: GridVariant) -> VariantOutcome:
    """Run one variant, capturing any failure as data (module-level so the
    process pool can pickle it)."""
    start = time.perf_counter()
    try:
        result = run_scenario(variant.scenario)
        summary = _summarise(variant, result)
        error = None
    except Exception:
        summary = None
        error = traceback.format_exc()
    return VariantOutcome(
        name=variant.name,
        axes=variant.axes,
        seed=variant.scenario.seed,
        summary=summary,
        error=error,
        wall_time=time.perf_counter() - start,
    )


def _as_variants(
    campaign: ScenarioGrid | Iterable[GridVariant | FlightScenario],
) -> list[GridVariant]:
    if isinstance(campaign, ScenarioGrid):
        return campaign.variants()
    variants: list[GridVariant] = []
    seen: set[str] = set()
    for entry in campaign:
        if isinstance(entry, FlightScenario):
            entry = GridVariant(name=entry.name, axes=(), scenario=entry)
        elif not isinstance(entry, GridVariant):
            raise TypeError(
                f"expected FlightScenario or GridVariant, got {type(entry).__name__}"
            )
        if entry.name in seen:
            raise ValueError(f"duplicate variant name {entry.name!r}")
        # Hand-built variants bypass ScenarioGrid.add_axis, so enforce its
        # guards here too: reserved names would be silently overwritten by
        # the summary fields in exports, and unhashable values would only
        # blow up in cell aggregation after the whole campaign has flown.
        for axis_name, axis_value in entry.axes:
            if axis_name in RESERVED_AXIS_NAMES:
                raise ValueError(
                    f"variant {entry.name!r} uses reserved axis name "
                    f"{axis_name!r} (it would collide with a summary-export "
                    "column)"
                )
            try:
                hash(axis_value)
            except TypeError:
                raise TypeError(
                    f"variant {entry.name!r} axis {axis_name!r} value "
                    f"{axis_value!r} is not hashable; cell aggregation "
                    "groups on axis values"
                ) from None
            if axis_name == "seed" and axis_value != entry.scenario.seed:
                # The summary's seed column reports the scenario's seed; a
                # declared seed axis that disagrees would silently vanish.
                raise ValueError(
                    f"variant {entry.name!r} declares seed axis value "
                    f"{axis_value!r} but its scenario flies with seed "
                    f"{entry.scenario.seed}"
                )
        seen.add(entry.name)
        variants.append(entry)
    return variants


@dataclass(frozen=True)
class CampaignRunner:
    """Executes a campaign of scenario variants.

    Attributes
    ----------
    max_workers:
        Process-pool size; ``None`` uses the CPU count (capped at the number
        of variants).  Ignored when an explicit ``backend`` is given.
    mode:
        ``"auto"`` picks the process pool when the machine has more than one
        core and the campaign more than one uncached variant; ``"parallel"``
        and ``"serial"`` force the choice.  Ignored when an explicit
        ``backend`` is given.
    backend:
        Explicit :class:`~repro.campaign.backends.ExecutorBackend`; overrides
        the ``mode``/``max_workers`` policy and is used unconditionally.
    store:
        Optional :class:`~repro.store.CampaignStore`.  When attached, cached
        outcomes are served without flying and fresh outcomes are persisted.
    """

    max_workers: int | None = None
    mode: str = "auto"
    backend: ExecutorBackend | None = None
    store: "CampaignStore | None" = None

    _MODES = ("auto", "parallel", "serial")

    def __post_init__(self) -> None:
        if self.mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")

    def run(
        self, campaign: ScenarioGrid | Iterable[GridVariant | FlightScenario]
    ) -> CampaignResult:
        """Execute every variant and return the aggregated campaign result.

        Outcome order always matches variant (grid-expansion) order, never
        completion order — with or without cache hits interleaved.
        """
        variants = _as_variants(campaign)
        start = time.perf_counter()

        cached: dict[int, VariantOutcome] = {}
        if self.store is not None:
            for index, variant in enumerate(variants):
                hit = self.store.get(variant)
                if hit is not None:
                    cached[index] = hit
        to_run = [
            variant for index, variant in enumerate(variants) if index not in cached
        ]

        flown, fallback_reason = self._execute(to_run)

        # Merge cache hits and fresh flights back into expansion order.
        merged: list[VariantOutcome] = []
        fresh = iter(flown)
        for index in range(len(variants)):
            merged.append(cached[index] if index in cached else next(fresh))

        return CampaignResult(
            outcomes=tuple(merged),
            wall_time=time.perf_counter() - start,
            cache_hits=len(cached),
            cache_misses=len(to_run) if self.store is not None else 0,
            fallback_reason=fallback_reason,
        )

    # ------------------------------------------------------------------ internal --

    def select_backend(self, variants: Sequence[GridVariant]) -> ExecutorBackend:
        """Backend that will execute ``variants`` (explicit one wins)."""
        if self.backend is not None:
            return self.backend
        if self._use_parallel(variants):
            return ProcessPoolBackend(max_workers=self.max_workers)
        return SerialBackend()

    def _use_parallel(self, variants: Sequence[GridVariant]) -> bool:
        if self.mode == "serial" or len(variants) < 2:
            return False
        if self.max_workers == 1:
            # A one-worker pool pays spawn + pickling for zero concurrency.
            return False
        if self.mode == "parallel":
            return True
        return (os.cpu_count() or 1) > 1

    def _execute(
        self, variants: Sequence[GridVariant]
    ) -> tuple[list[VariantOutcome], str | None]:
        """Map the worker over ``variants``; on backend failure keep what
        completed, finish serially and report why."""
        if not variants:
            return [], None
        backend = self.select_backend(variants)
        outcomes: list[VariantOutcome] = []
        try:
            for outcome in backend.map(_execute_variant, variants):
                outcomes.append(outcome)
                # Persist as each flight arrives (not after the campaign):
                # a campaign killed at flight 99/100 must resume from 99
                # cells, and an interrupt between flights must lose nothing.
                self._persist(variants[len(outcomes) - 1], outcome)
        except Exception as exc:
            # Backend-level failure (fork unavailable, pickling, broken pool,
            # unimplemented stub): keep what already completed, finish the
            # rest serially, and record why the speedup is gone.
            reason = repr(exc)
            warnings.warn(
                f"campaign executor backend {backend.name!r} failed after "
                f"{len(outcomes)}/{len(variants)} variants ({reason}); "
                "finishing the remaining variants serially",
                RuntimeWarning,
                stacklevel=3,
            )
            for variant in variants[len(outcomes):]:
                outcome = _execute_variant(variant)
                outcomes.append(outcome)
                self._persist(variant, outcome)
            return outcomes, reason
        return outcomes, None

    def _persist(self, variant: GridVariant, outcome: VariantOutcome) -> None:
        """Best-effort store write: the store is a cache, never an authority,
        so an unwritable directory must not cost the campaign its results."""
        if self.store is None:
            return
        try:
            self.store.put(variant, outcome)
        except Exception as exc:
            # Any write failure (read-only dir, serialisation, a broken
            # custom store) is only a lost cache cell — it must neither be
            # misread as a backend failure nor abort the campaign.
            warnings.warn(
                f"campaign store write failed for {variant.name!r} "
                f"({exc!r}); continuing without caching this cell",
                RuntimeWarning,
                stacklevel=2,
            )


def run_campaign(
    campaign: ScenarioGrid | Iterable[GridVariant | FlightScenario],
    max_workers: int | None = None,
    mode: str = "auto",
    backend: ExecutorBackend | None = None,
    store: "CampaignStore | None" = None,
) -> CampaignResult:
    """Convenience helper: run ``campaign`` with a fresh :class:`CampaignRunner`."""
    return CampaignRunner(
        max_workers=max_workers, mode=mode, backend=backend, store=store
    ).run(campaign)

"""Distributed-backend acceptance: the ISSUE's 12-variant grid, for real.

Flies the acceptance grid (2 MemGuard budgets x 2 attack starts x 3 seeds)
several ways and checks the tentpole guarantees end to end:

* **serial reference** — no store, the ground truth;
* **distributed cold** — 2 spawned worker processes over the file
  work-queue, persisting summaries *and* trajectory arrays
  (``record_arrays``): outcomes must be identical to serial;
* **distributed warm** — the same grid again: everything is served from the
  store (12 hits, zero flights) and every variant's trajectory arrays load;
* **socket cold/warm** — the same guarantees over the TCP transport
  (``transport="socket"``, its own store): 2 workers connected to the
  coordinator's JSON-lines server match serial bit-for-bit, and the warm
  re-run serves 12/12 from the store;
* **http cold/warm** — the same guarantees over the HTTP transport with
  shared-secret authentication enabled (``transport="http"``,
  ``auth_token``): authenticated workers behind the one-POST-per-operation
  protocol match serial bit-for-bit, warm re-run 12/12 from the store.

Flights are short (2 s) to keep the benchmark affordable; the figure-level
physics is exercised by the dedicated fig4-7 benchmarks.  The wall times,
flown/cached counts and per-transport speedups land in
``BENCH_distributed_backend.json`` for the CI perf trajectory.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.campaign import CampaignRunner, DistributedBackend, ScenarioGrid
from repro.sim import FlightScenario
from repro.store import CampaignStore

FLIGHT_DURATION = 2.0

#: Shared secret for the authenticated HTTP leg — the acceptance run doubles
#: as the end-to-end proof that auth costs nothing in fidelity.
HTTP_AUTH_TOKEN = "bench-shared-secret"


def acceptance_grid() -> ScenarioGrid:
    return ScenarioGrid(
        FlightScenario.figure5(duration=FLIGHT_DURATION).with_name("dist-bench"),
        axes={
            "memguard_budget": [1500, 3000],
            "attack_start": [0.5, 1.0],
            "seed": [201, 202, 203],
        },
    )


@pytest.fixture(scope="module")
def distributed_runs(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("distributed-store")
    grid = acceptance_grid()
    assert len(grid) == 12
    serial = CampaignRunner(mode="serial").run(grid)
    backend = DistributedBackend(workers=2, lease_timeout=120.0)
    cold = CampaignRunner(
        backend=backend, store=CampaignStore(store_dir), record_arrays=True
    ).run(grid)
    warm = CampaignRunner(
        backend=backend, store=CampaignStore(store_dir), record_arrays=True
    ).run(grid)
    return store_dir, serial, cold, warm


@pytest.fixture(scope="module")
def socket_runs(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("socket-store")
    grid = acceptance_grid()
    backend = DistributedBackend(
        workers=2, lease_timeout=120.0, transport="socket"
    )
    cold = CampaignRunner(
        backend=backend, store=CampaignStore(store_dir), record_arrays=True
    ).run(grid)
    warm = CampaignRunner(
        backend=backend, store=CampaignStore(store_dir), record_arrays=True
    ).run(grid)
    return store_dir, cold, warm


@pytest.fixture(scope="module")
def http_runs(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("http-store")
    grid = acceptance_grid()
    backend = DistributedBackend(
        workers=2, lease_timeout=120.0, transport="http",
        auth_token=HTTP_AUTH_TOKEN,
    )
    cold = CampaignRunner(
        backend=backend, store=CampaignStore(store_dir), record_arrays=True
    ).run(grid)
    warm = CampaignRunner(
        backend=backend, store=CampaignStore(store_dir), record_arrays=True
    ).run(grid)
    return store_dir, cold, warm


def test_distributed_matches_serial(
    distributed_runs, socket_runs, http_runs, report
):
    _, serial, cold, warm = distributed_runs
    assert cold.fallback_reason is None
    assert cold.failures() == ()
    assert cold.summaries() == serial.summaries()

    _, socket_cold, socket_warm = socket_runs
    _, http_cold, http_warm = http_runs
    rows = [
        ["serial", f"{serial.wall_time:.1f} s", "-"],
        ["distributed cold (2 workers, file)", f"{cold.wall_time:.1f} s",
         f"{cold.cache_misses} flown"],
        ["distributed warm (file)", f"{warm.wall_time:.2f} s",
         f"{warm.cache_hits} from store"],
        ["distributed cold (2 workers, socket)",
         f"{socket_cold.wall_time:.1f} s", f"{socket_cold.cache_misses} flown"],
        ["distributed warm (socket)", f"{socket_warm.wall_time:.2f} s",
         f"{socket_warm.cache_hits} from store"],
        ["distributed cold (2 workers, http+auth)",
         f"{http_cold.wall_time:.1f} s", f"{http_cold.cache_misses} flown"],
        ["distributed warm (http+auth)", f"{http_warm.wall_time:.2f} s",
         f"{http_warm.cache_hits} from store"],
    ]

    def _leg(result):
        return {
            "wall_s": round(result.wall_time, 3),
            "flown": result.cache_misses,
            "cached": result.cache_hits,
        }

    report("distributed_backend", format_table(
        ["Run", "Wall time", "Cache"],
        rows,
        title=f"Distributed work-queue backend: 12 x {FLIGHT_DURATION:.0f} s flights",
    ), data={
        "flights": 12,
        "flight_duration_s": FLIGHT_DURATION,
        "serial_wall_s": round(serial.wall_time, 3),
        "file_cold": _leg(cold),
        "file_warm": _leg(warm),
        "socket_cold": _leg(socket_cold),
        "socket_warm": _leg(socket_warm),
        "http_cold": _leg(http_cold),
        "http_warm": _leg(http_warm),
    })


def test_socket_transport_matches_serial_bit_for_bit(
    distributed_runs, socket_runs
):
    _, serial, _, _ = distributed_runs
    _, cold, _ = socket_runs
    assert cold.fallback_reason is None
    assert cold.failures() == ()
    assert cold.summaries() == serial.summaries()


def test_socket_warm_run_serves_everything_from_store(
    distributed_runs, socket_runs
):
    _, serial, _, _ = distributed_runs
    store_dir, _, warm = socket_runs
    assert (warm.cache_hits, warm.cache_misses) == (12, 0)
    assert warm.summaries() == serial.summaries()
    store = CampaignStore(store_dir)
    for variant in acceptance_grid().variants():
        assert store.get_arrays(variant) is not None


def test_http_transport_matches_serial_bit_for_bit(
    distributed_runs, http_runs
):
    _, serial, _, _ = distributed_runs
    _, cold, _ = http_runs
    assert cold.fallback_reason is None
    assert cold.failures() == ()
    assert cold.summaries() == serial.summaries()


def test_http_warm_run_serves_everything_from_store(
    distributed_runs, http_runs
):
    _, serial, _, _ = distributed_runs
    store_dir, _, warm = http_runs
    assert (warm.cache_hits, warm.cache_misses) == (12, 0)
    assert warm.summaries() == serial.summaries()
    store = CampaignStore(store_dir)
    for variant in acceptance_grid().variants():
        assert store.get_arrays(variant) is not None


def test_warm_run_serves_everything_from_store(distributed_runs):
    _, serial, _, warm = distributed_runs
    assert (warm.cache_hits, warm.cache_misses) == (12, 0)
    assert warm.summaries() == serial.summaries()


def test_warm_store_serves_trajectory_arrays(distributed_runs):
    store_dir, _, _, _ = distributed_runs
    store = CampaignStore(store_dir)
    for variant in acceptance_grid().variants():
        arrays = store.get_arrays(variant)
        assert arrays is not None, f"no arrays for {variant.name}"
        assert len(arrays["time"]) > 0
        assert arrays["position"].shape == (len(arrays["time"]), 3)

"""Common attack abstractions.

Each attack models something the adversary described in Section III-B can do
from inside the container: run arbitrary programs (memory/CPU hogs, packet
floods) or sabotage the complex controller itself.  Attacks are descriptors:
they carry their activation time and parameters, and the flight simulation
(:mod:`repro.sim.flight`) instantiates their effects when they become active.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

__all__ = ["Attack"]


@dataclass(frozen=True)
class Attack:
    """Base class for all attacks.

    Attributes
    ----------
    start_time:
        Simulation time at which the attack begins [s].
    duration:
        How long the attack lasts [s]; ``None`` means until the end of the
        scenario.
    """

    start_time: float = 10.0
    duration: float | None = None

    @property
    def name(self) -> str:
        """Human-readable attack name."""
        return type(self).__name__

    def active(self, now: float) -> bool:
        """True while the attack is in effect at simulation time ``now``."""
        if now < self.start_time:
            return False
        if self.duration is None:
            return True
        return now < self.start_time + self.duration

    # -- parameterization hooks (used by campaign sweep grids) -------------------

    @classmethod
    def param_names(cls) -> tuple[str, ...]:
        """Names of the attack's tunable parameters (its dataclass fields).

        Sweep grids and the adaptive boundary search use this to resolve
        ``attack.<param>`` axes (e.g. ``attack.packets_per_second`` for the
        UDP flood rate, ``attack.threads`` for the CPU-hog share) without
        hard-coding per-attack knowledge.
        """
        return tuple(spec.name for spec in fields(cls))

    def has_param(self, name: str) -> bool:
        """True when this attack declares a parameter called ``name``."""
        return name in self.param_names()

    def with_start_time(self, start_time: float) -> "Attack":
        """Copy of the attack rescheduled to begin at ``start_time``."""
        return replace(self, start_time=float(start_time))

    def with_params(self, **overrides) -> "Attack":
        """Copy of the attack with the given dataclass fields replaced.

        Unknown field names raise ``ValueError`` so a sweep grid with a typo
        fails at expansion time instead of silently running the base attack.
        """
        valid = {spec.name for spec in fields(self)}
        unknown = set(overrides) - valid
        if unknown:
            raise ValueError(
                f"{type(self).__name__} has no parameter(s) {sorted(unknown)}"
            )
        return replace(self, **overrides)

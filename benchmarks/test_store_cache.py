"""Warm-cache campaign benchmark: the ISSUE 2 acceptance criterion.

Flies a small Figure-5 sweep grid cold (empty result store), re-runs it warm
(every cell cached), and checks that the warm re-run completes **at least 5x
faster** with **identical summaries** — the content-addressed store replaces
re-flying with a couple of JSON reads per cell.

When ``REPRO_CAMPAIGN_STORE`` is set (CI persists that directory via
``actions/cache`` keyed on the store's version salt), the same grid also
runs against the persistent store: on a cache-restored run it completes from
cache, which is reported but not asserted (the first run of a new salt is
legitimately cold).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.report import format_table
from repro.campaign import CampaignRunner, ScenarioGrid
from repro.sim import FlightScenario
from repro.store import CampaignStore

FLIGHT_DURATION = 2.0
SPEEDUP_TARGET = 5.0


def cache_grid() -> ScenarioGrid:
    return ScenarioGrid(
        FlightScenario.figure5(
            attack_start=0.5, duration=FLIGHT_DURATION
        ).with_name("cache-bench"),
        axes={
            "memguard_budget": [1500, 3000],
            "seed": [101, 102, 103],
        },
    )


def test_warm_cache_rerun_speedup(tmp_path, report):
    grid = cache_grid()
    cold = CampaignRunner(store=CampaignStore(tmp_path)).run(grid)
    warm = CampaignRunner(store=CampaignStore(tmp_path)).run(grid)

    assert cold.failures() == () and warm.failures() == ()
    assert (cold.cache_hits, cold.cache_misses) == (0, len(grid))
    assert (warm.cache_hits, warm.cache_misses) == (len(grid), 0)
    # The cache must be invisible in the results...
    assert warm.summaries() == cold.summaries()
    # ...and decisive in the wall time.
    speedup = cold.wall_time / warm.wall_time if warm.wall_time else float("inf")
    assert speedup >= SPEEDUP_TARGET, (
        f"warm re-run only {speedup:.1f}x faster than cold "
        f"(target {SPEEDUP_TARGET}x)"
    )

    rows = [
        ["cold (all flown)", f"{cold.wall_time:.2f} s", str(cold.cache_misses)],
        ["warm (all cached)", f"{warm.wall_time:.2f} s", str(warm.cache_hits)],
    ]
    text = format_table(
        ["Run", "Campaign wall time", "Cells flown/cached"],
        rows,
        title=(
            f"Campaign store: {len(grid)} x {FLIGHT_DURATION:.0f} s flights, "
            f"warm re-run {speedup:.0f}x faster"
        ),
    )
    report("campaign_cache", text + "\n\n" + warm.to_text(), data={
        "flights": len(grid),
        "flight_duration_s": FLIGHT_DURATION,
        "cold_wall_s": round(cold.wall_time, 3),
        "warm_wall_s": round(warm.wall_time, 3),
        "cold_flown": cold.cache_misses,
        "warm_cached": warm.cache_hits,
        "speedup": round(speedup, 1),
    })


def test_persistent_store_completes_from_cache(report):
    store_dir = os.environ.get("REPRO_CAMPAIGN_STORE")
    if not store_dir:
        pytest.skip("REPRO_CAMPAIGN_STORE not set (CI-only persistence check)")
    store = CampaignStore(Path(store_dir))
    result = CampaignRunner(store=store).run(cache_grid())
    assert result.failures() == ()
    report(
        "campaign_cache_persistent",
        f"Persistent store {store_dir} (salt {store.salt}): "
        f"{result.cache_hits} cached / {result.cache_misses} flown, "
        f"wall time {result.wall_time:.2f} s",
        data={
            "salt": store.salt,
            "cached": result.cache_hits,
            "flown": result.cache_misses,
            "wall_s": round(result.wall_time, 3),
        },
    )

"""Docker-like container model.

A container here is the unit of isolation the CCE runs in: a named set of
processes (tasks) constrained by cgroups, living in a sandboxed network
namespace, with UDP port mappings toward the host.  Creating a container does
not give it any privileged capability (the prototype uses no ``--privileged``
flags), which is what lets the cgroup limits hold against the attacker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..rtos.task import Task, TaskConfig
from .cgroups import CgroupSet, CpuCgroup, CpusetCgroup, MemoryCgroup

__all__ = ["ContainerState", "PortMapping", "ContainerConfig", "Container"]


class ContainerState(Enum):
    """Lifecycle states of a container."""

    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"
    KILLED = "killed"


@dataclass(frozen=True)
class PortMapping:
    """UDP port exposed from the container to the host (Docker ``-p`` flag)."""

    container_port: int
    host_port: int
    protocol: str = "udp"


@dataclass
class ContainerConfig:
    """Static configuration of a container (the ``docker run`` arguments)."""

    name: str = "cce"
    image: str = "resin/rpi-raspbian:jessie"
    cpuset_cores: frozenset[int] = frozenset({3})
    max_priority: int = 10
    memory_limit_bytes: int = 256 * 1024 * 1024
    network: str = "container"
    port_mappings: tuple[PortMapping, ...] = (
        PortMapping(container_port=14660, host_port=14660),
        PortMapping(container_port=14600, host_port=14600),
    )
    privileged: bool = False


class Container:
    """A running (or stopped) container instance."""

    def __init__(self, config: ContainerConfig) -> None:
        self.config = config
        self.cgroups = CgroupSet(
            cpuset=CpusetCgroup(allowed_cores=frozenset(config.cpuset_cores)),
            cpu=CpuCgroup(max_priority=config.max_priority),
            memory=MemoryCgroup(limit_bytes=config.memory_limit_bytes),
        )
        self.state = ContainerState.CREATED
        self.tasks: list[Task] = []

    @property
    def name(self) -> str:
        """Container name (also its network namespace name)."""
        return self.config.name

    @property
    def namespace(self) -> str:
        """Network namespace the container's sockets live in."""
        return self.config.network

    def admit_task(self, config: TaskConfig) -> TaskConfig:
        """Apply the container's cgroup limits to a task configuration."""
        if self.config.privileged:
            return config
        return self.cgroups.admit_task(config)

    def register_task(self, task: Task) -> None:
        """Track a task as belonging to this container."""
        self.tasks.append(task)

    def mark_running(self) -> None:
        """Transition to the RUNNING state."""
        self.state = ContainerState.RUNNING

    def stop(self) -> None:
        """Stop the container: all its tasks stop releasing jobs."""
        for task in self.tasks:
            task.stop()
        self.state = ContainerState.STOPPED

    def kill(self) -> None:
        """Kill the container (same effect as stop, different bookkeeping)."""
        for task in self.tasks:
            task.stop()
        self.state = ContainerState.KILLED

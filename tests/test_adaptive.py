"""Tests for the adaptive boundary search (repro.adaptive).

Real flights cost seconds each, so the search logic is exercised through a
synthetic :class:`~repro.campaign.backends.ExecutorBackend` that fabricates
outcomes from the probed axis value — which doubles as a test that the
backend protocol is a genuine substitution point.  The expensive end-to-end
run against real flights lives in ``benchmarks/test_adaptive_boundary.py``.
"""

import math
from dataclasses import dataclass, field

import pytest

from repro.adaptive import (
    BoundaryBracketError,
    BoundarySearch,
    VerdictError,
    crashed,
    not_recovered,
    recovery_latency_exceeds,
    resolve_predicate,
    switched_to_safety,
)
from repro.attacks import CpuHogAttack, UdpFloodAttack
from repro.campaign import CampaignRunner, ScenarioGrid
from repro.campaign.results import SUMMARY_FIELDS, VariantOutcome
from repro.sim import FlightScenario
from repro.store import CampaignStore


def tiny_scenario(**kwargs) -> FlightScenario:
    defaults = dict(name="tiny", duration=0.5, record_hz=20.0)
    defaults.update(kwargs)
    return FlightScenario(**defaults)


def fake_summary(name: str, crashed: bool) -> dict:
    summary = {key: None for key in SUMMARY_FIELDS}
    summary.update({
        "scenario": name,
        "crashed": crashed,
        "switched_to_safety": crashed,
        "max_deviation": 3.0 if crashed else 0.4,
        "recovered": not crashed,
    })
    return summary


@dataclass(frozen=True)
class ThresholdBackend:
    """Fabricates outcomes: the flight 'crashes' iff the probed value of
    ``axis`` is >= ``threshold``.  Counts executions for flight accounting."""

    axis: str = "memguard_budget"
    threshold: float = 4242.0
    flown: list = field(default_factory=list, compare=False)

    name = "threshold-fake"

    def map(self, fn, items):
        for variant in items:
            value = dict(variant.axes)[self.axis]
            self.flown.append(value)
            yield VariantOutcome(
                name=variant.name,
                axes=variant.axes,
                seed=variant.scenario.seed,
                summary=fake_summary(variant.name, float(value) >= self.threshold),
                error=None,
                wall_time=0.001,
            )


def make_search(**overrides) -> BoundarySearch:
    options = dict(
        scenario=tiny_scenario(),
        axis="memguard_budget",
        lo=2000,
        hi=32000,
        tolerance=781,
        batch=1,
    )
    options.update(overrides)
    return BoundarySearch(**options)


def threshold_runner(threshold=4242.0, axis="memguard_budget") -> CampaignRunner:
    return CampaignRunner(backend=ThresholdBackend(axis=axis, threshold=threshold))


class TestBoundarySearch:
    def test_localizes_within_tolerance(self):
        search = make_search()
        result = search.run(threshold_runner())
        assert result.width <= search.tolerance
        assert result.lo < 4242 <= result.hi
        assert result.lo_verdict is False
        assert abs(result.boundary - 4242) <= search.tolerance / 2 + 1

    def test_logarithmic_flight_count(self):
        search = make_search()
        result = search.run(threshold_runner())
        rounds = math.ceil(math.log2((search.hi - search.lo) / search.tolerance))
        assert result.flights <= 2 + rounds
        # Far fewer than the dense sweep the bisection replaces.
        assert result.flights <= search.dense_grid_size() // 2

    def test_batched_refinement(self):
        search = make_search(batch=3)
        result = search.run(threshold_runner())
        assert result.width <= search.tolerance
        assert result.lo < 4242 <= result.hi
        rounds = math.ceil(math.log((search.hi - search.lo) / search.tolerance, 4))
        assert result.flights <= 2 + 3 * rounds

    def test_descending_verdict_direction(self):
        # Verdict True at lo, False at hi (e.g. a protection that needs a
        # minimum budget): the bracket still pins the flip.
        runner = CampaignRunner(backend=ThresholdBackend(threshold=5000.0))
        search = make_search(predicate=lambda outcome: not crashed(outcome))
        result = search.run(runner)
        assert result.lo_verdict is True
        assert result.lo < 5000 <= result.hi
        assert result.width <= search.tolerance

    def test_integral_axis_probes_integers(self):
        backend = ThresholdBackend()
        result = make_search().run(CampaignRunner(backend=backend))
        assert all(float(value) == int(value) for value in backend.flown)

    def test_integral_axis_stops_at_adjacent_integers(self):
        # Tolerance finer than 1 on an integer axis cannot refine forever.
        search = make_search(lo=4240, hi=4250, tolerance=0.01)
        result = search.run(threshold_runner())
        assert result.hi - result.lo <= 1

    def test_float_axis_not_snapped(self):
        backend = ThresholdBackend(axis="attack_start", threshold=0.3)
        search = BoundarySearch(
            scenario=tiny_scenario(attacks=(UdpFloodAttack(start_time=0.1),)),
            axis="attack_start", lo=0.1, hi=0.9, tolerance=0.05,
        )
        result = search.run(CampaignRunner(backend=backend))
        assert result.width <= 0.05
        assert any(float(value) != int(value) for value in backend.flown)

    def test_no_bracket_raises(self):
        with pytest.raises(BoundaryBracketError, match="no boundary bracketed"):
            make_search().run(threshold_runner(threshold=1e9))

    def test_failed_probe_raises_verdict_error(self):
        @dataclass(frozen=True)
        class BrokenBackend:
            name = "broken"

            def map(self, fn, items):
                for variant in items:
                    yield VariantOutcome(
                        name=variant.name, axes=variant.axes,
                        seed=variant.scenario.seed, summary=None,
                        error="Traceback: boom", wall_time=0.001,
                    )

        with pytest.raises(VerdictError, match="no verdict"):
            make_search().run(CampaignRunner(backend=BrokenBackend()))

    def test_non_monotone_converges_to_first_flip(self):
        @dataclass(frozen=True)
        class BandBackend(ThresholdBackend):
            """Crashes only inside [4242, 20000) — two flips."""

            def map(self, fn, items):
                for variant in items:
                    value = float(dict(variant.axes)[self.axis])
                    yield VariantOutcome(
                        name=variant.name, axes=variant.axes,
                        seed=variant.scenario.seed,
                        summary=fake_summary(variant.name, 4242 <= value < 20000),
                        error=None, wall_time=0.001,
                    )

        result = make_search(hi=16000).run(CampaignRunner(backend=BandBackend()))
        assert result.lo < 4242 <= result.hi

    def test_interval_validation(self):
        with pytest.raises(ValueError, match="lo < hi"):
            make_search(lo=10, hi=10)
        with pytest.raises(ValueError, match="tolerance"):
            make_search(tolerance=0)
        with pytest.raises(ValueError, match="batch"):
            make_search(batch=0)
        with pytest.raises(ValueError, match="narrower than the tolerance"):
            make_search(lo=100, hi=200, tolerance=500)

    def test_store_makes_repeat_search_free(self, tmp_path):
        backend = ThresholdBackend()
        store = CampaignStore(tmp_path)
        cold = make_search().run(CampaignRunner(backend=backend, store=store))
        assert cold.flights == len(backend.flown)
        assert cold.cache_hits == 0

        rerun_backend = ThresholdBackend()
        warm = make_search().run(
            CampaignRunner(backend=rerun_backend,
                           store=CampaignStore(tmp_path))
        )
        assert warm.flights == 0
        assert rerun_backend.flown == []
        assert warm.cache_hits == cold.flights
        assert (warm.lo, warm.hi) == (cold.lo, cold.hi)

    def test_sub_ulp_tolerance_terminates(self):
        # Once the bracket nears one float ulp, interior probe values round
        # onto an endpoint; the search must stop refining, not spin forever.
        backend = ThresholdBackend(axis="attack_start", threshold=1.0 + 2**-51)
        search = BoundarySearch(
            scenario=tiny_scenario(attacks=(UdpFloodAttack(start_time=0.1),)),
            axis="attack_start", lo=1.0, hi=1.0 + 2**-50, tolerance=1e-18,
        )
        result = search.run(CampaignRunner(backend=backend))
        # Best achievable bracket: adjacent floats (wider than the asked
        # tolerance, which is unreachable).
        assert result.lo < result.hi
        assert len(backend.flown) < 60

    def test_probe_values_never_repeat(self):
        backend = ThresholdBackend()
        make_search(batch=2).run(CampaignRunner(backend=backend))
        assert len(backend.flown) == len(set(backend.flown))


class TestBoundaryResultExport:
    @pytest.fixture(scope="class")
    def result(self):
        return make_search(batch=2).run(threshold_runner())

    def test_to_dict(self, result):
        data = result.to_dict()
        assert data["axis"] == "memguard_budget"
        assert data["bracket"] == [result.lo, result.hi]
        assert data["flights"] == result.flights
        assert data["dense_grid_size"] == 40
        assert len(data["probes"]) == len(result.probes)
        assert all("verdict" in row for row in data["probes"])

    def test_to_json_roundtrip(self, result, tmp_path):
        import json

        path = tmp_path / "boundary.json"
        text = result.to_json(path)
        assert json.loads(path.read_text()) == json.loads(text)

    def test_tables(self, result):
        text = result.to_text()
        assert "Boundary search on 'memguard_budget'" in text
        assert "fail" in text and "ok" in text
        markdown = result.to_markdown()
        assert markdown.count("|") > 10

    def test_campaign_view(self, result):
        campaign = result.campaign()
        assert len(campaign) == len(result.probes)
        rows = campaign.summaries()
        assert all(row["memguard_budget"] is not None for row in rows)
        # Probes flow through the standard cell aggregation.
        assert len(campaign.cells()) == len(result.probes)


class TestAttackParamAxis:
    def test_grid_axis_sets_parameter(self):
        base = tiny_scenario(attacks=(UdpFloodAttack(start_time=0.1),))
        grid = ScenarioGrid(base, axes={"attack.packets_per_second": [1000.0, 2000.0]})
        rates = [
            variant.scenario.attacks[0].packets_per_second
            for variant in grid.variants()
        ]
        assert rates == [1000.0, 2000.0]

    def test_only_declaring_attacks_are_touched(self):
        base = tiny_scenario(
            attacks=(UdpFloodAttack(start_time=0.1), CpuHogAttack(start_time=0.2))
        )
        variant = ScenarioGrid(
            base, axes={"attack.packets_per_second": [123.0]}
        ).variants()[0]
        flood, hog = variant.scenario.attacks
        assert flood.packets_per_second == 123.0
        assert hog == CpuHogAttack(start_time=0.2)

    def test_unknown_parameter_fails_at_expansion(self):
        base = tiny_scenario(attacks=(UdpFloodAttack(start_time=0.1),))
        grid = ScenarioGrid(base, axes={"attack.warp_factor": [1]})
        with pytest.raises(ValueError, match="has parameter"):
            grid.variants()

    def test_requires_attacks(self):
        grid = ScenarioGrid(tiny_scenario(), axes={"attack.packets_per_second": [1.0]})
        with pytest.raises(ValueError, match="requires a base scenario with attacks"):
            grid.variants()

    def test_register_axis_rejects_attack_namespace(self):
        from repro.campaign import register_axis

        with pytest.raises(ValueError, match="resolved dynamically"):
            register_axis("attack.custom", lambda s, v: s)

    def test_integral_autodetection_from_attack_param(self):
        base = tiny_scenario(attacks=(CpuHogAttack(start_time=0.1),))
        search = BoundarySearch(
            scenario=base, axis="attack.threads", lo=1, hi=16, tolerance=1,
        )
        assert search._integral() is True
        flood = tiny_scenario(attacks=(UdpFloodAttack(start_time=0.1),))
        float_search = BoundarySearch(
            scenario=flood, axis="attack.packets_per_second",
            lo=100.0, hi=50000.0, tolerance=100.0,
        )
        assert float_search._integral() is False


class TestPredicates:
    def outcome(self, **summary_overrides):
        summary = fake_summary("x", False)
        summary.update(summary_overrides)
        return VariantOutcome(
            name="x", axes=(), seed=1, summary=summary, error=None, wall_time=0.0
        )

    def test_basic_predicates(self):
        assert crashed(self.outcome(crashed=True)) is True
        assert crashed(self.outcome(crashed=False)) is False
        assert switched_to_safety(self.outcome(switched_to_safety=True)) is True
        assert not_recovered(self.outcome(recovered=False)) is True

    def test_recovery_latency_exceeds(self):
        fast = self.outcome(recovery_latency=0.2)
        slow = self.outcome(recovery_latency=2.0)
        never = self.outcome(recovery_latency=None)
        predicate = recovery_latency_exceeds(0.5)
        assert predicate(fast) is False
        assert predicate(slow) is True
        # Never switched == unbounded latency: worse than any threshold.
        assert predicate(never) is True

    def test_failed_outcome_has_no_verdict(self):
        broken = VariantOutcome(
            name="x", axes=(), seed=1, summary=None, error="boom", wall_time=0.0
        )
        with pytest.raises(VerdictError):
            crashed(broken)

    def test_resolve_predicate(self):
        assert resolve_predicate("crashed") is crashed
        assert resolve_predicate("recovery_latency_exceeds:1.5")(
            self.outcome(recovery_latency=2.0)
        ) is True
        with pytest.raises(KeyError, match="unknown verdict predicate"):
            resolve_predicate("nonsense")
        with pytest.raises(ValueError, match="invalid threshold"):
            resolve_predicate("recovery_latency_exceeds:abc")

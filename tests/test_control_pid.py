"""Tests for the PID primitive, allocator and the inner control loops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control import (
    AttitudeControlGains,
    AttitudeController,
    AttitudeSetpoint,
    ControlAllocation,
    PidController,
    PidGains,
    QuadXAllocator,
    RateController,
    RateSetpoint,
)


class TestPidGains:
    def test_rejects_negative_limits(self):
        with pytest.raises(ValueError):
            PidGains(kp=1.0, integral_limit=-1.0)

    def test_rejects_negative_filter(self):
        with pytest.raises(ValueError):
            PidGains(kp=1.0, derivative_filter_tau=-0.1)


class TestPidController:
    def test_proportional_only(self):
        pid = PidController(PidGains(kp=2.0))
        assert pid.update(1.5, 0.01) == pytest.approx(3.0)

    def test_integral_accumulates(self):
        pid = PidController(PidGains(kp=0.0, ki=1.0))
        for _ in range(100):
            output = pid.update(1.0, 0.01)
        assert output == pytest.approx(1.0, rel=1e-6)

    def test_integral_limit_clamps(self):
        pid = PidController(PidGains(kp=0.0, ki=1.0, integral_limit=0.2))
        for _ in range(1000):
            pid.update(1.0, 0.01)
        assert pid.integral == pytest.approx(0.2)

    def test_output_limit_clamps(self):
        pid = PidController(PidGains(kp=10.0, output_limit=1.0))
        assert pid.update(5.0, 0.01) == pytest.approx(1.0)
        assert pid.update(-5.0, 0.01) == pytest.approx(-1.0)

    def test_derivative_from_finite_difference(self):
        pid = PidController(PidGains(kp=0.0, kd=1.0))
        pid.update(0.0, 0.1)
        assert pid.update(1.0, 0.1) == pytest.approx(10.0)

    def test_external_derivative_used_when_given(self):
        pid = PidController(PidGains(kp=0.0, kd=2.0))
        assert pid.update(0.0, 0.1, derivative=3.0) == pytest.approx(6.0)

    def test_derivative_filter_smooths(self):
        raw = PidController(PidGains(kp=0.0, kd=1.0))
        filtered = PidController(PidGains(kp=0.0, kd=1.0, derivative_filter_tau=0.5))
        raw.update(0.0, 0.01)
        filtered.update(0.0, 0.01)
        assert abs(filtered.update(1.0, 0.01)) < abs(raw.update(1.0, 0.01))

    def test_anti_windup_freezes_integrator_when_saturated(self):
        pid = PidController(PidGains(kp=1.0, ki=1.0, output_limit=0.5))
        for _ in range(200):
            pid.update(10.0, 0.01)
        # The integrator must not have accumulated the full 20 units.
        assert pid.integral < 1.0

    def test_reset_clears_state(self):
        pid = PidController(PidGains(kp=1.0, ki=1.0, kd=1.0))
        pid.update(1.0, 0.01)
        pid.reset()
        assert pid.integral == 0.0
        assert pid.update(0.0, 0.01) == pytest.approx(0.0)

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            PidController(PidGains(kp=1.0)).update(1.0, 0.0)

    @given(error=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_output_always_within_limit(self, error):
        pid = PidController(PidGains(kp=3.0, ki=1.0, kd=0.5, output_limit=2.0))
        for _ in range(5):
            output = pid.update(error, 0.01)
            assert -2.0 <= output <= 2.0


class TestQuadXAllocator:
    def test_pure_thrust_spreads_evenly(self):
        motors = QuadXAllocator().allocate(ControlAllocation(thrust=0.5, roll=0.0, pitch=0.0, yaw=0.0))
        assert np.allclose(motors, 0.5)

    def test_roll_demand_differential(self):
        motors = QuadXAllocator().allocate(ControlAllocation(thrust=0.5, roll=0.1, pitch=0.0, yaw=0.0))
        # Positive roll -> more thrust on left rotors (1: rear-left, 2: front-left).
        assert motors[1] > motors[0]
        assert motors[2] > motors[3]

    def test_pitch_demand_differential(self):
        motors = QuadXAllocator().allocate(ControlAllocation(thrust=0.5, roll=0.0, pitch=0.1, yaw=0.0))
        # Positive pitch (nose up) -> more thrust on front rotors (0, 2).
        assert motors[0] > motors[1]
        assert motors[2] > motors[3]

    def test_yaw_demand_differential(self):
        motors = QuadXAllocator().allocate(ControlAllocation(thrust=0.5, roll=0.0, pitch=0.0, yaw=0.1))
        # Positive yaw -> speed up the CCW rotors (0, 1).
        assert motors[0] > motors[2]
        assert motors[1] > motors[3]

    def test_outputs_always_within_unit_range(self):
        allocator = QuadXAllocator()
        motors = allocator.allocate(ControlAllocation(thrust=0.9, roll=0.8, pitch=-0.8, yaw=0.5))
        assert np.all(motors >= 0.0) and np.all(motors <= 1.0)

    @given(
        thrust=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        roll=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        pitch=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        yaw=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_allocation_is_always_feasible(self, thrust, roll, pitch, yaw):
        motors = QuadXAllocator().allocate(ControlAllocation(thrust, roll, pitch, yaw))
        assert motors.shape == (4,)
        assert np.all(motors >= 0.0) and np.all(motors <= 1.0)

    def test_saturation_preserves_roll_direction(self):
        motors = QuadXAllocator().allocate(ControlAllocation(thrust=0.9, roll=0.9, pitch=0.0, yaw=0.9))
        assert motors[1] >= motors[0]
        assert motors[2] >= motors[3]


class TestRateController:
    def test_zero_error_zero_torque(self):
        controller = RateController()
        allocation = controller.update(RateSetpoint(rates=np.zeros(3), thrust=0.5), np.zeros(3), 0.004)
        assert allocation.roll == pytest.approx(0.0)
        assert allocation.pitch == pytest.approx(0.0)
        assert allocation.thrust == pytest.approx(0.5)

    def test_positive_rate_error_gives_positive_torque(self):
        controller = RateController()
        allocation = controller.update(
            RateSetpoint(rates=np.array([1.0, 0.0, 0.0]), thrust=0.5), np.zeros(3), 0.004
        )
        assert allocation.roll > 0.0

    def test_thrust_is_clipped(self):
        controller = RateController()
        allocation = controller.update(RateSetpoint(rates=np.zeros(3), thrust=1.5), np.zeros(3), 0.004)
        assert allocation.thrust == 1.0

    def test_reset_clears_integrators(self):
        controller = RateController()
        for _ in range(100):
            controller.update(RateSetpoint(rates=np.array([1.0, 0.0, 0.0]), thrust=0.5),
                              np.zeros(3), 0.004)
        with_integral = controller.update(
            RateSetpoint(rates=np.zeros(3), thrust=0.5), np.zeros(3), 0.004
        )
        controller.reset()
        without_integral = controller.update(
            RateSetpoint(rates=np.zeros(3), thrust=0.5), np.zeros(3), 0.004
        )
        assert abs(without_integral.roll) < abs(with_integral.roll) + 1e-9


class TestAttitudeController:
    def test_zero_error_zero_rates(self):
        controller = AttitudeController()
        setpoint = controller.update(AttitudeSetpoint(thrust=0.5), 0.0, 0.0, 0.0)
        assert np.allclose(setpoint.rates, 0.0)

    def test_roll_error_commands_roll_rate(self):
        controller = AttitudeController()
        setpoint = controller.update(AttitudeSetpoint(roll=0.2, thrust=0.5), 0.0, 0.0, 0.0)
        assert setpoint.rates[0] > 0.0
        assert setpoint.rates[1] == pytest.approx(0.0)

    def test_rates_clipped_to_limits(self):
        gains = AttitudeControlGains(max_rate=1.0, max_yaw_rate=0.5)
        controller = AttitudeController(gains)
        setpoint = controller.update(AttitudeSetpoint(roll=3.0, yaw=3.0, thrust=0.5), 0.0, 0.0, 0.0)
        assert abs(setpoint.rates[0]) <= 1.0
        assert abs(setpoint.rates[2]) <= 0.5

    def test_yaw_error_wraps(self):
        controller = AttitudeController()
        setpoint = controller.update(
            AttitudeSetpoint(yaw=np.pi - 0.1, thrust=0.5), 0.0, 0.0, -np.pi + 0.1
        )
        # The short way round is -0.2 rad, so the commanded yaw rate is negative.
        assert setpoint.rates[2] < 0.0

    def test_thrust_passes_through(self):
        controller = AttitudeController()
        setpoint = controller.update(AttitudeSetpoint(thrust=0.7), 0.0, 0.0, 0.0)
        assert setpoint.thrust == pytest.approx(0.7)

"""Tests for the HTTP/JSON work-queue transport and its authentication.

Mirrors the layering of ``tests/test_transport.py`` for the HTTP transport:

* :class:`~repro.campaign.transport_http.HttpWorkQueue` /
  :class:`~repro.campaign.transport_http.HttpWorkQueueClient` primitives
  over a real HTTP server — exclusive claims, heartbeat leases, run
  namespacing, retire credits, poison pills, undecodable-result requeue;
* the auth failure paths the ISSUE names: wrong/missing token rejected
  with a distinct (HTTP 401) error, the worker exits with a clear message
  instead of retry-looping, and the token never leaks into logs or
  results;
* :class:`~repro.campaign.DistributedBackend` with ``transport="http"``
  end-to-end over real subprocess workers, plus spec/CLI plumbing.

The expensive acceptance run (12 real flights over authenticated HTTP ==
serial) lives in ``benchmarks/test_distributed_backend.py``.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.campaign import (
    CampaignRunner,
    DistributedBackend,
    HttpWorkQueue,
    HttpWorkQueueClient,
    ScenarioGrid,
    WorkQueueAuthError,
)
from repro.campaign.spec import build_runner
from repro.campaign.transport_http import parse_http_url
from repro.campaign.worker import main as worker_main, run_worker
from repro.campaign.workqueue import (
    AUTH_TOKEN_ENV,
    PROTOCOL_VERSION,
    WorkQueue,
    resolve_auth_token,
)
from repro.sim import FlightScenario


# -- picklable worker functions (module-level so queue workers can import them) --


def _double(item):
    return item * 2


def _boom(item):
    raise RuntimeError(f"boom on {item!r}")


@pytest.fixture
def queue():
    with HttpWorkQueue(run_id="rtest") as server:
        yield server


def client_for(server: HttpWorkQueue, **kwargs) -> HttpWorkQueueClient:
    kwargs.setdefault("timeout", 5.0)
    return HttpWorkQueueClient(server.url, **kwargs)


class TestParseHttpUrl:
    def test_plain_host_port(self):
        assert parse_http_url("http://example.org:9000") == "http://example.org:9000"

    def test_trailing_slash_stripped(self):
        assert parse_http_url("http://example.org:9000/") == "http://example.org:9000"

    def test_path_prefix_kept_for_reverse_proxies(self):
        url = "https://lb.example.org/campaign"
        assert parse_http_url(url) == url

    def test_non_http_scheme_rejected(self):
        with pytest.raises(ValueError, match="http"):
            parse_http_url("ftp://example.org:9000")
        with pytest.raises(ValueError, match="http"):
            parse_http_url("example.org:9000")

    def test_query_string_rejected(self):
        # Per-op paths are appended to the base URL; a query would end up
        # inside the endpoint ("...?team=a/claim") and every request 404s.
        with pytest.raises(ValueError, match="query"):
            parse_http_url("http://lb.example.com/campaign?team=a")

    def test_fragment_rejected(self):
        with pytest.raises(ValueError, match="fragment"):
            parse_http_url("http://lb.example.com/campaign#section")

    def test_worker_cli_rejects_query_url_with_exit_2(self, capsys):
        # The malformed URL must be a clean configuration error (exit 2
        # plus the ValueError message), not a retry loop against endpoints
        # that can never resolve.
        code = worker_main(
            ["--connect-http", "http://lb.example.com/campaign?team=a"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("worker:")
        assert "query" in err


class TestHttpWorkQueuePrimitives:
    def test_satisfies_the_workqueue_protocol(self, queue):
        assert isinstance(queue, WorkQueue)
        assert isinstance(client_for(queue), WorkQueue)

    def test_enqueue_claim_complete_roundtrip_over_http(self, queue):
        for index, payload in enumerate(["x", "y"]):
            queue.enqueue(index, payload)
        assert queue.pending_count() == 2

        client = client_for(queue)
        index, payload, lease = client.claim("w1")
        assert (index, payload) == (0, "x")  # lowest index first
        client.complete(index, ("ok", "done"), lease)
        assert queue.collect() == {0: ("ok", "done")}
        assert queue.collect(seen={0}) == {}
        assert queue.pending_count() == 1

    def test_claims_are_exclusive(self, queue):
        queue.enqueue(0, "only")
        assert client_for(queue).claim("w1") is not None
        assert client_for(queue).claim("w2") is None

    def test_disconnected_worker_lease_is_reissued(self, queue):
        queue.enqueue(0, "task")
        assert client_for(queue).claim("gone") is not None
        assert client_for(queue).claim("w2") is None  # still leased
        time.sleep(0.05)
        assert queue.reclaim_expired(lease_timeout=0.01) == [0]
        index, payload, _ = client_for(queue).claim("w2")
        assert (index, payload) == (0, "task")

    def test_heartbeat_keeps_the_lease(self, queue):
        queue.enqueue(0, "task")
        client = client_for(queue)
        _, _, lease = client.claim("w1")
        time.sleep(0.2)
        client.heartbeat(lease)
        assert queue.reclaim_expired(lease_timeout=0.15) == []

    def test_results_of_other_runs_are_ignored(self, queue):
        # A lease claimed from a previous coordinator carries the old run
        # id; a new coordinator must not collect its result.
        queue.enqueue(0, "old-task")
        client = client_for(queue)
        index, _, old_lease = client.claim("w1")

        with HttpWorkQueue(run_id="rnew") as successor:
            heir = client_for(successor)
            heir.complete(index, ("ok", "stale"), old_lease)
            assert successor.collect() == {}
            successor.enqueue(0, _double)
            fresh_index, _, fresh_lease = heir.claim("w2")
            heir.complete(fresh_index, ("ok", 10), fresh_lease)
            assert successor.collect() == {0: ("ok", 10)}

    def test_stop_and_retire_travel_over_the_wire(self, queue):
        client = client_for(queue)
        assert client.stop_requested() is False
        queue.request_stop()
        assert client.stop_requested() is True
        queue.set_retire_credits(1)
        assert client.try_retire() is True
        assert client.try_retire() is False

    def test_unreadable_payload_is_a_poison_pill_not_a_crash(self, queue):
        with queue._lock:
            run = queue._runs[queue.run_id]
            run.pending[0] = b"cdefinitely_missing_module\nboom\n."
        assert client_for(queue).claim("w1") is None
        status, text = queue.collect()[0]
        assert status == "error"
        assert "unreadable task payload" in text

    def test_undecodable_result_requeues_the_task(self, queue):
        queue.enqueue(0, "task")
        client = client_for(queue)
        index, _, lease = client.claim("w1")
        assert queue.pending_count() == 0
        response = client._request({
            "op": "complete", "index": index, "run": lease.run,
            "lease": lease.token, "result": "!!!not-a-pickle!!!",
        })
        assert response is None  # server answered ok: false (HTTP 400)
        assert queue.collect() == {}
        assert queue.pending_count() == 1  # task is claimable again
        assert client.claim("w2") is not None

    def test_client_degrades_when_coordinator_is_unreachable(self):
        server = HttpWorkQueue()
        client = client_for(server)
        assert client.coordinator_age() < 1.0
        server.close()
        time.sleep(0.05)
        assert client.claim("w1") is None
        assert client.stop_requested() is False
        assert client.try_retire() is False
        assert client.coordinator_age() > 0.0

    def test_get_ping_serves_as_health_check(self, queue):
        # Load balancers probe with GET; every queue operation is a POST.
        # The body carries protocol + mode so clients can fail fast on skew.
        with urllib.request.urlopen(f"{queue.url}/ping", timeout=5.0) as reply:
            body = json.loads(reply.read())
        assert body["ok"] is True
        assert body["protocol"] == PROTOCOL_VERSION
        assert body["mode"] == "campaign"
        assert body["service"] is False

    def test_unknown_endpoint_is_an_error_not_a_dispatch(self, queue):
        # The path names the operation; a body-smuggled "op" must not win.
        client = client_for(queue)
        queue.enqueue(0, "task")
        request = urllib.request.Request(
            f"{queue.url}/definitely-not-an-op",
            data=json.dumps({"op": "claim", "worker": "w1"}).encode(),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5.0)
        assert excinfo.value.code == 400
        assert queue.pending_count() == 1  # nothing was claimed


class TestHttpAuthentication:
    TOKEN = "http-test-secret"

    @pytest.fixture
    def auth_queue(self):
        with HttpWorkQueue(run_id="rauth", auth_token=self.TOKEN) as server:
            server.enqueue(0, "guarded")
            yield server

    def test_matching_token_claims_normally(self, auth_queue):
        client = client_for(auth_queue, auth_token=self.TOKEN)
        index, payload, lease = client.claim("w1")
        assert (index, payload) == (0, "guarded")
        client.complete(index, ("ok", "done"), lease)
        assert auth_queue.collect() == {0: ("ok", "done")}

    def test_missing_token_is_rejected_distinctly(self, auth_queue):
        client = client_for(auth_queue)
        with pytest.raises(WorkQueueAuthError, match="none was supplied"):
            client.claim("w1")
        assert auth_queue.pending_count() == 1  # nothing was leased

    def test_wrong_token_is_rejected_distinctly(self, auth_queue):
        client = client_for(auth_queue, auth_token="not-the-secret")
        with pytest.raises(WorkQueueAuthError, match="rejected"):
            client.stop_requested()

    def test_rejection_is_http_401(self, auth_queue):
        # The distinct status lets proxies and their metrics see auth
        # failures as auth failures, not generic 4xx noise.
        request = urllib.request.Request(
            f"{auth_queue.url}/stop", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5.0)
        assert excinfo.value.code == 401
        body = json.loads(excinfo.value.read())
        assert body["denied"] == "auth"
        assert self.TOKEN not in json.dumps(body)

    def test_worker_exits_immediately_instead_of_retry_looping(self, auth_queue):
        start = time.monotonic()
        with pytest.raises(WorkQueueAuthError):
            run_worker(
                connect_http=auth_queue.url, worker_id="t",
                poll_interval=0.2, auth_token="wrong",
            )
        assert time.monotonic() - start < 2.0

    def test_worker_cli_exits_with_clear_message(self, auth_queue, capsys):
        code = worker_main([
            "--connect-http", auth_queue.url, "--auth-token", "wrong",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "authentication failed" in err
        assert self.TOKEN not in err and "wrong" not in err

    def test_worker_reads_token_from_the_environment(self, auth_queue, monkeypatch):
        monkeypatch.setenv(AUTH_TOKEN_ENV, self.TOKEN)
        completed = run_worker(
            connect_http=auth_queue.url, worker_id="t",
            poll_interval=0.01, max_tasks=1,
        )
        assert completed == 1

    def test_explicit_token_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv(AUTH_TOKEN_ENV, "from-env")
        assert resolve_auth_token("explicit") == "explicit"
        assert resolve_auth_token(None) == "from-env"
        monkeypatch.setenv(AUTH_TOKEN_ENV, "")
        assert resolve_auth_token(None) is None


class TestRunWorkerOverHttp:
    def test_worker_drains_queue(self, queue):
        for index, item in enumerate([1, 2, 3]):
            queue.enqueue(index, (_double, item))
        completed = run_worker(
            connect_http=queue.url, worker_id="t", poll_interval=0.01,
            max_tasks=3,
        )
        assert completed == 3
        assert queue.collect() == {0: ("ok", 2), 1: ("ok", 4), 2: ("ok", 6)}

    def test_worker_ships_exceptions_as_data(self, queue):
        queue.enqueue(0, (_boom, "it"))
        run_worker(connect_http=queue.url, worker_id="t",
                   poll_interval=0.01, max_tasks=1)
        status, text = queue.collect()[0]
        assert status == "error"
        assert "RuntimeError" in text and "boom on 'it'" in text

    def test_idle_worker_exits_when_coordinator_is_unreachable(self):
        server = HttpWorkQueue()
        url = server.url
        server.close()
        completed = run_worker(
            connect_http=url, worker_id="t", poll_interval=0.01,
            orphan_timeout=0.05,
        )
        assert completed == 0

    def test_worker_survives_a_coordinator_restart(self):
        first = HttpWorkQueue(run_id="first")
        host, port = first.address
        first.enqueue(0, (_double, 21))

        done: list[int] = []

        def worker() -> None:
            done.append(run_worker(
                connect_http=f"http://{host}:{port}", worker_id="survivor",
                poll_interval=0.01, max_tasks=2, orphan_timeout=30.0,
            ))

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        deadline = time.time() + 10.0
        while not first.collect() and time.time() < deadline:
            time.sleep(0.01)
        assert first.collect() == {0: ("ok", 42)}
        first.close()

        second = HttpWorkQueue(host, port, run_id="second")
        try:
            second.enqueue(0, (_double, 100))
            while not second.collect() and time.time() < deadline:
                time.sleep(0.01)
            assert second.collect() == {0: ("ok", 200)}
        finally:
            second.request_stop()
            thread.join(timeout=10.0)
            second.close()
        assert done == [2]

    def test_exactly_one_queue_source_required(self, tmp_path):
        with pytest.raises(ValueError, match="exactly one"):
            run_worker(tmp_path, connect_http="http://localhost:1")
        with pytest.raises(ValueError, match="exactly one"):
            run_worker(connect="localhost:1", connect_http="http://localhost:1")

    def test_file_queue_rejects_an_auth_token(self, tmp_path):
        with pytest.raises(ValueError, match="no authentication"):
            run_worker(tmp_path, auth_token="pointless")

    def test_explicit_queue_object_rejects_an_auth_token(self, queue):
        # Same loud-error policy: a token that cannot take effect on an
        # explicit queue object must not be silently dropped.
        with pytest.raises(ValueError, match="explicit queue object"):
            run_worker(queue=queue, auth_token="pointless")

    def test_loopback_client_ignores_proxy_environment(self, queue, monkeypatch):
        # A coordinator-spawned worker talks to 127.0.0.1; an inherited
        # http_proxy must not route (and blackhole) that loopback traffic.
        monkeypatch.setenv("http_proxy", "http://127.0.0.1:9")  # dead port
        monkeypatch.setenv("no_proxy", "")
        queue.enqueue(0, (_double, 5))
        completed = run_worker(
            connect_http=queue.url, worker_id="t", poll_interval=0.01,
            max_tasks=1,
        )
        assert completed == 1
        assert queue.collect() == {0: ("ok", 10)}


class TestDistributedBackendHttpTransport:
    def test_spawned_workers_complete_over_http(self):
        backend = DistributedBackend(
            workers=2, transport="http", lease_timeout=60.0,
            poll_interval=0.02, auth_token="fleet-secret",
        )
        completions = []
        results = list(backend.map(
            _double, [10, 20, 30], on_complete=lambda i, r: completions.append(i)
        ))
        assert results == [20, 40, 60]
        assert sorted(completions) == [0, 1, 2]

    def test_remote_failure_raises_with_traceback(self):
        backend = DistributedBackend(workers=1, transport="http",
                                     lease_timeout=60.0)
        with pytest.raises(RuntimeError, match="distributed worker failed"):
            list(backend.map(_boom, [1]))

    def test_autoscales_from_zero_over_http(self):
        backend = DistributedBackend(
            workers=0, max_workers=2, transport="http",
            lease_timeout=60.0, poll_interval=0.02,
        )
        assert list(backend.map(_double, [4, 5])) == [8, 10]
        assert any(e["event"] == "scale-up" for e in backend.scale_events)

    def test_external_worker_drains_and_exits_on_stop(self):
        # The proxied bring-your-own-fleet flow: workers=0 on a fixed port,
        # an authenticated worker attached by URL.  After the campaign the
        # coordinator lingers long enough for the idle worker to observe
        # the stop sentinel and exit promptly.
        import socket as socket_module

        with socket_module.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        backend = DistributedBackend(
            workers=0, transport="http", port=port,
            lease_timeout=60.0, poll_interval=0.02, auth_token="ext-secret",
        )
        done: list[int] = []
        thread = threading.Thread(
            target=lambda: done.append(run_worker(
                connect_http=f"http://127.0.0.1:{port}", worker_id="ext",
                poll_interval=0.02, orphan_timeout=60.0,
                auth_token="ext-secret",
            )),
            daemon=True,
        )
        thread.start()
        assert list(backend.map(_double, [1, 2, 3])) == [2, 4, 6]
        thread.join(timeout=10.0)
        assert not thread.is_alive(), "worker must exit on the stop sentinel"
        assert done == [3]

    def test_token_never_reaches_the_campaign_result(self, tmp_path):
        # Full-stack hygiene: a real (tiny) campaign over authenticated
        # HTTP, then every user-facing rendering of the result is checked
        # for the secret.
        token = "result-must-not-see-me"
        grid = ScenarioGrid(
            FlightScenario(name="http-tiny", duration=0.4, record_hz=20.0),
            axes={"seed": [1, 2]},
        )
        backend = DistributedBackend(
            workers=2, transport="http", lease_timeout=120.0,
            auth_token=token,
        )
        result = CampaignRunner(backend=backend).run(grid)
        assert result.failures() == ()
        json_path = tmp_path / "result.json"
        result.to_json(json_path)
        assert token not in json_path.read_text()
        assert token not in result.to_text()
        assert token not in repr(result)
        assert token not in repr(backend)


class TestHttpSpecPlumbing:
    def test_spec_backend_options_select_http_transport(self):
        spec = {"runner": {"backend": "distributed",
                           "backend_options": {"transport": "http",
                                               "workers": 2,
                                               "auth_token": "spec-secret"}}}
        runner = build_runner(spec)
        assert isinstance(runner.backend, DistributedBackend)
        assert runner.backend.transport == "http"
        assert runner.backend.auth_token == "spec-secret"
        assert "spec-secret" not in repr(runner.backend)

    def test_spec_file_transport_rejects_auth_token(self):
        # The bugfix: a token on the file transport is a loud error, not
        # silently ignored — matching the orphan-backend_options policy.
        spec = {"runner": {"backend": "distributed",
                           "backend_options": {"auth_token": "pointless"}}}
        with pytest.raises(ValueError, match="auth_token applies"):
            build_runner(spec)

    def test_spec_http_transport_rejects_queue_dir(self, tmp_path):
        spec = {"runner": {"backend": "distributed",
                           "backend_options": {"transport": "http",
                                               "queue_dir": str(tmp_path)}}}
        with pytest.raises(ValueError, match="queue_dir applies"):
            build_runner(spec)

    def test_validation_matrix(self, tmp_path):
        with pytest.raises(ValueError, match="fixed port"):
            DistributedBackend(transport="http", workers=0)
        with pytest.raises(ValueError, match="fixed port"):
            DistributedBackend(transport="http", max_workers=4, port=18766)
        with pytest.raises(ValueError, match="non-empty"):
            DistributedBackend(transport="http", auth_token="")
        # Legal corners mirror the socket transport exactly.
        DistributedBackend(transport="http", workers=0, port=18767)
        DistributedBackend(transport="http", workers=0, max_workers=2)
        DistributedBackend(transport="http", auth_token="fine")

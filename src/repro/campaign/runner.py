"""Campaign execution: fan a set of scenario variants out over workers.

The runner executes each :class:`~repro.campaign.grid.GridVariant` in its own
:class:`~repro.sim.flight.FlightSimulation` and collects one
:class:`VariantOutcome` per variant.  Execution is embarrassingly parallel —
every variant carries its full configuration (including its seed) in the
pickled scenario, so results are identical whether the campaign runs serially
or on a process pool, and independent of completion order.

Three orthogonal concerns are layered here:

* **Backends** — *how* variants are mapped to outcomes is delegated to an
  :class:`~repro.campaign.backends.ExecutorBackend` (serial, process pool, or
  the distributed file-queue substrate).  ``mode``/``max_workers`` remain as
  the convenient policy knobs that pick between the built-in backends.
* **Caching** — with a :class:`~repro.store.CampaignStore` attached, every
  variant's content hash is looked up first and only misses are dispatched;
  completed flights are persisted as they complete — for backends that
  report completions out of order (process pool, distributed) the moment
  they finish, even when an earlier variant is still flying — so a killed
  campaign resumes from disk with nothing lost.  ``record_arrays=True``
  additionally captures each flight's trajectory and persists it via
  :meth:`~repro.store.CampaignStore.put_arrays`; warm runs then serve the
  arrays from the store without re-flying.
* **Fallback** — a variant that raises is captured as an outcome with an
  ``error`` traceback string; the rest of the campaign keeps running.  If
  the backend itself fails (no fork support, pickling failure, broken pool,
  dead distributed workers), the runner finishes the remaining variants
  serially — consulting the store first, so flights the failed backend
  already persisted are not re-flown — and records *why* in
  :attr:`CampaignResult.fallback_reason` instead of silently degrading.
"""

from __future__ import annotations

import functools
import inspect
import logging
import os
import time
import traceback
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from ..obs import SpanCollector, default_registry, emit, span
from ..sim.flight import FlightResult, run_scenario
from ..sim.scenario import FlightScenario
from .backends import ExecutorBackend, ProcessPoolBackend, SerialBackend
from .grid import RESERVED_AXIS_NAMES, GridVariant, ScenarioGrid
from .results import CampaignResult, VariantOutcome

if TYPE_CHECKING:
    from ..store import CampaignStore

logger = logging.getLogger(__name__)

__all__ = ["CampaignRunner", "run_campaign", "trajectory_arrays"]


def _summarise(variant: GridVariant, result: FlightResult) -> dict[str, Any]:
    """Build the per-variant summary dictionary shipped back to the parent.

    Summaries (not full results) cross the process boundary: they are small,
    cheap to pickle and enough for the aggregation layer.  ``recovery_latency``
    is the time from the first attack to the Simplex switch, the paper's
    "how fast does the defence react" quantity.
    """
    from ..analysis.export import result_to_dict

    summary = result_to_dict(result)
    attack_time = variant.scenario.first_attack_time()
    if attack_time is not None and summary["switch_time"] is not None:
        summary["recovery_latency"] = summary["switch_time"] - attack_time
    else:
        summary["recovery_latency"] = None
    return summary


def trajectory_arrays(result: FlightResult) -> dict[str, Any]:
    """Named trajectory arrays of one flight, shaped for ``put_arrays``.

    The keys mirror the telemetry CSV schema (see
    :func:`repro.analysis.export.trajectory_to_rows`, which inverts this):
    ``time`` (N,), ``position``/``setpoint``/``velocity`` (N, 3) NED [m],
    ``attitude`` (N, 3) roll/pitch/yaw [rad], ``active_source`` (N,) str,
    ``crashed`` (N,) bool.
    """
    import numpy as np

    recorder = result.recorder
    samples = recorder.samples
    return {
        "time": recorder.times(),
        "position": recorder.positions(),
        "setpoint": recorder.setpoints(),
        "velocity": np.array([sample.velocity for sample in samples]),
        "attitude": recorder.attitudes(),
        "active_source": np.array(recorder.sources()),
        "crashed": np.array([sample.crashed for sample in samples], dtype=bool),
    }


def _execute_variant(
    variant: GridVariant, record_arrays: bool = False
) -> VariantOutcome | tuple[VariantOutcome, dict[str, Any] | None]:
    """Run one variant, capturing any failure as data (module-level so
    process pools and queue workers can pickle it).

    With ``record_arrays`` the return value is ``(outcome, arrays)`` —
    trajectory arrays ride back to the parent alongside the summary so the
    runner can persist them (``None`` for failed flights).
    """
    start = time.perf_counter()
    arrays = None
    try:
        with span("campaign.variant"):
            result = run_scenario(variant.scenario)
        summary = _summarise(variant, result)
        if record_arrays:
            arrays = trajectory_arrays(result)
        error = None
    except Exception:
        summary = None
        error = traceback.format_exc()
    outcome = VariantOutcome(
        name=variant.name,
        axes=variant.axes,
        seed=variant.scenario.seed,
        summary=summary,
        error=error,
        wall_time=time.perf_counter() - start,
    )
    return (outcome, arrays) if record_arrays else outcome


def _split_result(raw: Any) -> tuple[VariantOutcome, dict[str, Any] | None]:
    """Normalise a backend result to ``(outcome, arrays)``.

    Fake/test backends fabricate bare :class:`VariantOutcome`s without going
    through the worker function, so both shapes must be accepted.
    """
    if isinstance(raw, tuple):
        outcome, arrays = raw
        return outcome, arrays
    return raw, None


def _as_variants(
    campaign: ScenarioGrid | Iterable[GridVariant | FlightScenario],
) -> list[GridVariant]:
    if isinstance(campaign, ScenarioGrid):
        return campaign.variants()
    variants: list[GridVariant] = []
    seen: set[str] = set()
    for entry in campaign:
        if isinstance(entry, FlightScenario):
            entry = GridVariant(name=entry.name, axes=(), scenario=entry)
        elif not isinstance(entry, GridVariant):
            raise TypeError(
                f"expected FlightScenario or GridVariant, got {type(entry).__name__}"
            )
        if entry.name in seen:
            raise ValueError(f"duplicate variant name {entry.name!r}")
        # Hand-built variants bypass ScenarioGrid.add_axis, so enforce its
        # guards here too: reserved names would be silently overwritten by
        # the summary fields in exports, and unhashable values would only
        # blow up in cell aggregation after the whole campaign has flown.
        for axis_name, axis_value in entry.axes:
            if axis_name in RESERVED_AXIS_NAMES:
                raise ValueError(
                    f"variant {entry.name!r} uses reserved axis name "
                    f"{axis_name!r} (it would collide with a summary-export "
                    "column)"
                )
            try:
                hash(axis_value)
            except TypeError:
                raise TypeError(
                    f"variant {entry.name!r} axis {axis_name!r} value "
                    f"{axis_value!r} is not hashable; cell aggregation "
                    "groups on axis values"
                ) from None
            if axis_name == "seed" and axis_value != entry.scenario.seed:
                # The summary's seed column reports the scenario's seed; a
                # declared seed axis that disagrees would silently vanish.
                raise ValueError(
                    f"variant {entry.name!r} declares seed axis value "
                    f"{axis_value!r} but its scenario flies with seed "
                    f"{entry.scenario.seed}"
                )
        seen.add(entry.name)
        variants.append(entry)
    return variants


@dataclass(frozen=True)
class CampaignRunner:
    """Executes a campaign of scenario variants.

    Attributes
    ----------
    max_workers:
        Process-pool size; ``None`` uses the CPU count (capped at the number
        of variants).  Ignored when an explicit ``backend`` is given.
    mode:
        ``"auto"`` picks the process pool when the machine has more than one
        core and the campaign more than one uncached variant; ``"parallel"``
        and ``"serial"`` force the choice.  Ignored when an explicit
        ``backend`` is given.
    backend:
        Explicit :class:`~repro.campaign.backends.ExecutorBackend`; overrides
        the ``mode``/``max_workers`` policy and is used unconditionally.
    store:
        Optional :class:`~repro.store.CampaignStore`.  When attached, cached
        outcomes are served without flying and fresh outcomes are persisted.
    record_arrays:
        Capture each flight's trajectory arrays and persist them alongside
        the summary cell (requires ``store``).  A cached summary whose
        arrays are missing or corrupt is re-flown so the warm store always
        serves both.
    telemetry:
        Assemble the :attr:`CampaignResult.telemetry` block (store deltas,
        span summaries, queue counters).  ``False`` leaves it ``None`` —
        the instrumentation itself stays on; use
        :func:`repro.obs.set_enabled` to silence that too.
    """

    max_workers: int | None = None
    mode: str = "auto"
    backend: ExecutorBackend | None = None
    store: "CampaignStore | None" = None
    record_arrays: bool = False
    telemetry: bool = True

    _MODES = ("auto", "parallel", "serial")

    def __post_init__(self) -> None:
        if self.mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if self.record_arrays and self.store is None:
            raise ValueError(
                "record_arrays requires a store: trajectory arrays are "
                "persisted via CampaignStore.put_arrays"
            )

    def run(
        self, campaign: ScenarioGrid | Iterable[GridVariant | FlightScenario]
    ) -> CampaignResult:
        """Execute every variant and return the aggregated campaign result.

        Outcome order always matches variant (grid-expansion) order, never
        completion order — with or without cache hits interleaved.
        """
        variants = _as_variants(campaign)
        start = time.perf_counter()
        store_before = (
            self.store.stats.as_dict() if self.store is not None else None
        )
        emit("campaign-start", "campaign.runner", variants=len(variants))
        logger.info("campaign starting: %d variant(s)", len(variants))

        # A per-run collector isolates this run's span summaries from other
        # campaigns in the same process (the default registry's histogram
        # keeps accumulating across runs, as a process-wide metric should).
        collector = SpanCollector()
        with collector:
            cached: dict[int, VariantOutcome] = {}
            if self.store is not None:
                with span("campaign.lookup"):
                    for index, variant in enumerate(variants):
                        hit = self._cached_outcome(variant)
                        if hit is not None:
                            cached[index] = hit
            to_run = [
                variant
                for index, variant in enumerate(variants)
                if index not in cached
            ]

            with span("campaign.execute"):
                (
                    flown, fallback_reason, scale_events,
                    backend_name, queue_stats,
                ) = self._execute(to_run)

        # Merge cache hits and fresh flights back into expansion order.
        merged: list[VariantOutcome] = []
        fresh = iter(flown)
        for index in range(len(variants)):
            merged.append(cached[index] if index in cached else next(fresh))

        # Count hits from the outcomes, not the pre-dispatch lookup: the
        # serial fallback may serve store cells the failed backend persisted.
        hits = sum(1 for outcome in merged if outcome.cached)
        variant_counter = default_registry().counter(
            "repro_campaign_variants_total",
            "Campaign variants by disposition (cached/flown/failed).",
        )
        wall_histogram = default_registry().histogram(
            "repro_variant_wall_seconds",
            "Wall time of individual flown variants.",
        )
        for outcome in merged:
            if outcome.cached:
                variant_counter.inc(status="cached")
            elif outcome.ok:
                variant_counter.inc(status="flown")
                wall_histogram.observe(outcome.wall_time)
            else:
                variant_counter.inc(status="failed")
                wall_histogram.observe(outcome.wall_time)

        wall_time = time.perf_counter() - start
        telemetry = None
        if self.telemetry:
            store_delta = None
            if store_before is not None:
                after = self.store.stats.as_dict()
                store_delta = {
                    key: after[key] - store_before[key] for key in after
                }
            telemetry = {
                "schema": 1,
                "backend": backend_name,
                "store": store_delta,
                "spans": collector.summaries(),
                "queue": queue_stats or None,
            }
        emit(
            "campaign-end", "campaign.runner",
            variants=len(variants),
            cache_hits=hits,
            wall_time_s=round(wall_time, 6),
            fallback=fallback_reason,
        )
        logger.info(
            "campaign finished: %d variant(s), %d cached, %.2fs",
            len(variants), hits, wall_time,
        )
        return CampaignResult(
            outcomes=tuple(merged),
            wall_time=wall_time,
            cache_hits=hits,
            cache_misses=len(variants) - hits if self.store is not None else 0,
            fallback_reason=fallback_reason,
            scale_events=scale_events,
            telemetry=telemetry,
        )

    # ------------------------------------------------------------------ internal --

    def _cached_outcome(self, variant: GridVariant) -> VariantOutcome | None:
        """Store lookup honouring the ``record_arrays`` policy: a summary
        cell without (valid) trajectory arrays — flown before
        ``record_arrays``, or a corrupt ``.npz`` — is treated as a miss and
        re-flown to backfill, so the warm store always serves both."""
        if self.store is None:
            return None
        hit = self.store.get(variant)
        if (
            hit is not None
            and self.record_arrays
            and not self.store.has_arrays(variant)
        ):
            return None
        return hit

    def select_backend(self, variants: Sequence[GridVariant]) -> ExecutorBackend:
        """Backend that will execute ``variants`` (explicit one wins)."""
        if self.backend is not None:
            return self.backend
        if self._use_parallel(variants):
            return ProcessPoolBackend(max_workers=self.max_workers)
        return SerialBackend()

    def _use_parallel(self, variants: Sequence[GridVariant]) -> bool:
        if self.mode == "serial" or len(variants) < 2:
            return False
        if self.max_workers == 1:
            # A one-worker pool pays spawn + pickling for zero concurrency.
            return False
        if self.mode == "parallel":
            return True
        return (os.cpu_count() or 1) > 1

    def _worker_fn(self):
        """The per-variant function shipped to the backend (picklable)."""
        if self.record_arrays:
            return functools.partial(_execute_variant, record_arrays=True)
        return _execute_variant

    @staticmethod
    def _supports_on_complete(backend: ExecutorBackend) -> bool:
        try:
            return "on_complete" in inspect.signature(backend.map).parameters
        except (TypeError, ValueError):
            return False

    def _execute(
        self, variants: Sequence[GridVariant]
    ) -> tuple[
        list[VariantOutcome],
        str | None,
        tuple[dict[str, Any], ...],
        str | None,
        dict[str, Any],
    ]:
        """Map the worker over ``variants``; on backend failure keep what
        completed, finish serially and report why.  Beyond the outcomes and
        fallback reason it returns the backend's autoscaling record, its
        name, and its work-queue counter snapshot (both empty/None when no
        variant had to fly or the backend records none)."""
        if not variants:
            return [], None, (), None, {}
        backend = self.select_backend(variants)
        fn = self._worker_fn()
        outcomes: list[VariantOutcome] = []
        persisted: set[int] = set()

        def _on_complete(index: int, raw: Any) -> None:
            # Completion-order persistence: a flight that finished while an
            # earlier variant is still flying reaches the store immediately,
            # so an interrupt (or dead coordinator) loses nothing.
            outcome, arrays = _split_result(raw)
            self._persist(variants[index], outcome, arrays)
            persisted.add(index)

        if self._supports_on_complete(backend):
            iterator = backend.map(fn, variants, on_complete=_on_complete)
        else:
            iterator = backend.map(fn, variants)
        try:
            for raw in iterator:
                outcome, arrays = _split_result(raw)
                outcomes.append(outcome)
                index = len(outcomes) - 1
                if index not in persisted:
                    self._persist(variants[index], outcome, arrays)
                emit(
                    "variant-complete", "campaign.runner",
                    variant=outcome.name,
                    ok=outcome.ok,
                    wall_time_s=round(outcome.wall_time, 6),
                )
        except Exception as exc:
            # Backend-level failure (fork unavailable, pickling, broken pool,
            # dead distributed workers): keep what already completed, finish
            # the rest serially, and record why the speedup is gone.  The
            # store is consulted first — completions the backend persisted
            # out of order (or a previous coordinator wrote) are not re-flown.
            reason = repr(exc)
            emit(
                "campaign-fallback", "campaign.runner",
                backend=backend.name,
                completed=len(outcomes),
                total=len(variants),
                reason=reason,
            )
            logger.warning(
                "backend %s failed after %d/%d variants; finishing serially",
                backend.name, len(outcomes), len(variants),
            )
            warnings.warn(
                f"campaign executor backend {backend.name!r} failed after "
                f"{len(outcomes)}/{len(variants)} variants ({reason}); "
                "finishing the remaining variants serially",
                RuntimeWarning,
                stacklevel=3,
            )
            with span("campaign.fallback"):
                for index in range(len(outcomes), len(variants)):
                    variant = variants[index]
                    outcome = self._cached_outcome(variant)
                    arrays = None
                    if outcome is None:
                        outcome, arrays = _split_result(fn(variant))
                    outcomes.append(outcome)
                    if index not in persisted:
                        self._persist(variant, outcome, arrays)
            return (
                outcomes, reason, self._scale_events(backend),
                backend.name, self._queue_stats(backend),
            )
        return (
            outcomes, None, self._scale_events(backend),
            backend.name, self._queue_stats(backend),
        )

    @staticmethod
    def _scale_events(backend: ExecutorBackend) -> tuple[dict[str, Any], ...]:
        """Autoscaling decisions the backend recorded during this run, if
        it records any (see ``DistributedBackend.scale_events``)."""
        return tuple(
            dict(event) for event in getattr(backend, "scale_events", ()) or ()
        )

    @staticmethod
    def _queue_stats(backend: ExecutorBackend) -> dict[str, Any]:
        """Work-queue counter snapshot the backend recorded during this run,
        if it records one (see ``DistributedBackend.queue_stats``)."""
        return dict(getattr(backend, "queue_stats", {}) or {})

    def _persist(
        self,
        variant: GridVariant,
        outcome: VariantOutcome,
        arrays: dict[str, Any] | None = None,
    ) -> None:
        """Best-effort store write: the store is a cache, never an authority,
        so an unwritable directory must not cost the campaign its results."""
        if self.store is None:
            return
        try:
            written = self.store.put(variant, outcome)
            if written and arrays is not None:
                self.store.put_arrays(variant, **arrays)
        except Exception as exc:
            # Any write failure (read-only dir, serialisation, a broken
            # custom store) is only a lost cache cell — it must neither be
            # misread as a backend failure nor abort the campaign.
            warnings.warn(
                f"campaign store write failed for {variant.name!r} "
                f"({exc!r}); continuing without caching this cell",
                RuntimeWarning,
                stacklevel=2,
            )


def run_campaign(
    campaign: ScenarioGrid | Iterable[GridVariant | FlightScenario],
    max_workers: int | None = None,
    mode: str = "auto",
    backend: ExecutorBackend | None = None,
    store: "CampaignStore | None" = None,
    record_arrays: bool = False,
    telemetry: bool = True,
) -> CampaignResult:
    """Convenience helper: run ``campaign`` with a fresh :class:`CampaignRunner`."""
    return CampaignRunner(
        max_workers=max_workers,
        mode=mode,
        backend=backend,
        store=store,
        record_arrays=record_arrays,
        telemetry=telemetry,
    ).run(campaign)

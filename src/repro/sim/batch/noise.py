"""Pre-generated sensor noise tables, bit-exact with the scalar sensors.

The scalar simulation draws sensor noise lazily, one sample at a time, from
four generators spawned off the scenario seed (see
:class:`~repro.sim.flight.FlightSimulation`).  The batch core cannot
interleave per-lane draws, so it pre-draws each lane's full noise streams up
front.  Equality holds because

* ``SeedSequence(seed).spawn(8)`` reproduces the scalar generator seeding,
* ``Generator.normal(0, sigma, size)`` equals ``standard_normal(size) * sigma``
  value-for-value and draw-for-draw, so one block ``standard_normal(n * k)``
  reproduces ``n`` successive ``k``-draw sampling calls, and
* the random-walk biases accumulate by sequential addition, which
  ``np.cumsum`` over the per-step increments replicates exactly.

Tables are sized for ``n`` samples; generating more than a flight consumes is
harmless (the prefix of the stream is unchanged), which lets timing classes
with slightly different sample counts share one table width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...sensors.barometer import BarometerParameters
from ...sensors.gps import GpsParameters
from ...sensors.imu import ImuParameters
from ...sensors.mocap import MocapParameters

__all__ = ["LaneNoise", "generate_lane_noise"]


@dataclass(frozen=True)
class LaneNoise:
    """One lane's pre-drawn sensor noise, indexed by per-sensor sample index."""

    imu_bias_gyro: np.ndarray  # (n_imu, 3) random-walk bias after sample i's step
    imu_bias_accel: np.ndarray  # (n_imu, 3)
    imu_noise_gyro: np.ndarray  # (n_imu, 3)
    imu_noise_accel: np.ndarray  # (n_imu, 3)
    baro_drift: np.ndarray  # (n_baro,)
    baro_noise: np.ndarray  # (n_baro,)
    gps_noise: np.ndarray  # (n_gps, 3) north/east/down position noise
    mocap_pos: np.ndarray  # (n_mocap, 3)
    mocap_yaw: np.ndarray  # (n_mocap,)


def generate_lane_noise(
    seed: int,
    n_imu: int,
    n_baro: int,
    n_gps: int,
    n_mocap: int,
    imu_rate_hz: float,
    baro_rate_hz: float,
) -> LaneNoise:
    """Draw every noise stream one scenario consumes, in scalar stream order."""
    seeds = np.random.SeedSequence(seed).spawn(8)
    imu_params = ImuParameters()
    baro_params = BarometerParameters()
    gps_params = GpsParameters()
    mocap_params = MocapParameters()

    # IMU: construction draws the two 3-axis bias initialisers, then every
    # sample draws walk_gyro(3), walk_accel(3), noise_gyro(3), noise_accel(3).
    imu_rng = np.random.default_rng(seeds[0])
    init_gyro = imu_rng.normal(0.0, imu_params.gyro_bias_sigma, size=3)
    init_accel = imu_rng.normal(0.0, imu_params.accel_bias_sigma, size=3)
    z = imu_rng.standard_normal(n_imu * 12).reshape(n_imu, 4, 3)
    imu_period = 1.0 / imu_rate_hz
    walk_gyro = (z[:, 0, :] * imu_params.gyro_bias_walk) * np.sqrt(imu_period)
    walk_accel = (z[:, 1, :] * imu_params.accel_bias_walk) * np.sqrt(imu_period)
    imu_bias_gyro = np.cumsum(np.vstack([init_gyro[None, :], walk_gyro]), axis=0)[1:]
    imu_bias_accel = np.cumsum(np.vstack([init_accel[None, :], walk_accel]), axis=0)[1:]
    imu_noise_gyro = z[:, 2, :] * imu_params.gyro_noise_sigma
    imu_noise_accel = z[:, 3, :] * imu_params.accel_noise_sigma

    # Barometer: each sample draws drift_walk(1), then noise(1).
    baro_rng = np.random.default_rng(seeds[1])
    zb = baro_rng.standard_normal(n_baro * 2).reshape(n_baro, 2)
    baro_period = 1.0 / baro_rate_hz
    drift_terms = (zb[:, 0] * baro_params.drift_walk_m) * np.sqrt(baro_period)
    baro_drift = np.cumsum(np.concatenate([[0.0], drift_terms]))[1:]
    baro_noise = zb[:, 1] * baro_params.noise_sigma_m

    # GPS: north(1), east(1), down(1), then 3 velocity draws (the velocity
    # reading is forwarded but never fused; the draws still advance the
    # stream, so they must be consumed here too).
    gps_rng = np.random.default_rng(seeds[2])
    zg = gps_rng.standard_normal(n_gps * 6).reshape(n_gps, 6)
    gps_noise = np.empty((n_gps, 3))
    gps_noise[:, 0] = zg[:, 0] * gps_params.horizontal_sigma_m
    gps_noise[:, 1] = zg[:, 1] * gps_params.horizontal_sigma_m
    gps_noise[:, 2] = zg[:, 2] * gps_params.vertical_sigma_m

    # Motion capture: position(3), then yaw(1).
    mocap_rng = np.random.default_rng(seeds[3])
    zm = mocap_rng.standard_normal(n_mocap * 4).reshape(n_mocap, 4)
    mocap_pos = zm[:, 0:3] * mocap_params.position_sigma_m
    mocap_yaw = zm[:, 3] * mocap_params.yaw_sigma_rad

    return LaneNoise(
        imu_bias_gyro=imu_bias_gyro,
        imu_bias_accel=imu_bias_accel,
        imu_noise_gyro=imu_noise_gyro,
        imu_noise_accel=imu_noise_accel,
        baro_drift=baro_drift,
        baro_noise=baro_noise,
        gps_noise=gps_noise,
        mocap_pos=mocap_pos,
        mocap_yaw=mocap_yaw,
    )

"""Batch-core throughput benchmark: flights/sec vs the scalar simulator.

Flies the campaign acceptance grid (2 MemGuard budgets x 2 attack starts x
3 seeds = 12 flights) three ways on one core:

* **scalar** — one :class:`~repro.sim.flight.FlightSimulation` per variant
  (the golden-reference baseline),
* **batch cold** — :func:`repro.sim.batch.run_batch` with an empty trace
  cache, paying the per-timing-class trace recording up front, and
* **batch warm** — the same batch with traces cached, the steady-state cost
  a campaign actually sees after its first repetition of a timing class.

The hard gate is a **>= 5x** warm speedup over scalar; the design target in
the issue is 10x flights/sec/core, which the replay reaches at larger batch
widths because its per-quantum cost is width-independent — the recorded
``projected_speedup_width_48`` column tracks that headroom.  Timing is
best-of-N to keep the gate robust against scheduler noise.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.report import format_table
from repro.campaign import ScenarioGrid
from repro.sim import FlightScenario
from repro.sim.batch import clear_trace_cache, run_batch
from repro.sim.flight import run_scenario

#: Per-flight duration [s]; matches the campaign throughput benchmark.
FLIGHT_DURATION = 3.0

#: Hard gate on the warm batch speedup over the scalar baseline.
SPEEDUP_GATE = 5.0

#: The issue's design target (reached at larger batch widths).
SPEEDUP_TARGET = 10.0

#: Timing repetitions; the fastest run is the least-noisy estimate.
REPEATS = 2


def acceptance_scenarios() -> list[FlightScenario]:
    grid = ScenarioGrid(
        FlightScenario.figure5(duration=FLIGHT_DURATION).with_name("batch-bench"),
        axes={
            "memguard_budget": [1500, 3000],
            "attack_start": [1.0, 2.0],
            "seed": [101, 102, 103],
        },
    )
    return [variant.scenario for variant in grid.variants()]


def _best_of(repeats: int, fn) -> tuple[float, object]:
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


@pytest.fixture(scope="module")
def throughput_runs():
    """Time scalar, cold-batch and warm-batch over the 12-variant grid."""
    scenarios = acceptance_scenarios()
    assert len(scenarios) == 12

    scalar_wall, scalar_results = _best_of(
        1, lambda: [run_scenario(s) for s in scenarios]
    )

    clear_trace_cache()
    cold_start = time.perf_counter()
    cold_results = run_batch(scenarios)
    cold_wall = time.perf_counter() - cold_start

    warm_wall, warm_results = _best_of(REPEATS, lambda: run_batch(scenarios))
    return scenarios, scalar_wall, cold_wall, warm_wall, scalar_results, warm_results


def test_batch_throughput_report(throughput_runs, report):
    scenarios, scalar_wall, cold_wall, warm_wall, scalar_results, warm_results = (
        throughput_runs
    )
    flights = len(scenarios)

    # The grid's verdicts must survive vectorisation before speed counts.
    for scalar, batch in zip(scalar_results, warm_results):
        assert batch.crashed == scalar.crashed
        assert batch.switch_time == scalar.switch_time
        assert len(batch.violations) == len(scalar.violations)

    warm_speedup = scalar_wall / warm_wall if warm_wall else 0.0
    cold_speedup = scalar_wall / cold_wall if cold_wall else 0.0
    # The replay's per-quantum cost is width-independent: quadrupling the
    # batch width divides the per-flight replay share by ~4 while the
    # scalar baseline scales linearly.  Project that headroom instead of
    # flying a 48-wide grid in the benchmark.
    projected_48 = (
        (scalar_wall / flights) / (warm_wall / (flights * 4)) if warm_wall else 0.0
    )

    rows = [
        ["scalar", f"{scalar_wall:.2f} s", f"{flights / scalar_wall:.2f}", "1.00x"],
        [
            "batch (cold)",
            f"{cold_wall:.2f} s",
            f"{flights / cold_wall:.2f}",
            f"{cold_speedup:.2f}x",
        ],
        [
            "batch (warm)",
            f"{warm_wall:.2f} s",
            f"{flights / warm_wall:.2f}",
            f"{warm_speedup:.2f}x",
        ],
    ]
    text = format_table(
        ["Mode", "Wall time", "Flights/s", "Speedup"],
        rows,
        title=(
            f"Batch core throughput: {flights} x {FLIGHT_DURATION:.0f} s flights "
            f"on 1 core (gate >= {SPEEDUP_GATE:.0f}x warm, target "
            f"{SPEEDUP_TARGET:.0f}x, projected {projected_48:.1f}x at width 48)"
        ),
    )
    report("batch_throughput", text, data={
        "flights": flights,
        "batch_width": flights,
        "flight_duration_s": FLIGHT_DURATION,
        "scalar_wall_s": round(scalar_wall, 3),
        "batch_cold_wall_s": round(cold_wall, 3),
        "batch_warm_wall_s": round(warm_wall, 3),
        "warm_speedup": round(warm_speedup, 3),
        "cold_speedup": round(cold_speedup, 3),
        "projected_speedup_width_48": round(projected_48, 3),
        "speedup_gate": SPEEDUP_GATE,
        "speedup_target": SPEEDUP_TARGET,
    })


def test_warm_speedup_gate(throughput_runs):
    """Hard >= 5x gate, asserted on CI too.

    Unlike the process-pool speedup (which a contended shared runner can
    erase entirely), the batch win is algorithmic — fewer Python-level
    operations, not more cores — so noise shrinks both sides of the ratio
    and the 5x floor holds with margin (measured ~7.5x at width 12).  The
    10x design target is recorded in the JSON, not gated.
    """
    _, scalar_wall, _, warm_wall, _, _ = throughput_runs
    warm_speedup = scalar_wall / warm_wall if warm_wall else 0.0
    assert warm_speedup >= SPEEDUP_GATE, (
        f"warm batch only {warm_speedup:.2f}x faster than scalar "
        f"(gate {SPEEDUP_GATE}x)"
    )

"""Executor backends: how a campaign's variants are mapped to outcomes.

:class:`~repro.campaign.runner.CampaignRunner` is policy (ordering, caching,
fallback); an :class:`ExecutorBackend` is mechanism.  A backend maps a pure
worker function over variants and yields the results **in input order** —
nothing about grids, stores or summaries leaks into it, so alternative
execution substrates (a cluster scheduler, a batch queue) only have to
implement :meth:`ExecutorBackend.map`.

Backends must yield results as they become available (lazily) rather than
collecting them first: the runner's fallback logic keeps every outcome that
was produced before a mid-campaign pool failure.  Backends whose ``map``
additionally accepts an ``on_complete(index, result)`` keyword invoke it the
moment each item finishes, **in completion order** — the runner uses it to
persist flights that completed but cannot be yielded yet because an earlier
item is still running, so a killed campaign loses nothing that finished.
"""

from __future__ import annotations

import functools
import logging
import os
import shutil
import subprocess
import sys
import tempfile
import time
import uuid
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Protocol, Sequence, runtime_checkable

from ..obs import default_registry, emit
from .workqueue import (
    AUTH_TOKEN_ENV,
    FileWorkQueue,
    WorkQueue,
    resolve_auth_token,
)

logger = logging.getLogger(__name__)

__all__ = [
    "ExecutorBackend",
    "SerialBackend",
    "BatchBackend",
    "ProcessPoolBackend",
    "DistributedBackend",
    "ServiceBackend",
    "get_backend",
    "spawn_worker",
]

#: Completion-order callback: ``on_complete(input_index, result)``.
CompletionCallback = Callable[[int, Any], None]


def spawn_worker(
    worker_args: list[str],
    transport: str = "file",
    auth_token: str | None = None,
    lease_timeout: float = 30.0,
    poll_interval: float = 0.05,
) -> subprocess.Popen:
    """Spawn one ``python -m repro.campaign.worker`` process.

    Shared by the single-campaign :class:`DistributedBackend` and the
    persistent :class:`~repro.campaign.service.CampaignService` fleet, so
    the careful parts are written once: whatever is importable here is made
    importable in the worker (task payloads reference functions by module
    path), and the shared secret travels via the environment — never argv,
    which is world-readable in process listings.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(entry for entry in sys.path if entry)
    if auth_token is not None:
        env[AUTH_TOKEN_ENV] = auth_token
    default_registry().counter(
        "repro_worker_spawns_total",
        "Worker processes spawned by distributed coordinators.",
    ).inc()
    emit("worker-spawn", "campaign.backends", transport=transport)
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.campaign.worker",
            *worker_args,
            "--lease-timeout",
            str(lease_timeout),
            "--poll",
            str(poll_interval),
        ],
        env=env,
    )


@runtime_checkable
class ExecutorBackend(Protocol):
    """Maps a worker function over items, yielding results in input order."""

    #: Short identifier used in reports and CLI specs.
    name: str

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Any]:  # pragma: no cover - protocol signature
        ...


@dataclass(frozen=True)
class SerialBackend:
    """In-process, one-at-a-time execution (also the fallback substrate)."""

    name = "serial"

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> Iterator[Any]:
        for item in items:
            yield fn(item)


@dataclass(frozen=True)
class BatchBackend:
    """Vectorised in-process execution over the structure-of-arrays core.

    Instead of flying one :class:`~repro.sim.flight.FlightSimulation` per
    variant, the whole campaign is handed to :func:`repro.sim.batch.run_batch`,
    which steps every scenario in lockstep with array operations and amortises
    one event-trace compile across all scenarios that share a timing class
    (see :mod:`repro.sim.batch`).

    The backend only understands the campaign runner's own worker function —
    it inspects ``fn`` for :func:`~repro.campaign.runner._execute_variant`
    (bare or wrapped in a ``record_arrays`` partial) and requires every item
    to carry a ``.scenario``.  Anything else (custom workers in tests,
    ad-hoc map calls) is executed serially, so selecting ``--backend batch``
    is always safe even for workloads the batch core cannot express.

    Error handling is coarser than the scalar path's per-variant capture: a
    failure anywhere in the batch propagates out of :meth:`map` as a backend
    failure, and the runner's fallback finishes the campaign serially —
    restoring per-variant tracebacks at scalar speed.
    """

    name = "batch"

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        on_complete: CompletionCallback | None = None,
    ) -> Iterator[Any]:
        record_arrays = self._runner_worker_mode(fn)
        if record_arrays is None or not all(
            hasattr(item, "scenario") for item in items
        ):
            for index, item in enumerate(items):
                result = fn(item)
                if on_complete is not None:
                    on_complete(index, result)
                yield result
            return
        yield from self._map_batched(items, record_arrays, on_complete)

    @staticmethod
    def _runner_worker_mode(fn: Callable[[Any], Any]) -> bool | None:
        """``record_arrays`` flag if ``fn`` is the runner's worker, else None."""
        from .runner import _execute_variant

        target: Any = fn
        record_arrays = False
        if isinstance(target, functools.partial):
            record_arrays = bool(target.keywords.get("record_arrays", False))
            target = target.func
        return record_arrays if target is _execute_variant else None

    @staticmethod
    def _map_batched(
        items: Sequence[Any],
        record_arrays: bool,
        on_complete: CompletionCallback | None,
    ) -> Iterator[Any]:
        from ..sim.batch import run_batch
        from .results import VariantOutcome
        from .runner import _summarise, trajectory_arrays

        start = time.perf_counter()
        results = run_batch([item.scenario for item in items])
        # Lockstep flights have no individual wall time; report each
        # variant's fair share so campaign totals still add up.
        share = (time.perf_counter() - start) / max(1, len(items))
        for index, (variant, result) in enumerate(zip(items, results)):
            outcome = VariantOutcome(
                name=variant.name,
                axes=variant.axes,
                seed=variant.scenario.seed,
                summary=_summarise(variant, result),
                error=None,
                wall_time=share,
            )
            raw: Any = outcome
            if record_arrays:
                raw = (outcome, trajectory_arrays(result))
            if on_complete is not None:
                on_complete(index, raw)
            yield raw


@dataclass(frozen=True)
class ProcessPoolBackend:
    """``concurrent.futures.ProcessPoolExecutor`` fan-out.

    Attributes
    ----------
    max_workers:
        Pool size; ``None`` uses the CPU count.  The effective size is
        additionally capped at the number of items.
    """

    max_workers: int | None = None

    name = "process-pool"

    def __post_init__(self) -> None:
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        on_complete: CompletionCallback | None = None,
    ) -> Iterator[Any]:
        items = list(items)
        if not items:
            return
        workers = min(self.max_workers or os.cpu_count() or 1, len(items))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if on_complete is None:
                yield from pool.map(fn, items)
                return
            futures = [pool.submit(fn, item) for item in items]
            index_of = {future: index for index, future in enumerate(futures)}
            pending = set(futures)
            next_index = 0
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                # Report completions immediately (completion order) so the
                # caller can persist them; an interrupt between completions
                # then loses nothing that already ran.
                for future in sorted(done, key=index_of.__getitem__):
                    on_complete(index_of[future], future.result())
                while next_index < len(futures) and futures[next_index].done():
                    yield futures[next_index].result()
                    next_index += 1
            while next_index < len(futures):
                yield futures[next_index].result()
                next_index += 1


@dataclass(frozen=True)
class DistributedBackend:
    """Work-queue executor: a coordinator plus N worker *processes*.

    The coordinator serialises every item into a
    :class:`~repro.campaign.workqueue.WorkQueue`, spawns ``workers`` local
    worker processes (``python -m repro.campaign.worker``), and polls for
    results.  Two transports implement the queue protocol:

    * ``transport="file"`` — a shared
      :class:`~repro.campaign.workqueue.FileWorkQueue` directory; additional
      workers may attach from anywhere that shares it (other shells,
      containers, machines on a network filesystem) — pass ``queue_dir`` and
      ``workers=0`` to bring your own fleet.
    * ``transport="socket"`` — a coordinator-hosted
      :class:`~repro.campaign.transport.SocketWorkQueue` TCP server (JSON
      lines, see :mod:`repro.campaign.transport`); workers attach with
      ``--connect host:port`` from any host that can reach the port, no
      shared filesystem required.
    * ``transport="http"`` — a coordinator-hosted
      :class:`~repro.campaign.transport_http.HttpWorkQueue` HTTP/JSON
      server (one POST per queue operation, see
      :mod:`repro.campaign.transport_http`); workers attach with
      ``--connect-http URL`` through any reverse proxy or load balancer
      that can forward a POST.

    Authentication: both network transports accept a shared-secret
    ``auth_token`` (explicit, or from ``$REPRO_CAMPAIGN_AUTH_TOKEN``);
    workers must present it on every request or are rejected with a
    distinct error.  The coordinator hands the token to spawned workers
    through the environment — never the command line — and the token is
    excluded from the backend's ``repr``, logs and results.  The file
    transport has no authentication layer; configuring a token there is
    rejected loudly rather than silently ignored.

    Fault tolerance: workers heartbeat their lease every quarter of
    ``lease_timeout``; a worker that dies mid-task stops heartbeating, the
    coordinator re-queues the task, and another worker picks it up.  Results
    arrive out of order and are yielded in input order; ``on_complete`` fires
    the moment each item finishes so the runner can persist it immediately.

    Autoscaling: with ``max_workers`` set, the coordinator watches the queue
    backlog and grows the local fleet from ``workers`` up to ``max_workers``
    processes while tasks are pending, then issues *retire credits* so idle
    workers exit once the backlog drains.  Scale decisions are appended to
    :attr:`scale_events` (surfaced on
    :attr:`~repro.campaign.results.CampaignResult.scale_events`) and logged
    on the ``repro.campaign`` logger.

    Attributes
    ----------
    workers:
        Local worker processes to spawn up front (``0`` = start none; then
        either autoscaling spawns them on backlog, or an external fleet
        attaches via ``queue_dir``/``port``).
    queue_dir:
        File transport only: shared queue directory; ``None`` creates (and
        removes) a temporary one, which confines the campaign to local
        spawned workers.
    lease_timeout:
        Seconds without a heartbeat before a claimed task is re-issued.
        Must exceed the slowest single flight's heartbeat gap (the heartbeat
        runs on a thread, so only a hard worker death stops it).
    poll_interval:
        Coordinator/worker polling period [s].
    transport:
        ``"file"``, ``"socket"`` or ``"http"``.
    host / port:
        Network transports only: server bind address.  ``port=0`` picks an
        ephemeral port (fine for spawned workers, who are told the real
        port; an external fleet needs a fixed one).
    auth_token:
        Network transports only: shared secret workers must present on
        every request; ``None`` falls back to ``$REPRO_CAMPAIGN_AUTH_TOKEN``
        (unset = authentication disabled).  Rejected with the file
        transport, which has no authentication layer.
    max_workers:
        Autoscale ceiling for locally spawned workers; ``None`` disables
        autoscaling (the fleet stays at ``workers``).
    """

    workers: int = 2
    queue_dir: str | None = None
    lease_timeout: float = 30.0
    poll_interval: float = 0.05
    transport: str = "file"
    host: str = "127.0.0.1"
    port: int = 0
    #: Shared secret for the network transports; repr=False keeps it out of
    #: dataclass reprs (and thereby logs, warnings and failure reports).
    auth_token: str | None = field(default=None, repr=False)
    max_workers: int | None = None
    #: Scale decisions of the most recent ``map`` call, in order: dicts with
    #: ``event`` ("scale-up" / "scale-down"), ``workers`` (alive after),
    #: ``backlog`` and ``elapsed`` [s] since the campaign started.
    scale_events: list = field(default_factory=list, compare=False, repr=False)
    #: Queue telemetry of the most recent ``map`` call: the transport's
    #: counter snapshot (claims, completions, lease re-issues, ...) plus
    #: ``pending_peak``.  Surfaced as ``CampaignResult.telemetry["queue"]``.
    queue_stats: dict = field(default_factory=dict, compare=False, repr=False)

    name = "distributed"

    _TRANSPORTS = ("file", "socket", "http")
    _NETWORK_TRANSPORTS = ("socket", "http")

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.transport not in self._TRANSPORTS:
            raise ValueError(
                f"transport must be one of {self._TRANSPORTS}, "
                f"got {self.transport!r}"
            )
        if self.transport in self._NETWORK_TRANSPORTS and self.queue_dir is not None:
            raise ValueError(
                "queue_dir applies to the file transport only; the "
                f"{self.transport} transport shares nothing but the "
                "coordinator's address"
            )
        if self.transport == "file":
            if self.port != 0:
                raise ValueError(
                    "port applies to the network transports (socket/http) only"
                )
            if self.auth_token is not None:
                # Matches the orphan-backend_options policy: an option that
                # cannot take effect is a loud error, never silently
                # dropped — a token the operator believes protects the
                # campaign must not be discarded by a transport that has
                # no authentication layer.
                raise ValueError(
                    "auth_token applies to the network transports "
                    "(socket/http) only; the file transport has no "
                    "authentication — remove the token or switch transport"
                )
        if self.auth_token is not None and not self.auth_token:
            raise ValueError("auth_token must be a non-empty string")
        if self.max_workers is not None:
            if self.max_workers < 1:
                raise ValueError("max_workers must be at least 1")
            if self.max_workers < self.workers:
                raise ValueError("max_workers must be >= workers")
            # Autoscaling sizes a fleet the coordinator can *count* — its
            # own spawns.  With an attachment point for external workers
            # the arithmetic breaks: retire credits derived from the local
            # surplus would be consumed by (and permanently dismiss)
            # external workers the coordinator cannot respawn.
            if self.queue_dir is not None:
                raise ValueError(
                    "autoscaling (max_workers) manages coordinator-spawned "
                    "workers and cannot be combined with an external-fleet "
                    "queue_dir (retire credits would dismiss external "
                    "workers)"
                )
            if self.port != 0:
                raise ValueError(
                    "autoscaling (max_workers) manages coordinator-spawned "
                    "workers and cannot be combined with a fixed port "
                    "(externally attached workers would consume its retire "
                    "credits)"
                )
        elif self.workers == 0:
            # Nothing would ever execute: no initial fleet, no autoscaler.
            if self.transport == "file" and self.queue_dir is None:
                raise ValueError(
                    "workers=0 requires an explicit queue_dir for external "
                    "workers to attach to (or max_workers for autoscaling)"
                )
            if self.transport in self._NETWORK_TRANSPORTS and self.port == 0:
                raise ValueError(
                    f"workers=0 on the {self.transport} transport requires "
                    "a fixed port for external workers to connect to (or "
                    "max_workers for autoscaling)"
                )
        if self.lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        on_complete: CompletionCallback | None = None,
    ) -> Iterator[Any]:
        items = list(items)
        if not items:
            return
        del self.scale_events[:]  # events describe the current map call only
        self.queue_stats.clear()
        # A per-run id namespaces this campaign's tasks and results: a
        # worker of a previous killed run finishing late (on a reused
        # directory or port) answers under the old id and is ignored by
        # collect().
        run_id = f"r{uuid.uuid4().hex[:12]}"
        if self.transport in self._NETWORK_TRANSPORTS:
            yield from self._map_network(fn, items, on_complete, run_id)
        else:
            yield from self._map_file(fn, items, on_complete, run_id)

    def _map_file(
        self,
        fn: Callable[[Any], Any],
        items: list[Any],
        on_complete: CompletionCallback | None,
        run_id: str,
    ) -> Iterator[Any]:
        if resolve_auth_token(self.auth_token) is not None:
            # An explicit token was already rejected in __post_init__, so
            # this is the environment variable.  A globally exported secret
            # must not hard-fail unrelated file campaigns, but the operator
            # still deserves to know it protects nothing here.
            warnings.warn(
                "REPRO_CAMPAIGN_AUTH_TOKEN is set, but the file transport "
                "has no authentication — the campaign runs unauthenticated "
                "(use transport=\"socket\" or \"http\" for auth)",
                RuntimeWarning,
                stacklevel=3,
            )
        owns_dir = self.queue_dir is None
        root = (
            Path(tempfile.mkdtemp(prefix="repro-campaign-queue-"))
            if owns_dir
            else Path(self.queue_dir)
        )
        queue = FileWorkQueue(root, run_id=run_id)
        worker_args = [str(root)]
        processes: list[subprocess.Popen] = []
        try:
            # A queue directory hosts one campaign at a time: purge stale
            # tasks/results/stop from a previous run of an explicit
            # queue_dir before enqueueing, or old result files would be
            # collected as this campaign's outcomes.
            queue.reset()
            for index, item in enumerate(items):
                queue.enqueue(index, (fn, item))
            processes = [
                self._spawn_worker(worker_args) for _ in range(self.workers)
            ]
            yield from self._drain(
                queue, len(items), processes, on_complete, worker_args
            )
        finally:
            queue.request_stop()
            self._reap(processes)
            self.queue_stats.update(queue.stats_snapshot())
            if owns_dir:
                shutil.rmtree(root, ignore_errors=True)

    def _map_network(
        self,
        fn: Callable[[Any], Any],
        items: list[Any],
        on_complete: CompletionCallback | None,
        run_id: str,
    ) -> Iterator[Any]:
        token = resolve_auth_token(self.auth_token)
        if self.transport == "http":
            from .transport_http import HttpWorkQueue as queue_class
        else:
            from .transport import SocketWorkQueue as queue_class

        queue = queue_class(
            self.host, self.port, run_id=run_id, auth_token=token
        )
        # Workers must *connect* to the address the server *bound*; a
        # wildcard bind is reachable locally via loopback.
        if self.transport == "http":
            worker_args = ["--connect-http", queue.url]
        else:
            bound_host, bound_port = queue.address
            connect_host = (
                "127.0.0.1" if bound_host in ("", "0.0.0.0", "::") else bound_host
            )
            worker_args = ["--connect", f"{connect_host}:{bound_port}"]
        processes: list[subprocess.Popen] = []
        try:
            for index, item in enumerate(items):
                queue.enqueue(index, (fn, item))
            processes = [
                self._spawn_worker(worker_args) for _ in range(self.workers)
            ]
            yield from self._drain(
                queue, len(items), processes, on_complete, worker_args
            )
        finally:
            queue.request_stop()
            # Reap *before* closing the server: spawned workers poll the
            # stop sentinel over the wire and exit cleanly while it still
            # answers.
            self._reap(processes)
            self.queue_stats.update(queue.stats_snapshot())
            if self.port != 0:
                # A fixed port means an external fleet may be attached, and
                # the server is the only place it can observe the stop
                # sentinel (unlike a stop *file*, which persists).  Linger
                # so idle workers poll it and exit now, not via the much
                # longer orphan timeout.  External workers choose their own
                # --poll, so the window is generous; one polling slower
                # than ~2 s still has the orphan timeout as backstop.
                time.sleep(max(2.0, 4 * self.poll_interval))
            queue.close()

    # ------------------------------------------------------------------ internal --

    def _spawn_worker(self, worker_args: list[str]) -> subprocess.Popen:
        token = None
        if self.transport in self._NETWORK_TRANSPORTS:
            token = resolve_auth_token(self.auth_token)
        return spawn_worker(
            worker_args,
            transport=self.transport,
            auth_token=token,
            lease_timeout=self.lease_timeout,
            poll_interval=self.poll_interval,
        )

    def _record_scale(
        self, event: str, workers: int, backlog: int, elapsed: float
    ) -> None:
        entry = {
            "event": event,
            "workers": workers,
            "backlog": backlog,
            "elapsed": round(elapsed, 3),
        }
        self.scale_events.append(entry)
        default_registry().gauge(
            "repro_workers_alive",
            "Live coordinator-spawned workers after the last scale event.",
        ).set(workers)
        emit(event, "campaign.backends",
             workers=workers, backlog=backlog, elapsed=entry["elapsed"])
        logger.info(
            "distributed autoscaler %s: %d worker(s), backlog %d (t=%.1fs)",
            event, workers, backlog, elapsed,
        )

    def _autoscale(
        self,
        queue: WorkQueue,
        processes: list[subprocess.Popen],
        outstanding: int,
        worker_args: list[str],
        elapsed: float,
        alive_now: int,
        alive_reported: int | None,
    ) -> int:
        """One autoscaler tick; returns the live worker count after it.

        Scale up: while tasks are pending and the fleet is below
        ``max_workers``, spawn one worker per pending task.  Scale down:
        grant exactly as many retire credits as there are workers beyond
        the number of not-yet-finished items — only *idle* workers consume
        a credit, so a worker mid-flight is never dismissed.  A shrink
        (retired *or* crashed workers) is recorded against the count the
        previous tick reported.
        """
        alive = alive_now
        backlog = queue.pending_count()
        ceiling = self.max_workers or 0
        if backlog > 0 and alive < ceiling:
            for _ in range(min(backlog, ceiling - alive)):
                processes.append(self._spawn_worker(worker_args))
                alive += 1
            self._record_scale("scale-up", alive, backlog, elapsed)
        if alive_reported is not None and alive < alive_reported:
            self._record_scale("scale-down", alive, backlog, elapsed)
        queue.set_retire_credits(max(0, alive - outstanding))
        return alive

    def _drain(
        self,
        queue: WorkQueue,
        total: int,
        processes: list[subprocess.Popen],
        on_complete: CompletionCallback | None,
        worker_args: list[str],
    ) -> Iterator[Any]:
        seen: set[int] = set()
        ready: dict[int, Any] = {}
        next_index = 0
        start = time.monotonic()
        # Everything is enqueued before the first drain tick, so the depth
        # here is the true high-water mark; housekeeping re-samples anyway
        # in case an external fleet re-queues work.
        self.queue_stats["pending_peak"] = queue.pending_count()
        # Housekeeping (coordinator heartbeat, lease-expiry scan) has
        # lease-timeout granularity; doing it every poll tick would hammer
        # a network filesystem with metadata traffic for nothing.  Only
        # result collection runs at the fast poll.  The autoscaler runs on
        # its own, faster cadence — it is a handful of cheap probes and
        # scale-up latency is user-visible.
        housekeeping_period = self.lease_timeout / 4.0
        autoscale_period = max(self.poll_interval, min(housekeeping_period, 0.5))
        last_housekeeping = float("-inf")
        last_autoscale = float("-inf")
        alive: int | None = None
        # Crash-loop guard for the autoscaler: respawn waves that start from
        # an all-dead fleet must make progress, or we are re-spawning
        # workers into the same fatal condition forever.
        dead_waves = 0
        seen_at_last_wave = -1
        while next_index < total:
            now = time.monotonic()
            if now - last_housekeeping >= housekeeping_period:
                last_housekeeping = now
                # Heartbeat for the workers' orphan detection: a coordinator
                # killed without cleanup stops touching this, and idle
                # workers exit on their own instead of polling forever.
                queue.touch_coordinator()
                queue.reclaim_expired(self.lease_timeout)
                self.queue_stats["pending_peak"] = max(
                    self.queue_stats["pending_peak"], queue.pending_count()
                )
            if self.max_workers is not None and now - last_autoscale >= autoscale_period:
                last_autoscale = now
                # Aliveness is sampled *before* the tick: a wave is "the
                # fleet was entirely dead and we spawned into that", which
                # must be visible in the same tick the death is noticed.
                alive_now = sum(
                    1 for proc in processes if proc.poll() is None
                )
                new_alive = self._autoscale(
                    queue, processes, total - len(seen), worker_args,
                    now - start, alive_now, alive,
                )
                was_dead = alive_now == 0
                alive = new_alive
                if was_dead and alive > 0:
                    if len(seen) == seen_at_last_wave:
                        dead_waves += 1
                    else:
                        dead_waves = 1
                        seen_at_last_wave = len(seen)
                    if dead_waves > 3:
                        emit(
                            "crash-loop", "campaign.backends",
                            waves=dead_waves,
                            outstanding=total - len(seen),
                            total=total,
                        )
                        raise RuntimeError(
                            "distributed autoscaler respawned an all-dead "
                            f"fleet {dead_waves} times without progress "
                            f"({total - len(seen)} of {total} items "
                            "outstanding)"
                        )
            fresh = queue.collect(seen)
            for index in sorted(fresh):
                status, value = fresh[index]
                seen.add(index)
                if status != "ok":
                    raise RuntimeError(
                        f"distributed worker failed on item {index}:\n{value}"
                    )
                ready[index] = value
                if on_complete is not None:
                    on_complete(index, value)
            while next_index in ready:
                yield ready.pop(next_index)
                next_index += 1
            if next_index >= total:
                return
            if (
                self.max_workers is None
                and processes
                and all(proc.poll() is not None for proc in processes)
            ):
                # Every worker this coordinator spawned is gone.  External
                # workers could still drain the queue, but with spawned
                # workers dead the far likelier outcome is a hang — fail
                # loudly and let the runner fall back to serial.  (With
                # autoscaling the fleet is respawned instead, guarded by
                # the crash-loop counter above.)
                raise RuntimeError(
                    f"all {len(processes)} distributed workers exited with "
                    f"{total - len(seen)} of {total} items outstanding"
                )
            time.sleep(self.poll_interval)

    def _reap(self, processes: list[subprocess.Popen]) -> None:
        deadline = time.time() + max(1.0, 4 * self.poll_interval)
        for proc in processes:
            try:
                proc.wait(timeout=max(0.0, deadline - time.time()))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()


@dataclass(frozen=True)
class ServiceBackend:
    """Client-mode executor: rent a remote campaign service's worker fleet.

    Where :class:`DistributedBackend` *owns* a coordinator (starts a queue
    server, spawns workers, tears both down), this backend owns nothing: it
    submits the campaign's tasks to a persistent
    :class:`~repro.campaign.service.CampaignService` daemon as one hosted
    *run* (``POST /runs`` with pickled task payloads), polls that run's
    results, and deletes the run when done.  The
    :class:`~repro.campaign.runner.CampaignRunner` — and with it store
    caching, ordering and fallback policy — stays entirely client-side;
    only execution is remote.  Select it with
    ``--backend service --connect-http URL``.

    The task function must be importable on the daemon's workers (the usual
    work-queue constraint), and the daemon must speak the same protocol
    version — a mismatch fails fast at submit time with a clear message,
    as does a daemon that is actually a plain single-campaign coordinator.

    Attributes
    ----------
    url:
        Service base URL (``http[s]://host:port[/prefix]``).
    auth_token:
        Shared secret (``None`` falls back to
        ``$REPRO_CAMPAIGN_AUTH_TOKEN``); excluded from ``repr`` and logs.
    poll_interval:
        Result polling period [s].
    timeout:
        Per-request HTTP timeout [s].
    label:
        Optional run label shown in the daemon's ``GET /runs`` registry.
    """

    url: str = ""
    auth_token: str | None = field(default=None, repr=False)
    poll_interval: float = 0.2
    timeout: float = 10.0
    label: str | None = None

    name = "service"

    def __post_init__(self) -> None:
        if not self.url:
            raise ValueError(
                "ServiceBackend needs the service base URL (--connect-http "
                "URL, or backend_options = {url = \"http://...\"})"
            )
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.auth_token is not None and not self.auth_token:
            raise ValueError("auth_token must be a non-empty string")

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        on_complete: CompletionCallback | None = None,
    ) -> Iterator[Any]:
        from .client import ServiceClient

        items = list(items)
        if not items:
            return
        client = ServiceClient(
            self.url,
            auth_token=resolve_auth_token(self.auth_token),
            timeout=self.timeout,
        )
        run_id = client.submit_tasks(
            [(fn, item) for item in items],
            label=self.label or "service-backend",
        )
        try:
            yield from self._drain(client, run_id, len(items), on_complete)
        finally:
            # Free the daemon-side queue state whether we finished, failed
            # over to serial, or were interrupted; the registry record
            # survives for post-mortem status queries.
            client.cancel(run_id, missing_ok=True)

    def _drain(
        self,
        client: Any,
        run_id: str,
        total: int,
        on_complete: CompletionCallback | None,
    ) -> Iterator[Any]:
        seen: set[int] = set()
        ready: dict[int, Any] = {}
        next_index = 0
        while next_index < total:
            state, results = client.task_results(run_id)
            if state in ("cancelled", "failed"):
                raise RuntimeError(
                    f"service run {run_id} ended as {state} with "
                    f"{total - len(seen)} of {total} items outstanding"
                )
            for index in sorted(results):
                if index in seen:
                    continue
                status, value = results[index]
                seen.add(index)
                if status != "ok":
                    raise RuntimeError(
                        f"service worker failed on item {index}:\n{value}"
                    )
                ready[index] = value
                if on_complete is not None:
                    on_complete(index, value)
            while next_index in ready:
                yield ready.pop(next_index)
                next_index += 1
            if next_index >= total:
                return
            time.sleep(self.poll_interval)


#: Registry of backend factories selectable by name (CLI / spec files).
_BACKENDS: dict[str, Callable[..., ExecutorBackend]] = {
    "serial": SerialBackend,
    "batch": BatchBackend,
    "process-pool": ProcessPoolBackend,
    "distributed": DistributedBackend,
    "service": ServiceBackend,
}


def get_backend(name: str, **options: Any) -> ExecutorBackend:
    """Instantiate a backend by registry name.

    ``options`` are passed to the backend constructor (e.g.
    ``get_backend("process-pool", max_workers=4)`` or
    ``get_backend("distributed", workers=2)``).
    """
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown executor backend {name!r} (available: {sorted(_BACKENDS)})"
        ) from None
    return factory(**options)

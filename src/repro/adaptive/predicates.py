"""Verdict predicates: classify one flown variant as inside/outside a region.

A verdict predicate maps a completed
:class:`~repro.campaign.results.VariantOutcome` to a boolean — "did the
flight fall on the failing side of the boundary?".  The boundary search
assumes the verdict is *monotone* along the swept axis (e.g. a larger
MemGuard budget lets the attacker do strictly more damage), so it can
bracket and bisect the flip point.

Predicates never guess on missing data: a variant that raised has no
verdict, and :class:`VerdictError` aborts the search rather than silently
steering the bisection with garbage.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = [
    "VerdictError",
    "VerdictPredicate",
    "crashed",
    "geofence_breach",
    "not_recovered",
    "recovery_latency_exceeds",
    "resolve_predicate",
    "switched_to_safety",
]

#: A verdict predicate (``VariantOutcome -> bool``).
VerdictPredicate = Callable[[Any], bool]


class VerdictError(RuntimeError):
    """A probe flight has no usable verdict (the variant raised)."""


def _summary(outcome: Any) -> dict[str, Any]:
    if outcome.error is not None or outcome.summary is None:
        raise VerdictError(
            f"probe variant {outcome.name!r} failed, no verdict available:\n"
            f"{outcome.error}"
        )
    return outcome.summary


def crashed(outcome: Any) -> bool:
    """The flight crashed (left the geofence / hit the lab wall)."""
    return bool(_summary(outcome)["crashed"])


def geofence_breach(outcome: Any) -> bool:
    """Alias of :func:`crashed`: a crash *is* the geofence breach (the
    simulation declares a crash when the deviation exceeds
    ``FlightScenario.geofence_radius``)."""
    return crashed(outcome)


def switched_to_safety(outcome: Any) -> bool:
    """The security monitor engaged the Simplex safety controller."""
    return bool(_summary(outcome)["switched_to_safety"])


def not_recovered(outcome: Any) -> bool:
    """The flight did not settle back to its setpoint by scenario end."""
    return not _summary(outcome)["recovered"]


def recovery_latency_exceeds(threshold: float) -> VerdictPredicate:
    """Predicate factory: recovery took longer than ``threshold`` seconds.

    A flight that never switched to safety (``recovery_latency`` is ``None``)
    counts as exceeding every threshold — an unbounded latency is the worst
    possible one, and treating it as "fast" would break monotonicity at the
    exact flights where the defence failed hardest.
    """
    threshold = float(threshold)

    def _exceeds(outcome: Any) -> bool:
        latency = _summary(outcome)["recovery_latency"]
        return latency is None or latency > threshold

    _exceeds.__name__ = f"recovery_latency_exceeds_{threshold:g}"
    return _exceeds


#: Named predicates usable from CLI spec files.
_PREDICATES: dict[str, VerdictPredicate] = {
    "crashed": crashed,
    "geofence_breach": geofence_breach,
    "switched_to_safety": switched_to_safety,
    "not_recovered": not_recovered,
}


def resolve_predicate(spec: str) -> VerdictPredicate:
    """Look up a predicate by name.

    Plain names resolve from the registry; the parameterised form
    ``recovery_latency_exceeds:<seconds>`` builds the threshold predicate.
    """
    if spec in _PREDICATES:
        return _PREDICATES[spec]
    head, _, arg = spec.partition(":")
    if head == "recovery_latency_exceeds" and arg:
        try:
            return recovery_latency_exceeds(float(arg))
        except ValueError:
            raise ValueError(
                f"invalid threshold {arg!r} in predicate spec {spec!r}"
            ) from None
    raise KeyError(
        f"unknown verdict predicate {spec!r} (available: "
        f"{sorted(_PREDICATES)} or 'recovery_latency_exceeds:<seconds>')"
    )

#!/usr/bin/env python3
"""Simplex failover timeline (the paper's Figure 6 in detail).

Kills the complex controller mid-flight and prints a timeline of what the
ContainerDrone framework does about it: the last CCE output, the
receiving-interval violation, the receiver-thread kill, the switch to the
safety controller and the recovery back to the setpoint.

Usage::

    python examples/controller_failover.py [--kill-time SECONDS] [--duration SECONDS]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import FlightScenario
from repro.sim import FlightSimulation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kill-time", type=float, default=10.0)
    parser.add_argument("--duration", type=float, default=20.0)
    args = parser.parse_args()

    scenario = FlightScenario.figure6(kill_time=args.kill_time, duration=args.duration)
    simulation = FlightSimulation(scenario)
    print(f"Running {scenario.name} for {scenario.duration:.0f} s ...")
    result = simulation.run()

    decision = simulation.framework.decision
    print()
    print("Timeline")
    print("--------")
    print(f"t={args.kill_time:6.2f} s  attacker kills the complex controller inside the CCE")
    print(f"t={decision.last_complex_received:6.2f} s  last actuator output received from the CCE")
    for violation in result.violations[:1]:
        print(f"t={violation.time:6.2f} s  security monitor violation: {violation.message}")
    for event in decision.switch_events:
        print(f"t={event.time:6.2f} s  decision module switched to {event.source.value!r}")

    # Find when the drone is back within 10 cm of its setpoint.
    times = result.recorder.times()
    deviations = np.linalg.norm(result.recorder.positions() - result.recorder.setpoints(), axis=1)
    recovered_mask = (times > (result.switch_time or 0.0)) & (deviations < 0.1)
    if result.switch_time is not None and np.any(recovered_mask):
        print(f"t={times[recovered_mask][0]:6.2f} s  back within 10 cm of the setpoint")

    print()
    print("Flight summary:", result.metrics.summary())
    print(f"Complex controller commands received: {decision.complex_commands_received}")
    print(f"Safety controller commands computed:  {decision.safety_commands_received}")


if __name__ == "__main__":
    main()

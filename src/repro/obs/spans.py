"""Monotonic timing spans feeding histograms and per-run collectors.

``with span("campaign.execute"):`` measures one phase on the monotonic
clock and records the duration twice: into the default registry's
``repro_span_seconds`` histogram (labelled ``phase=...``, scrape-able and
snapshot-able like any metric) and into every active :class:`SpanCollector`
— the per-run aggregation the campaign runner uses to build the
``CampaignResult.telemetry`` span summaries without inheriting timings from
earlier runs in the same process.

Spans are *phase*-grained instrumentation: wrap a cache scan, a backend
drain, a batch compile — never a per-timestep inner loop.  With
observability disabled (:func:`repro.obs.metrics.set_enabled`) a span costs
one boolean check.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

from . import metrics

__all__ = ["SpanCollector", "span"]

#: Histogram every span duration lands in (label: ``phase``).
SPAN_METRIC = "repro_span_seconds"

_collector_lock = threading.Lock()
_collectors: list["SpanCollector"] = []


class SpanCollector:
    """Aggregates the spans closed while it is active (a context manager).

    Collectors nest: an adaptive search's collector sees the spans of every
    campaign it runs, while each campaign's own collector sees only its own.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats: dict[str, dict[str, float]] = {}

    def __enter__(self) -> "SpanCollector":
        with _collector_lock:
            _collectors.append(self)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        with _collector_lock:
            try:
                _collectors.remove(self)
            except ValueError:
                pass

    def record(self, name: str, seconds: float) -> None:
        with self._lock:
            stats = self._stats.get(name)
            if stats is None:
                stats = self._stats[name] = {
                    "count": 0, "total_s": 0.0,
                    "min_s": float("inf"), "max_s": 0.0,
                }
            stats["count"] += 1
            stats["total_s"] += seconds
            stats["min_s"] = min(stats["min_s"], seconds)
            stats["max_s"] = max(stats["max_s"], seconds)

    def summaries(self) -> dict[str, dict[str, float]]:
        """Per-phase ``count/total_s/mean_s/min_s/max_s``, JSON-ready."""
        with self._lock:
            return {
                name: {
                    "count": int(stats["count"]),
                    "total_s": round(stats["total_s"], 6),
                    "mean_s": round(stats["total_s"] / stats["count"], 6),
                    "min_s": round(stats["min_s"], 6),
                    "max_s": round(stats["max_s"], 6),
                }
                for name, stats in sorted(self._stats.items())
            }


def _report(name: str, seconds: float) -> None:
    metrics.default_registry().histogram(
        SPAN_METRIC, help="Duration of instrumented phases by phase label."
    ).observe(seconds, phase=name)
    with _collector_lock:
        active = list(_collectors)
    for collector in active:
        collector.record(name, seconds)


@contextmanager
def span(name: str) -> Iterator[None]:
    """Time one phase; the duration is recorded even when the body raises
    (a failed phase's cost is still cost)."""
    if not metrics.enabled():
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        _report(name, time.perf_counter() - start)

"""Co-simulation engine, scenarios, telemetry recording and flight metrics."""

from .engine import HostLoadConfig, SystemSimulation
from .flight import FLIGHT_DRAM_PARAMETERS, FlightResult, FlightSimulation, run_scenario
from .metrics import FlightMetrics, compute_metrics
from .recorder import FlightRecorder, FlightSample
from .scenario import ControllerPlacement, FlightScenario

__all__ = [
    "ControllerPlacement",
    "FLIGHT_DRAM_PARAMETERS",
    "FlightMetrics",
    "FlightRecorder",
    "FlightResult",
    "FlightSample",
    "FlightScenario",
    "FlightSimulation",
    "HostLoadConfig",
    "SystemSimulation",
    "compute_metrics",
    "run_scenario",
]

"""Content-addressed campaign result store.

``repro.store`` persists per-flight campaign outcomes on disk, keyed by a
stable content hash over (scenario, attack parameters, framework config,
simulation version salt).  :class:`~repro.campaign.runner.CampaignRunner`
consults the store before dispatching flights, so re-running a 100-variant
grid with 3 changed cells flies only 3 flights, and a campaign killed
mid-run resumes from what already completed.  See ``docs/campaigns.md``
("Caching & resume").
"""

from .keys import VERSION_SALT, cache_key, canonical, scenario_fingerprint
from .store import CampaignStore, StoreStats

__all__ = [
    "CampaignStore",
    "StoreStats",
    "VERSION_SALT",
    "cache_key",
    "canonical",
    "scenario_fingerprint",
]

"""Position and velocity estimator.

A constant-velocity Kalman filter per axis fuses the motion-capture (or GPS)
position fix with a predicted trajectory, and the barometer refines the
vertical channel.  It plays the role of PX4's local position estimator for the
purposes of the hover experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PositionEstimate", "PositionEstimator"]


@dataclass(frozen=True)
class PositionEstimate:
    """NED position and velocity estimate."""

    position: np.ndarray
    velocity: np.ndarray
    valid: bool


class _AxisKalman:
    """Constant-velocity Kalman filter for a single axis."""

    def __init__(self, process_noise: float, measurement_noise: float) -> None:
        self.x = np.zeros(2)  # [position, velocity]
        self.P = np.diag([1.0, 1.0])
        self.q = float(process_noise)
        self.r = float(measurement_noise)

    def predict(self, dt: float) -> None:
        F = np.array([[1.0, dt], [0.0, 1.0]])
        G = np.array([0.5 * dt * dt, dt])
        self.x = F @ self.x
        self.P = F @ self.P @ F.T + self.q * np.outer(G, G)

    def update(self, measurement: float, measurement_noise: float | None = None) -> None:
        r = self.r if measurement_noise is None else float(measurement_noise)
        H = np.array([1.0, 0.0])
        innovation = measurement - H @ self.x
        S = H @ self.P @ H + r
        K = self.P @ H / S
        self.x = self.x + K * innovation
        self.P = (np.eye(2) - np.outer(K, H)) @ self.P


class PositionEstimator:
    """Three-axis constant-velocity estimator for local NED position."""

    def __init__(
        self,
        process_noise: float = 30.0,
        mocap_noise: float = 1e-4,
        gps_noise: float = 2.25,
        baro_noise: float = 2.5e-3,
    ) -> None:
        # The noise arguments are variances; defaults correspond to the sensor
        # models in :mod:`repro.sensors` (mocap sigma ~ 1 cm, GPS sigma ~ 1.5 m,
        # barometer sigma ~ 5 cm).  The process noise is the assumed vehicle
        # acceleration variance of the constant-velocity model.
        self._axes = [_AxisKalman(process_noise, mocap_noise) for _ in range(3)]
        self.mocap_noise = float(mocap_noise)
        self.gps_noise = float(gps_noise)
        self.baro_noise = float(baro_noise)
        self._has_fix = False
        self._baro_reference: float | None = None

    @property
    def estimate(self) -> PositionEstimate:
        """Current position/velocity estimate."""
        position = np.array([axis.x[0] for axis in self._axes])
        velocity = np.array([axis.x[1] for axis in self._axes])
        return PositionEstimate(position=position, velocity=velocity, valid=self._has_fix)

    def predict(self, dt: float) -> None:
        """Propagate the estimate by ``dt`` seconds."""
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        for axis in self._axes:
            axis.predict(dt)

    def update_mocap(self, position_ned: np.ndarray) -> None:
        """Fuse a motion-capture position fix (low noise)."""
        position_ned = np.asarray(position_ned, dtype=float)
        for axis, measurement in zip(self._axes, position_ned):
            axis.update(float(measurement), self.mocap_noise)
        self._has_fix = True

    def update_gps(self, position_ned: np.ndarray) -> None:
        """Fuse a GPS-derived local position fix (higher noise)."""
        position_ned = np.asarray(position_ned, dtype=float)
        for axis, measurement in zip(self._axes, position_ned):
            axis.update(float(measurement), self.gps_noise)
        self._has_fix = True

    def update_baro_altitude(self, altitude_asl_m: float) -> None:
        """Fuse a barometric altitude as a relative vertical measurement.

        The first sample establishes the barometric reference so that it is
        consistent with the current vertical estimate (the local NED origin is
        unknown to the barometer); subsequent samples constrain vertical
        motion relative to that reference.
        """
        if self._baro_reference is None:
            if not self._has_fix:
                # Wait for an absolute position fix before anchoring the
                # barometric reference, otherwise the reference would pin the
                # vertical estimate to the (unknown) take-off altitude.
                return
            self._baro_reference = float(altitude_asl_m) + float(self._axes[2].x[0])
            return
        down = -(float(altitude_asl_m) - self._baro_reference)
        self._axes[2].update(down, self.baro_noise)

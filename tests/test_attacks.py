"""Tests for the attack library."""

import pytest

from repro.attacks import (
    Attack,
    ControllerKillAttack,
    CpuHogAttack,
    MemoryBandwidthAttack,
    UdpFloodAttack,
)
from repro.mavlink import MOTOR_PORT


class TestAttackBase:
    def test_inactive_before_start(self):
        attack = Attack(start_time=5.0)
        assert not attack.active(4.9)
        assert attack.active(5.0)

    def test_unbounded_duration(self):
        attack = Attack(start_time=5.0, duration=None)
        assert attack.active(1e6)

    def test_bounded_duration(self):
        attack = Attack(start_time=5.0, duration=2.0)
        assert attack.active(6.9)
        assert not attack.active(7.1)

    def test_name_is_class_name(self):
        assert MemoryBandwidthAttack().name == "MemoryBandwidthAttack"

    def test_with_start_time_returns_rescheduled_copy(self):
        attack = MemoryBandwidthAttack(start_time=10.0)
        moved = attack.with_start_time(4.0)
        assert moved.start_time == 4.0
        assert attack.start_time == 10.0
        assert isinstance(moved, MemoryBandwidthAttack)
        assert moved.access_rate == attack.access_rate

    def test_with_params_overrides_fields(self):
        attack = UdpFloodAttack(start_time=8.0).with_params(start_time=2.0)
        assert attack.start_time == 2.0

    def test_with_params_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="no parameter"):
            MemoryBandwidthAttack().with_params(warp_factor=9)


class TestMemoryBandwidthAttack:
    def test_task_is_memory_bound_and_continuous(self):
        attack = MemoryBandwidthAttack(start_time=10.0, access_rate=2e7)
        config = attack.task_config(core=3, quantum=0.001)
        assert config.core == 3
        assert config.offset == 10.0
        # A spin loop never yields: one job longer than any scenario.
        assert config.execution_time >= 1e5
        assert config.period > config.execution_time
        assert config.memory_stall_fraction > 0.8
        assert config.access_rate == pytest.approx(2e7)

    def test_requests_maximum_priority(self):
        # The attacker *asks* for priority 99; the container cgroup will cap it.
        assert MemoryBandwidthAttack().task_config(core=3).priority == 99


class TestUdpFloodAttack:
    def test_targets_motor_port_by_default(self):
        assert UdpFloodAttack().target_port == MOTOR_PORT

    def test_packets_per_quantum(self):
        attack = UdpFloodAttack(packets_per_second=20000.0)
        assert attack.packets_per_quantum(0.001) == 20

    def test_at_least_one_packet_per_quantum(self):
        assert UdpFloodAttack(packets_per_second=1.0).packets_per_quantum(0.001) == 1

    def test_payload_is_garbage_of_configured_size(self):
        attack = UdpFloodAttack(payload_size=32)
        assert len(attack.payload()) == 32

    def test_task_execution_fits_in_quantum(self):
        config = UdpFloodAttack(packets_per_second=50000.0).task_config(core=3, quantum=0.001)
        assert config.execution_time <= 0.001


class TestControllerKillAttack:
    def test_default_matches_figure6(self):
        assert ControllerKillAttack().start_time == 12.0

    def test_activation(self):
        attack = ControllerKillAttack(start_time=12.0)
        assert not attack.active(11.99)
        assert attack.active(12.0)


class TestCpuHogAttack:
    def test_one_task_per_thread(self):
        attack = CpuHogAttack(threads=3)
        configs = attack.task_configs(first_core=0, num_cores=4)
        assert len(configs) == 3
        assert {config.core for config in configs} == {0, 1, 2}

    def test_threads_wrap_over_cores(self):
        attack = CpuHogAttack(threads=5)
        configs = attack.task_configs(first_core=0, num_cores=4)
        assert [config.core for config in configs] == [0, 1, 2, 3, 0]

    def test_hog_is_cpu_bound(self):
        (config,) = CpuHogAttack(threads=1).task_configs(first_core=2, num_cores=4)
        # A busy loop: one never-ending job with negligible memory traffic.
        assert config.execution_time >= 1e5
        assert config.period > config.execution_time
        assert config.memory_stall_fraction < 0.1

#!/usr/bin/env python3
"""Container vs VM overhead comparison (the paper's Table II).

Measures the per-core CPU idle rate of the simulated four-core board in three
configurations: bare host, host plus one QEMU-style VM, host plus one idle
container.

Usage::

    python examples/overhead_comparison.py [--seconds SECONDS]
"""

from __future__ import annotations

import argparse

from repro import SystemSimulation
from repro.analysis import format_overhead_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seconds", type=float, default=10.0,
                        help="measurement window in (simulated) seconds")
    args = parser.parse_args()

    results = {}

    native = SystemSimulation()
    results["No container nor VM"] = native.run(args.seconds)

    vm_case = SystemSimulation()
    vm_case.add_vm()
    results["One VM"] = vm_case.run(args.seconds)

    container_case = SystemSimulation()
    container_case.add_container()
    results["One container"] = container_case.run(args.seconds)

    print(format_overhead_table(results))
    print()
    print("Paper (Table II): native 0.95/0.99/0.99/0.99, one VM 0.86/0.83/0.81/0.77, "
          "one container 0.95/0.99/0.99/0.98")


if __name__ == "__main__":
    main()

"""Radio-control (RC) input model.

In the paper's experiments the operator first flies manually, then switches to
position-control mode.  The RC model replays a scripted pilot: stick values
are held neutral and the flight-mode channel encodes the requested mode.
RC input is forwarded to the CCE at 50 Hz (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .base import PeriodicSensor

__all__ = ["RcChannels", "RcReceiver", "RC_RATE_HZ", "scripted_pilot"]

#: Table I: RC stream rate from HCE to CCE.
RC_RATE_HZ = 50.0

#: PWM microsecond values used for RC channels (standard 1000-2000 us range).
PWM_MIN = 1000
PWM_MID = 1500
PWM_MAX = 2000


@dataclass(frozen=True)
class RcChannels:
    """One RC frame: four control sticks plus a flight-mode switch."""

    roll: int = PWM_MID
    pitch: int = PWM_MID
    throttle: int = PWM_MID
    yaw: int = PWM_MID
    mode_switch: int = PWM_MIN

    def as_array(self) -> np.ndarray:
        """Return the five channels as an integer array."""
        return np.array(
            [self.roll, self.pitch, self.throttle, self.yaw, self.mode_switch], dtype=int
        )


def scripted_pilot(position_mode_at: float = 0.0) -> Callable[[float], RcChannels]:
    """Return a pilot script that switches to position mode at ``position_mode_at``.

    Before the switch the sticks are neutral in manual/stabilised mode, which
    mirrors the paper's procedure of taking off manually and then engaging
    position control.
    """

    def pilot(time: float) -> RcChannels:
        mode = PWM_MAX if time >= position_mode_at else PWM_MIN
        return RcChannels(mode_switch=mode)

    return pilot


class RcReceiver(PeriodicSensor):
    """RC receiver that samples a pilot script at a fixed rate."""

    def __init__(
        self,
        pilot: Callable[[float], RcChannels] | None = None,
        rate_hz: float = RC_RATE_HZ,
    ) -> None:
        super().__init__(rate_hz, name="rc")
        self._pilot = pilot or scripted_pilot()

    def _measure(self, time: float, plant: object) -> RcChannels:
        return self._pilot(time)

#!/usr/bin/env python3
"""Memory-bandwidth DoS defence (the paper's Figure 4 vs Figure 5).

The attacker runs the IsolBench-style ``Bandwidth`` program inside the
container, saturating the shared DRAM controller of the four-core board.
Without MemGuard the host control pipeline is slowed until the drone crashes;
with MemGuard the container core's access budget is capped and the drone
stays up.

Usage::

    python examples/memory_dos_defense.py [--duration SECONDS] [--attack-start SECONDS]
"""

from __future__ import annotations

import argparse

from repro import FlightScenario, run_scenario
from repro.analysis import extract_axes, format_table, oscillation_amplitude


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=24.0)
    parser.add_argument("--attack-start", type=float, default=8.0)
    args = parser.parse_args()

    scenarios = {
        "MemGuard OFF (Fig. 4)": FlightScenario.figure4(
            attack_start=args.attack_start, duration=args.duration
        ),
        "MemGuard ON (Fig. 5)": FlightScenario.figure5(
            attack_start=args.attack_start, duration=args.duration
        ),
    }

    rows = []
    for label, scenario in scenarios.items():
        print(f"Running {label}: {scenario.name} ...")
        result = run_scenario(scenario)
        x_axis = extract_axes(result.recorder)[0]
        rows.append([
            label,
            "CRASHED" if result.crashed else "survived",
            f"{result.crash_time:.1f} s" if result.crash_time is not None else "-",
            f"{result.metrics.max_deviation_after:.2f} m",
            f"{oscillation_amplitude(x_axis, start=args.attack_start):.2f} m",
        ])

    print()
    print(format_table(
        ["Configuration", "Outcome", "Crash time", "Max deviation after attack",
         "X oscillation peak-to-peak"],
        rows,
        title="Memory-bandwidth DoS: MemGuard off vs on",
    ))
    print()
    print("Paper claim: without MemGuard the drone crashes shortly after the attack;")
    print("with MemGuard it oscillates but remains stable.")


if __name__ == "__main__":
    main()

"""GNSS receiver model.

Models the Navio2's GNSS receiver at 10 Hz (Table I).  Indoors (the paper's
Vicon-tracked lab) the GPS fix is weak; position-control mode instead uses the
motion-capture feed (:mod:`repro.sensors.mocap`).  The GPS model is still part
of the sensor suite because its messages are forwarded to the CCE and count
toward the Table I traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dynamics.quadrotor import Quadrotor
from .base import PeriodicSensor
from .noise import GaussianNoise

__all__ = [
    "GpsParameters",
    "GpsReading",
    "Gps",
    "GPS_RATE_HZ",
    "ned_to_geodetic",
    "geodetic_to_ned",
]

#: Table I: GPS stream rate from HCE to CCE.
GPS_RATE_HZ = 10.0

#: Reference geodetic origin for the local NED frame (Urbana, IL).
DEFAULT_ORIGIN = (40.1106, -88.2073, 220.0)

EARTH_RADIUS_M = 6371000.0


def ned_to_geodetic(
    north: float, east: float, down: float, origin: tuple[float, float, float] = DEFAULT_ORIGIN
) -> tuple[float, float, float]:
    """Convert a local NED offset from ``origin`` to (lat [deg], lon [deg], alt [m])."""
    lat0, lon0, alt0 = origin
    latitude = lat0 + np.rad2deg(north / EARTH_RADIUS_M)
    longitude = lon0 + np.rad2deg(east / (EARTH_RADIUS_M * np.cos(np.deg2rad(lat0))))
    return float(latitude), float(longitude), float(alt0 - down)


def geodetic_to_ned(
    latitude: float,
    longitude: float,
    altitude: float,
    origin: tuple[float, float, float] = DEFAULT_ORIGIN,
) -> np.ndarray:
    """Convert geodetic coordinates to the local NED offset from ``origin``."""
    lat0, lon0, alt0 = origin
    north = np.deg2rad(latitude - lat0) * EARTH_RADIUS_M
    east = np.deg2rad(longitude - lon0) * EARTH_RADIUS_M * np.cos(np.deg2rad(lat0))
    return np.array([north, east, alt0 - altitude])


@dataclass(frozen=True)
class GpsParameters:
    """Noise and fix-quality characteristics of the GNSS receiver."""

    horizontal_sigma_m: float = 1.2
    vertical_sigma_m: float = 2.0
    velocity_sigma_mps: float = 0.25
    num_satellites: int = 9
    fix_type: int = 3


@dataclass(frozen=True)
class GpsReading:
    """One GNSS fix."""

    latitude_deg: float
    longitude_deg: float
    altitude_m: float
    velocity_ned: np.ndarray
    num_satellites: int
    fix_type: int


class Gps(PeriodicSensor):
    """GNSS receiver producing geodetic fixes from the local NED state."""

    def __init__(
        self,
        params: GpsParameters | None = None,
        rate_hz: float = GPS_RATE_HZ,
        origin: tuple[float, float, float] = DEFAULT_ORIGIN,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(rate_hz, name="gps")
        self.params = params or GpsParameters()
        self.origin = origin
        rng = rng or np.random.default_rng(2)
        self._horizontal_noise = GaussianNoise(self.params.horizontal_sigma_m, rng)
        self._vertical_noise = GaussianNoise(self.params.vertical_sigma_m, rng)
        self._velocity_noise = GaussianNoise(self.params.velocity_sigma_mps, rng)

    def _measure(self, time: float, plant: Quadrotor) -> GpsReading:
        north = float(plant.position[0]) + float(self._horizontal_noise.sample(()))
        east = float(plant.position[1]) + float(self._horizontal_noise.sample(()))
        down = float(plant.position[2]) + float(self._vertical_noise.sample(()))

        latitude, longitude, altitude = ned_to_geodetic(north, east, down, self.origin)

        velocity = plant.velocity + self._velocity_noise.sample((3,))
        return GpsReading(
            latitude_deg=float(latitude),
            longitude_deg=float(longitude),
            altitude_m=float(altitude),
            velocity_ned=velocity,
            num_satellites=self.params.num_satellites,
            fix_type=self.params.fix_type,
        )

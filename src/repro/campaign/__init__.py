"""Scenario-campaign engine: sweep grids fanned out over worker processes.

The paper evaluates four hand-picked experiments one at a time; this package
turns the single-shot ``FlightScenario -> run_scenario`` path into a fleet
runner.  See ``docs/campaigns.md`` for the sweep-grid syntax and examples.
"""

from .grid import AxisApplier, GridVariant, ScenarioGrid, register_axis
from .results import CampaignCell, CampaignResult, VariantOutcome
from .runner import CampaignRunner, run_campaign

__all__ = [
    "AxisApplier",
    "CampaignCell",
    "CampaignResult",
    "CampaignRunner",
    "GridVariant",
    "ScenarioGrid",
    "VariantOutcome",
    "register_axis",
    "run_campaign",
]

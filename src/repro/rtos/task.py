"""Periodic real-time task model.

The paper's HCE schedules its processes with the Linux SCHED_FIFO policy:
kernel sensor drivers at priority 90, system interrupt threads around 40, the
safety controller at 20, everything else below.  This module models those
processes as periodic tasks with a nominal execution time, a fixed priority,
a core affinity, and a memory-access profile used by the DRAM contention model
and by MemGuard accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["TaskConfig", "Job", "Task", "TaskStats"]

#: Callback invoked when a job completes: ``callback(completion_time)``.
CompletionCallback = Callable[[float], None]
#: Callable returning ``(execution_time, accesses)`` for a job released at ``now``.
DynamicCost = Callable[[float], tuple[float, int]]


@dataclass(frozen=True)
class TaskConfig:
    """Static description of a periodic task."""

    name: str
    period: float
    execution_time: float
    priority: int
    core: int
    memory_stall_fraction: float = 0.1
    accesses_per_job: int = 0
    offset: float = 0.0
    #: If True (default), a release is skipped while the previous job of the
    #: same task is still pending; the skip is counted as an overrun.
    skip_if_pending: bool = True

    def __post_init__(self) -> None:
        if self.period <= 0.0:
            raise ValueError("period must be positive")
        if self.execution_time < 0.0:
            raise ValueError("execution_time must be non-negative")
        if not 0.0 <= self.memory_stall_fraction <= 1.0:
            raise ValueError("memory_stall_fraction must be within [0, 1]")
        if self.accesses_per_job < 0:
            raise ValueError("accesses_per_job must be non-negative")
        if self.core < 0:
            raise ValueError("core must be non-negative")

    @property
    def utilization(self) -> float:
        """Nominal CPU utilisation of the task."""
        return self.execution_time / self.period

    @property
    def access_rate(self) -> float:
        """DRAM accesses per second of contention-free execution."""
        if self.execution_time <= 0.0:
            return 0.0
        return self.accesses_per_job / self.execution_time


@dataclass
class TaskStats:
    """Runtime statistics accumulated per task."""

    released: int = 0
    completed: int = 0
    skipped_releases: int = 0
    deadline_misses: int = 0
    total_response_time: float = 0.0
    worst_response_time: float = 0.0

    @property
    def average_response_time(self) -> float:
        """Mean response time over completed jobs (0 when none completed)."""
        if self.completed == 0:
            return 0.0
        return self.total_response_time / self.completed


@dataclass
class Job:
    """One released instance of a task."""

    task: "Task"
    release_time: float
    execution_time: float
    accesses: int
    remaining: float = field(init=False)

    def __post_init__(self) -> None:
        self.remaining = self.execution_time

    @property
    def access_rate(self) -> float:
        """DRAM accesses per second of contention-free execution."""
        if self.execution_time <= 0.0:
            return 0.0
        return self.accesses / self.execution_time

    @property
    def progress(self) -> float:
        """Fraction of the job's execution already performed."""
        if self.execution_time <= 0.0:
            return 1.0
        return 1.0 - self.remaining / self.execution_time


class Task:
    """A periodic task registered with the scheduler."""

    def __init__(
        self,
        config: TaskConfig,
        callback: CompletionCallback | None = None,
        dynamic_cost: DynamicCost | None = None,
    ) -> None:
        self.config = config
        self.callback = callback
        self.dynamic_cost = dynamic_cost
        self.stats = TaskStats()
        self.enabled = True
        self._next_release = config.offset
        self._pending_jobs = 0

    @property
    def name(self) -> str:
        """Task name."""
        return self.config.name

    @property
    def next_release(self) -> float:
        """Time of the next job release."""
        return self._next_release

    @property
    def pending_jobs(self) -> int:
        """Number of released jobs not yet completed."""
        return self._pending_jobs

    def stop(self) -> None:
        """Disable the task: no further jobs are released."""
        self.enabled = False

    def start(self, now: float | None = None) -> None:
        """(Re-)enable the task, optionally re-phasing its next release."""
        self.enabled = True
        if now is not None:
            self._next_release = now

    def release_due_jobs(self, now: float) -> list[Job]:
        """Release every job due by ``now`` (normally zero or one)."""
        jobs: list[Job] = []
        while self.enabled and self._next_release <= now + 1e-12:
            release_time = self._next_release
            self._next_release += self.config.period
            if self.config.skip_if_pending and self._pending_jobs > 0:
                self.stats.skipped_releases += 1
                continue
            if self.dynamic_cost is not None:
                execution_time, accesses = self.dynamic_cost(release_time)
            else:
                execution_time = self.config.execution_time
                accesses = self.config.accesses_per_job
            if execution_time <= 0.0:
                # Nothing to do for this activation (e.g. an empty receive
                # queue); it completes immediately without occupying the CPU.
                self.stats.released += 1
                self.stats.completed += 1
                if self.callback is not None:
                    self.callback(release_time)
                continue
            job = Job(
                task=self,
                release_time=release_time,
                execution_time=execution_time,
                accesses=accesses,
            )
            self.stats.released += 1
            self._pending_jobs += 1
            jobs.append(job)
        return jobs

    def complete_job(self, job: Job, completion_time: float) -> None:
        """Record a job completion and invoke the completion callback."""
        self._pending_jobs = max(0, self._pending_jobs - 1)
        response_time = completion_time - job.release_time
        self.stats.completed += 1
        self.stats.total_response_time += response_time
        self.stats.worst_response_time = max(self.stats.worst_response_time, response_time)
        if response_time > self.config.period:
            self.stats.deadline_misses += 1
        if self.callback is not None:
            self.callback(completion_time)

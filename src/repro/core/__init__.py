"""ContainerDrone core: configuration, Simplex decision logic, security monitor."""

from .config import (
    CommunicationProtectionConfig,
    ContainerDroneConfig,
    CpuProtectionConfig,
    MemoryProtectionConfig,
    MonitorConfig,
    StreamRates,
)
from .framework import ContainerDroneFramework
from .protections import (
    ProtectionStatus,
    build_container_config,
    build_memguard,
    build_network,
)
from .security_monitor import (
    AttitudeErrorRule,
    MonitorContext,
    ReceivingIntervalRule,
    SecurityMonitor,
    SecurityRule,
    Violation,
)
from .simplex import ControlSource, DecisionModule, SwitchEvent

__all__ = [
    "AttitudeErrorRule",
    "CommunicationProtectionConfig",
    "ContainerDroneConfig",
    "ContainerDroneFramework",
    "ControlSource",
    "CpuProtectionConfig",
    "DecisionModule",
    "MemoryProtectionConfig",
    "MonitorConfig",
    "MonitorContext",
    "ProtectionStatus",
    "ReceivingIntervalRule",
    "SecurityMonitor",
    "SecurityRule",
    "StreamRates",
    "SwitchEvent",
    "Violation",
    "build_container_config",
    "build_memguard",
    "build_network",
]

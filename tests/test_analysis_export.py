"""Tests for the export helpers (CSV, dictionaries, comparison tables)."""

import io

import numpy as np
import pytest

from repro.analysis import compare_results, recorder_to_rows, result_to_dict, write_csv
from repro.sim import FlightRecorder, FlightSample


def make_recording(samples=20, source="complex", crashed=False):
    recorder = FlightRecorder(sample_rate_hz=10.0)
    for index in range(samples):
        recorder.maybe_record(FlightSample(
            time=index / 10.0,
            position=np.array([0.01 * index, 0.0, -1.0]),
            setpoint=np.array([0.0, 0.0, -1.0]),
            velocity=np.zeros(3),
            roll=0.0,
            pitch=0.0,
            yaw=0.0,
            active_source=source,
            crashed=crashed,
        ))
    return recorder


class TestRecorderExport:
    def test_rows_match_samples(self):
        recorder = make_recording(samples=15)
        rows = recorder_to_rows(recorder)
        assert len(rows) == len(recorder)
        assert rows[0]["time"] == pytest.approx(0.0)
        assert rows[-1]["x"] == pytest.approx(0.14)
        assert rows[0]["active_source"] == "complex"

    def test_write_csv_to_stream(self):
        recorder = make_recording(samples=5)
        buffer = io.StringIO()
        count = write_csv(recorder, buffer)
        assert count == 5
        lines = buffer.getvalue().strip().splitlines()
        assert lines[0].startswith("time,x,y,z")
        assert len(lines) == 6

    def test_write_csv_to_path(self, tmp_path):
        recorder = make_recording(samples=5)
        path = tmp_path / "flight.csv"
        count = write_csv(recorder, path)
        assert count == 5
        assert path.read_text().count("\n") >= 5


class TestResultExport:
    @pytest.fixture(scope="class")
    def flight_result(self):
        from repro.sim import FlightScenario, run_scenario

        return run_scenario(FlightScenario.baseline(duration=2.0))

    def test_result_to_dict_keys(self, flight_result):
        summary = result_to_dict(flight_result)
        assert summary["scenario"] == "baseline-hover"
        assert summary["crashed"] is False
        assert summary["first_violation_rule"] is None
        assert summary["max_deviation"] >= 0.0

    def test_result_to_dict_is_json_serialisable(self, flight_result):
        import json

        text = json.dumps(result_to_dict(flight_result))
        assert "baseline-hover" in text

    def test_compare_results_table(self, flight_result):
        table = compare_results({"baseline": flight_result, "again": flight_result})
        assert "baseline" in table
        assert "Scenario comparison" in table
        assert table.count("\n") >= 3

"""Campaign work-queue worker: ``python -m repro.campaign.worker QUEUE_DIR``
(file transport), ``python -m repro.campaign.worker --connect host:port``
(TCP transport) or ``python -m repro.campaign.worker --connect-http URL``
(HTTP transport, for workers that reach the coordinator only through a
proxy or load balancer).

One worker process drains one :class:`~repro.campaign.workqueue.WorkQueue`:
claim a task, heartbeat the lease while executing it, publish the result,
repeat until the coordinator raises the stop sentinel.  Workers are
stateless — any number may attach to the same queue (the
:class:`~repro.campaign.backends.DistributedBackend` spawns local ones, but
workers started by hand on any host sharing the directory — or able to
reach the coordinator's TCP port — join the same campaign), and a worker
killed mid-task loses nothing: its lease expires and the task is re-issued.
An idle worker also exits when the coordinator grants it a *retire credit*
(autoscaling scale-down) or when the coordinator has been unreachable/silent
for the orphan timeout.  While the coordinator is unreachable, idle polling
backs off exponentially with jitter (capped) instead of fixed-interval
ticks, so a large fleet does not synchronously hammer a restarting daemon;
a worker whose coordinator speaks a different protocol version exits
immediately with a clear message (see
:meth:`~repro.campaign.transport.NetworkWorkQueueClient.check_protocol`).

Task payloads are ``(fn, item)`` pairs; results are ``("ok", fn(item))`` or
``("error", traceback_text)``.  ``fn`` must be importable on the worker
(module-level or ``functools.partial`` of one) — the same constraint a
process pool imposes.

Coordinators on the network transports may require a shared-secret auth
token (``--auth-token``, or ``$REPRO_CAMPAIGN_AUTH_TOKEN`` — preferred,
since the environment does not show up in process listings).  A worker
whose token is missing or wrong is rejected with a distinct error and
**exits immediately with a clear message** — authentication failures are
configuration errors that retrying cannot fix, so they never retry-loop.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import threading
import time
import traceback
from pathlib import Path
from typing import Any

from ..obs import EventLog, configure_json_logging, emit, set_event_log
from .workqueue import (
    FileWorkQueue,
    WorkQueue,
    WorkQueueAuthError,
    WorkQueueProtocolError,
    resolve_auth_token,
)

__all__ = ["main", "run_worker"]


def _idle_delay(
    queue: WorkQueue, poll_interval: float, orphan_timeout: float
) -> float:
    """Sleep before the next idle poll tick.

    While the coordinator answers, this is the plain ``poll_interval``.
    While it is *unreachable* (the network clients count
    ``consecutive_failures``; queues without the attribute never back off),
    the delay doubles per failed round trip up to a cap, with jitter — so a
    large fleet behind a restarting daemon spreads its reconnect attempts
    instead of synchronously hammering it every tick.  The cap stays well
    under the orphan timeout: backing off must never keep a worker alive
    past the point it should have given its coordinator up.
    """
    failures = getattr(queue, "consecutive_failures", 0)
    if failures <= 0:
        return poll_interval
    cap = max(poll_interval, min(5.0, orphan_timeout / 8.0))
    delay = min(cap, poll_interval * (2.0 ** min(failures, 16)))
    return delay * (0.5 + 0.5 * random.random())


class _Heartbeat:
    """Background thread refreshing one lease while a task runs."""

    def __init__(self, queue: WorkQueue, lease: Any, interval: float) -> None:
        self._queue = queue
        self._lease = lease
        self._interval = max(interval, 0.01)
        self._done = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._done.wait(self._interval):
            try:
                self._queue.heartbeat(self._lease)
            except WorkQueueAuthError:
                # A coordinator restarted mid-task with a rotated secret:
                # stop heartbeating (the lease expires there like any dead
                # worker's) instead of dying with a raw traceback; the main
                # loop surfaces the auth error on its next request.
                return

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._done.set()
        self._thread.join()


def run_worker(
    queue_dir: str | Path | None = None,
    worker_id: str | None = None,
    lease_timeout: float = 30.0,
    poll_interval: float = 0.05,
    max_tasks: int | None = None,
    orphan_timeout: float | None = None,
    connect: str | None = None,
    connect_http: str | None = None,
    queue: WorkQueue | None = None,
    auth_token: str | None = None,
) -> int:
    """Drain the queue until stop is requested; returns the tasks completed.

    The queue is given as exactly one of ``queue_dir`` (file transport),
    ``connect="host:port"`` (TCP transport), ``connect_http="http://..."``
    (HTTP transport) or ``queue`` (an explicit
    :class:`~repro.campaign.workqueue.WorkQueue`, mainly for tests).

    ``lease_timeout`` must match the coordinator's: the heartbeat refreshes
    the lease every quarter of it.  ``max_tasks`` bounds the number of tasks
    (``None`` = unbounded) — useful for tests and one-shot workers.

    ``auth_token`` is the network transports' shared secret (``None`` falls
    back to ``$REPRO_CAMPAIGN_AUTH_TOKEN``); a coordinator rejecting it
    raises :class:`~repro.campaign.workqueue.WorkQueueAuthError` out of this
    function immediately — never a retry loop.  The file transport has no
    authentication, so an explicit token there is a usage error.

    ``orphan_timeout`` (default ``4 * lease_timeout``) guards against an
    abandoned queue: a coordinator killed without cleanup never raises the
    stop sentinel, so an idle worker whose coordinator heartbeat is older
    than this — for the network transports: whose coordinator has been
    *unreachable* this long — exits on its own instead of polling forever.
    File queues that never announced a coordinator (manually driven) are
    exempt.
    """
    sources = (queue_dir, connect, connect_http, queue)
    if sum(source is not None for source in sources) != 1:
        raise ValueError(
            "exactly one of queue_dir, connect, connect_http or queue "
            "must be given"
        )
    if queue is not None and auth_token is not None:
        # Same loud-error policy as the file transport below: an explicit
        # queue object carries its own credentials (or none), so a token
        # here could never take effect and must not be silently dropped.
        raise ValueError(
            "auth_token cannot be applied to an explicit queue object; "
            "configure the token on the queue client itself"
        )
    if queue is None:
        if connect is not None:
            from .transport import SocketWorkQueueClient, parse_address

            queue = SocketWorkQueueClient(
                *parse_address(connect),
                auth_token=resolve_auth_token(auth_token),
            )
        elif connect_http is not None:
            from .transport_http import HttpWorkQueueClient

            queue = HttpWorkQueueClient(
                connect_http, auth_token=resolve_auth_token(auth_token)
            )
        else:
            if auth_token is not None:
                raise ValueError(
                    "auth_token applies to the network transports "
                    "(connect/connect_http); the file queue has no "
                    "authentication"
                )
            queue = FileWorkQueue(queue_dir)
    if worker_id is None:
        worker_id = f"w{os.getpid()}"
    if orphan_timeout is None:
        orphan_timeout = 4.0 * lease_timeout
    check_protocol = getattr(queue, "check_protocol", None)
    if check_protocol is not None:
        # Fail fast on daemon/client version skew with a clear message
        # (WorkQueueProtocolError) instead of decoding errors mid-campaign.
        # An unreachable coordinator returns None here and is handled by
        # the normal degrade/orphan path below.
        check_protocol()
    completed = 0
    while max_tasks is None or completed < max_tasks:
        # Stop is checked *before* claiming: an aborted campaign's leftover
        # tasks must not be drained by the fleet — only the task already in
        # hand is finished.
        if queue.stop_requested():
            break
        claimed = queue.claim(worker_id)
        if claimed is None:
            if queue.try_retire():
                break  # the autoscaler dismissed this (idle) worker
            age = queue.coordinator_age()
            if age is not None and age > orphan_timeout:
                break  # coordinator died without cleanup; don't poll forever
            time.sleep(_idle_delay(queue, poll_interval, orphan_timeout))
            continue
        index, payload, lease = claimed
        emit("task-claim", "campaign.worker", worker=worker_id, index=index)
        with _Heartbeat(queue, lease, lease_timeout / 4.0):
            try:
                fn, item = payload
                result = ("ok", fn(item))
            except Exception:
                # The failure travels back as data; the coordinator decides
                # whether to raise.  Worker-killing failures (os._exit, OOM)
                # are the lease-expiry path instead.
                result = ("error", traceback.format_exc())
        queue.complete(index, result, lease)
        completed += 1
        emit(
            "task-complete", "campaign.worker",
            worker=worker_id, index=index, ok=result[0] == "ok",
        )
    emit("worker-exit", "campaign.worker", worker=worker_id, completed=completed)
    return completed


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign.worker",
        description="Attach one campaign worker to a work queue: a shared "
        "directory (file transport), a coordinator's TCP server "
        "(--connect), or its HTTP server (--connect-http).",
    )
    parser.add_argument("queue", nargs="?", default=None,
                        help="work-queue directory shared with the coordinator "
                        "(omit when using --connect/--connect-http)")
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="connect to a coordinator's socket work queue "
                        "instead of a shared directory")
    parser.add_argument("--connect-http", default=None, metavar="URL",
                        help="connect to a coordinator's HTTP work queue "
                        "(http[s]://host:port[/prefix]; works through "
                        "reverse proxies and load balancers)")
    parser.add_argument("--auth-token", default=None, metavar="TOKEN",
                        help="shared-secret token for the network transports "
                        "(default: $REPRO_CAMPAIGN_AUTH_TOKEN; prefer the "
                        "environment — argv is visible in process listings)")
    parser.add_argument("--worker-id", default=None,
                        help="lease label (default: w<pid>; no dots or path separators)")
    parser.add_argument("--lease-timeout", type=float, default=30.0,
                        help="coordinator's lease expiry [s] (default: 30)")
    parser.add_argument("--poll", type=float, default=0.05, dest="poll_interval",
                        help="idle polling interval [s] (default: 0.05)")
    parser.add_argument("--max-tasks", type=int, default=None,
                        help="exit after completing this many tasks")
    parser.add_argument("--orphan-timeout", type=float, default=None,
                        help="exit when idle and the coordinator heartbeat "
                        "is older than this [s] (default: 4x lease timeout)")
    parser.add_argument("--metrics-jsonl", default=None, metavar="PATH",
                        help="append structured JSONL event records "
                        "(task claims/completions, worker exit) to PATH")
    parser.add_argument("--log-json", action="store_true",
                        help="emit log records as JSON lines on stderr")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    sources = (args.queue, args.connect, args.connect_http)
    if sum(source is not None for source in sources) != 1:
        parser.error(
            "give exactly one of a queue directory, --connect or "
            "--connect-http"
        )
    if args.auth_token is not None and args.queue is not None:
        parser.error(
            "--auth-token applies to --connect/--connect-http; the file "
            "queue has no authentication"
        )
    if args.log_json:
        configure_json_logging()
    event_log = None
    if args.metrics_jsonl is not None:
        event_log = EventLog(
            args.metrics_jsonl,
            run_id=args.worker_id or f"w{os.getpid()}",
        )
        set_event_log(event_log)
    try:
        run_worker(
            args.queue,
            worker_id=args.worker_id,
            lease_timeout=args.lease_timeout,
            poll_interval=args.poll_interval,
            max_tasks=args.max_tasks,
            orphan_timeout=args.orphan_timeout,
            connect=args.connect,
            connect_http=args.connect_http,
            auth_token=args.auth_token,
        )
    except WorkQueueAuthError as exc:
        # A wrong shared secret is a configuration error: exit with a
        # clear message (no token in it), never retry-loop.
        print(f"worker: authentication failed: {exc}", file=sys.stderr)
        return 2
    except WorkQueueProtocolError as exc:
        # So is version skew: retrying cannot make the two sides speak the
        # same protocol, so exit loudly before claiming anything.
        print(f"worker: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # Invalid connection parameters (e.g. a --connect-http URL with a
        # query string) are configuration errors too: fail loudly before
        # any request is made, never retry-loop on a malformed endpoint.
        print(f"worker: {exc}", file=sys.stderr)
        return 2
    finally:
        if event_log is not None:
            set_event_log(None)
            event_log.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Directory-backed work queue with heartbeat leases.

The substrate under :class:`~repro.campaign.backends.DistributedBackend`: a
coordinator enqueues pickled work items into a shared directory, worker
processes (``python -m repro.campaign.worker``) claim them by atomic rename,
heartbeat while executing, and publish pickled results the same way.  All
coordination happens through the filesystem, so "distributed" means anything
that shares the directory — local subprocesses, containers with a bind
mount, or machines on a network filesystem.

Layout under the queue root (``<run>`` is the campaign's run id — results
from another run, e.g. an in-flight worker of a killed previous campaign
finishing late on a reused directory, are ignored)::

    tasks/<index>.<run>.task              pending work (pickled payload)
    claimed/<index>.<run>.<worker>.task   leased work; mtime is the heartbeat
    results/<index>.<run>.result          completed work (pickled result)
    stop                                  sentinel: workers exit when idle
    coordinator                           coordinator heartbeat (orphan guard)

Claiming renames the task file into ``claimed/`` — the rename is atomic, so
exactly one claimer wins.  A worker that dies mid-task stops refreshing the
lease's mtime; :meth:`FileWorkQueue.reclaim_expired` renames the stale lease
back into ``tasks/`` and another worker picks it up.  A re-leased task may
end up completed twice (the presumed-dead worker finishes after all); both
results are valid renderings of a pure function, and the atomic result
rename makes the last write win cleanly.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Iterable

__all__ = ["FileWorkQueue", "WorkItem"]

#: ``(index, payload, lease_path)`` of one claimed task.
WorkItem = tuple[int, Any, Path]

#: Run id used when none is given (manually driven queues).
_DEFAULT_RUN = "run0"


class FileWorkQueue:
    """One work-queue directory, usable from coordinator and workers alike.

    ``run_id`` namespaces task and result files: a coordinator's
    :meth:`collect` only accepts results of its own run, so a worker of a
    previous (killed) campaign finishing late on a reused directory cannot
    smuggle its outcome into the next one.  Workers claim tasks of *any*
    run and answer under the task's run id, so they never need to know it.
    """

    def __init__(self, root: str | Path, run_id: str | None = None) -> None:
        if run_id is not None and ("." in run_id or os.sep in run_id):
            raise ValueError(f"run id {run_id!r} must not contain '.' or path separators")
        self.root = Path(root)
        self.run_id = run_id or _DEFAULT_RUN
        self.tasks_dir = self.root / "tasks"
        self.claimed_dir = self.root / "claimed"
        self.results_dir = self.root / "results"
        self._stop_path = self.root / "stop"
        for directory in (self.tasks_dir, self.claimed_dir, self.results_dir):
            directory.mkdir(parents=True, exist_ok=True)

    # -- coordinator side --------------------------------------------------------

    def enqueue(self, index: int, payload: Any) -> Path:
        """Publish one pickled work item as ``tasks/<index>.<run>.task``."""
        path = self.tasks_dir / f"{index:08d}.{self.run_id}.task"
        self._write_atomic(path, pickle.dumps(payload))
        return path

    def reset(self) -> None:
        """Purge tasks, leases, results and the stop sentinel.

        A queue directory hosts **one campaign at a time**: a coordinator
        reusing an explicit directory must reset it first, or stale result
        files from the previous campaign would be collected as this run's
        outcomes and the leftover stop sentinel would send fresh workers
        straight home.
        """
        for directory in (self.tasks_dir, self.claimed_dir, self.results_dir):
            for path in self._entries(directory):
                try:
                    path.unlink()
                except OSError:
                    pass
        try:
            self._stop_path.unlink()
        except OSError:
            pass

    def reclaim_expired(self, lease_timeout: float) -> list[int]:
        """Re-queue claimed tasks whose heartbeat is older than the lease.

        Returns the re-queued indices.  The rename back into ``tasks/`` is
        atomic, so a worker that is merely slow (not dead) keeps running and
        simply publishes a duplicate — equally valid — result.
        """
        reclaimed: list[int] = []
        now = time.time()
        for lease in self._entries(self.claimed_dir):
            try:
                age = now - lease.stat().st_mtime
            except OSError:
                continue  # completed (or reclaimed) under our feet
            if age <= lease_timeout:
                continue
            index, run = self._index_and_run_of(lease)
            try:
                os.rename(lease, self.tasks_dir / f"{index:08d}.{run}.task")
            except OSError:
                continue
            reclaimed.append(index)
        return reclaimed

    def collect(self, seen: Iterable[int] = ()) -> dict[int, Any]:
        """Unpickle this run's result files not in ``seen``; corrupt files
        are skipped (a torn read of a result being renamed is transient,
        not fatal), other runs' results are ignored."""
        known = set(seen)
        collected: dict[int, Any] = {}
        for path in self._entries(self.results_dir):
            index, run = self._index_and_run_of(path)
            if run != self.run_id or index in known:
                continue
            try:
                collected[index] = pickle.loads(path.read_bytes())
            except (OSError, pickle.UnpicklingError, EOFError):
                continue
        return collected

    def pending_count(self) -> int:
        """Tasks not yet claimed (cheap health probe for coordinators)."""
        return sum(1 for _ in self._entries(self.tasks_dir))

    def request_stop(self) -> None:
        """Raise the stop sentinel: workers finish their current task and exit."""
        self._stop_path.touch()

    def touch_coordinator(self) -> None:
        """Coordinator heartbeat: proof to workers that someone still reads
        results.  A coordinator killed without cleanup stops touching this,
        and idle workers eventually exit instead of polling forever."""
        (self.root / "coordinator").touch()

    def coordinator_age(self) -> float | None:
        """Seconds since the coordinator heartbeat; ``None`` when a
        coordinator never announced itself (manually driven queues)."""
        try:
            return time.time() - (self.root / "coordinator").stat().st_mtime
        except OSError:
            return None

    # -- worker side -------------------------------------------------------------

    def claim(self, worker_id: str) -> WorkItem | None:
        """Lease the lowest-index pending task, or ``None`` when none pend.

        The claim is an atomic rename into ``claimed/``; losing a race for
        one task simply moves on to the next.
        """
        if os.sep in worker_id or "." in worker_id:
            raise ValueError(f"worker id {worker_id!r} must not contain '.' or path separators")
        for task in sorted(self._entries(self.tasks_dir)):
            index, run = self._index_and_run_of(task)
            lease = self.claimed_dir / f"{index:08d}.{run}.{worker_id}.task"
            try:
                os.rename(task, lease)
            except OSError:
                continue  # another claimer won this task
            try:
                payload = pickle.loads(lease.read_bytes())
            except Exception as exc:
                # Enqueue writes are atomic, so an unreadable payload is a
                # poison pill, not a race — including unpickling errors that
                # surface as ImportError/AttributeError when the payload's
                # function is not importable here.  Ship it back as a failed
                # result rather than crash-looping every worker over it.
                self.complete(index, ("error", f"unreadable task payload: {exc!r}"), lease)
                continue
            return index, payload, lease

    def heartbeat(self, lease_path: Path) -> None:
        """Refresh the lease so the coordinator knows the worker is alive."""
        try:
            os.utime(lease_path)
        except OSError:
            pass  # lease was reclaimed; the result will still be accepted

    def complete(self, index: int, result: Any, lease_path: Path | None = None) -> None:
        """Publish the pickled result and release the lease.

        The result answers under the *task's* run id (from the lease name)
        so workers serve any coordinator; without a lease (coordinator-side
        injection) this queue's own run id is used.
        """
        run = self._index_and_run_of(lease_path)[1] if lease_path else self.run_id
        self._write_atomic(
            self.results_dir / f"{index:08d}.{run}.result", pickle.dumps(result)
        )
        if lease_path is not None:
            try:
                lease_path.unlink()
            except OSError:
                pass  # reclaimed while we ran; nothing left to release

    def stop_requested(self) -> bool:
        return self._stop_path.exists()

    # -- internal ----------------------------------------------------------------

    @staticmethod
    def _entries(directory: Path) -> list[Path]:
        try:
            return [path for path in directory.iterdir() if not path.name.endswith(".tmp")]
        except FileNotFoundError:
            return []

    @staticmethod
    def _index_and_run_of(path: Path) -> tuple[int, str]:
        tokens = path.name.split(".")
        return int(tokens[0]), tokens[1]

    @staticmethod
    def _write_atomic(path: Path, blob: bytes) -> None:
        with tempfile.NamedTemporaryFile(
            dir=path.parent, suffix=".tmp", delete=False
        ) as handle:
            handle.write(blob)
            temp_name = handle.name
        os.replace(temp_name, path)

"""Co-simulation engine, scenarios, telemetry recording and flight metrics."""

#: Behavioural version of the simulation stack (dynamics, scheduler, sensor,
#: network and protection models).  Bump it whenever a change makes previously
#: recorded flight results stale — it salts every cache key of the campaign
#: result store (:mod:`repro.store`), so bumping invalidates all cached
#: flights at once.  Pure refactors that keep trajectories bit-identical
#: (e.g. the PR 1 cross-product rewrite) must NOT bump it.
SIM_VERSION = "1"

from .engine import HostLoadConfig, SystemSimulation
from .flight import FLIGHT_DRAM_PARAMETERS, FlightResult, FlightSimulation, run_scenario
from .metrics import FlightMetrics, compute_metrics
from .recorder import FlightRecorder, FlightSample
from .scenario import ControllerPlacement, FlightScenario

__all__ = [
    "SIM_VERSION",
    "ControllerPlacement",
    "FLIGHT_DRAM_PARAMETERS",
    "FlightMetrics",
    "FlightRecorder",
    "FlightResult",
    "FlightSample",
    "FlightScenario",
    "FlightSimulation",
    "HostLoadConfig",
    "SystemSimulation",
    "compute_metrics",
    "run_scenario",
]

"""Tests for quaternion utilities and the rigid-body state container."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics import (
    RigidBodyState,
    angle_wrap,
    euler_error,
    quat_conjugate,
    quat_from_axis_angle,
    quat_from_euler,
    quat_multiply,
    quat_normalize,
    quat_rotate,
    quat_rotate_inverse,
    quat_to_euler,
    quat_to_rotation_matrix,
)

angles = st.floats(min_value=-math.pi, max_value=math.pi, allow_nan=False)
small_angles = st.floats(min_value=-1.2, max_value=1.2, allow_nan=False)
vectors = st.lists(
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False), min_size=3, max_size=3
)


class TestQuaternionBasics:
    def test_normalize_unit(self):
        q = quat_normalize(np.array([2.0, 0.0, 0.0, 0.0]))
        assert np.allclose(q, [1.0, 0.0, 0.0, 0.0])

    def test_normalize_zero_returns_identity(self):
        q = quat_normalize(np.zeros(4))
        assert np.allclose(q, [1.0, 0.0, 0.0, 0.0])

    def test_multiply_identity(self):
        identity = np.array([1.0, 0.0, 0.0, 0.0])
        q = quat_from_euler(0.3, -0.2, 0.7)
        assert np.allclose(quat_multiply(identity, q), q)
        assert np.allclose(quat_multiply(q, identity), q)

    def test_conjugate_is_inverse(self):
        q = quat_from_euler(0.3, -0.2, 0.7)
        product = quat_multiply(q, quat_conjugate(q))
        assert np.allclose(product, [1.0, 0.0, 0.0, 0.0], atol=1e-12)

    def test_rotate_identity_preserves_vector(self):
        v = np.array([1.0, 2.0, 3.0])
        assert np.allclose(quat_rotate(np.array([1.0, 0.0, 0.0, 0.0]), v), v)

    def test_rotate_yaw_90(self):
        q = quat_from_euler(0.0, 0.0, math.pi / 2.0)
        rotated = quat_rotate(q, np.array([1.0, 0.0, 0.0]))
        assert np.allclose(rotated, [0.0, 1.0, 0.0], atol=1e-12)

    def test_rotation_matrix_matches_quat_rotate(self):
        q = quat_from_euler(0.4, -0.3, 1.2)
        v = np.array([0.3, -1.0, 2.0])
        assert np.allclose(quat_to_rotation_matrix(q) @ v, quat_rotate(q, v), atol=1e-10)

    def test_axis_angle_zero_axis_is_identity(self):
        q = quat_from_axis_angle(np.zeros(3), 1.0)
        assert np.allclose(q, [1.0, 0.0, 0.0, 0.0])

    def test_axis_angle_matches_euler_yaw(self):
        q1 = quat_from_axis_angle(np.array([0.0, 0.0, 1.0]), 0.5)
        q2 = quat_from_euler(0.0, 0.0, 0.5)
        assert np.allclose(q1, q2, atol=1e-12)


class TestQuaternionProperties:
    @given(roll=small_angles, pitch=small_angles, yaw=angles)
    @settings(max_examples=80, deadline=None)
    def test_euler_roundtrip(self, roll, pitch, yaw):
        q = quat_from_euler(roll, pitch, yaw)
        r2, p2, y2 = quat_to_euler(q)
        assert math.isclose(r2, roll, abs_tol=1e-9)
        assert math.isclose(p2, pitch, abs_tol=1e-9)
        assert math.isclose(angle_wrap(y2 - yaw), 0.0, abs_tol=1e-9)

    @given(roll=small_angles, pitch=small_angles, yaw=angles, v=vectors)
    @settings(max_examples=80, deadline=None)
    def test_rotation_preserves_norm(self, roll, pitch, yaw, v):
        q = quat_from_euler(roll, pitch, yaw)
        rotated = quat_rotate(q, np.array(v))
        assert math.isclose(np.linalg.norm(rotated), np.linalg.norm(v), rel_tol=1e-9, abs_tol=1e-9)

    @given(roll=small_angles, pitch=small_angles, yaw=angles, v=vectors)
    @settings(max_examples=80, deadline=None)
    def test_rotate_then_inverse_is_identity(self, roll, pitch, yaw, v):
        q = quat_from_euler(roll, pitch, yaw)
        v = np.array(v)
        assert np.allclose(quat_rotate_inverse(q, quat_rotate(q, v)), v, atol=1e-8)

    @given(a=angles)
    @settings(max_examples=100, deadline=None)
    def test_angle_wrap_range(self, a):
        wrapped = angle_wrap(a * 7.0)
        assert -math.pi < wrapped <= math.pi + 1e-12

    @given(a=angles)
    @settings(max_examples=100, deadline=None)
    def test_angle_wrap_preserves_angle_modulo_2pi(self, a):
        wrapped = angle_wrap(a)
        assert math.isclose(
            math.fmod(wrapped - a, 2.0 * math.pi), 0.0, abs_tol=1e-9
        ) or math.isclose(abs(math.fmod(wrapped - a, 2.0 * math.pi)), 2.0 * math.pi, abs_tol=1e-9)


class TestEulerError:
    def test_zero_error(self):
        assert euler_error((0.1, 0.2, 0.3), (0.1, 0.2, 0.3)) == (0.0, 0.0, 0.0)

    def test_wrapping_across_pi(self):
        error = euler_error((0.0, 0.0, math.pi - 0.1), (0.0, 0.0, -math.pi + 0.1))
        assert math.isclose(error[2], 0.2, abs_tol=1e-9)


class TestRigidBodyState:
    def test_default_state_is_at_origin(self):
        state = RigidBodyState()
        assert np.allclose(state.position, 0.0)
        assert np.allclose(state.quaternion, [1.0, 0.0, 0.0, 0.0])

    def test_altitude_sign_convention(self):
        state = RigidBodyState(position=np.array([0.0, 0.0, -2.5]))
        assert state.altitude == pytest.approx(2.5)

    def test_copy_is_independent(self):
        state = RigidBodyState()
        copy = state.copy()
        copy.position[0] = 9.0
        assert state.position[0] == 0.0

    def test_vector_roundtrip(self):
        state = RigidBodyState(
            position=np.array([1.0, 2.0, 3.0]),
            velocity=np.array([-1.0, 0.5, 0.2]),
            quaternion=quat_from_euler(0.1, 0.2, 0.3),
            angular_velocity=np.array([0.4, -0.4, 0.0]),
        )
        rebuilt = RigidBodyState.from_vector(state.as_vector())
        assert np.allclose(rebuilt.position, state.position)
        assert np.allclose(rebuilt.velocity, state.velocity)
        assert np.allclose(rebuilt.quaternion, state.quaternion)
        assert np.allclose(rebuilt.angular_velocity, state.angular_velocity)

    def test_from_vector_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            RigidBodyState.from_vector(np.zeros(12))

    def test_euler_property(self):
        state = RigidBodyState(quaternion=quat_from_euler(0.1, -0.2, 0.3))
        roll, pitch, yaw = state.euler
        assert roll == pytest.approx(0.1, abs=1e-9)
        assert pitch == pytest.approx(-0.2, abs=1e-9)
        assert yaw == pytest.approx(0.3, abs=1e-9)

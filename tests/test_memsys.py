"""Tests for the DRAM contention model, performance counters and MemGuard."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys import (
    CounterBank,
    DramModel,
    DramParameters,
    MemGuard,
    MemGuardConfig,
    PerformanceCounter,
)


class TestDramModel:
    def test_idle_bus_has_unit_latency(self):
        assert DramModel().latency_factor(0.0) == pytest.approx(1.0)

    def test_latency_grows_with_demand(self):
        model = DramModel()
        low = model.latency_factor(1e6)
        high = model.latency_factor(5e6)
        assert high > low > 1.0

    def test_latency_is_capped_at_saturation(self):
        params = DramParameters()
        model = DramModel(params)
        saturated = model.latency_factor(1e9)
        expected_max = 1.0 + params.contention_gain * params.max_utilization / (
            1.0 - params.max_utilization
        )
        assert saturated == pytest.approx(expected_max)

    def test_utilization_capped(self):
        model = DramModel()
        assert model.utilization(1e12) == pytest.approx(DramParameters().max_utilization)

    def test_last_values_cached(self):
        model = DramModel()
        model.latency_factor(3e6)
        assert model.last_utilization == pytest.approx(0.5)
        assert model.last_latency_factor > 1.0

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            DramModel().latency_factor(-1.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DramParameters(peak_accesses_per_second=0.0)
        with pytest.raises(ValueError):
            DramParameters(max_utilization=1.5)

    def test_stretch_execution_bounds(self):
        assert DramModel.stretch_execution(1.0, 0.5) == pytest.approx(1.0)
        assert DramModel.stretch_execution(3.0, 0.0) == pytest.approx(1.0)
        assert DramModel.stretch_execution(3.0, 1.0) == pytest.approx(3.0)
        assert DramModel.stretch_execution(3.0, 0.5) == pytest.approx(2.0)

    def test_stretch_execution_validation(self):
        with pytest.raises(ValueError):
            DramModel.stretch_execution(0.5, 0.5)
        with pytest.raises(ValueError):
            DramModel.stretch_execution(2.0, 1.5)

    @given(demand=st.floats(min_value=0.0, max_value=1e9),
           stall=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_stretch_is_monotone_and_at_least_one(self, demand, stall):
        model = DramModel()
        factor = model.latency_factor(demand)
        stretch = DramModel.stretch_execution(factor, stall)
        assert stretch >= 1.0
        assert stretch <= factor + 1e-9


class TestPerformanceCounter:
    def test_counts_accumulate(self):
        counter = PerformanceCounter(0)
        counter.add(100)
        counter.add(50)
        assert counter.total == 150
        assert counter.since_reset == 150

    def test_reset_clears_period_count_only(self):
        counter = PerformanceCounter(0)
        counter.add(100)
        counter.reset()
        assert counter.total == 100
        assert counter.since_reset == 0

    def test_overflow_threshold(self):
        counter = PerformanceCounter(0)
        counter.program_overflow(100)
        assert not counter.add(50)
        assert counter.add(60)
        assert counter.overflowed

    def test_overflow_cleared_by_reset(self):
        counter = PerformanceCounter(0)
        counter.program_overflow(10)
        counter.add(20)
        counter.reset()
        assert not counter.overflowed

    def test_negative_values_rejected(self):
        counter = PerformanceCounter(0)
        with pytest.raises(ValueError):
            counter.add(-1)
        with pytest.raises(ValueError):
            counter.program_overflow(-5)

    def test_counter_bank(self):
        bank = CounterBank(4)
        bank[2].add(10)
        assert bank.totals() == [0, 0, 10, 0]
        assert len(bank) == 4
        with pytest.raises(ValueError):
            CounterBank(0)


class TestMemGuard:
    def test_unregulated_core_never_throttled(self):
        memguard = MemGuard(2, MemGuardConfig(budgets={1: 100}))
        memguard.record_accesses(0, 10_000)
        assert not memguard.is_throttled(0)

    def test_core_throttled_when_budget_exhausted(self):
        memguard = MemGuard(2, MemGuardConfig(budgets={1: 100}))
        memguard.record_accesses(1, 150)
        assert memguard.is_throttled(1)
        assert memguard.throttle_events == 1

    def test_budget_replenished_at_period_boundary(self):
        memguard = MemGuard(1, MemGuardConfig(period=0.001, budgets={0: 100}))
        memguard.record_accesses(0, 200)
        assert memguard.is_throttled(0)
        memguard.advance_to(0.001)
        assert not memguard.is_throttled(0)
        assert memguard.allowed_accesses(0) == 100

    def test_allowed_accesses_decreases(self):
        memguard = MemGuard(1, MemGuardConfig(budgets={0: 100}))
        memguard.record_accesses(0, 30)
        assert memguard.allowed_accesses(0) == 70

    def test_disable_makes_it_transparent(self):
        memguard = MemGuard(1, MemGuardConfig(budgets={0: 10}))
        memguard.disable()
        memguard.record_accesses(0, 1000)
        assert not memguard.is_throttled(0)
        assert memguard.allowed_accesses(0) is None
        memguard.enable()
        memguard.record_accesses(0, 1000)
        assert memguard.is_throttled(0)

    def test_set_budget_reprograms_counter(self):
        memguard = MemGuard(1)
        assert memguard.allowed_accesses(0) is None
        memguard.set_budget(0, 50)
        assert memguard.allowed_accesses(0) == 50
        with pytest.raises(ValueError):
            memguard.set_budget(0, -1)

    def test_reclaim_draws_from_donation_pool(self):
        config = MemGuardConfig(period=0.001, budgets={0: 100, 1: 100}, reclaim=True)
        memguard = MemGuard(2, config)
        # Core 0 uses nothing during the first period; at the boundary its
        # unused budget is donated.
        memguard.advance_to(0.001)
        memguard.record_accesses(1, 150)
        # Core 1 exceeded its budget by 50 but the pool covers it.
        assert not memguard.is_throttled(1)

    def test_reclaim_pool_exhaustion_throttles(self):
        config = MemGuardConfig(period=0.001, budgets={0: 10, 1: 100}, reclaim=True)
        memguard = MemGuard(2, config)
        memguard.record_accesses(0, 10)
        memguard.advance_to(0.001)
        memguard.record_accesses(1, 500)
        assert memguard.is_throttled(1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MemGuardConfig(period=0.0)
        with pytest.raises(ValueError):
            MemGuardConfig(budgets={0: -1})

"""Flight control substrate: PX4-like complex controller and the safety controller."""

from .allocator import ControlAllocation, QuadXAllocator
from .attitude_control import AttitudeControlGains, AttitudeController
from .complex_controller import ComplexController, ComplexControllerConfig
from .modes import FlightMode, mode_from_rc
from .pid import PidController, PidGains
from .position_control import PositionControlGains, PositionController
from .rate_control import RateControlGains, RateController
from .safety_controller import SafetyController, SafetyControllerConfig
from .setpoints import ActuatorCommand, AttitudeSetpoint, PositionSetpoint, RateSetpoint

__all__ = [
    "ActuatorCommand",
    "AttitudeControlGains",
    "AttitudeController",
    "AttitudeSetpoint",
    "ComplexController",
    "ComplexControllerConfig",
    "ControlAllocation",
    "FlightMode",
    "PidController",
    "PidGains",
    "PositionControlGains",
    "PositionController",
    "PositionSetpoint",
    "QuadXAllocator",
    "RateControlGains",
    "RateController",
    "RateSetpoint",
    "SafetyController",
    "SafetyControllerConfig",
    "mode_from_rc",
]

"""Attitude control loop: attitude error to body-rate setpoints."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dynamics.state import angle_wrap
from .setpoints import AttitudeSetpoint, RateSetpoint

__all__ = ["AttitudeControlGains", "AttitudeController"]


@dataclass(frozen=True)
class AttitudeControlGains:
    """Proportional gains and rate limits of the attitude loop."""

    roll_p: float = 6.0
    pitch_p: float = 6.0
    yaw_p: float = 3.0
    max_rate: float = 3.5  # [rad/s]
    max_yaw_rate: float = 1.5  # [rad/s]


class AttitudeController:
    """Proportional attitude controller (PX4-style P-loop on attitude error)."""

    def __init__(self, gains: AttitudeControlGains | None = None) -> None:
        self.gains = gains or AttitudeControlGains()

    def update(
        self,
        setpoint: AttitudeSetpoint,
        roll: float,
        pitch: float,
        yaw: float,
    ) -> RateSetpoint:
        """Compute rate setpoints from the attitude error."""
        gains = self.gains
        roll_rate = gains.roll_p * angle_wrap(setpoint.roll - roll)
        pitch_rate = gains.pitch_p * angle_wrap(setpoint.pitch - pitch)
        yaw_rate = gains.yaw_p * angle_wrap(setpoint.yaw - yaw)

        rates = np.array(
            [
                np.clip(roll_rate, -gains.max_rate, gains.max_rate),
                np.clip(pitch_rate, -gains.max_rate, gains.max_rate),
                np.clip(yaw_rate, -gains.max_yaw_rate, gains.max_yaw_rate),
            ]
        )
        return RateSetpoint(rates=rates, thrust=setpoint.thrust)

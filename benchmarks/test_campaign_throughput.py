"""Campaign throughput benchmark: the ISSUE's 3-axis acceptance sweep.

Runs the 2 MemGuard budgets x 2 attack starts x 3 seeds = 12-flight grid
through the :class:`~repro.campaign.CampaignRunner` twice — serial and
process-pool — and checks that

* both runs complete with no failed variants,
* serial and parallel summaries are *identical* (execution strategy must not
  leak into results), and
* on machines with at least four cores the pool is >= 1.5x faster than
  serial (informational on smaller machines, where the pool cannot win).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.report import format_table
from repro.campaign import CampaignRunner, ScenarioGrid
from repro.sim import FlightScenario

#: Per-flight duration [s]; short enough to keep the benchmark affordable,
#: long enough that each flight sees the attack start and settle.
FLIGHT_DURATION = 3.0

SPEEDUP_CORES = 4
SPEEDUP_TARGET = 1.5


def acceptance_grid() -> ScenarioGrid:
    """The ISSUE's 3-axis sweep: 2 budgets x 2 attack starts x 3 seeds."""
    return ScenarioGrid(
        FlightScenario.figure5(duration=FLIGHT_DURATION).with_name("campaign-bench"),
        axes={
            "memguard_budget": [1500, 3000],
            "attack_start": [1.0, 2.0],
            "seed": [101, 102, 103],
        },
    )


@pytest.fixture(scope="module")
def campaign_runs():
    """Fly the acceptance grid once serially and once on the pool."""
    grid = acceptance_grid()
    assert len(grid) == 12
    serial = CampaignRunner(mode="serial").run(grid)
    parallel = CampaignRunner(mode="parallel").run(grid)
    return serial, parallel


def test_serial_and_parallel_campaigns_agree(campaign_runs, report):
    serial, parallel = campaign_runs
    assert len(serial) == len(parallel) == 12
    assert serial.failures() == ()
    assert parallel.failures() == ()
    # Execution strategy must not change results.
    assert serial.summaries() == parallel.summaries()

    cores = os.cpu_count() or 1
    speedup = serial.wall_time / parallel.wall_time if parallel.wall_time else 0.0
    rows = [
        ["serial", f"{serial.wall_time:.1f} s", f"{serial.wall_time / 12:.2f} s"],
        ["process pool", f"{parallel.wall_time:.1f} s", f"{parallel.wall_time / 12:.2f} s"],
    ]
    text = format_table(
        ["Mode", "Campaign wall time", "Per flight"],
        rows,
        title=(
            f"Campaign throughput: 12 x {FLIGHT_DURATION:.0f} s flights on "
            f"{cores} core(s), speedup {speedup:.2f}x"
        ),
    )
    report("campaign_throughput", text + "\n\n" + serial.to_text(), data={
        "flights": len(serial),
        "flight_duration_s": FLIGHT_DURATION,
        "serial_wall_s": round(serial.wall_time, 3),
        "parallel_wall_s": round(parallel.wall_time, 3),
        "speedup": round(speedup, 3),
    })


def test_parallel_speedup(campaign_runs):
    cores = os.cpu_count() or 1
    serial, parallel = campaign_runs
    speedup = serial.wall_time / parallel.wall_time if parallel.wall_time else 0.0
    if cores < SPEEDUP_CORES:
        pytest.skip(
            f"speedup target needs >= {SPEEDUP_CORES} cores, "
            f"machine has {cores} (measured {speedup:.2f}x)"
        )
    if os.environ.get("CI"):
        # Shared CI runners are too noisy for a hard wall-clock gate: a
        # contended VM measuring 1.4x would block unrelated PRs.  Report
        # instead of asserting there; dedicated machines still enforce it.
        if speedup < SPEEDUP_TARGET:
            pytest.skip(
                f"informational on CI: measured {speedup:.2f}x on {cores} cores "
                f"(target {SPEEDUP_TARGET}x)"
            )
        return
    assert speedup >= SPEEDUP_TARGET, (
        f"parallel campaign only {speedup:.2f}x faster than serial "
        f"on {cores} cores (target {SPEEDUP_TARGET}x)"
    )

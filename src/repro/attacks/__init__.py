"""Attack library: the DoS attacks evaluated in the paper plus a CPU hog."""

from .base import Attack
from .controller_kill import ControllerKillAttack
from .cpu_hog import CpuHogAttack
from .memory_dos import MemoryBandwidthAttack
from .udp_flood import UdpFloodAttack

__all__ = [
    "Attack",
    "ControllerKillAttack",
    "CpuHogAttack",
    "MemoryBandwidthAttack",
    "UdpFloodAttack",
]

"""Unified observability plane: metrics, timing spans and structured events.

The paper's claims are about *timing*, and the scaling layers (campaign
runner, result store, work-queue transports, batch compute plane) need to
answer "where is the fleet, what is slow, what is failing" while a campaign
is running.  This package is the shared, dependency-free substrate they are
instrumented with:

* :mod:`.metrics` — a :class:`MetricsRegistry` of labelled counters, gauges
  and histograms, renderable as Prometheus text exposition (the HTTP
  coordinator serves it at ``GET /metrics``) or as a plain snapshot dict.
* :mod:`.spans` — ``with span("phase"):`` monotonic timings feeding the
  ``repro_span_seconds`` histogram and per-run :class:`SpanCollector`
  aggregation (surfaced as ``CampaignResult.telemetry["spans"]``).
* :mod:`.events` — a thread-safe, schema-versioned JSONL event log
  (``--metrics-jsonl``) plus JSON-lines logging for the ``repro`` logger
  hierarchy (``--log-json``).

Everything is safe to call from uninstrumented contexts: :func:`emit` is a
no-op until a sink is installed, and :func:`set_enabled` (False) reduces
every metric mutation and span to a boolean check — which is how the
overhead gate in ``benchmarks/test_campaign_throughput.py`` demonstrates
the cost of the instrumentation itself.

See ``docs/observability.md`` for the metrics catalogue, endpoint examples
and the JSONL record schema.
"""

from .events import (
    EVENT_SCHEMA,
    EventLog,
    configure_json_logging,
    emit,
    get_event_log,
    set_event_log,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    enabled,
    set_enabled,
)
from .spans import SpanCollector, span

__all__ = [
    "Counter",
    "EVENT_SCHEMA",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanCollector",
    "configure_json_logging",
    "default_registry",
    "emit",
    "enabled",
    "get_event_log",
    "set_enabled",
    "set_event_log",
    "span",
]

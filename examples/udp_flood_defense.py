#!/usr/bin/env python3
"""UDP flood DoS defence (the paper's Figure 7).

The attacker floods the UDP port on which the HCE receives the complex
controller's motor outputs.  The iptables rate limit absorbs most of the
flood, but the legitimate actuator stream is starved enough that the drone's
flight degrades; the security monitor's attitude-error rule then kills the
receiving thread and hands control to the safety controller.

The example also repeats the attack with the security monitor disabled to
show what the flood does to an unprotected drone.

Usage::

    python examples/udp_flood_defense.py [--duration SECONDS] [--rate PACKETS_PER_SECOND]
"""

from __future__ import annotations

import argparse

from repro import FlightScenario, run_scenario
from repro.analysis import format_table
from repro.attacks import UdpFloodAttack


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=20.0)
    parser.add_argument("--attack-start", type=float, default=6.0)
    parser.add_argument("--rate", type=float, default=20000.0,
                        help="flood rate in packets per second")
    args = parser.parse_args()

    flood = UdpFloodAttack(start_time=args.attack_start, packets_per_second=args.rate)
    protected = FlightScenario.figure7(
        attack_start=args.attack_start, duration=args.duration
    ).with_attacks(flood)
    unprotected = protected.with_config(protected.config.without_monitor()).with_name(
        "fig7-no-monitor"
    )

    rows = []
    for label, scenario in (("monitor ON", protected), ("monitor OFF", unprotected)):
        print(f"Running {label}: {scenario.name} ...")
        result = run_scenario(scenario)
        first_rule = result.violations[0].rule if result.violations else "-"
        rows.append([
            label,
            "CRASHED" if result.crashed else "survived",
            first_rule,
            f"{result.switch_time:.1f} s" if result.switch_time is not None else "-",
            f"{result.metrics.max_deviation_after:.2f} m",
            "yes" if result.metrics.recovered else "no",
        ])

    print()
    print(format_table(
        ["Configuration", "Outcome", "Triggered rule", "Switch time",
         "Max deviation after attack", "Recovered"],
        rows,
        title=f"UDP flood ({args.rate:.0f} pkt/s) against the HCE motor port",
    ))


if __name__ == "__main__":
    main()

"""Setpoint and command dataclasses exchanged between control loops."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "PositionSetpoint",
    "AttitudeSetpoint",
    "RateSetpoint",
    "ActuatorCommand",
]


@dataclass(frozen=True)
class PositionSetpoint:
    """Desired NED position and yaw."""

    position: np.ndarray = field(default_factory=lambda: np.zeros(3))
    yaw: float = 0.0

    @classmethod
    def hover_at(cls, north: float, east: float, altitude: float, yaw: float = 0.0) -> "PositionSetpoint":
        """Convenience constructor from an up-positive altitude."""
        return cls(position=np.array([north, east, -altitude]), yaw=yaw)


@dataclass(frozen=True)
class AttitudeSetpoint:
    """Desired attitude (roll, pitch, yaw) with a collective thrust command."""

    roll: float = 0.0
    pitch: float = 0.0
    yaw: float = 0.0
    thrust: float = 0.0


@dataclass(frozen=True)
class RateSetpoint:
    """Desired body angular rates with a collective thrust command."""

    rates: np.ndarray = field(default_factory=lambda: np.zeros(3))
    thrust: float = 0.0


@dataclass(frozen=True)
class ActuatorCommand:
    """Normalised per-motor commands produced by a controller.

    Attributes
    ----------
    motors:
        Four normalised throttle values in [0, 1].
    timestamp:
        Controller time at which the command was computed [s].
    source:
        Identifier of the producing controller ("complex" or "safety").
    sequence:
        Monotonically increasing counter, used by the security monitor to
        detect stale or missing outputs.
    """

    motors: np.ndarray = field(default_factory=lambda: np.zeros(4))
    timestamp: float = 0.0
    source: str = "complex"
    sequence: int = 0

    def clipped(self) -> "ActuatorCommand":
        """Return a copy with motor commands clipped to [0, 1]."""
        return ActuatorCommand(
            motors=np.clip(self.motors, 0.0, 1.0),
            timestamp=self.timestamp,
            source=self.source,
            sequence=self.sequence,
        )

"""Batched structure-of-arrays simulation core.

Runs N flight scenarios in lockstep as one vectorised replay instead of N
serial co-simulations.  The split is:

* :mod:`.trace` runs the *real* scheduler/network/container substrate once
  per **timing class** (scenarios identical up to state-only fields such as
  the seed) and records a flat event program — which driver/controller task
  fired when, and which sensor/actuator payload indices it moved.
* :mod:`.core` compiles the per-class programs into one merged op list and
  replays all the state mathematics (sensors, estimators, controllers, the
  Simplex decision logic, the plant) vectorised over the lane axis.

The scalar :class:`~repro.sim.flight.FlightSimulation` stays the golden
reference; the batch core is gated on tolerance-equivalence against it (see
``tests/test_batch_equivalence.py``).
"""

from .core import BatchSimulation, run_batch
from .trace import clear_trace_cache, timing_fingerprint

__all__ = ["BatchSimulation", "run_batch", "clear_trace_cache", "timing_fingerprint"]

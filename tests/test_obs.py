"""Tests for the observability plane (``repro.obs``) and its wiring.

Layered like the package itself:

* metrics primitives — counters/gauges/histograms with labels, the
  Prometheus text rendering (including the explicit-zero line for series
  that never fired), plain-data snapshots, and the process-wide kill
  switch;
* timing spans and per-run :class:`~repro.obs.SpanCollector` aggregation;
* the JSONL :class:`~repro.obs.EventLog` (envelope, thread safety,
  never-raises writes) and the process-wide emit sink;
* queue/transport instrumentation — ``stats_snapshot`` on both queue
  flavours, ``status()`` hygiene (no lease tokens), auth-denial counting;
* the coordinator's live ``GET /metrics`` + ``GET /status`` endpoints,
  including the acceptance-criterion scrape of a campaign *while it is
  running*;
* telemetry flowing into :class:`~repro.campaign.CampaignResult` and out
  through the JSON export and the ``--metrics-jsonl`` CLI flag.
"""

import io
import json
import logging
import math
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.campaign import (
    CampaignRunner,
    DistributedBackend,
    FileWorkQueue,
    HttpWorkQueue,
    ScenarioGrid,
)
from repro.campaign.__main__ import main as campaign_main
from repro.campaign.worker import _build_parser as worker_parser
from repro.obs import (
    EVENT_SCHEMA,
    EventLog,
    MetricsRegistry,
    SpanCollector,
    configure_json_logging,
    emit,
    set_enabled,
    set_event_log,
    span,
)
from repro.sim import FlightScenario

TINY = FlightScenario(name="obs-tiny", duration=0.4, record_hz=20.0)


@pytest.fixture(autouse=True)
def _clean_global_obs_state():
    """No test may leak a disabled switch or an installed sink."""
    yield
    set_enabled(True)
    set_event_log(None)


# -- metrics primitives --


class TestCounter:
    def test_counts_per_label_set(self):
        counter = MetricsRegistry().counter("jobs_total", help="Jobs.")
        counter.inc()
        counter.inc(2, status="ok")
        counter.inc(status="ok")
        assert counter.value() == 1
        assert counter.value(status="ok") == 3
        assert counter.value(status="missing") == 0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("jobs_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("0bad")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("fine_total").inc(**{"bad-label": 1})


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.gauge("depth")
        with pytest.raises(TypeError, match="already registered as gauge"):
            registry.counter("depth")

    def test_reregistration_returns_the_same_instance(self):
        registry = MetricsRegistry()
        assert registry.gauge("depth") is registry.gauge("depth")


class TestHistogram:
    def test_summary_aggregates(self):
        histogram = MetricsRegistry().histogram("lat", buckets=[0.1, 1.0])
        for value in (0.05, 0.5, 2.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["total_s"] == pytest.approx(2.55)
        assert summary["min_s"] == pytest.approx(0.05)
        assert summary["max_s"] == pytest.approx(2.0)
        assert MetricsRegistry().histogram("lat").summary() is None

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            MetricsRegistry().histogram("lat", buckets=[])


class TestKillSwitch:
    def test_disabled_mutations_are_no_ops(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        histogram = registry.histogram("h")
        set_enabled(False)
        counter.inc()
        registry.gauge("g").set(9)
        histogram.observe(1.0)
        with span("dead.phase"):
            pass
        set_enabled(True)
        assert counter.value() == 0
        assert registry.gauge("g").value() == 0
        assert histogram.summary() is None
        assert obs.default_registry().histogram(
            "repro_span_seconds"
        ).summary(phase="dead.phase") is None


class TestPrometheusRendering:
    def test_headers_series_and_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("req_total", help="Requests.").inc(3, path='a"b\\c')
        text = registry.render_prometheus()
        assert "# HELP req_total Requests." in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{path="a\\"b\\\\c"} 3' in text

    def test_empty_counter_and_gauge_render_explicit_zero(self):
        # "auth denials: 0" must be scrapeable as a statement — a missing
        # series would be indistinguishable from a missing metric.
        registry = MetricsRegistry()
        registry.counter("denials_total")
        registry.gauge("fleet")
        text = registry.render_prometheus()
        assert "denials_total 0" in text
        assert "fleet 0" in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=[0.1, 1.0])
        for value in (0.05, 0.06, 0.5, 5.0):
            histogram.observe(value)
        text = registry.render_prometheus()
        assert 'lat_bucket{le="0.1"} 2' in text
        assert 'lat_bucket{le="1"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_count 4" in text
        assert "lat_sum" in text

    def test_snapshot_is_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("plain_total").inc(2)
        registry.counter("labelled_total").inc(status="ok")
        registry.histogram("lat").observe(0.2)
        snapshot = registry.snapshot()
        assert snapshot["plain_total"] == 2
        assert snapshot["labelled_total"] == {'{status="ok"}': 1}
        assert snapshot["lat"][""]["count"] == 1
        json.dumps(snapshot)  # must be JSON-ready as-is


# -- spans --


class TestSpans:
    def test_span_lands_in_default_registry_histogram(self):
        with span("test.unique-phase-a"):
            time.sleep(0.01)
        summary = obs.default_registry().histogram("repro_span_seconds").summary(
            phase="test.unique-phase-a"
        )
        assert summary is not None
        assert summary["count"] >= 1
        assert summary["max_s"] >= 0.01

    def test_collector_sees_only_spans_while_active(self):
        with span("test.before-collector"):
            pass
        with SpanCollector() as collector:
            with span("test.inside"):
                pass
            with span("test.inside"):
                pass
        with span("test.after-collector"):
            pass
        summaries = collector.summaries()
        assert set(summaries) == {"test.inside"}
        assert summaries["test.inside"]["count"] == 2
        for key in ("count", "total_s", "mean_s", "min_s", "max_s"):
            assert key in summaries["test.inside"]

    def test_collectors_nest(self):
        with SpanCollector() as outer:
            with span("test.outer-only"):
                pass
            with SpanCollector() as inner:
                with span("test.both"):
                    pass
        assert set(outer.summaries()) == {"test.outer-only", "test.both"}
        assert set(inner.summaries()) == {"test.both"}

    def test_span_records_even_when_the_body_raises(self):
        with SpanCollector() as collector:
            with pytest.raises(RuntimeError):
                with span("test.failing"):
                    raise RuntimeError("phase failed")
        assert collector.summaries()["test.failing"]["count"] == 1


# -- event log --


class TestEventLog:
    def test_envelope_and_file_append(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, run_id="r1") as log:
            log.emit("variant-complete", "campaign.runner", variant="v0", ok=True)
        record = json.loads(path.read_text())
        assert record["schema"] == EVENT_SCHEMA
        assert record["run"] == "r1"
        assert record["component"] == "campaign.runner"
        assert record["event"] == "variant-complete"
        assert record["variant"] == "v0" and record["ok"] is True
        assert isinstance(record["ts"], float)

    def test_default_run_id_is_generated(self):
        assert len(EventLog(io.StringIO()).run_id) == 12

    def test_non_serialisable_values_are_stringified(self):
        stream = io.StringIO()
        EventLog(stream, run_id="r").emit("e", "c", obj=object(), nan=math.inf)
        record = json.loads(stream.getvalue())
        assert record["obj"].startswith("<object object")

    def test_envelope_keys_cannot_be_overridden(self):
        stream = io.StringIO()
        EventLog(stream, run_id="real").emit("e", "c", run="forged", schema=99)
        record = json.loads(stream.getvalue())
        assert record["run"] == "real" and record["schema"] == EVENT_SCHEMA

    def test_write_to_closed_stream_does_not_raise(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl", run_id="r")
        log.close()
        log.emit("after-close", "c")  # must not raise

    def test_concurrent_emits_stay_line_atomic(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, run_id="r") as log:
            def hammer(worker: int) -> None:
                for i in range(50):
                    log.emit("tick", "test", worker=worker, i=i)
            threads = [
                threading.Thread(target=hammer, args=(n,)) for n in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        lines = path.read_text().splitlines()
        assert len(lines) == 200
        for line in lines:
            assert json.loads(line)["event"] == "tick"

    def test_process_wide_sink_install_and_restore(self):
        stream = io.StringIO()
        emit("dropped", "test")  # no sink installed: a silent no-op
        log = EventLog(stream, run_id="r")
        previous = set_event_log(log)
        assert previous is None
        emit("captured", "test")
        assert set_event_log(previous) is log
        emit("dropped-again", "test")
        events = [json.loads(line)["event"]
                  for line in stream.getvalue().splitlines()]
        assert events == ["captured"]


class TestJsonLogging:
    def test_records_render_as_json_lines(self):
        stream = io.StringIO()
        handler = configure_json_logging(stream=stream, logger_name="repro")
        try:
            logging.getLogger("repro.campaign.runner").info(
                "campaign %s done", "c1"
            )
        finally:
            logging.getLogger("repro").removeHandler(handler)
        record = json.loads(stream.getvalue())
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.campaign.runner"
        assert record["message"] == "campaign c1 done"

    def test_package_logger_has_a_null_handler(self):
        handlers = logging.getLogger("repro.campaign").handlers
        assert any(isinstance(h, logging.NullHandler) for h in handlers)


# -- queue and transport instrumentation --


def _double(item):
    return item * 2


class TestFileQueueStats:
    def test_snapshot_counts_this_instances_operations(self, tmp_path):
        queue = FileWorkQueue(tmp_path, run_id="r")
        queue.enqueue(0, "a")
        queue.enqueue(1, "b")
        index, _payload, lease = queue.claim("w1")
        queue.complete(index, ("ok", 1), lease)
        stats = queue.stats_snapshot()
        assert stats["enqueued"] == 2
        assert stats["claims"] == 1
        assert stats["completions"] == 1
        assert stats["lease_reissues"] == 0
        assert stats["pending"] == 1
        assert stats["claimed"] == 0

    def test_lease_reissue_is_counted(self, tmp_path):
        queue = FileWorkQueue(tmp_path, run_id="r")
        queue.enqueue(0, "a")
        queue.claim("gone")
        time.sleep(0.05)
        assert queue.reclaim_expired(lease_timeout=0.01) == [0]
        assert queue.stats_snapshot()["lease_reissues"] == 1


class TestNetworkQueueObservability:
    def test_status_shape_and_token_hygiene(self):
        token = "status-must-not-see-me"
        with HttpWorkQueue(run_id="robs", auth_token=token) as server:
            server.enqueue(0, "a")
            server.enqueue(1, "b")
            from repro.campaign import HttpWorkQueueClient
            client = HttpWorkQueueClient(server.url, auth_token=token,
                                         timeout=5.0)
            client.claim("w1")
            status = server.status()
        assert status["run"] == "robs"
        assert status["auth"] is True
        assert status["pending"] == 1
        assert status["done"] == 0
        assert status["stop"] is False
        assert status["uptime_s"] >= 0
        [claim] = status["claimed"]
        assert claim["index"] == 0 and claim["worker"] == "w1"
        assert claim["lease_age_s"] >= 0
        assert token not in json.dumps(status)

    def test_metrics_text_counts_operations_and_depths(self):
        with HttpWorkQueue(run_id="robs") as server:
            server.enqueue(0, "a")
            text = server.metrics_text()
        assert "# TYPE repro_queue_enqueued_total counter" in text
        assert "repro_queue_enqueued_total 1" in text
        assert "repro_queue_pending 1" in text
        assert "repro_queue_claimed 0" in text
        assert "repro_queue_auth_denials_total 0" in text

    def test_auth_denials_are_counted(self):
        with HttpWorkQueue(run_id="robs", auth_token="sekrit-tok") as server:
            request = urllib.request.Request(
                f"{server.url}/claim",
                data=json.dumps({"worker": "w1"}).encode(), method="POST",
            )
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(request, timeout=5.0)
            assert server.stats_snapshot()["auth_denials"] == 1
            assert "repro_queue_auth_denials_total 1" in server.metrics_text()


def _http_get(url: str, timeout: float = 5.0) -> tuple[str, str]:
    with urllib.request.urlopen(url, timeout=timeout) as reply:
        return reply.read().decode(), reply.headers.get("Content-Type", "")


class TestCoordinatorEndpoints:
    def test_get_metrics_serves_prometheus_text(self):
        with HttpWorkQueue(run_id="robs") as server:
            server.enqueue(0, "a")
            body, content_type = _http_get(f"{server.url}/metrics")
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        assert "repro_queue_pending 1" in body

    def test_get_status_serves_json(self):
        with HttpWorkQueue(run_id="robs") as server:
            body, content_type = _http_get(f"{server.url}/status")
        assert content_type.startswith("application/json")
        assert json.loads(body)["run"] == "robs"

    def test_observability_endpoints_skip_auth(self):
        # Read-only surfaces stay scrapeable (like /ping) so a dashboard
        # or CI probe needs no secret — and the probe itself must not
        # pollute the denial counter it is checking.
        with HttpWorkQueue(run_id="robs", auth_token="sekrit-tok") as server:
            metrics, _ = _http_get(f"{server.url}/metrics")
            status, _ = _http_get(f"{server.url}/status")
        assert "repro_queue_auth_denials_total 0" in metrics
        assert json.loads(status)["auth"] is True
        assert "sekrit-tok" not in metrics and "sekrit-tok" not in status


class TestLiveCampaignScrape:
    """Acceptance criterion: scrape /metrics + /status mid-campaign."""

    def test_endpoints_answer_while_the_campaign_runs(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        grid = ScenarioGrid(TINY, axes={"seed": [1, 2, 3]})
        backend = DistributedBackend(
            workers=1, transport="http", port=port,
            lease_timeout=120.0, poll_interval=0.02,
            auth_token="live-scrape-secret",
        )
        runner = CampaignRunner(backend=backend)
        results: list = []
        thread = threading.Thread(
            target=lambda: results.append(runner.run(grid)), daemon=True
        )
        thread.start()
        base = f"http://127.0.0.1:{port}"
        scraped: dict[str, str] = {}
        deadline = time.monotonic() + 30.0
        # The coordinator only listens while the campaign drains; any
        # successful scrape is by construction mid-flight.
        while time.monotonic() < deadline and thread.is_alive():
            try:
                scraped["metrics"], _ = _http_get(f"{base}/metrics", timeout=1.0)
                scraped["status"], _ = _http_get(f"{base}/status", timeout=1.0)
                break
            except (urllib.error.URLError, OSError):
                time.sleep(0.02)
        thread.join(timeout=60.0)
        assert not thread.is_alive(), "campaign did not finish"
        assert scraped, "coordinator endpoints never answered mid-campaign"

        assert "repro_queue_enqueued_total 3" in scraped["metrics"]
        assert "repro_queue_auth_denials_total 0" in scraped["metrics"]
        status = json.loads(scraped["status"])
        assert status["auth"] is True
        assert status["pending"] + len(status["claimed"]) + status["done"] <= 3
        assert "live-scrape-secret" not in scraped["metrics"]
        assert "live-scrape-secret" not in scraped["status"]

        [result] = results
        assert result.failures() == ()
        queue_stats = result.telemetry["queue"]
        assert queue_stats["enqueued"] == 3
        assert queue_stats["completions"] == 3
        assert queue_stats["auth_denials"] == 0
        assert queue_stats["pending_peak"] >= 1


# -- telemetry through results, exports and the CLI --


class TestResultTelemetry:
    def test_serial_run_carries_spans_and_backend(self, tmp_path):
        result = CampaignRunner(mode="serial").run(
            ScenarioGrid(TINY, axes={"seed": [1, 2]})
        )
        telemetry = result.telemetry
        assert telemetry["schema"] == 1
        assert telemetry["backend"] == "serial"
        assert telemetry["store"] is None
        assert telemetry["queue"] is None
        assert telemetry["spans"]["campaign.variant"]["count"] == 2
        assert telemetry["spans"]["campaign.execute"]["count"] == 1

    def test_store_delta_counts_this_run_only(self, tmp_path):
        from repro.store import CampaignStore

        runner = CampaignRunner(mode="serial",
                                store=CampaignStore(tmp_path / "cells"))
        grid = ScenarioGrid(TINY, axes={"seed": [1, 2]})
        first = runner.run(grid)
        assert first.telemetry["store"]["writes"] == 2
        assert first.telemetry["store"]["hits"] == 0
        second = runner.run(grid)
        assert second.telemetry["store"]["hits"] == 2
        assert second.telemetry["store"]["writes"] == 0

    def test_telemetry_can_be_disabled(self):
        result = CampaignRunner(mode="serial", telemetry=False).run(
            ScenarioGrid(TINY, axes={"seed": [1]})
        )
        assert result.telemetry is None

    def test_telemetry_flows_through_json_export(self, tmp_path):
        result = CampaignRunner(mode="serial").run(
            ScenarioGrid(TINY, axes={"seed": [1]})
        )
        path = tmp_path / "result.json"
        result.to_json(path)
        data = json.loads(path.read_text())
        assert data["telemetry"]["schema"] == 1
        assert data["telemetry"]["backend"] == "serial"
        assert "campaign.variant" in data["telemetry"]["spans"]

    def test_telemetry_does_not_change_summaries(self):
        grid = ScenarioGrid(TINY, axes={"seed": [1, 2]})
        with_obs = CampaignRunner(mode="serial").run(grid)
        without = CampaignRunner(mode="serial", telemetry=False).run(grid)
        assert with_obs.summaries() == without.summaries()


class TestCliFlags:
    def _spec(self, tmp_path):
        spec = {"scenario": {"name": "cli-obs", "duration": 0.4,
                             "record_hz": 20.0},
                "axes": {"seed": [1]}, "runner": {"mode": "serial"}}
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return path

    def test_metrics_jsonl_writes_a_self_contained_record(
        self, tmp_path, capsys
    ):
        jsonl = tmp_path / "metrics.jsonl"
        code = campaign_main([
            str(self._spec(tmp_path)), "--metrics-jsonl", str(jsonl),
        ])
        assert code == 0
        capsys.readouterr()
        records = [json.loads(line)
                   for line in jsonl.read_text().splitlines()]
        events = [record["event"] for record in records]
        assert "campaign-start" in events
        assert "variant-complete" in events
        assert "campaign-end" in events
        assert events[-1] == "metrics-snapshot"
        snapshot = records[-1]["metrics"]
        assert "repro_campaign_variants_total" in snapshot
        assert all(record["schema"] == EVENT_SCHEMA for record in records)

    def test_metrics_jsonl_sink_is_removed_after_the_run(self, tmp_path, capsys):
        jsonl = tmp_path / "metrics.jsonl"
        campaign_main([str(self._spec(tmp_path)),
                       "--metrics-jsonl", str(jsonl)])
        capsys.readouterr()
        assert obs.get_event_log() is None

    def test_log_json_renders_runner_logs_as_json(self, tmp_path, capsys):
        code = campaign_main([str(self._spec(tmp_path)), "--log-json"])
        try:
            assert code == 0
            err = capsys.readouterr().err
            starts = [json.loads(line) for line in err.splitlines()
                      if "campaign starting" in line]
            assert starts, f"no JSON campaign-starting log line in {err!r}"
            assert starts[0]["logger"] == "repro.campaign.runner"
        finally:
            for handler in list(logging.getLogger("repro").handlers):
                if not isinstance(handler, logging.NullHandler):
                    logging.getLogger("repro").removeHandler(handler)

    def test_worker_parser_accepts_observability_flags(self):
        args = worker_parser().parse_args([
            "--connect-http", "http://localhost:1",
            "--metrics-jsonl", "/tmp/x.jsonl", "--log-json",
        ])
        assert args.metrics_jsonl == "/tmp/x.jsonl"
        assert args.log_json is True

"""UDP flood DoS attack against the HCE's actuator port.

The attacker continuously sends packets from the container to the UDP port
the HCE listens on for motor outputs (port 14600 in Table I).  The flood
displaces legitimate actuator messages in the bounded socket queue and burns
HCE CPU time in the receiving thread — the attack of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mavlink.connection import MOTOR_PORT
from ..rtos.task import TaskConfig
from .base import Attack

__all__ = ["UdpFloodAttack"]


@dataclass(frozen=True)
class UdpFloodAttack(Attack):
    """Packet flood toward a host UDP port.

    Attributes
    ----------
    packets_per_second:
        Flood rate the attacker attempts (before iptables limiting).
    target_port:
        Destination port on the HCE (default: the motor-output port).
    payload_size:
        Bytes of garbage in each flood packet.
    priority:
        Requested SCHED_FIFO priority (capped by the container cgroup).
    """

    packets_per_second: float = 20000.0
    target_port: int = MOTOR_PORT
    payload_size: int = 64
    priority: int = 99

    def packets_per_quantum(self, quantum: float) -> int:
        """Number of packets the attacker emits per scheduler quantum."""
        return max(1, int(round(self.packets_per_second * quantum)))

    def payload(self) -> bytes:
        """The garbage payload of one flood packet (not a valid frame)."""
        return b"\x00" * self.payload_size

    def task_config(self, core: int, quantum: float = 0.001) -> TaskConfig:
        """Build the flood sender's task (a tight sendto() loop)."""
        # A sendto() syscall costs a few microseconds on the Pi 3.
        send_cost = 4e-6
        execution = min(quantum, self.packets_per_quantum(quantum) * send_cost)
        return TaskConfig(
            name="udp-flood-attack",
            period=quantum,
            execution_time=execution,
            priority=self.priority,
            core=core,
            memory_stall_fraction=0.2,
            accesses_per_job=self.packets_per_quantum(quantum) * 20,
            offset=self.start_time,
            skip_if_pending=True,
        )

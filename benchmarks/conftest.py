"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure from the paper's evaluation
(Section V), prints the reproduced rows/series and stores them under
``benchmarks/results/`` so they can be compared against the paper (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where reproduced tables/figures are written."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Return a function that prints a report and stores it on disk."""

    def _report(name: str, text: str) -> None:
        print()
        print("=" * 78)
        print(text)
        print("=" * 78)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _report


#!/usr/bin/env python3
"""Measure the HCE/CCE telemetry streams (the paper's Table I).

Flies a short undisturbed hover and counts every MAVLink message crossing the
docker0 bridge, reproducing the rate/size/port table of the paper.

Usage::

    python examples/telemetry_rates.py [--duration SECONDS]
"""

from __future__ import annotations

import argparse

from repro import FlightScenario
from repro.analysis import format_table
from repro.mavlink import (
    ActuatorOutputs,
    GpsRawInt,
    HighresImu,
    MavlinkCodec,
    RcChannelsOverride,
    ScaledPressure,
)
from repro.sim import FlightSimulation

STREAMS = {
    "IMU": (HighresImu, "HCE -> CCE"),
    "Barometer": (ScaledPressure, "HCE -> CCE"),
    "GPS": (GpsRawInt, "HCE -> CCE"),
    "RC": (RcChannelsOverride, "HCE -> CCE"),
    "Motor Output": (ActuatorOutputs, "CCE -> HCE"),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=6.0)
    args = parser.parse_args()

    simulation = FlightSimulation(FlightScenario.baseline(duration=args.duration))
    counters = {name: 0 for name in STREAMS}
    ports = {name: None for name in STREAMS}
    original_send = simulation.network.send

    def counting_send(now, payload, source_namespace, source_port,
                      destination_namespace, destination_port):
        try:
            frame = MavlinkCodec().decode(payload)
        except Exception:
            frame = None
        if frame is not None:
            for name, (message_type, _) in STREAMS.items():
                if isinstance(frame.message, message_type):
                    counters[name] += 1
                    ports[name] = destination_port
        return original_send(now, payload, source_namespace, source_port,
                             destination_namespace, destination_port)

    simulation.network.send = counting_send
    print(f"Flying a {args.duration:.0f} s hover and counting bridge traffic ...")
    simulation.run()
    duration = simulation.scheduler.time

    codec = MavlinkCodec()
    rows = []
    for name, (message_type, direction) in STREAMS.items():
        rows.append([
            name,
            direction,
            f"{counters[name] / duration:.0f} Hz",
            f"{codec.frame_size(message_type())} bytes",
            str(ports[name]),
        ])
    print()
    print(format_table(["Component", "Direction", "Rate", "Size", "Port"], rows,
                       title="Table I (reproduced) — HCE/CCE data streams"))
    print()
    print("Paper: IMU 250 Hz/52 B, Baro 50 Hz/32 B, GPS 10 Hz/44 B, RC 50 Hz/50 B -> port 14660;")
    print("       Motor output 400 Hz/29 B -> port 14600.")


if __name__ == "__main__":
    main()

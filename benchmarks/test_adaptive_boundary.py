"""Adaptive boundary search benchmark: the ISSUE 2 acceptance criterion.

Localizes the MemGuard-budget crash boundary of a Figure-5-style scenario
(memory-DoS attack, MemGuard on, tightened geofence standing in for the lab
wall) to within a 50 MB/s tolerance, and checks that bracketing + batched
bisection needs **at most half the flights of the equivalent dense grid**.

Units: the simulator's MemGuard budget counts 64-byte DRAM line accesses per
1 ms regulation period, so 1 budget unit = 64 kB/s and the 50 MB/s tolerance
is 781 accesses/period.

The verdict is monotone in the budget: MemGuard throttles the *attacker's*
core, so a larger CCE budget hands the memory hog more bandwidth and
strictly more disturbance — low budgets survive, high budgets crash.
"""

from __future__ import annotations

from dataclasses import replace

from repro.adaptive import BoundarySearch, crashed
from repro.campaign import CampaignRunner
from repro.sim import FlightScenario

#: MemGuard budget units are 64-byte accesses per 1 ms period: 64 kB/s each.
MBPS_PER_BUDGET_UNIT = 64e3 / 1e6

#: The ISSUE's tolerance: 50 MB/s, in budget units.
TOLERANCE_BUDGET = int(50.0 / MBPS_PER_BUDGET_UNIT)  # = 781

FLIGHT_DURATION = 6.0
ATTACK_START = 1.0
#: Tightened geofence [m]: the sustained-attack deviation (~3.4 m) breaches
#: it while the protected hover (<1 m) stays inside, which is what turns the
#: budget sweep into a crash/no-crash threshold within a 6 s flight.
GEOFENCE_RADIUS = 2.0

BUDGET_LO = 2000
BUDGET_HI = 32000
BATCH = 3


def boundary_scenario() -> FlightScenario:
    scenario = FlightScenario.figure5(
        attack_start=ATTACK_START, duration=FLIGHT_DURATION
    )
    return replace(scenario, geofence_radius=GEOFENCE_RADIUS).with_name(
        "boundary-bench"
    )


def test_memguard_budget_boundary(report):
    search = BoundarySearch(
        scenario=boundary_scenario(),
        axis="memguard_budget",
        lo=BUDGET_LO,
        hi=BUDGET_HI,
        tolerance=TOLERANCE_BUDGET,
        predicate=crashed,
        batch=BATCH,
    )
    dense = search.dense_grid_size()
    result = search.run(CampaignRunner())

    # Tolerance guarantee: the final bracket is no wider than 50 MB/s.
    assert result.width <= TOLERANCE_BUDGET
    assert result.width * MBPS_PER_BUDGET_UNIT <= 50.0
    # Orientation: the low-budget end survives, the high-budget end crashes.
    assert result.lo_verdict is False
    # The flip sits where the dense ablation sweep saw it (between the
    # surviving 4000 and the first crashing probes).
    assert 3000 <= result.lo < result.hi <= 9000

    # Acceptance: at most half the flights of the equivalent dense grid.
    assert result.flights <= dense // 2, (
        f"boundary search flew {result.flights} flights; dense grid "
        f"equivalent is {dense}"
    )

    boundary_mbps = result.boundary * MBPS_PER_BUDGET_UNIT
    lines = [
        result.to_text(),
        "",
        f"Boundary estimate: {result.boundary:.0f} accesses/period "
        f"({boundary_mbps:.0f} MB/s at 64 B per access)",
        f"Bracket width: {result.width:.0f} accesses/period "
        f"({result.width * MBPS_PER_BUDGET_UNIT:.1f} MB/s; "
        f"tolerance 50 MB/s = {TOLERANCE_BUDGET})",
        f"Flights: {result.flights} adaptive vs {dense} dense-grid "
        f"({result.flights / dense:.0%}), batch={BATCH}",
        f"Search wall time: {result.wall_time:.1f} s",
    ]
    report("adaptive_boundary", "\n".join(lines), data={
        "boundary_budget": round(result.boundary, 1),
        "boundary_mbps": round(boundary_mbps, 1),
        "bracket_width_budget": round(result.width, 1),
        "flights": result.flights,
        "dense_grid_flights": dense,
        "wall_s": round(result.wall_time, 3),
    })

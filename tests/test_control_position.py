"""Tests for the position controller, flight modes and setpoint types."""

import numpy as np
import pytest

from repro.control import (
    ActuatorCommand,
    AttitudeSetpoint,
    FlightMode,
    PositionControlGains,
    PositionController,
    PositionSetpoint,
    mode_from_rc,
)
from repro.sensors import PWM_MAX, PWM_MID, PWM_MIN, RcChannels


class TestSetpoints:
    def test_hover_at_uses_up_positive_altitude(self):
        setpoint = PositionSetpoint.hover_at(1.0, 2.0, 3.0)
        assert np.allclose(setpoint.position, [1.0, 2.0, -3.0])

    def test_actuator_command_clipping(self):
        command = ActuatorCommand(motors=np.array([-0.5, 0.5, 1.5, 0.2]))
        clipped = command.clipped()
        assert np.all(clipped.motors >= 0.0) and np.all(clipped.motors <= 1.0)

    def test_actuator_command_metadata_preserved_by_clipping(self):
        command = ActuatorCommand(motors=np.zeros(4), timestamp=2.0, source="safety", sequence=7)
        clipped = command.clipped()
        assert clipped.timestamp == 2.0
        assert clipped.source == "safety"
        assert clipped.sequence == 7


class TestFlightModes:
    def test_low_switch_is_manual(self):
        assert mode_from_rc(RcChannels(mode_switch=PWM_MIN)) is FlightMode.MANUAL

    def test_mid_switch_is_stabilized(self):
        assert mode_from_rc(RcChannels(mode_switch=PWM_MID + 10)) is FlightMode.STABILIZED

    def test_high_switch_is_position(self):
        assert mode_from_rc(RcChannels(mode_switch=PWM_MAX)) is FlightMode.POSITION


class TestPositionController:
    def setup_method(self):
        self.controller = PositionController()
        self.setpoint = PositionSetpoint.hover_at(0.0, 0.0, 1.0)

    def test_at_setpoint_commands_level_hover(self):
        attitude = self.controller.update(
            self.setpoint, np.array([0.0, 0.0, -1.0]), np.zeros(3), 0.0, 0.004
        )
        assert abs(attitude.roll) < 0.02
        assert abs(attitude.pitch) < 0.02
        gains = PositionControlGains()
        assert abs(attitude.thrust - gains.hover_thrust) < 0.1

    def test_target_ahead_commands_nose_down_pitch(self):
        # Target 2 m north of the vehicle: accelerate forward -> pitch down (negative).
        attitude = self.controller.update(
            PositionSetpoint.hover_at(2.0, 0.0, 1.0),
            np.array([0.0, 0.0, -1.0]), np.zeros(3), 0.0, 0.004,
        )
        assert attitude.pitch < -0.01
        assert abs(attitude.roll) < 0.01

    def test_target_right_commands_positive_roll(self):
        attitude = self.controller.update(
            PositionSetpoint.hover_at(0.0, 2.0, 1.0),
            np.array([0.0, 0.0, -1.0]), np.zeros(3), 0.0, 0.004,
        )
        assert attitude.roll > 0.01

    def test_target_above_increases_thrust(self):
        at_setpoint = self.controller.update(
            self.setpoint, np.array([0.0, 0.0, -1.0]), np.zeros(3), 0.0, 0.004
        )
        controller = PositionController()
        below_target = controller.update(
            PositionSetpoint.hover_at(0.0, 0.0, 3.0),
            np.array([0.0, 0.0, -1.0]), np.zeros(3), 0.0, 0.004,
        )
        assert below_target.thrust > at_setpoint.thrust

    def test_tilt_limited(self):
        gains = PositionControlGains(max_tilt=np.deg2rad(10.0))
        controller = PositionController(gains)
        attitude = controller.update(
            PositionSetpoint.hover_at(50.0, 0.0, 1.0),
            np.array([0.0, 0.0, -1.0]), np.zeros(3), 0.0, 0.004,
        )
        assert abs(attitude.pitch) <= np.deg2rad(10.0) + 1e-9

    def test_thrust_limited(self):
        gains = PositionControlGains()
        attitude = self.controller.update(
            PositionSetpoint.hover_at(0.0, 0.0, 100.0),
            np.array([0.0, 0.0, -1.0]), np.zeros(3), 0.0, 0.004,
        )
        assert attitude.thrust <= gains.max_thrust

    def test_yaw_rotation_maps_acceleration_to_body_frame(self):
        # Target to the north, vehicle yawed 90 deg east: the forward axis now
        # points east, so the northward acceleration requires a negative roll.
        attitude = self.controller.update(
            PositionSetpoint.hover_at(2.0, 0.0, 1.0, yaw=np.pi / 2.0),
            np.array([0.0, 0.0, -1.0]), np.zeros(3), np.pi / 2.0, 0.004,
        )
        assert attitude.roll < -0.01

    def test_velocity_damps_command(self):
        moving_fast = self.controller.update(
            PositionSetpoint.hover_at(2.0, 0.0, 1.0),
            np.array([0.0, 0.0, -1.0]), np.array([3.0, 0.0, 0.0]), 0.0, 0.004,
        )
        controller = PositionController()
        stationary = controller.update(
            PositionSetpoint.hover_at(2.0, 0.0, 1.0),
            np.array([0.0, 0.0, -1.0]), np.zeros(3), 0.0, 0.004,
        )
        # Moving toward the target already: command less nose-down pitch.
        assert moving_fast.pitch > stationary.pitch

    def test_reset_clears_velocity_integrators(self):
        for _ in range(200):
            self.controller.update(
                PositionSetpoint.hover_at(0.0, 0.0, 5.0),
                np.array([0.0, 0.0, -1.0]), np.zeros(3), 0.0, 0.004,
            )
        self.controller.reset()
        attitude = self.controller.update(
            self.setpoint, np.array([0.0, 0.0, -1.0]), np.zeros(3), 0.0, 0.004
        )
        assert abs(attitude.thrust - PositionControlGains().hover_thrust) < 0.1

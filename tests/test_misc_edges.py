"""Additional edge-case tests for configuration, analysis and engine helpers."""

import numpy as np
import pytest

from repro.analysis import ascii_plot, format_figure_summary
from repro.analysis.trajectory import AxisSeries
from repro.core import ContainerDroneConfig
from repro.sim import FlightRecorder, FlightSample, FlightScenario, compute_metrics
from repro.sim.engine import HostLoadConfig, SystemSimulation


class TestHostLoadConfig:
    def test_rejects_out_of_range_loads(self):
        with pytest.raises(ValueError):
            HostLoadConfig(boot_core_load=1.5)
        with pytest.raises(ValueError):
            HostLoadConfig(other_core_load=-0.1)

    def test_zero_load_adds_no_tasks(self):
        simulation = SystemSimulation(host_load=HostLoadConfig(boot_core_load=0.0,
                                                               other_core_load=0.0))
        assert simulation.scheduler.tasks == []
        assert simulation.run(1.0) == [1.0, 1.0, 1.0, 1.0]

    def test_custom_core_count(self):
        simulation = SystemSimulation(num_cores=2)
        assert len(simulation.run(1.0)) == 2


class TestScenarioEdges:
    def test_custom_setpoint_propagates(self):
        from repro.control import PositionSetpoint

        setpoint = PositionSetpoint.hover_at(1.0, -1.0, 2.0, yaw=0.3)
        scenario = FlightScenario.baseline(duration=5.0, setpoint=setpoint)
        assert np.allclose(scenario.setpoint.position, [1.0, -1.0, -2.0])
        assert scenario.setpoint.yaw == 0.3

    def test_invalid_physics_dt_rejected(self):
        with pytest.raises(ValueError):
            FlightScenario(physics_dt=0.0)

    def test_figure_constructors_accept_custom_times(self):
        assert FlightScenario.figure4(attack_start=5.0).attacks[0].start_time == 5.0
        assert FlightScenario.figure6(kill_time=7.0).attacks[0].start_time == 7.0
        assert FlightScenario.figure7(attack_start=3.0).attacks[0].start_time == 3.0

    def test_without_helpers_do_not_mutate_original(self):
        config = ContainerDroneConfig()
        config.without_memguard()
        config.without_monitor()
        assert config.memory.enabled
        assert config.monitor.enabled


class TestAnalysisEdges:
    def test_ascii_plot_with_too_few_samples(self):
        series = AxisSeries(name="X", times=np.array([0.0]), estimated=np.array([1.0]),
                            setpoint=np.array([1.0]))
        assert "not enough samples" in ascii_plot(series)

    def test_ascii_plot_constant_series(self):
        times = np.linspace(0.0, 1.0, 20)
        series = AxisSeries(name="Z", times=times, estimated=np.ones(20), setpoint=np.ones(20))
        text = ascii_plot(series)
        assert "Z position" in text

    def test_format_figure_summary_mentions_expectation(self):
        recorder = FlightRecorder(sample_rate_hz=10.0)
        for index in range(30):
            recorder.maybe_record(FlightSample(
                time=index / 10.0,
                position=np.array([0.0, 0.0, -1.0]),
                setpoint=np.array([0.0, 0.0, -1.0]),
                velocity=np.zeros(3),
                roll=0.0, pitch=0.0, yaw=0.0,
                active_source="complex",
                crashed=False,
            ))
        metrics = compute_metrics(recorder)
        summary = format_figure_summary("Figure 5", metrics, "oscillates but remains stable")
        assert "Figure 5" in summary
        assert "oscillates but remains stable" in summary


class TestMetricsEdges:
    def test_event_time_after_recording_uses_full_range(self):
        recorder = FlightRecorder(sample_rate_hz=10.0)
        for index in range(20):
            recorder.maybe_record(FlightSample(
                time=index / 10.0,
                position=np.array([0.1, 0.0, -1.0]),
                setpoint=np.array([0.0, 0.0, -1.0]),
                velocity=np.zeros(3),
                roll=0.0, pitch=0.0, yaw=0.0,
                active_source="complex",
                crashed=False,
            ))
        metrics = compute_metrics(recorder, event_time=100.0)
        assert metrics.max_deviation_after == pytest.approx(0.1)

    def test_recovery_window_longer_than_flight(self):
        recorder = FlightRecorder(sample_rate_hz=10.0)
        for index in range(5):
            recorder.maybe_record(FlightSample(
                time=index / 10.0,
                position=np.array([0.0, 0.0, -1.0]),
                setpoint=np.array([0.0, 0.0, -1.0]),
                velocity=np.zeros(3),
                roll=0.0, pitch=0.0, yaw=0.0,
                active_source="complex",
                crashed=False,
            ))
        metrics = compute_metrics(recorder, recovery_window=100.0)
        assert metrics.recovered

"""Figure 7 — UDP flood DoS against the HCE's motor-output port.

Paper: "After the program starts at 8 seconds, the drone starts circling and
the radius gradually increases. Then attitude error control kicks in, killing
the receiving thread on HCE and switching the control to safety controller,
and brings the drone back to a stable state."
"""

from __future__ import annotations

from repro.sim import FlightScenario, run_scenario

from figure_report import render_figure

ATTACK_START = 8.0


def run_figure7():
    return run_scenario(FlightScenario.figure7(attack_start=ATTACK_START))


def test_fig7_udp_flood(benchmark, report):
    result = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    report("fig7_udp_flood",
           render_figure(result, f"UDP flood on port 14600 starting t={ATTACK_START:.0f} s"))

    metrics = result.metrics
    assert not result.crashed
    # The flight degrades after the flood starts...
    assert metrics.max_deviation_after > 0.3
    # ...the attitude-error rule (not the receive timeout) detects it...
    assert result.violations
    assert result.violations[0].rule == "attitude-error"
    assert result.switch_time is not None and result.switch_time > ATTACK_START
    # ...and the safety controller recovers the drone to a stable state.
    assert metrics.recovered
    assert metrics.final_deviation < 0.3

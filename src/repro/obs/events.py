"""Structured JSONL event log: one writer, thread-safe, schema-versioned.

An :class:`EventLog` appends one JSON object per line to a file (or any
text stream).  Every record carries the same envelope::

    {"schema": 1, "ts": 1723021847.113, "run": "c3f9a1b2",
     "component": "campaign.runner", "event": "variant-complete", ...}

``ts`` is wall-clock epoch seconds (events are for correlating across
processes; durations belong to spans), ``run`` identifies the emitting
campaign/worker run, ``component`` is the dotted subsystem name, and the
remaining fields are event-specific.  Values that are not JSON-serialisable
are stringified rather than raising — an observability write must never
kill the observed campaign.

Emission is routed through a process-wide sink (:func:`set_event_log` /
:func:`emit`): instrumented modules call :func:`emit` unconditionally, and
the call is a cheap no-op until a CLI flag (``--metrics-jsonl``) or a test
installs a sink.  There is deliberately exactly one writer object per sink
file — records from coordinator threads, heartbeat threads and the runner
interleave line-atomically under its lock.
"""

from __future__ import annotations

import json
import logging
import sys
import threading
import time
import uuid
from pathlib import Path
from typing import Any, TextIO

__all__ = [
    "EVENT_SCHEMA",
    "EventLog",
    "configure_json_logging",
    "emit",
    "get_event_log",
    "set_event_log",
]

#: Bump when the record envelope below changes shape.
EVENT_SCHEMA = 1


def _default(value: Any) -> str:
    return str(value)


class EventLog:
    """Thread-safe JSONL writer with a fixed record envelope."""

    def __init__(
        self,
        destination: str | Path | TextIO,
        run_id: str | None = None,
    ) -> None:
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self._lock = threading.Lock()
        if isinstance(destination, (str, Path)):
            path = Path(destination)
            if path.parent != Path("."):
                path.parent.mkdir(parents=True, exist_ok=True)
            self._stream: TextIO = open(path, "a")
            self._owns_stream = True
        else:
            self._stream = destination
            self._owns_stream = False

    def emit(self, event: str, component: str, **fields: Any) -> None:
        """Append one record; never raises into the caller."""
        record: dict[str, Any] = {
            "schema": EVENT_SCHEMA,
            "ts": round(time.time(), 6),
            "run": self.run_id,
            "component": component,
            "event": event,
        }
        for key, value in fields.items():
            if key not in record:
                record[key] = value
        try:
            line = json.dumps(record, default=_default)
        except (TypeError, ValueError):
            return
        with self._lock:
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
            except (OSError, ValueError):
                pass  # a full disk or closed stream must not kill the run

    def close(self) -> None:
        with self._lock:
            if self._owns_stream:
                try:
                    self._stream.close()
                except OSError:
                    pass

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


_sink_lock = threading.Lock()
_sink: EventLog | None = None


def set_event_log(log: EventLog | None) -> EventLog | None:
    """Install (or clear, with ``None``) the process-wide sink; returns the
    previous one so callers can restore it."""
    global _sink
    with _sink_lock:
        previous, _sink = _sink, log
    return previous


def get_event_log() -> EventLog | None:
    """The currently installed sink, if any."""
    return _sink


def emit(event: str, component: str, **fields: Any) -> None:
    """Emit to the process-wide sink; a no-op when none is installed."""
    sink = _sink
    if sink is not None:
        sink.emit(event, component, **fields)


class _JsonLogFormatter(logging.Formatter):
    """One JSON object per log record (for ``--log-json``)."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=_default)


def configure_json_logging(
    stream: TextIO | None = None,
    level: int = logging.INFO,
    logger_name: str = "repro",
) -> logging.Handler:
    """Attach a JSON-lines handler to the ``repro`` logger hierarchy.

    Returns the handler so callers (tests, CLI teardown) can remove it with
    ``logging.getLogger(logger_name).removeHandler(handler)``.
    """
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(_JsonLogFormatter())
    logger = logging.getLogger(logger_name)
    logger.addHandler(handler)
    if logger.level == logging.NOTSET or logger.level > level:
        logger.setLevel(level)
    return handler

"""Dependency-free metrics: counters, gauges and histograms with labels.

A :class:`MetricsRegistry` is a named collection of metrics, each holding
one or more *series* (one per distinct label set).  The shapes mirror the
Prometheus data model deliberately — :meth:`MetricsRegistry.render_prometheus`
emits the text exposition format, so a registry can be scraped straight off
the HTTP coordinator's ``GET /metrics`` endpoint — but nothing here imports
anything beyond the standard library, and a registry is equally usable as a
plain in-process accounting object (:meth:`MetricsRegistry.snapshot`).

Thread safety: every mutation takes the owning metric's registry lock, so
coordinator handler threads, heartbeat threads and the main campaign loop
may all write concurrently.

A process-wide kill switch (:func:`set_enabled`) turns every metric
mutation and :func:`~repro.obs.spans.span` into a no-op — the overhead
benchmark uses it to demonstrate the instrumentation's cost, and callers in
hot paths never need their own guard.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "enabled",
    "set_enabled",
]

#: Prometheus metric-name rule; label names share it minus the colon.
_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets [s]: spans range from sub-millisecond store
#: lookups to multi-minute campaign executions.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0
)

_enabled = True


def set_enabled(value: bool) -> None:
    """Process-wide observability switch (metrics *and* spans)."""
    global _enabled
    _enabled = bool(value)


def enabled() -> bool:
    """Whether metric mutations currently record anything."""
    return _enabled


def _label_key(labels: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    for name in labels:
        if not _LABEL.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{name}="{_escape(value)}"' for name, value in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Metric:
    """Base: one named metric holding per-label-set series."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.RLock) -> None:
        if not _NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = lock
        self._series: dict[tuple[tuple[str, str], ...], Any] = {}

    def _render_header(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {_escape(self.help)}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Metric):
    """Monotonically increasing count (per label set)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not _enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def _render(self) -> list[str]:
        with self._lock:
            series = dict(self._series)
        lines = self._render_header()
        if not series:
            # A counter that never fired still scrapes as an explicit zero —
            # "auth denials: 0" is a statement, a missing series is not.
            lines.append(f"{self.name} 0")
        for key in sorted(series):
            lines.append(f"{self.name}{_render_labels(key)} {_format(series[key])}")
        return lines

    def _snapshot(self) -> Any:
        with self._lock:
            if not self._series:
                return 0.0
            if set(self._series) == {()}:
                return self._series[()]
            return {
                _render_labels(key) or "": value
                for key, value in self._series.items()
            }


class Gauge(_Metric):
    """Value that can go up and down (fleet size, queue depth)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        if not _enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not _enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    _render = Counter._render
    _snapshot = Counter._snapshot


class _HistogramSeries:
    __slots__ = ("bucket_counts", "count", "total", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf


class Histogram(_Metric):
    """Distribution of observations over fixed buckets (timings, sizes)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.RLock,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, lock)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")

    def observe(self, value: float, **labels: Any) -> None:
        if not _enabled:
            return
        value = float(value)
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[i] += 1
                    break
            series.count += 1
            series.total += value
            series.min = min(series.min, value)
            series.max = max(series.max, value)

    def summary(self, **labels: Any) -> dict[str, float] | None:
        """``count/total/mean/min/max`` of one series, ``None`` if empty."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None or series.count == 0:
                return None
            return {
                "count": series.count,
                "total_s": series.total,
                "mean_s": series.total / series.count,
                "min_s": series.min,
                "max_s": series.max,
            }

    def _render(self) -> list[str]:
        lines = self._render_header()
        with self._lock:
            items = [
                (key, list(series.bucket_counts), series.count, series.total)
                for key, series in self._series.items()
            ]
        for key, bucket_counts, count, total in sorted(items):
            cumulative = 0
            for bound, bucket in zip(self.buckets, bucket_counts):
                cumulative += bucket
                labels = _render_labels(key, f'le="{_format(bound)}"')
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            labels = _render_labels(key, 'le="+Inf"')
            lines.append(f"{self.name}_bucket{labels} {count}")
            lines.append(f"{self.name}_sum{_render_labels(key)} {repr(total)}")
            lines.append(f"{self.name}_count{_render_labels(key)} {count}")
        return lines

    def _snapshot(self) -> Any:
        with self._lock:
            return {
                _render_labels(key) or "": {
                    "count": series.count,
                    "total_s": series.total,
                }
                for key, series in self._series.items()
            }


class MetricsRegistry:
    """Named collection of metrics; get-or-create accessors are idempotent.

    Re-requesting a metric name returns the existing instance (so modules
    can call ``registry.counter("x")`` at use sites without coordination);
    requesting an existing name as a different metric type is an error.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls: type, name: str, help: str, **kwargs: Any) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, self._lock, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {cls.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def render_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every metric."""
        lines: list[str] = []
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        for metric in metrics:
            lines.extend(metric._render())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict[str, Any]:
        """Plain-data rendering of every metric (for JSONL records)."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metric._snapshot() for name, metric in sorted(metrics.items())}


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry in-process instrumentation records into
    (per-coordinator registries, e.g. a work queue's, are separate)."""
    return _DEFAULT

"""Tests for the persistent multi-tenant campaign service.

Four layers, bottom up:

* the multi-run queue state (run-id-namespaced pending/results, round-robin
  claims, cancellation and lease reclaim scoped to the owning run),
* token rotation and the structured ping / protocol fail-fast handshake,
* the worker's reconnect backoff,
* the daemon end-to-end: two concurrent campaigns on ONE daemon served by
  one shared fleet, results never crossing runs, cancellation leaving the
  sibling untouched, and the daemon accepting new submissions afterwards.

End-to-end tests run the worker loop in threads against the daemon's HTTP
endpoint (``CampaignService(workers=0)``) so no subprocess spawn/interpreter
start is paid per test; the subprocess fleet path is covered once.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.campaign import (
    PROTOCOL_VERSION,
    CampaignRunner,
    HttpWorkQueue,
    HttpWorkQueueClient,
    ScenarioGrid,
    ServiceBackend,
    WorkQueueAuthError,
    WorkQueueProtocolError,
)
from repro.campaign.client import (
    ServiceClient,
    ServiceError,
    ServiceUnreachableError,
)
from repro.campaign.service import CampaignService, RunCancelled
from repro.campaign.worker import _idle_delay, run_worker
from repro.campaign.workqueue import (
    AUTH_TOKEN_ENV,
    AUTH_TOKEN_PREVIOUS_ENV,
    resolve_auth_tokens,
)
from repro.sim import FlightScenario


def _double(value):
    return 2 * value


def _nap(seconds):
    time.sleep(seconds)
    return seconds


def _tiny_spec(name: str, seeds: int = 2) -> dict:
    """A JSON campaign spec small enough to fly in well under a second."""
    return {
        "scenario": {"name": name, "duration": 0.4, "record_hz": 20.0},
        "axes": {"seed": list(range(seeds))},
    }


def _tiny_grid(name: str, seeds: int = 2) -> ScenarioGrid:
    return ScenarioGrid(
        FlightScenario(name=name, duration=0.4, record_hz=20.0),
        axes={"seed": list(range(seeds))},
    )


@pytest.fixture
def queue():
    server = HttpWorkQueue()
    yield server
    server.close()


def _worker_thread(url: str, max_tasks: int, done: list, token=None):
    thread = threading.Thread(
        target=lambda: done.append(run_worker(
            connect_http=url, poll_interval=0.01, max_tasks=max_tasks,
            lease_timeout=5.0, auth_token=token,
        )),
        daemon=True,
    )
    thread.start()
    return thread


# ---------------------------------------------------------------------------
# Multi-run queue state
# ---------------------------------------------------------------------------


class TestMultiRunQueueState:
    def test_runs_are_namespaced(self, queue):
        queue.add_run("a")
        queue.add_run("b")
        queue.enqueue_in("a", 0, "task-a")
        queue.enqueue_in("b", 0, "task-b")
        queue.enqueue(0, "task-default")
        assert queue.pending_count_in("a") == 1
        assert queue.pending_count_in("b") == 1
        # The classic single-run surface only sees the default run.
        assert queue.pending_count() == 1
        assert sorted(queue.run_ids()) == sorted([queue.run_id, "a", "b"])

    def test_duplicate_run_id_is_rejected(self, queue):
        queue.add_run("a")
        with pytest.raises(ValueError, match="already"):
            queue.add_run("a")

    def test_claims_round_robin_across_runs(self, queue):
        # Two runs with two tasks each: a fleet draining the queue must
        # alternate between tenants, not finish one before starting the
        # other (lowest index first within each run).
        queue.add_run("a")
        queue.add_run("b")
        for index in range(2):
            queue.enqueue_in("a", index, f"a{index}")
            queue.enqueue_in("b", index, f"b{index}")
        order = [queue._claim_blob("w")[0] for _ in range(4)]
        assert order == ["a", "b", "a", "b"]

    def test_results_land_in_the_owning_run(self, queue):
        queue.add_run("a")
        queue.add_run("b")
        queue.enqueue_in("a", 0, (_double, 1))
        queue.enqueue_in("b", 0, (_double, 100))
        client = HttpWorkQueueClient(queue.url, timeout=5.0)
        for _ in range(2):
            index, payload, lease = client.claim("w")
            fn, item = payload
            client.complete(index, ("ok", fn(item)), lease)
        assert queue.collect_run("a") == {0: ("ok", 2)}
        assert queue.collect_run("b") == {0: ("ok", 200)}

    def test_cancel_clears_pending_and_keeps_results(self, queue):
        queue.add_run("a")
        queue.enqueue_in("a", 0, "t0")
        queue.enqueue_in("a", 1, "t1")
        run = queue._runs["a"]
        run.results[0] = ("ok", "done-before-cancel")
        assert queue.cancel_run("a") is True
        assert queue.run_cancelled("a")
        assert queue.pending_count_in("a") == 0
        assert queue.collect_run("a") == {0: ("ok", "done-before-cancel")}
        # Cancelling again (or an unknown run) is a polite no-op.
        assert queue.cancel_run("a") is True
        assert queue.cancel_run("nope") is False
        assert queue.run_cancelled("nope")  # unknown counts as cancelled

    def test_enqueue_into_cancelled_or_unknown_run_fails(self, queue):
        queue.add_run("a")
        queue.cancel_run("a")
        with pytest.raises(ValueError, match="cancelled"):
            queue.enqueue_in("a", 0, "task")
        with pytest.raises(KeyError):
            queue.enqueue_in("never-added", 0, "task")

    def test_default_run_cannot_be_removed(self, queue):
        with pytest.raises(ValueError):
            queue.remove_run(queue.run_id)

    def test_cancelled_runs_leases_are_dropped_not_reissued(self, queue):
        queue.add_run("a")
        queue.add_run("b")
        queue.enqueue_in("a", 0, "task-a")
        queue.enqueue_in("b", 0, "task-b")
        assert queue._claim_blob("w") is not None  # leases a's task
        assert queue._claim_blob("w") is not None  # leases b's task
        queue.cancel_run("a")
        # Both leases are expired; only the surviving run's task returns.
        reissued = queue.reclaim_expired(lease_timeout=0.0)
        assert queue.pending_count_in("b") == 1
        assert queue.pending_count_in("a") == 0
        assert reissued == [0]  # b's task only; a's lease vanished with it

    def test_stop_is_transport_level_not_per_run(self, queue):
        # Cancelling every hosted run must not send the fleet home.
        queue.add_run("a")
        queue.cancel_run("a")
        assert queue.stop_requested() is False

    def test_status_reports_per_run_state(self, queue):
        queue.add_run("a")
        queue.enqueue_in("a", 0, "task")
        status = queue.status()
        assert status["runs"]["a"]["pending"] == 1
        assert status["runs"][queue.run_id]["pending"] == 0
        # Top-level keys stay (CI and dashboards scrape them) as totals.
        assert status["pending"] == 1
        assert status["mode"] == "campaign"
        assert status["protocol"] == PROTOCOL_VERSION

    def test_per_run_metrics_labels(self, queue):
        queue.add_run("a")
        queue.enqueue_in("a", 0, "task")
        queue.enqueue(0, "task")
        text = queue.metrics_text()
        assert 'repro_run_pending{run="a"} 1' in text
        # The unlabeled counter is the cross-run total, same name as ever.
        assert "repro_queue_enqueued_total 2" in text
        assert f'repro_run_enqueued_total{{run="a"}} 1' in text


# ---------------------------------------------------------------------------
# Token rotation + protocol handshake
# ---------------------------------------------------------------------------


class TestTokenRotation:
    def test_old_and_new_tokens_accepted_after_rotation(self):
        server = HttpWorkQueue(auth_token="old-secret")
        try:
            server.rotate_auth_token("new-secret")
            for token in ("old-secret", "new-secret"):
                client = HttpWorkQueueClient(
                    server.url, timeout=5.0, auth_token=token)
                assert client.stop_requested() is False
            # One more rotation retires the original.
            server.rotate_auth_token("newer-secret")
            stale = HttpWorkQueueClient(
                server.url, timeout=5.0, auth_token="old-secret")
            with pytest.raises(WorkQueueAuthError):
                stale.stop_requested()
        finally:
            server.close()

    def test_rotation_requires_auth_enabled(self, queue):
        with pytest.raises(ValueError, match="auth"):
            queue.rotate_auth_token("secret")

    def test_rotation_never_drops_below_one_token(self):
        server = HttpWorkQueue(auth_token="a")
        try:
            server.rotate_auth_token("b", keep_previous=0)
            good = HttpWorkQueueClient(server.url, timeout=5.0, auth_token="b")
            assert good.stop_requested() is False
            old = HttpWorkQueueClient(server.url, timeout=5.0, auth_token="a")
            with pytest.raises(WorkQueueAuthError):
                old.stop_requested()
        finally:
            server.close()

    def test_previous_token_accepted_from_construction(self):
        # The daemon restart path: new primary via AUTH_TOKEN, old fleet
        # still presenting the previous one via AUTH_TOKEN_PREVIOUS.
        server = HttpWorkQueue(auth_token=("new", "old"))
        try:
            for token in ("new", "old"):
                client = HttpWorkQueueClient(
                    server.url, timeout=5.0, auth_token=token)
                assert client.stop_requested() is False
        finally:
            server.close()

    def test_resolve_auth_tokens(self, monkeypatch):
        monkeypatch.delenv(AUTH_TOKEN_ENV, raising=False)
        monkeypatch.delenv(AUTH_TOKEN_PREVIOUS_ENV, raising=False)
        assert resolve_auth_tokens(None, None) is None
        assert resolve_auth_tokens("a", None) == ("a",)
        assert resolve_auth_tokens("a", "b,c") == ("a", "b", "c")
        monkeypatch.setenv(AUTH_TOKEN_ENV, "envtok")
        monkeypatch.setenv(AUTH_TOKEN_PREVIOUS_ENV, "p1, p2")
        assert resolve_auth_tokens(None, None) == ("envtok", "p1", "p2")
        # Previous tokens without a primary would silently disable auth on
        # the primary path; that has to be a loud configuration error.
        monkeypatch.setenv(AUTH_TOKEN_ENV, "")
        with pytest.raises(ValueError):
            resolve_auth_tokens(None, None)


class TestProtocolHandshake:
    def test_ping_carries_protocol_and_mode(self, queue):
        client = HttpWorkQueueClient(queue.url, timeout=5.0)
        body = client.ping()
        assert body["protocol"] == PROTOCOL_VERSION
        assert body["mode"] == "campaign"
        assert client.check_protocol() == body

    def test_version_skew_fails_fast_with_clear_message(self, queue):
        # A version-1 coordinator is recognised by the *absence* of the
        # protocol field in its bare {"ok": true} ping body.
        queue.ping_info = lambda: {"ok": True}
        client = HttpWorkQueueClient(queue.url, timeout=5.0)
        with pytest.raises(WorkQueueProtocolError, match="no version field"):
            client.check_protocol()
        with pytest.raises(WorkQueueProtocolError):
            run_worker(connect_http=queue.url, poll_interval=0.01)

    def test_unreachable_coordinator_is_not_a_protocol_error(self):
        server = HttpWorkQueue()
        url = server.url
        server.close()
        client = HttpWorkQueueClient(url, timeout=0.5)
        assert client.check_protocol() is None


class TestWorkerBackoff:
    def test_reachable_queue_polls_at_the_configured_interval(self):
        class Healthy:
            consecutive_failures = 0

        assert _idle_delay(Healthy(), 0.05, 10.0) == 0.05

    def test_unreachable_queue_backs_off_exponentially_with_jitter(self):
        class Failing:
            consecutive_failures = 3

        delays = {_idle_delay(Failing(), 0.05, 10.0) for _ in range(64)}
        # 0.05 * 2**3 = 0.4, jittered into [0.2, 0.4].
        assert all(0.2 <= delay <= 0.4 for delay in delays)
        assert len(delays) > 1  # jitter actually varies

    def test_backoff_is_capped_below_the_orphan_timeout(self):
        class Dead:
            consecutive_failures = 1000

        for _ in range(32):
            # Cap is min(5, orphan_timeout/8) so a worker always probes the
            # coordinator several times before declaring it orphaned.
            assert _idle_delay(Dead(), 0.05, 8.0) <= 1.0

    def test_file_queues_never_back_off(self):
        class FileLike:  # no consecutive_failures attribute
            pass

        assert _idle_delay(FileLike(), 0.05, 10.0) == 0.05


# ---------------------------------------------------------------------------
# The daemon end-to-end
# ---------------------------------------------------------------------------


@pytest.fixture
def service():
    daemon = CampaignService(workers=0, poll_interval=0.02, lease_timeout=5.0)
    yield daemon
    daemon.close()


class TestServiceEndToEnd:
    def test_two_concurrent_campaigns_share_one_fleet(self, service):
        """The acceptance core: one daemon, two tenants, one fleet.

        Both campaigns are submitted before any worker runs, then a shared
        two-thread fleet drains the queue.  Each run's report must match a
        serial run of the same grid exactly, proving results never crossed.
        """
        client = ServiceClient(service.url)
        run_a = client.submit_spec(_tiny_spec("tenant-a"), label="a")
        run_b = client.submit_spec(_tiny_spec("tenant-b"), label="b")
        done: list = []
        threads = [
            _worker_thread(service.url, max_tasks=2, done=done)
            for _ in range(2)
        ]
        status_a = client.wait(run_a, timeout=60.0, poll_interval=0.05)
        status_b = client.wait(run_b, timeout=60.0, poll_interval=0.05)
        for thread in threads:
            thread.join(timeout=10.0)
        assert status_a["state"] == "done"
        assert status_b["state"] == "done"
        assert sum(done) == 4  # 2 variants per campaign, shared fleet

        for run_id, name in ((run_a, "tenant-a"), (run_b, "tenant-b")):
            document = client.results(run_id)
            serial = CampaignRunner(mode="serial").run(_tiny_grid(name))
            expected = json.loads(serial.to_json())
            assert document["result"]["rows"] == expected["rows"]
            assert document["result"]["cells"] == expected["cells"]
            assert document["result"]["failures"] == 0

        registry = client.list_runs()
        assert [entry["run"] for entry in registry] == [run_a, run_b]
        assert all(entry["state"] == "done" for entry in registry)

    def test_cancelling_one_run_leaves_the_sibling_alone(self, service):
        client = ServiceClient(service.url)
        slow = client.submit_tasks(
            [(_nap, 30.0) for _ in range(2)], label="slow")
        quick = client.submit_tasks([(_double, index) for index in range(3)],
                                    label="quick")
        assert client.cancel(slow) is True
        done: list = []
        thread = _worker_thread(service.url, max_tasks=3, done=done)
        thread.join(timeout=30.0)
        assert not thread.is_alive()

        state, results = client.task_results(quick)
        assert state == "done"
        assert results == {0: ("ok", 0), 1: ("ok", 2), 2: ("ok", 4)}
        assert client.status(slow)["state"] == "cancelled"
        # Cancelled-run status survives (post-mortem), results stay empty.
        assert client.results(slow).get("results") == {}
        assert client.cancel(slow) is False  # already cancelled: not running

    def test_daemon_accepts_new_runs_after_completion(self, service):
        client = ServiceClient(service.url)
        for round_number in range(2):
            run_id = client.submit_tasks(
                [(_double, round_number)], label=f"round-{round_number}")
            done: list = []
            thread = _worker_thread(service.url, max_tasks=1, done=done)
            thread.join(timeout=30.0)
            state, results = client.task_results(run_id)
            assert state == "done"
            assert results == {0: ("ok", 2 * round_number)}
        assert len(client.list_runs()) == 2

    def test_service_backend_runs_a_local_campaign_on_the_fleet(self, service):
        done: list = []
        threads = [
            _worker_thread(service.url, max_tasks=1, done=done)
            for _ in range(2)
        ]
        backend = ServiceBackend(url=service.url, poll_interval=0.02)
        result = CampaignRunner(backend=backend).run(_tiny_grid("svc-backend"))
        for thread in threads:
            thread.join(timeout=10.0)
        serial = CampaignRunner(mode="serial").run(_tiny_grid("svc-backend"))
        assert result.fallback_reason is None
        assert result.summaries() == serial.summaries()
        # The backend's hosted run was cleaned up from the daemon queue.
        assert list(ServiceClient(service.url).list_runs())[0]["state"] in (
            "done", "cancelled")

    def test_spec_validation_errors_are_client_errors(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError, match="exactly one of"):
            client.submit_spec({"scenario": {"duration": 0.4}})
        with pytest.raises(ServiceError, match="exactly one of"):
            client._request("POST", "/runs", {})
        with pytest.raises(ServiceError, match="unknown run"):
            client.status("never-submitted")
        with pytest.raises(ServiceError, match="unknown run"):
            client.cancel("never-submitted")
        assert client.cancel("never-submitted", missing_ok=True) is False

    def test_duplicate_run_id_is_conflict(self, service):
        from repro.campaign.transport import _encode

        client = ServiceClient(service.url)
        client.submit_tasks([(_nap, 30.0)], label="first")
        run_id = client.list_runs()[0]["run"]
        with pytest.raises(ServiceError, match="already"):
            client._request(
                "POST", "/runs",
                {"tasks": [_encode((_double, 1))], "run": run_id,
                 "label": "second"})

    def test_subprocess_fleet_end_to_end(self, tmp_path):
        """Once, with real worker subprocesses — the production shape."""
        with CampaignService(workers=2, poll_interval=0.02,
                             lease_timeout=10.0) as daemon:
            client = ServiceClient(daemon.url)
            run_id = client.submit_spec(_tiny_spec("subprocess-fleet"))
            status = client.wait(run_id, timeout=120.0, poll_interval=0.1)
            assert status["state"] == "done"
            document = client.results(run_id)
            serial = CampaignRunner(mode="serial").run(
                _tiny_grid("subprocess-fleet"))
            assert document["result"]["rows"] == json.loads(
                serial.to_json())["rows"]


class TestServiceAuth:
    TOKEN = "service-secret"

    @pytest.fixture
    def auth_service(self):
        daemon = CampaignService(
            workers=0, poll_interval=0.02, lease_timeout=5.0,
            auth_tokens=(self.TOKEN,),
        )
        yield daemon
        daemon.close()

    def test_submission_requires_the_token(self, auth_service):
        anonymous = ServiceClient(auth_service.url)
        with pytest.raises(WorkQueueAuthError):
            anonymous.submit_tasks([(_double, 1)])
        trusted = ServiceClient(auth_service.url, auth_token=self.TOKEN)
        run_id = trusted.submit_tasks([(_double, 1)])
        # Observability endpoints stay open (parity with /status, /metrics)
        # but results carry pickled payloads and need the token.
        assert anonymous.status(run_id)["state"] == "running"
        assert anonymous.list_runs()[0]["run"] == run_id
        with pytest.raises(WorkQueueAuthError):
            anonymous.results(run_id)
        with pytest.raises(WorkQueueAuthError):
            anonymous.cancel(run_id)
        assert trusted.cancel(run_id) is True

    def test_rotation_over_http_without_fleet_restart(self, auth_service):
        client = ServiceClient(auth_service.url, auth_token=self.TOKEN)
        run_id = client.submit_tasks([(_double, 21)], label="pre-rotation")
        client.rotate_token("fresh-secret")
        # The old token (the "fleet") keeps working through the rotation...
        done: list = []
        thread = _worker_thread(
            auth_service.url, max_tasks=1, done=done, token=self.TOKEN)
        thread.join(timeout=30.0)
        state, results = client.task_results(run_id)
        assert state == "done" and results == {0: ("ok", 42)}
        # ...and the new token is live for new clients.
        fresh = ServiceClient(auth_service.url, auth_token="fresh-secret")
        fresh.submit_tasks([(_double, 1)], label="post-rotation")
        with pytest.raises(ServiceError, match="new_token"):
            fresh._request("POST", "/rotate-token", {"new_token": ""})

    def test_tokens_never_appear_in_service_output(self, auth_service):
        client = ServiceClient(auth_service.url, auth_token=self.TOKEN)
        run_id = client.submit_tasks([(_double, 1)])
        surfaces = [
            json.dumps(client.list_runs()),
            json.dumps(client.status(run_id)),
            json.dumps(client.ping()),
            auth_service.queue.metrics_text(),
            json.dumps(auth_service.queue.status()),
        ]
        for surface in surfaces:
            assert self.TOKEN not in surface


class TestServiceClientSurface:
    def test_check_service_rejects_plain_coordinators(self, queue):
        # A single-campaign coordinator answers /ping but hosts no /runs
        # API; submitting to it must fail with a pointer, not a 404 puzzle.
        client = ServiceClient(queue.url)
        with pytest.raises(ServiceError, match="not a campaign service"):
            client.check_service()

    def test_unreachable_service_raises_not_degrades(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=0.3)
        with pytest.raises(ServiceUnreachableError):
            client.list_runs()

    def test_service_ping_advertises_service_mode(self, service):
        info = ServiceClient(service.url).check_service()
        assert info["service"] is True
        assert info["mode"] == "service"
        assert info["protocol"] == PROTOCOL_VERSION

    def test_get_runs_is_plain_http(self, service):
        # No client library needed: the registry is one curl away.
        with urllib.request.urlopen(f"{service.url}/runs", timeout=5.0) as reply:
            body = json.loads(reply.read())
        assert body == {"ok": True, "mode": "service", "runs": []}

    def test_unknown_service_path_is_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"{service.url}/runs/x/unknown", timeout=5.0)
        assert excinfo.value.code == 404

    def test_run_cancelled_bypasses_serial_fallback(self):
        # RunCancelled must NOT be an Exception: the campaign runner's
        # backend-failure fallback would otherwise fly a cancelled tenant's
        # grid serially on the daemon thread.
        assert not issubclass(RunCancelled, Exception)
        assert issubclass(RunCancelled, BaseException)

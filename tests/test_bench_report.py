"""Tests for the benchmark reporting helpers in ``benchmarks/conftest.py``.

The ``BENCH_<name>.json`` records are the machine-readable perf trail CI
archives; downstream tooling diffs them between runs, so their envelope —
stable sorted keys, a schema version, machine context, finite numbers —
is a contract worth pinning.  The conftest is not an importable package,
so it is loaded here by file path under a non-conftest module name.
"""

import importlib.util
import json
import math
from pathlib import Path

import pytest

_CONFTEST = Path(__file__).resolve().parent.parent / "benchmarks" / "conftest.py"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_conftest", _CONFTEST)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _assert_numbers_finite(value, path="$"):
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        assert math.isfinite(value), f"non-finite number at {path}: {value!r}"
    elif isinstance(value, dict):
        for key, item in value.items():
            _assert_numbers_finite(item, f"{path}.{key}")
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _assert_numbers_finite(item, f"{path}[{index}]")


class TestWriteBenchJson:
    def test_envelope_carries_schema_and_machine_context(self, bench, tmp_path):
        path = bench.write_bench_json(
            tmp_path, "demo", {"wall_s": 1.5, "speedup": 2.0}
        )
        assert path == tmp_path / "BENCH_demo.json"
        record = json.loads(path.read_text())
        assert record["bench"] == "demo"
        assert record["schema"] == bench.BENCH_SCHEMA
        assert record["machine"]["cores"] >= 1
        assert isinstance(record["machine"]["python"], str)
        assert record["wall_s"] == 1.5

    def test_keys_are_sorted_for_clean_diffs(self, bench, tmp_path):
        path = bench.write_bench_json(
            tmp_path, "demo", {"zeta": 1, "alpha": 2, "mid": 3}
        )
        text = path.read_text()
        top_level_keys = list(json.loads(text))
        assert top_level_keys == sorted(top_level_keys)
        # Identical data must produce byte-identical files.
        again = bench.write_bench_json(
            tmp_path, "demo", {"alpha": 2, "mid": 3, "zeta": 1}
        )
        assert again.read_text() == text

    def test_record_is_one_json_object_with_trailing_newline(self, bench, tmp_path):
        path = bench.write_bench_json(tmp_path, "demo", {"x": 1})
        text = path.read_text()
        assert text.endswith("\n")
        assert isinstance(json.loads(text), dict)

    def test_numbers_are_finite(self, bench, tmp_path):
        path = bench.write_bench_json(
            tmp_path, "demo",
            {"wall_s": 12.25, "nested": {"speedup": 3.1, "flights": 12}},
        )
        _assert_numbers_finite(json.loads(path.read_text()))


class TestExistingBenchRecords:
    def test_checked_in_records_conform(self, bench):
        """Any BENCH_*.json already in benchmarks/results must validate."""
        results = _CONFTEST.parent / "results"
        for path in sorted(results.glob("BENCH_*.json")) if results.exists() else []:
            record = json.loads(path.read_text())
            assert record["schema"] == bench.BENCH_SCHEMA, path.name
            assert record["bench"] == path.stem[len("BENCH_"):], path.name
            assert "machine" in record, path.name
            _assert_numbers_finite(record, path.name)

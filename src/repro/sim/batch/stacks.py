"""Vectorised estimator/controller/decision stacks for the batch core.

Each class here is the structure-of-arrays counterpart of one scalar
component — :class:`~repro.estimation.attitude.ComplementaryFilter`,
:class:`~repro.estimation.position.PositionEstimator`,
:class:`~repro.control.pid.PidController`,
:class:`~repro.control.allocator.QuadXAllocator`, the two controllers and the
Simplex :class:`~repro.core.simplex.DecisionModule` — holding the state of
``L`` lanes and updating an arbitrary subset per call (``lanes`` is an array
of lane indices; replay ops rarely touch every lane).

Formulas replicate the scalar code term by term, including evaluation order:
matrix products are expanded into per-component expressions (the 2x2 Kalman
closed forms, the allocator row dots) both to match the scalar left-fold
summation and to keep any BLAS kernel — whose reduction order could depend on
operand shape — away from the lane axis.  A lane's trajectory therefore never
depends on the batch width.
"""

from __future__ import annotations

import numpy as np

from ...dynamics.state import (
    GRAVITY,
    angle_wrap_batched,
    quat_from_euler_batched,
    quat_multiply_batched,
    quat_normalize_batched,
    quat_to_euler_batched,
)

__all__ = [
    "BatchComplementaryFilter",
    "BatchPositionEstimator",
    "BatchPid",
    "allocate_batched",
    "BatchComplexStack",
    "BatchSafetyStack",
    "BatchDecision",
]

_IMU_NOMINAL_DT = 1.0 / 250.0


class BatchComplementaryFilter:
    """SoA complementary attitude filter (quaternion + rates per lane)."""

    def __init__(self, lanes: int, accel_gain: float = 0.002) -> None:
        self.accel_gain = accel_gain
        self.quat = np.zeros((lanes, 4))
        self.quat[:, 0] = 1.0
        self.rates = np.zeros((lanes, 3))
        self.initialized = np.zeros(lanes, dtype=bool)

    def euler(self, lanes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return quat_to_euler_batched(self.quat[lanes])

    def update(self, lanes: np.ndarray, gyro: np.ndarray, accel: np.ndarray, dt: np.ndarray) -> None:
        self.rates[lanes] = gyro
        delta = np.empty((lanes.shape[0], 4))
        delta[:, 0] = 1.0
        delta[:, 1:4] = 0.5 * gyro * dt[:, None]
        quat = quat_normalize_batched(quat_multiply_batched(self.quat[lanes], delta))

        a0, a1, a2 = accel[:, 0], accel[:, 1], accel[:, 2]
        accel_norm = np.sqrt((a0 * a0 + a1 * a1) + a2 * a2)
        observing = (0.5 * 9.80665 < accel_norm) & (accel_norm < 1.5 * 9.80665)
        if observing.any():
            safe_norm = np.where(observing, accel_norm, 1.0)
            u0, u1, u2 = a0 / safe_norm, a1 / safe_norm, a2 / safe_norm
            accel_roll = np.arctan2(-u1, -u2)
            accel_pitch = np.arctan2(u0, np.sqrt(u1**2 + u2**2))
            roll, pitch, yaw = quat_to_euler_batched(quat)
            started = self.initialized[lanes]
            roll = np.where(
                started, roll + self.accel_gain * angle_wrap_batched(accel_roll - roll), accel_roll
            )
            pitch = np.where(
                started, pitch + self.accel_gain * angle_wrap_batched(accel_pitch - pitch), accel_pitch
            )
            corrected = quat_from_euler_batched(roll, pitch, yaw)
            quat = np.where(observing[:, None], corrected, quat)
            self.initialized[lanes] = started | observing
        self.quat[lanes] = quat

    def set_yaw(self, lanes: np.ndarray, yaw: np.ndarray) -> None:
        roll, pitch, _ = quat_to_euler_batched(self.quat[lanes])
        self.quat[lanes] = quat_from_euler_batched(roll, pitch, angle_wrap_batched(yaw))


class BatchPositionEstimator:
    """SoA three-axis constant-velocity Kalman filter.

    The scalar per-axis 2x2 filter is expanded into closed forms over
    ``(L, 3)`` arrays; ``baro_ref`` NaN encodes the scalar ``None``.
    """

    def __init__(
        self,
        lanes: int,
        process_noise: float = 30.0,
        mocap_noise: float = 1e-4,
        gps_noise: float = 2.25,
        baro_noise: float = 2.5e-3,
    ) -> None:
        self.q = process_noise
        self.mocap_noise = mocap_noise
        self.gps_noise = gps_noise
        self.baro_noise = baro_noise
        self.pos = np.zeros((lanes, 3))
        self.vel = np.zeros((lanes, 3))
        self.P00 = np.ones((lanes, 3))
        self.P01 = np.zeros((lanes, 3))
        self.P10 = np.zeros((lanes, 3))
        self.P11 = np.ones((lanes, 3))
        self.has_fix = np.zeros(lanes, dtype=bool)
        self.baro_ref = np.full(lanes, np.nan)

    def predict(self, lanes: np.ndarray, dt: np.ndarray) -> None:
        dtc = dt[:, None]
        # x = F x with F = [[1, dt], [0, 1]]: the velocity row is exact.
        self.pos[lanes] = 1.0 * self.pos[lanes] + dtc * self.vel[lanes]
        # P = F P F' + q G G' with G = [dt^2/2, dt], expanded row by row in
        # the scalar dot order.
        p00, p01 = self.P00[lanes], self.P01[lanes]
        p10, p11 = self.P10[lanes], self.P11[lanes]
        a00 = 1.0 * p00 + dtc * p10
        a01 = 1.0 * p01 + dtc * p11
        g0 = 0.5 * dtc * dtc
        g1 = dtc
        self.P00[lanes] = (a00 * 1.0 + a01 * dtc) + self.q * (g0 * g0)
        self.P01[lanes] = (a00 * 0.0 + a01 * 1.0) + self.q * (g0 * g1)
        self.P10[lanes] = (p10 * 1.0 + p11 * dtc) + self.q * (g1 * g0)
        self.P11[lanes] = (p10 * 0.0 + p11 * 1.0) + self.q * (g1 * g1)

    def _update_axes(self, lanes: np.ndarray, axis: slice, measurement: np.ndarray, r: float) -> None:
        p00 = self.P00[lanes, axis]
        p01 = self.P01[lanes, axis]
        p10 = self.P10[lanes, axis]
        p11 = self.P11[lanes, axis]
        x0 = self.pos[lanes, axis]
        x1 = self.vel[lanes, axis]
        innovation = measurement - x0
        s = p00 + r
        k0 = p00 / s
        k1 = p10 / s
        self.pos[lanes, axis] = x0 + k0 * innovation
        self.vel[lanes, axis] = x1 + k1 * innovation
        self.P00[lanes, axis] = (1.0 - k0) * p00
        self.P01[lanes, axis] = (1.0 - k0) * p01
        self.P10[lanes, axis] = -k1 * p00 + 1.0 * p10
        self.P11[lanes, axis] = -k1 * p01 + 1.0 * p11

    def update_mocap(self, lanes: np.ndarray, position_ned: np.ndarray) -> None:
        self._update_axes(lanes, slice(0, 3), position_ned, self.mocap_noise)
        self.has_fix[lanes] = True

    def update_gps(self, lanes: np.ndarray, position_ned: np.ndarray) -> None:
        self._update_axes(lanes, slice(0, 3), position_ned, self.gps_noise)
        self.has_fix[lanes] = True

    def update_baro_altitude(self, lanes: np.ndarray, altitude_asl: np.ndarray) -> None:
        reference = self.baro_ref[lanes]
        no_reference = np.isnan(reference)
        anchor = no_reference & self.has_fix[lanes]
        if anchor.any():
            anchored = lanes[anchor]
            self.baro_ref[anchored] = altitude_asl[anchor] + self.pos[anchored, 2]
        fuse = ~no_reference
        if fuse.any():
            down = -(altitude_asl[fuse] - reference[fuse])
            self._update_axes(lanes[fuse], slice(2, 3), down[:, None], self.baro_noise)


class BatchPid:
    """SoA PID with clamping anti-windup, mirroring ``PidController``."""

    def __init__(
        self,
        lanes: int,
        kp: float,
        ki: float = 0.0,
        kd: float = 0.0,
        integral_limit: float = float("inf"),
        output_limit: float = float("inf"),
        derivative_filter_tau: float = 0.0,
    ) -> None:
        self.kp, self.ki, self.kd = kp, ki, kd
        self.integral_limit = integral_limit
        self.output_limit = output_limit
        self.tau = derivative_filter_tau
        self.integral = np.zeros(lanes)
        self.previous_error = np.full(lanes, np.nan)  # NaN == scalar None
        self.derivative = np.zeros(lanes)

    def update(self, lanes: np.ndarray, error: np.ndarray, dt: np.ndarray) -> np.ndarray:
        previous = self.previous_error[lanes]
        raw = np.where(np.isnan(previous), 0.0, (error - previous) / dt)
        self.previous_error[lanes] = error
        if self.tau > 0.0:
            derivative = self.derivative[lanes]
            alpha = dt / (self.tau + dt)
            derivative = derivative + alpha * (raw - derivative)
        else:
            derivative = raw
        self.derivative[lanes] = derivative

        candidate = self.integral[lanes] + error * dt
        candidate = np.maximum(-self.integral_limit, np.minimum(self.integral_limit, candidate))
        unsaturated = self.kp * error + self.ki * candidate + self.kd * derivative
        output = np.maximum(-self.output_limit, np.minimum(self.output_limit, unsaturated))
        accept = (output == unsaturated) | (error * output < 0.0)
        self.integral[lanes] = np.where(accept, candidate, self.integral[lanes])
        return output


def allocate_batched(
    thrust: np.ndarray, roll: np.ndarray, pitch: np.ndarray, yaw: np.ndarray
) -> np.ndarray:
    """Vectorised ``QuadXAllocator.allocate`` (unit scales, quad-X mix)."""
    d0, d1, d2 = roll * 1.0, pitch * 1.0, yaw * 1.0
    m0 = thrust + ((-1.0 * d0 + 1.0 * d1) + 1.0 * d2)
    m1 = thrust + ((1.0 * d0 + -1.0 * d1) + 1.0 * d2)
    m2 = thrust + ((1.0 * d0 + 1.0 * d1) + -1.0 * d2)
    m3 = thrust + ((-1.0 * d0 + -1.0 * d1) + -1.0 * d2)
    high = np.maximum(np.maximum(m0, m1), np.maximum(m2, m3))
    low = np.minimum(np.minimum(m0, m1), np.minimum(m2, m3))
    saturated = (high > 1.0) | (low < 0.0)
    if saturated.any():
        # Drop the yaw demand, then shift the collective off the rails.
        n0 = thrust + (-1.0 * d0 + 1.0 * d1)
        n1 = thrust + (1.0 * d0 + -1.0 * d1)
        n2 = thrust + (1.0 * d0 + 1.0 * d1)
        n3 = thrust + (-1.0 * d0 + -1.0 * d1)
        nhigh = np.maximum(np.maximum(n0, n1), np.maximum(n2, n3))
        nlow = np.minimum(np.minimum(n0, n1), np.minimum(n2, n3))
        overshoot = np.maximum(nhigh - 1.0, 0.0)
        undershoot = np.maximum(-nlow, 0.0)
        n0 = n0 - overshoot + undershoot
        n1 = n1 - overshoot + undershoot
        n2 = n2 - overshoot + undershoot
        n3 = n3 - overshoot + undershoot
        m0 = np.where(saturated, n0, m0)
        m1 = np.where(saturated, n1, m1)
        m2 = np.where(saturated, n2, m2)
        m3 = np.where(saturated, n3, m3)
    return np.minimum(np.maximum(np.stack([m0, m1, m2, m3], axis=-1), 0.0), 1.0)


class BatchComplexStack:
    """SoA complex controller: estimators + PX4-style cascade per lane."""

    def __init__(self, lanes: int, setpoint_position: np.ndarray, setpoint_yaw: np.ndarray) -> None:
        self.attitude = BatchComplementaryFilter(lanes)
        self.estimator = BatchPositionEstimator(lanes)
        self.setpoint_position = np.asarray(setpoint_position, dtype=float)
        self.setpoint_yaw = np.asarray(setpoint_yaw, dtype=float)
        self.last_imu = np.full(lanes, np.nan)
        self.last_compute = np.full(lanes, np.nan)
        self.alive = np.ones(lanes, dtype=bool)
        # PositionControlGains / RateControlGains defaults.
        self.pid_vx = BatchPid(lanes, kp=1.8, ki=0.4, kd=0.2, integral_limit=1.0, output_limit=5.0)
        self.pid_vy = BatchPid(lanes, kp=1.8, ki=0.4, kd=0.2, integral_limit=1.0, output_limit=5.0)
        self.pid_vz = BatchPid(lanes, kp=4.0, ki=1.0, kd=0.0, integral_limit=2.0, output_limit=8.0)
        self.pid_roll = BatchPid(lanes, kp=0.15, ki=0.05, kd=0.003, integral_limit=0.3,
                                 output_limit=1.0, derivative_filter_tau=0.005)
        self.pid_pitch = BatchPid(lanes, kp=0.15, ki=0.05, kd=0.003, integral_limit=0.3,
                                  output_limit=1.0, derivative_filter_tau=0.005)
        self.pid_yaw = BatchPid(lanes, kp=0.2, ki=0.1, kd=0.0, integral_limit=0.3, output_limit=1.0)
        self._max_tilt = float(np.deg2rad(30.0))

    def on_imu(self, lanes: np.ndarray, gyro: np.ndarray, accel: np.ndarray, now: np.ndarray) -> None:
        previous = self.last_imu[lanes]
        dt = np.where(np.isnan(previous), _IMU_NOMINAL_DT, np.maximum(now - previous, 1e-4))
        self.last_imu[lanes] = now
        self.attitude.update(lanes, gyro, accel, dt)
        self.estimator.predict(lanes, dt)

    def compute(self, lanes: np.ndarray, now: np.ndarray) -> np.ndarray:
        """One cascade iteration; returns the (unclipped-by-decision) motors."""
        previous = self.last_compute[lanes]
        dt = np.where(np.isnan(previous), _IMU_NOMINAL_DT, np.maximum(now - previous, 1e-4))
        self.last_compute[lanes] = now

        roll, pitch, yaw = self.attitude.euler(lanes)
        rates = self.attitude.rates[lanes]

        # Attitude setpoint: position cascade when the estimate is valid,
        # level hover attitude otherwise.
        count = lanes.shape[0]
        sp_roll = np.zeros(count)
        sp_pitch = np.zeros(count)
        sp_yaw = yaw.copy()
        sp_thrust = np.full(count, 0.57)
        valid = self.estimator.has_fix[lanes]
        if valid.any():
            sub = lanes[valid]
            position = self.estimator.pos[sub]
            velocity = self.estimator.vel[sub]
            position_error = self.setpoint_position[sub] - position
            vsp0 = np.minimum(np.maximum(0.95 * position_error[:, 0], -3.0), 3.0)
            vsp1 = np.minimum(np.maximum(0.95 * position_error[:, 1], -3.0), 3.0)
            vsp2 = np.minimum(np.maximum(1.0 * position_error[:, 2], -1.5), 1.5)
            dts = dt[valid]
            acc0 = self.pid_vx.update(sub, vsp0 - velocity[:, 0], dts)
            acc1 = self.pid_vy.update(sub, vsp1 - velocity[:, 1], dts)
            acc2 = self.pid_vz.update(sub, vsp2 - velocity[:, 2], dts)
            cos_yaw, sin_yaw = np.cos(yaw[valid]), np.sin(yaw[valid])
            acc_body_x = cos_yaw * acc0 + sin_yaw * acc1
            acc_body_y = -sin_yaw * acc0 + cos_yaw * acc1
            sp_pitch[valid] = np.minimum(np.maximum(-acc_body_x / GRAVITY, -self._max_tilt), self._max_tilt)
            sp_roll[valid] = np.minimum(np.maximum(acc_body_y / GRAVITY, -self._max_tilt), self._max_tilt)
            sp_thrust[valid] = np.minimum(np.maximum(0.57 * (1.0 - acc2 / GRAVITY), 0.08), 0.95)
            sp_yaw[valid] = self.setpoint_yaw[sub]

        # AttitudeControlGains defaults.
        rate_sp0 = np.minimum(np.maximum(6.0 * angle_wrap_batched(sp_roll - roll), -3.5), 3.5)
        rate_sp1 = np.minimum(np.maximum(6.0 * angle_wrap_batched(sp_pitch - pitch), -3.5), 3.5)
        rate_sp2 = np.minimum(np.maximum(3.0 * angle_wrap_batched(sp_yaw - yaw), -1.5), 1.5)

        thrust = np.minimum(np.maximum(sp_thrust, 0.0), 1.0)
        out_roll = self.pid_roll.update(lanes, rate_sp0 - rates[:, 0], dt)
        out_pitch = self.pid_pitch.update(lanes, rate_sp1 - rates[:, 1], dt)
        out_yaw = self.pid_yaw.update(lanes, rate_sp2 - rates[:, 2], dt)
        return allocate_batched(thrust, out_roll, out_pitch, out_yaw)


class BatchSafetyStack:
    """SoA safety controller (fixed conservative gains)."""

    def __init__(self, lanes: int, setpoint_position: np.ndarray, setpoint_yaw: np.ndarray) -> None:
        self.attitude = BatchComplementaryFilter(lanes)
        self.estimator = BatchPositionEstimator(lanes)
        self.setpoint_position = np.asarray(setpoint_position, dtype=float)
        self.setpoint_yaw = np.asarray(setpoint_yaw, dtype=float)
        self.last_imu = np.full(lanes, np.nan)
        self.last_rates = np.zeros((lanes, 3))
        self._max_tilt = float(np.deg2rad(15.0))

    def on_imu(self, lanes: np.ndarray, gyro: np.ndarray, accel: np.ndarray, now: np.ndarray) -> None:
        previous = self.last_imu[lanes]
        dt = np.where(np.isnan(previous), _IMU_NOMINAL_DT, np.maximum(now - previous, 1e-4))
        self.last_imu[lanes] = now
        self.attitude.update(lanes, gyro, accel, dt)
        self.estimator.predict(lanes, dt)

    def compute(self, lanes: np.ndarray) -> np.ndarray:
        """One safety-controller iteration; returns the motors per lane."""
        roll, pitch, yaw = self.attitude.euler(lanes)
        rates = self.attitude.rates[lanes]
        position = self.estimator.pos[lanes]
        velocity = self.estimator.vel[lanes]

        position_error = self.setpoint_position[lanes, 0:2] - position[:, 0:2]
        velocity_sp = np.minimum(np.maximum(0.5 * position_error, -1.0), 1.0)
        velocity_error = velocity_sp - velocity[:, 0:2]
        acceleration = 1.2 * velocity_error - 0.15 * velocity[:, 0:2]

        cos_yaw, sin_yaw = np.cos(yaw), np.sin(yaw)
        acc_body_x = cos_yaw * acceleration[:, 0] + sin_yaw * acceleration[:, 1]
        acc_body_y = -sin_yaw * acceleration[:, 0] + cos_yaw * acceleration[:, 1]
        pitch_sp = np.minimum(np.maximum(-acc_body_x / GRAVITY, -self._max_tilt), self._max_tilt)
        roll_sp = np.minimum(np.maximum(acc_body_y / GRAVITY, -self._max_tilt), self._max_tilt)

        altitude_error = self.setpoint_position[lanes, 2] - position[:, 2]
        climb_sp = np.minimum(np.maximum(1.0 * altitude_error, -0.8), 0.8)
        climb_error = climb_sp - velocity[:, 2]
        thrust = np.minimum(np.maximum(0.58 * (1.0 - 2.5 * climb_error / GRAVITY), 0.1), 0.9)

        rate_sp0 = 5.0 * angle_wrap_batched(roll_sp - roll)
        rate_sp1 = 5.0 * angle_wrap_batched(pitch_sp - pitch)
        rate_sp2 = (5.0 * 0.5) * angle_wrap_batched(self.setpoint_yaw[lanes] - yaw)
        rate_error0 = rate_sp0 - rates[:, 0]
        rate_error1 = rate_sp1 - rates[:, 1]
        rate_error2 = rate_sp2 - rates[:, 2]
        rate_derivative = rates - self.last_rates[lanes]
        self.last_rates[lanes] = rates

        return allocate_batched(
            thrust,
            0.12 * rate_error0 - 0.002 * rate_derivative[:, 0],
            0.12 * rate_error1 - 0.002 * rate_derivative[:, 1],
            0.15 * rate_error2,
        )


class BatchDecision:
    """SoA Simplex decision module plus the monitor/receiver kill state."""

    def __init__(self, lanes: int) -> None:
        self.switched = np.zeros(lanes, dtype=bool)  # source == SAFETY
        self.killed = np.zeros(lanes, dtype=bool)  # receiving thread killed
        self.complex_command = np.zeros((lanes, 4))
        self.complex_set = np.zeros(lanes, dtype=bool)
        self.safety_command = np.zeros((lanes, 4))
        self.safety_set = np.zeros(lanes, dtype=bool)
        self.last_received = np.full(lanes, np.nan)  # NaN == scalar None
        self.engaged_at = 0.0
        self.switch_time = np.full(lanes, np.nan)
        self.motor_command = np.full((lanes, 4), 0.57)

    def submit_complex(self, lanes: np.ndarray, motors: np.ndarray, now: np.ndarray) -> None:
        self.last_received[lanes] = now
        active = ~self.switched[lanes]
        if active.any():
            accepted = lanes[active]
            self.complex_command[accepted] = np.minimum(np.maximum(motors[active], 0.0), 1.0)
            self.complex_set[accepted] = True

    def submit_safety(self, lanes: np.ndarray, motors: np.ndarray) -> None:
        self.safety_command[lanes] = np.minimum(np.maximum(motors, 0.0), 1.0)
        self.safety_set[lanes] = True

    def switch_to_safety(self, lanes: np.ndarray, now: np.ndarray) -> None:
        self.switched[lanes] = True
        self.killed[lanes] = True
        self.switch_time[lanes] = now

    def select(self, lanes: np.ndarray) -> None:
        """Apply the PWM driver's selection into ``motor_command``."""
        use_complex = ~self.switched[lanes] & self.complex_set[lanes]
        use_safety = ~use_complex & self.safety_set[lanes]
        if use_complex.any():
            chosen = lanes[use_complex]
            self.motor_command[chosen] = np.minimum(np.maximum(self.complex_command[chosen], 0.0), 1.0)
        if use_safety.any():
            chosen = lanes[use_safety]
            self.motor_command[chosen] = np.minimum(np.maximum(self.safety_command[chosen], 0.0), 1.0)

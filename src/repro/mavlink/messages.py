"""MAVLink-like message definitions.

The paper's HCE and CCE exchange sensor data and actuator outputs over UDP
using the MAVLink protocol.  This module defines a compact message set that
mirrors the messages the prototype actually uses, with payload sizes chosen so
the framed packets match the byte counts reported in Table I:

=============  ==================  =====  =========  =====
Component      Direction           Rate   Size       Port
=============  ==================  =====  =========  =====
IMU            HCE → CCE           250Hz  52 bytes   14660
Barometer      HCE → CCE           50Hz   32 bytes   14660
GPS            HCE → CCE           10Hz   44 bytes   14660
RC             HCE → CCE           50Hz   50 bytes   14660
Motor Output   CCE → HCE           400Hz  29 bytes   14600
=============  ==================  =====  =========  =====

Each frame carries an 8-byte header (magic, length, sequence, system id,
component id, message id) and a 2-byte CRC, so the payload sizes below are
``table_size - 10``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "MESSAGE_REGISTRY",
    "MavlinkMessage",
    "HighresImu",
    "ScaledPressure",
    "GpsRawInt",
    "RcChannelsOverride",
    "ActuatorOutputs",
    "AttitudeTarget",
    "Heartbeat",
    "LocalPositionNed",
    "message_class_for_id",
]

#: Number of framing bytes added by the codec (header + CRC).
FRAME_OVERHEAD = 10


@dataclass(frozen=True)
class MavlinkMessage:
    """Base class for all messages.  Subclasses define ``MSG_ID`` and packing."""

    MSG_ID: int = field(default=-1, init=False, repr=False)

    def pack(self) -> bytes:
        """Serialise the payload to bytes."""
        raise NotImplementedError

    @classmethod
    def unpack(cls, payload: bytes) -> "MavlinkMessage":
        """Deserialise the payload from bytes."""
        raise NotImplementedError


@dataclass(frozen=True)
class Heartbeat(MavlinkMessage):
    """Liveness beacon exchanged between the control environments."""

    MSG_ID = 0
    _FORMAT = "<IBBB"

    time_ms: int = 0
    system_status: int = 0
    autopilot: int = 12
    vehicle_type: int = 2

    def pack(self) -> bytes:
        return struct.pack(self._FORMAT, self.time_ms, self.system_status,
                           self.autopilot, self.vehicle_type)

    @classmethod
    def unpack(cls, payload: bytes) -> "Heartbeat":
        time_ms, status, autopilot, vehicle_type = struct.unpack(cls._FORMAT, payload)
        return cls(time_ms=time_ms, system_status=status, autopilot=autopilot,
                   vehicle_type=vehicle_type)


@dataclass(frozen=True)
class HighresImu(MavlinkMessage):
    """IMU sample forwarded from the HCE driver (Table I: 52 bytes framed)."""

    MSG_ID = 105
    # uint32 time + 9 floats (gyro, accel, abs pressure, pressure altitude,
    # temperature) + uint16 fields_updated = 42 bytes payload -> 52 framed.
    _FORMAT = "<I9fH"

    time_ms: int = 0
    gyro: tuple[float, float, float] = (0.0, 0.0, 0.0)
    accel: tuple[float, float, float] = (0.0, 0.0, 0.0)
    abs_pressure: float = 101325.0
    pressure_alt: float = 0.0
    temperature: float = 25.0
    fields_updated: int = 0x3F

    def pack(self) -> bytes:
        return struct.pack(
            self._FORMAT,
            self.time_ms,
            *self.gyro,
            *self.accel,
            self.abs_pressure,
            self.pressure_alt,
            self.temperature,
            self.fields_updated,
        )

    @classmethod
    def unpack(cls, payload: bytes) -> "HighresImu":
        values = struct.unpack(cls._FORMAT, payload)
        return cls(
            time_ms=values[0],
            gyro=tuple(values[1:4]),
            accel=tuple(values[4:7]),
            abs_pressure=values[7],
            pressure_alt=values[8],
            temperature=values[9],
            fields_updated=values[10],
        )

    @classmethod
    def from_arrays(cls, time_ms: int, gyro: np.ndarray, accel: np.ndarray) -> "HighresImu":
        """Build a message from numpy gyro/accel vectors."""
        return cls(time_ms=time_ms, gyro=tuple(float(v) for v in gyro),
                   accel=tuple(float(v) for v in accel))


@dataclass(frozen=True)
class ScaledPressure(MavlinkMessage):
    """Barometer sample forwarded from the HCE driver (Table I: 32 bytes framed)."""

    MSG_ID = 29
    # uint32 time + 4 floats + int16 = 22 bytes payload.
    _FORMAT = "<I4fh"

    time_ms: int = 0
    pressure_abs: float = 101325.0
    pressure_diff: float = 0.0
    altitude_m: float = 0.0
    temperature_c: float = 25.0
    padding: int = 0

    def pack(self) -> bytes:
        return struct.pack(self._FORMAT, self.time_ms, self.pressure_abs,
                           self.pressure_diff, self.altitude_m, self.temperature_c,
                           self.padding)

    @classmethod
    def unpack(cls, payload: bytes) -> "ScaledPressure":
        values = struct.unpack(cls._FORMAT, payload)
        return cls(time_ms=values[0], pressure_abs=values[1], pressure_diff=values[2],
                   altitude_m=values[3], temperature_c=values[4], padding=values[5])


@dataclass(frozen=True)
class GpsRawInt(MavlinkMessage):
    """GNSS fix forwarded from the HCE driver (Table I: 44 bytes framed)."""

    MSG_ID = 24
    # uint32 time + 3 int32 (lat/lon/alt) + 4 floats + 2 uint8 = 34 bytes payload.
    _FORMAT = "<I3i4f2B"

    time_ms: int = 0
    lat_e7: int = 0
    lon_e7: int = 0
    alt_mm: int = 0
    vel_north: float = 0.0
    vel_east: float = 0.0
    vel_down: float = 0.0
    hdop: float = 1.0
    fix_type: int = 3
    satellites: int = 9

    def pack(self) -> bytes:
        return struct.pack(self._FORMAT, self.time_ms, self.lat_e7, self.lon_e7,
                           self.alt_mm, self.vel_north, self.vel_east, self.vel_down,
                           self.hdop, self.fix_type, self.satellites)

    @classmethod
    def unpack(cls, payload: bytes) -> "GpsRawInt":
        values = struct.unpack(cls._FORMAT, payload)
        return cls(time_ms=values[0], lat_e7=values[1], lon_e7=values[2], alt_mm=values[3],
                   vel_north=values[4], vel_east=values[5], vel_down=values[6],
                   hdop=values[7], fix_type=values[8], satellites=values[9])


@dataclass(frozen=True)
class RcChannelsOverride(MavlinkMessage):
    """RC frame forwarded from the HCE driver (Table I: 50 bytes framed)."""

    MSG_ID = 70
    # uint32 time + 16 uint16 channels + 2 uint8 + uint16 = 40 bytes payload.
    _FORMAT = "<I16H2BH"

    time_ms: int = 0
    channels: tuple[int, ...] = tuple([1500] * 16)
    target_system: int = 1
    target_component: int = 1
    rssi: int = 255

    def pack(self) -> bytes:
        channels = tuple(self.channels) + (1500,) * (16 - len(self.channels))
        return struct.pack(self._FORMAT, self.time_ms, *channels[:16],
                           self.target_system, self.target_component, self.rssi)

    @classmethod
    def unpack(cls, payload: bytes) -> "RcChannelsOverride":
        values = struct.unpack(cls._FORMAT, payload)
        return cls(time_ms=values[0], channels=tuple(values[1:17]),
                   target_system=values[17], target_component=values[18], rssi=values[19])


@dataclass(frozen=True)
class LocalPositionNed(MavlinkMessage):
    """Local NED position (motion-capture fix bridged like ViconMAVLink)."""

    MSG_ID = 32
    _FORMAT = "<I7f"

    time_ms: int = 0
    x: float = 0.0
    y: float = 0.0
    z: float = 0.0
    vx: float = 0.0
    vy: float = 0.0
    vz: float = 0.0
    yaw: float = 0.0

    def pack(self) -> bytes:
        return struct.pack(self._FORMAT, self.time_ms, self.x, self.y, self.z,
                           self.vx, self.vy, self.vz, self.yaw)

    @classmethod
    def unpack(cls, payload: bytes) -> "LocalPositionNed":
        values = struct.unpack(cls._FORMAT, payload)
        return cls(time_ms=values[0], x=values[1], y=values[2], z=values[3],
                   vx=values[4], vy=values[5], vz=values[6], yaw=values[7])


@dataclass(frozen=True)
class ActuatorOutputs(MavlinkMessage):
    """Motor output from the complex controller (Table I: 29 bytes framed)."""

    MSG_ID = 140
    # uint32 time + 4 floats (motors) - header/CRC gives a 29-byte frame
    # only with a trimmed header, so we use uint16 time + 4 float + seq byte
    # = 19 bytes payload -> 29 bytes framed.
    _FORMAT = "<H4fB"

    time_ms: int = 0
    motors: tuple[float, float, float, float] = (0.0, 0.0, 0.0, 0.0)
    sequence: int = 0

    def pack(self) -> bytes:
        return struct.pack(self._FORMAT, self.time_ms & 0xFFFF, *self.motors,
                           self.sequence & 0xFF)

    @classmethod
    def unpack(cls, payload: bytes) -> "ActuatorOutputs":
        values = struct.unpack(cls._FORMAT, payload)
        return cls(time_ms=values[0], motors=tuple(values[1:5]), sequence=values[5])

    @classmethod
    def from_command(cls, time_ms: int, motors: np.ndarray, sequence: int) -> "ActuatorOutputs":
        """Build a message from an actuator command's motor vector."""
        return cls(time_ms=time_ms, motors=tuple(float(v) for v in motors), sequence=sequence)


@dataclass(frozen=True)
class AttitudeTarget(MavlinkMessage):
    """Attitude setpoint message (used by extension examples, not Table I)."""

    MSG_ID = 82
    _FORMAT = "<I5f"

    time_ms: int = 0
    roll: float = 0.0
    pitch: float = 0.0
    yaw: float = 0.0
    thrust: float = 0.0
    body_yaw_rate: float = 0.0

    def pack(self) -> bytes:
        return struct.pack(self._FORMAT, self.time_ms, self.roll, self.pitch,
                           self.yaw, self.thrust, self.body_yaw_rate)

    @classmethod
    def unpack(cls, payload: bytes) -> "AttitudeTarget":
        values = struct.unpack(cls._FORMAT, payload)
        return cls(time_ms=values[0], roll=values[1], pitch=values[2], yaw=values[3],
                   thrust=values[4], body_yaw_rate=values[5])


#: Message classes indexed by their MAVLink-style message id.
MESSAGE_REGISTRY: dict[int, type[MavlinkMessage]] = {
    cls.MSG_ID: cls
    for cls in (
        Heartbeat,
        HighresImu,
        ScaledPressure,
        GpsRawInt,
        RcChannelsOverride,
        LocalPositionNed,
        ActuatorOutputs,
        AttitudeTarget,
    )
}


def message_class_for_id(msg_id: int) -> type[MavlinkMessage]:
    """Return the message class registered for ``msg_id``.

    Raises
    ------
    KeyError
        If the id is unknown (e.g. a malformed or hostile packet).
    """
    return MESSAGE_REGISTRY[msg_id]

"""Declarative sweep grids over :class:`~repro.sim.scenario.FlightScenario`.

A :class:`ScenarioGrid` turns one base scenario plus a set of named axes into
the cartesian product of parameter combinations, each expanded into a fully
configured, uniquely named scenario variant.  The paper's four hand-picked
experiments become cells of a grid: instead of calling ``figure5()`` once, a
campaign sweeps MemGuard budgets x attack start times x seeds and reports the
crash rate per cell.

Built-in axes (value semantics):

``seed``
    Random seed of the scenario (int).
``attack_start``
    Reschedules every attack of the base scenario to the given time [s].
``memguard_budget``
    CCE MemGuard budget in DRAM accesses per regulation period (int).
``controller_placement``
    ``"container"`` or ``"host"``.
``memguard`` / ``monitor`` / ``iptables``
    Protection toggles (bool).
``duration`` / ``physics_dt`` / ``geofence_radius`` / ``record_hz`` /
``initial_altitude``
    Direct scenario-field overrides (float).

``attack.<param>``
    Sets parameter ``<param>`` on every attack of the base scenario that
    declares it (resolved via :meth:`repro.attacks.Attack.param_names`
    introspection, e.g. ``attack.packets_per_second`` for the UDP flood rate
    or ``attack.access_rate`` for the memory hog).  Expansion fails if no
    attack has the parameter.

Axes not listed above need an explicit applier callable, registered globally
with :func:`register_axis` or passed per-grid via ``add_axis(applier=...)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping, Sequence

from ..sim.scenario import FlightScenario
from .results import SUMMARY_FIELDS

__all__ = [
    "ATTACK_AXIS_PREFIX",
    "AxisApplier",
    "GridVariant",
    "ScenarioGrid",
    "register_axis",
    "resolve_applier",
]

#: Axis names that would collide with the per-variant summary columns
#: (``seed`` is exempt: the seed axis and the summary's seed column agree by
#: construction, since the applier writes the value into the scenario).
RESERVED_AXIS_NAMES = frozenset({"variant", "error"} | set(SUMMARY_FIELDS))

#: Applies one axis value to a scenario, returning the modified copy.
AxisApplier = Callable[[FlightScenario, Any], FlightScenario]


def _as_integral(axis: str, value: Any) -> int:
    """Coerce to int, rejecting values that truncation would silently merge
    (e.g. seeds 1 and 1.9 both becoming 1 — defeating the duplicate check)."""
    try:
        coerced = int(value)
    except (TypeError, ValueError):
        raise ValueError(f"axis {axis!r} value {value!r} is not an integer") from None
    if not _values_equal(coerced, value):
        raise ValueError(
            f"axis {axis!r} value {value!r} is not integral (would be "
            f"truncated to {coerced})"
        )
    return coerced


def _apply_seed(scenario: FlightScenario, value: Any) -> FlightScenario:
    return scenario.with_seed(_as_integral("seed", value))


def _apply_attack_start(scenario: FlightScenario, value: Any) -> FlightScenario:
    if not scenario.attacks:
        raise ValueError("attack_start axis requires a base scenario with attacks")
    return scenario.with_attack_start(float(value))


def _apply_memguard_budget(scenario: FlightScenario, value: Any) -> FlightScenario:
    return scenario.with_config(
        scenario.config.with_memguard_budget(_as_integral("memguard_budget", value))
    )


def _apply_controller_placement(scenario: FlightScenario, value: Any) -> FlightScenario:
    return replace(scenario, controller_placement=str(value))


def _make_protection_applier(protection: str) -> AxisApplier:
    def _apply(scenario: FlightScenario, value: Any) -> FlightScenario:
        return scenario.with_config(
            scenario.config.with_protections(**{protection: bool(value)})
        )

    return _apply


def _make_field_applier(field_name: str) -> AxisApplier:
    def _apply(scenario: FlightScenario, value: Any) -> FlightScenario:
        return replace(scenario, **{field_name: value})

    return _apply


#: Global registry of named axis appliers.
_AXIS_APPLIERS: dict[str, AxisApplier] = {
    "seed": _apply_seed,
    "attack_start": _apply_attack_start,
    "memguard_budget": _apply_memguard_budget,
    "controller_placement": _apply_controller_placement,
    "memguard": _make_protection_applier("memguard"),
    "monitor": _make_protection_applier("monitor"),
    "iptables": _make_protection_applier("iptables"),
    "duration": _make_field_applier("duration"),
    "physics_dt": _make_field_applier("physics_dt"),
    "geofence_radius": _make_field_applier("geofence_radius"),
    "record_hz": _make_field_applier("record_hz"),
    "initial_altitude": _make_field_applier("initial_altitude"),
}


#: Prefix of dynamically resolved attack-parameter axes.
ATTACK_AXIS_PREFIX = "attack."


def _make_attack_param_applier(param: str) -> AxisApplier:
    """Applier for an ``attack.<param>`` axis: introspects the scenario's
    attacks and rewrites the parameter on every attack that declares it."""

    def _apply(scenario: FlightScenario, value: Any) -> FlightScenario:
        if not scenario.attacks:
            raise ValueError(
                f"axis {ATTACK_AXIS_PREFIX + param!r} requires a base "
                "scenario with attacks"
            )
        if not any(attack.has_param(param) for attack in scenario.attacks):
            available = sorted(
                {name for attack in scenario.attacks for name in attack.param_names()}
            )
            raise ValueError(
                f"no attack of scenario {scenario.name!r} has parameter "
                f"{param!r} (available: {available})"
            )
        return scenario.with_attacks(*(
            attack.with_params(**{param: value}) if attack.has_param(param) else attack
            for attack in scenario.attacks
        ))

    return _apply


def resolve_applier(name: str) -> AxisApplier:
    """Applier for a named axis: the global registry plus the dynamic
    ``attack.<param>`` namespace."""
    if name.startswith(ATTACK_AXIS_PREFIX):
        return _make_attack_param_applier(name[len(ATTACK_AXIS_PREFIX):])
    try:
        return _AXIS_APPLIERS[name]
    except KeyError:
        raise KeyError(
            f"unknown axis {name!r}; register it with register_axis(), pass "
            f"applier=..., or use an '{ATTACK_AXIS_PREFIX}<param>' axis "
            f"(built-ins: {sorted(_AXIS_APPLIERS)})"
        ) from None


def register_axis(name: str, applier: AxisApplier) -> None:
    """Register a custom named axis usable by every grid.

    Names already in the registry (built-in or previously registered) are
    rejected: silently shadowing e.g. the ``seed`` axis would change the
    behaviour of every later campaign in the process while its reports
    still show the original axis semantics.  To override an axis for one
    grid, pass ``applier=...`` to :meth:`ScenarioGrid.add_axis` instead.
    """
    if not callable(applier):
        raise TypeError("axis applier must be callable")
    if name in RESERVED_AXIS_NAMES:
        raise ValueError(
            f"axis name {name!r} is reserved (it would collide with a "
            "summary-export column)"
        )
    if name in _AXIS_APPLIERS:
        raise ValueError(
            f"axis {name!r} is already registered; use add_axis(applier=...) "
            "for a per-grid override"
        )
    if name.startswith(ATTACK_AXIS_PREFIX):
        raise ValueError(
            f"axis names starting with {ATTACK_AXIS_PREFIX!r} are resolved "
            "dynamically from attack parameters and cannot be registered"
        )
    _AXIS_APPLIERS[name] = applier


def _format_value(value: Any) -> str:
    """Compact, name-safe rendering of an axis value."""
    if isinstance(value, bool):
        return "on" if value else "off"
    if isinstance(value, float):
        text = f"{value:g}"
    else:
        text = str(value)
    return text.replace("/", "-").replace(" ", "")


def _values_equal(first: Any, second: Any) -> bool:
    """Equality that tolerates exotic axis values (odd __eq__ implementations).

    Deliberately matches plain ``==`` (so ``1`` and ``1.0`` are duplicates):
    cell aggregation groups outcomes by axis-value equality, and two "distinct"
    values that compare equal would silently merge into one cell.
    """
    try:
        return bool(first == second)
    except Exception:
        return False


def _axis_labels(values: tuple[Any, ...]) -> tuple[str, ...]:
    """Name-safe labels, disambiguated when distinct values format alike
    (e.g. floats equal to 6 significant digits under ``%g``)."""
    labels: list[str] = []
    for value in values:
        label = _format_value(value)
        if label in labels:
            label = f"{label}#{len(labels)}"
        labels.append(label)
    return tuple(labels)


@dataclass(frozen=True)
class GridVariant:
    """One expanded cell-and-replicate of a sweep grid.

    Attributes
    ----------
    name:
        Unique variant identifier, ``base/axis=value/...`` in axis order.
    axes:
        The axis assignment that produced this variant, as an ordered tuple
        of ``(axis, value)`` pairs (hashable, so results can be grouped).
    scenario:
        The fully configured scenario to fly.
    """

    name: str
    axes: tuple[tuple[str, Any], ...]
    scenario: FlightScenario

    def axis_dict(self) -> dict[str, Any]:
        """Axis assignment as a plain dictionary."""
        return dict(self.axes)


class ScenarioGrid:
    """Cartesian sweep of named axes over a base scenario.

    Parameters
    ----------
    base:
        Scenario every variant starts from.
    axes:
        Optional mapping of axis name to value sequence; equivalent to
        calling :meth:`add_axis` for each entry in iteration order.
    """

    def __init__(
        self,
        base: FlightScenario,
        axes: Mapping[str, Sequence[Any]] | None = None,
    ) -> None:
        if not isinstance(base, FlightScenario):
            raise TypeError("base must be a FlightScenario")
        self.base = base
        self._axes: list[tuple[str, tuple[Any, ...], tuple[str, ...], AxisApplier]] = []
        for name, values in (axes or {}).items():
            self.add_axis(name, values)

    def add_axis(
        self,
        name: str,
        values: Sequence[Any],
        applier: AxisApplier | None = None,
    ) -> "ScenarioGrid":
        """Add one sweep axis; returns ``self`` so calls can be chained.

        ``applier`` overrides (or supplies, for unknown names) the function
        that applies a value of this axis to a scenario.
        """
        if name in RESERVED_AXIS_NAMES:
            raise ValueError(
                f"axis name {name!r} is reserved (it would collide with a "
                "summary-export column)"
            )
        if applier is None:
            applier = resolve_applier(name)
        if any(existing == name for existing, _, _, _ in self._axes):
            raise ValueError(f"duplicate axis {name!r}")
        values = tuple(values)
        if not values:
            raise ValueError(f"axis {name!r} has no values")
        for index, value in enumerate(values):
            try:
                hash(value)
            except TypeError:
                raise TypeError(
                    f"axis {name!r} value {value!r} is not hashable; cell "
                    "aggregation groups on axis values, so use a hashable "
                    "stand-in (e.g. a tuple or a label) and map it inside "
                    "the applier"
                ) from None
            if any(_values_equal(value, other) for other in values[:index]):
                raise ValueError(f"axis {name!r} has duplicate values: {values}")
        self._axes.append((name, values, _axis_labels(values), applier))
        return self

    @property
    def axis_names(self) -> tuple[str, ...]:
        """Names of the sweep axes, in declaration order."""
        return tuple(name for name, _, _, _ in self._axes)

    def __len__(self) -> int:
        """Number of variants the grid expands to."""
        total = 1
        for _, values, _, _ in self._axes:
            total *= len(values)
        return total

    def variants(self) -> list[GridVariant]:
        """Expand the grid into uniquely named scenario variants.

        Expansion order is deterministic: the cartesian product iterates the
        last-declared axis fastest (like nested for-loops in declaration
        order).
        """
        if not self._axes:
            return [GridVariant(name=self.base.name, axes=(), scenario=self.base)]
        names = [name for name, _, _, _ in self._axes]
        appliers = [applier for _, _, _, applier in self._axes]
        variants: list[GridVariant] = []
        seen: set[str] = set()
        for combination in itertools.product(
            *(zip(values, labels) for _, values, labels, _ in self._axes)
        ):
            scenario = self.base
            parts = [self.base.name]
            for axis_name, applier, (value, label) in zip(names, appliers, combination):
                scenario = applier(scenario, value)
                if not isinstance(scenario, FlightScenario):
                    raise TypeError(
                        f"applier for axis {axis_name!r} returned "
                        f"{type(scenario).__name__}, expected FlightScenario"
                    )
                parts.append(f"{axis_name}={label}")
            name = "/".join(parts)
            if name in seen:
                raise ValueError(f"duplicate variant name {name!r}")
            seen.add(name)
            variants.append(GridVariant(
                name=name,
                axes=tuple(
                    (axis_name, value)
                    for axis_name, (value, _) in zip(names, combination)
                ),
                scenario=scenario.with_name(name),
            ))
        return variants

"""Quadrotor physical dynamics substrate.

Replaces the paper's physical prototype drone with a 6-DOF rigid-body
simulation (see DESIGN.md, substitution table).
"""

from .environment import ConstantWind, Environment, GustWind
from .integrators import INTEGRATORS, euler_step, rk4_step
from .mixer import QuadGeometry, forces_and_torques
from .motor import Motor, MotorBank, MotorParameters
from .quadrotor import Quadrotor, QuadrotorParameters
from .state import (
    GRAVITY,
    RigidBodyState,
    angle_wrap,
    euler_error,
    quat_conjugate,
    quat_from_axis_angle,
    quat_from_euler,
    quat_multiply,
    quat_normalize,
    quat_rotate,
    quat_rotate_inverse,
    quat_to_euler,
    quat_to_rotation_matrix,
)

__all__ = [
    "GRAVITY",
    "ConstantWind",
    "Environment",
    "GustWind",
    "INTEGRATORS",
    "Motor",
    "MotorBank",
    "MotorParameters",
    "QuadGeometry",
    "Quadrotor",
    "QuadrotorParameters",
    "RigidBodyState",
    "angle_wrap",
    "euler_error",
    "euler_step",
    "forces_and_torques",
    "quat_conjugate",
    "quat_from_axis_angle",
    "quat_from_euler",
    "quat_multiply",
    "quat_normalize",
    "quat_rotate",
    "quat_rotate_inverse",
    "quat_to_euler",
    "quat_to_rotation_matrix",
    "rk4_step",
]

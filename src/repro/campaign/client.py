"""Client for the campaign service: ``python -m repro.campaign.client``.

:class:`ServiceClient` is the programmatic face of a
:class:`~repro.campaign.service.CampaignService` daemon's ``/runs`` API:
submit a campaign spec (or raw task payloads), poll status, fetch results,
cancel.  :class:`~repro.campaign.backends.ServiceBackend` builds on it so a
local :class:`~repro.campaign.runner.CampaignRunner` can rent the daemon's
fleet; the CLI makes the same API scriptable::

    python -m repro.campaign.client URL submit spec.toml [--wait]
    python -m repro.campaign.client URL list
    python -m repro.campaign.client URL status RUN
    python -m repro.campaign.client URL results RUN
    python -m repro.campaign.client URL cancel RUN
    python -m repro.campaign.client URL ping

Every request is one self-contained HTTP exchange (the service transport's
single-request semantics), so any proxy that forwards a POST works.  The
shared secret comes from ``--auth-token`` or ``$REPRO_CAMPAIGN_AUTH_TOKEN``
(preferred — argv is visible in process listings) and never appears in
output.  Version skew fails fast: the client checks the daemon's ``/ping``
protocol version before submitting and raises
:class:`~repro.campaign.workqueue.WorkQueueProtocolError` on mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Mapping, Sequence

from .transport import _decode, _encode
from .transport_http import parse_http_url
from .workqueue import (
    PROTOCOL_VERSION,
    WorkQueueAuthError,
    WorkQueueProtocolError,
    resolve_auth_token,
)

__all__ = ["ServiceClient", "ServiceError", "main"]


class ServiceError(RuntimeError):
    """The service answered, but with an error (bad spec, unknown run, ...)."""


class ServiceUnreachableError(ServiceError):
    """No (parseable) answer from the service at all."""


class ServiceClient:
    """HTTP client for one campaign service daemon.

    Unlike the worker-side queue client — which *degrades* on an
    unreachable coordinator because polling forever is a worker's job —
    this client raises: a human or script submitting a run needs the
    failure now, not an idle loop.  :class:`ServiceUnreachableError` for
    transport failures, :class:`ServiceError` for service-level rejections,
    :class:`~repro.campaign.workqueue.WorkQueueAuthError` for a bad secret.
    """

    def __init__(
        self,
        base_url: str,
        auth_token: str | None = None,
        timeout: float = 10.0,
    ) -> None:
        if auth_token is not None and not auth_token:
            raise ValueError("auth_token must be a non-empty string")
        self._base_url = parse_http_url(base_url)
        self._auth_token = auth_token
        self._timeout = timeout

    # -- API wrappers ------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        """The daemon's structured ping body (``GET /ping``)."""
        return self._request("GET", "/ping")

    def check_service(self) -> dict[str, Any]:
        """Fail fast unless the endpoint is a *service-mode* daemon speaking
        this client's protocol version (plain single-campaign coordinators
        answer ``/ping`` too, but have no ``/runs`` API)."""
        info = self.ping()
        version = info.get("protocol")
        if version != PROTOCOL_VERSION:
            described = "1 (no version field)" if version is None else version
            raise WorkQueueProtocolError(
                f"service speaks work-queue protocol {described} but this "
                f"client requires {PROTOCOL_VERSION}; upgrade the older side"
            )
        if not info.get("service"):
            raise ServiceError(
                "endpoint is a single-campaign coordinator, not a campaign "
                "service (start one with python -m repro.campaign.service)"
            )
        return info

    def submit_spec(
        self,
        spec: Mapping[str, Any],
        label: str | None = None,
        run_id: str | None = None,
    ) -> str:
        """Submit a JSON campaign spec; returns the assigned run id."""
        self.check_service()
        body: dict[str, Any] = {"spec": dict(spec)}
        if label:
            body["label"] = label
        if run_id:
            body["run"] = run_id
        return str(self._request("POST", "/runs", body)["run"])

    def submit_tasks(
        self, payloads: Sequence[Any], label: str | None = None
    ) -> str:
        """Submit raw ``(fn, item)`` task payloads; returns the run id."""
        self.check_service()
        body: dict[str, Any] = {
            "tasks": [_encode(payload) for payload in payloads]
        }
        if label:
            body["label"] = label
        return str(self._request("POST", "/runs", body)["run"])

    def list_runs(self) -> list[dict[str, Any]]:
        """The daemon's run registry (``GET /runs``)."""
        return list(self._request("GET", "/runs")["runs"])

    def status(self, run_id: str) -> dict[str, Any]:
        """One run's lifecycle + queue state (``GET /runs/<id>/status``)."""
        return self._request("GET", f"/runs/{run_id}/status")

    def results(self, run_id: str) -> dict[str, Any]:
        """One run's raw results document (``GET /runs/<id>/results``)."""
        return self._request("GET", f"/runs/{run_id}/results")

    def task_results(self, run_id: str) -> tuple[str, dict[int, Any]]:
        """Decoded results of a *task* run: ``(state, {index: result})``."""
        document = self.results(run_id)
        results = {
            int(index): _decode(blob)
            for index, blob in (document.get("results") or {}).items()
        }
        return str(document.get("state")), results

    def cancel(self, run_id: str, missing_ok: bool = False) -> bool:
        """Cancel a run (``DELETE /runs/<id>``); True if it was running.

        ``missing_ok`` makes the call best-effort (unknown run, daemon
        already gone): cleanup paths must not mask the original failure.
        """
        try:
            return bool(self._request(
                "DELETE", f"/runs/{run_id}")["cancelled"])
        except ServiceError:
            if missing_ok:
                return False
            raise

    def rotate_token(self, new_token: str, keep_previous: int = 1) -> None:
        """Install a new primary auth secret on the daemon (the current one
        stays accepted for ``keep_previous`` rotations)."""
        self._request("POST", "/rotate-token",
                      {"new_token": new_token,
                       "keep_previous": keep_previous})

    def wait(
        self,
        run_id: str,
        timeout: float | None = None,
        poll_interval: float = 0.5,
    ) -> dict[str, Any]:
        """Poll until the run leaves ``running``; returns the final status."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(run_id)
            if status.get("state") != "running":
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"run {run_id} still running after {timeout:.1f}s"
                )
            time.sleep(poll_interval)

    # -- internal ----------------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        payload = dict(body or {})
        if self._auth_token is not None and method == "POST":
            payload["token"] = self._auth_token
        headers = {"Content-Type": "application/json"}
        if self._auth_token is not None:
            # GET/DELETE have no body to carry the token in; the header
            # form is accepted everywhere for symmetry.
            headers["X-Auth-Token"] = self._auth_token
        data = json.dumps(payload).encode("ascii") if method == "POST" else None
        request = urllib.request.Request(
            f"{self._base_url}{path}", data=data, headers=headers,
            method=method,
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self._timeout
            ) as reply:
                raw = reply.read()
        except urllib.error.HTTPError as exc:
            try:
                raw = exc.read()
            except OSError:
                raise ServiceUnreachableError(
                    f"no response from {self._base_url}"
                ) from None
        except (OSError, ValueError) as exc:
            raise ServiceUnreachableError(
                f"cannot reach campaign service at {self._base_url}: {exc}"
            ) from None
        try:
            response = json.loads(raw)
        except ValueError:
            raise ServiceUnreachableError(
                f"non-JSON response from {self._base_url} (a proxy error "
                "page, or not a campaign service?)"
            ) from None
        if not isinstance(response, dict) or not response.get("ok"):
            if isinstance(response, dict) and response.get("denied") == "auth":
                raise WorkQueueAuthError(
                    str(response.get("error") or "unauthenticated")
                )
            error = "malformed response"
            if isinstance(response, dict):
                error = str(response.get("error") or "request rejected")
            raise ServiceError(error)
        return response


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign.client",
        description="Talk to a running campaign service: submit campaign "
        "specs as hosted runs, list/inspect/cancel them, fetch results.",
    )
    parser.add_argument("url", help="service base URL (http[s]://host:port)")
    parser.add_argument("--auth-token", default=None, metavar="TOKEN",
                        help="shared-secret token (default: "
                        "$REPRO_CAMPAIGN_AUTH_TOKEN; prefer the environment "
                        "— argv is visible in process listings)")
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="per-request HTTP timeout [s] (default: 10)")
    commands = parser.add_subparsers(dest="command", required=True)

    submit = commands.add_parser(
        "submit", help="submit a campaign spec file as a hosted run")
    submit.add_argument("spec", help="path to the campaign spec (.json/.toml)")
    submit.add_argument("--label", default=None,
                        help="run label shown in the service registry")
    submit.add_argument("--run-id", default=None,
                        help="explicit run id (default: service-assigned)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the run finishes, then print its "
                        "results document")
    commands.add_parser("list", help="list the service's hosted runs")
    status = commands.add_parser("status", help="show one run's status")
    status.add_argument("run", help="run id")
    results = commands.add_parser("results", help="fetch one run's results")
    results.add_argument("run", help="run id")
    cancel = commands.add_parser("cancel", help="cancel one run")
    cancel.add_argument("run", help="run id")
    commands.add_parser("ping", help="check reachability, protocol and mode")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    client = ServiceClient(
        args.url,
        auth_token=resolve_auth_token(args.auth_token),
        timeout=args.timeout,
    )
    try:
        if args.command == "submit":
            from .spec import load_spec

            run_id = client.submit_spec(
                load_spec(args.spec), label=args.label, run_id=args.run_id
            )
            if not args.wait:
                print(run_id)
                return 0
            status = client.wait(run_id)
            document = client.results(run_id)
            print(json.dumps(document, indent=2, sort_keys=True))
            return 0 if status.get("state") == "done" else 2
        if args.command == "list":
            print(json.dumps(client.list_runs(), indent=2, sort_keys=True))
        elif args.command == "status":
            print(json.dumps(client.status(args.run), indent=2,
                             sort_keys=True))
        elif args.command == "results":
            print(json.dumps(client.results(args.run), indent=2,
                             sort_keys=True))
        elif args.command == "cancel":
            cancelled = client.cancel(args.run)
            print("cancelled" if cancelled else "already finished")
        elif args.command == "ping":
            print(json.dumps(client.ping(), indent=2, sort_keys=True))
        return 0
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ServiceError, WorkQueueProtocolError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except WorkQueueAuthError as exc:
        print(f"error: authentication failed: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())

"""Simulated UDP datagram transport.

The HCE and CCE communicate exclusively through UDP sockets on the docker0
interface (Section IV-D of the paper).  This module models datagrams,
endpoints with bounded receive queues, and the address tuple used by the
virtual network stack.  Time is simulation time supplied by the caller; there
is no real networking involved.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["Datagram", "UdpEndpoint", "SocketAddress", "SocketStats"]


@dataclass(frozen=True)
class SocketAddress:
    """(namespace, port) pair identifying a UDP endpoint."""

    namespace: str
    port: int


@dataclass(frozen=True)
class Datagram:
    """One UDP datagram in flight or queued at a receiver."""

    payload: bytes
    source: SocketAddress
    destination: SocketAddress
    sent_at: float
    deliver_at: float

    @property
    def size(self) -> int:
        """Datagram payload size in bytes."""
        return len(self.payload)


@dataclass
class SocketStats:
    """Counters kept by every endpoint, used by tests and the Table I bench."""

    received: int = 0
    delivered: int = 0
    dropped_queue_full: int = 0
    bytes_received: int = 0
    bytes_delivered: int = 0


class UdpEndpoint:
    """A bound UDP socket with a bounded, drop-tail receive queue.

    ``queue_capacity`` models the kernel socket buffer: when the receiving
    thread cannot keep up (e.g. because a flood displaces its CPU time or the
    queue is saturated with garbage), new datagrams are dropped, which is the
    mechanism that starves the HCE of legitimate actuator messages during the
    Figure 7 attack.
    """

    def __init__(self, address: SocketAddress, queue_capacity: int = 256) -> None:
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        self.address = address
        self.queue_capacity = int(queue_capacity)
        self._queue: deque[Datagram] = deque()
        self.stats = SocketStats()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def queue_depth(self) -> int:
        """Number of datagrams currently waiting to be read."""
        return len(self._queue)

    def enqueue(self, datagram: Datagram) -> bool:
        """Add an arriving datagram; returns False if it was dropped."""
        self.stats.received += 1
        self.stats.bytes_received += datagram.size
        if len(self._queue) >= self.queue_capacity:
            self.stats.dropped_queue_full += 1
            return False
        self._queue.append(datagram)
        return True

    def receive(self, now: float, max_datagrams: int | None = None) -> list[Datagram]:
        """Dequeue datagrams that have arrived by simulation time ``now``."""
        delivered: list[Datagram] = []
        limit = len(self._queue) if max_datagrams is None else int(max_datagrams)
        while self._queue and len(delivered) < limit:
            if self._queue[0].deliver_at > now:
                break
            datagram = self._queue.popleft()
            delivered.append(datagram)
            self.stats.delivered += 1
            self.stats.bytes_delivered += datagram.size
        return delivered

    def flush(self) -> int:
        """Discard everything in the queue; returns the number discarded.

        Used when the security monitor kills the receiving thread.
        """
        discarded = len(self._queue)
        self._queue.clear()
        return discarded

"""6-DOF rigid-body quadrotor model.

This is the physical plant that replaces the paper's prototype drone
(Raspberry Pi 3 + Navio2 on a 450-class frame).  The model includes:

* rigid-body translational and rotational dynamics in NED,
* four rotors with first-order lag, quadratic thrust and reaction torque,
* linear aerodynamic drag,
* a ground plane with a simple contact model,
* crash detection (excessive attitude near the ground or ground impact at
  speed), which is what the Figure 4 experiment needs to register the
  "drone crashes shortly after" outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .environment import ConstantWind, Environment
from .integrators import INTEGRATORS
from .mixer import QuadGeometry, forces_and_torques
from .motor import MotorBank, MotorParameters
from .state import (
    RigidBodyState,
    quat_derivative,
    quat_normalize,
    quat_normalize_batched,
    quat_rotate,
    quat_rotate_inverse,
    quat_to_euler,
)

__all__ = [
    "QuadrotorParameters",
    "Quadrotor",
    "batched_derivative",
    "batched_derivative_factory",
]


def _default_inertia() -> np.ndarray:
    return np.diag([0.011, 0.011, 0.021])


def _default_drag() -> np.ndarray:
    return np.array([0.10, 0.10, 0.15])


@dataclass
class QuadrotorParameters:
    """Mass properties and aerodynamic coefficients of the vehicle."""

    mass: float = 1.2
    inertia: np.ndarray = field(default_factory=_default_inertia)
    linear_drag: np.ndarray = field(default_factory=_default_drag)
    angular_drag: float = 0.002
    geometry: QuadGeometry = field(default_factory=QuadGeometry)
    motor: MotorParameters = field(default_factory=MotorParameters)
    #: Attitude beyond which a low-altitude vehicle is considered crashed [rad].
    crash_tilt_limit: float = np.deg2rad(75.0)
    #: Vertical speed above which touching the ground counts as a crash [m/s].
    crash_impact_speed: float = 2.0

    def __post_init__(self) -> None:
        if self.mass <= 0.0:
            raise ValueError("mass must be positive")
        self.inertia = np.asarray(self.inertia, dtype=float)
        if self.inertia.shape != (3, 3):
            raise ValueError("inertia must be a 3x3 matrix")
        if np.any(np.diag(self.inertia) <= 0.0):
            raise ValueError("inertia diagonal must be positive")
        self.linear_drag = np.asarray(self.linear_drag, dtype=float)

    @property
    def hover_thrust_fraction(self) -> float:
        """Fraction of total maximum thrust needed to hover."""
        weight = self.mass * 9.80665
        return weight / (4.0 * self.motor.max_thrust)


def batched_derivative_factory(params: QuadrotorParameters, environment: Environment):
    """Two-stage vectorised counterpart of :meth:`Quadrotor._derivative`.

    The outer call hoists everything that is constant over a flight (wind,
    gravity, the inertia tensor and its inverse); the returned ``make`` binds
    one step's per-lane body wrench — ``(L, 3)`` forces and torques, held
    constant across the integrator stages exactly as the scalar plant holds
    them — and yields ``f(t, y)`` mapping an ``(L, 13)`` state stack to its
    derivative stack, suitable for the shape-agnostic integrators in
    :mod:`repro.dynamics.integrators`.

    Only :class:`~repro.dynamics.environment.ConstantWind` is supported: a
    time- or position-dependent wind field would need the per-lane plant time,
    which the lockstep batch core deliberately shares.  All arithmetic is
    elementwise over the lane axis (matrix products are expanded row by row)
    so a lane's derivative never depends on the batch width.
    """
    if not isinstance(environment.wind, ConstantWind):
        raise TypeError(
            "batched_derivative supports ConstantWind only; "
            f"got {type(environment.wind).__name__}"
        )
    wind = np.asarray(environment.wind.velocity_ned, dtype=float)
    gravity = environment.gravity_vector()
    inertia = np.asarray(params.inertia, dtype=float)
    inertia_inv = np.linalg.inv(inertia)
    linear_drag = np.asarray(params.linear_drag, dtype=float)
    mass = params.mass
    angular_drag = params.angular_drag
    i00, i01, i02 = inertia[0]
    i10, i11, i12 = inertia[1]
    i20, i21, i22 = inertia[2]
    v00, v01, v02 = inertia_inv[0]
    v10, v11, v12 = inertia_inv[1]
    v20, v21, v22 = inertia_inv[2]

    wind0, wind1, wind2 = wind
    drag0, drag1, drag2 = linear_drag
    grav0, grav1, grav2 = gravity

    def make(force_body: np.ndarray, torque_body: np.ndarray):
        fb0 = force_body[..., 0]
        fb1 = force_body[..., 1]
        fb2 = force_body[..., 2]
        tb0 = torque_body[..., 0]
        tb1 = torque_body[..., 1]
        tb2 = torque_body[..., 2]

        def f(_t: float, y: np.ndarray) -> np.ndarray:
            # from_vector normalises once and the scalar derivative
            # normalises again; replicate both (the second pass still moves
            # the last ulp) so stage quaternions stay on the unit sphere.
            quat = quat_normalize_batched(quat_normalize_batched(y[..., 6:10]))
            qw = quat[..., 0]
            qx = quat[..., 1]
            qy = quat[..., 2]
            qz = quat[..., 3]

            # Body-to-world rotation of the thrust vector, in the expanded
            # t = 2 (q_vec x v), v' = v + w t + q_vec x t form: equal to the
            # Hamilton sandwich for unit quaternions, elementwise over lanes,
            # and roughly a third of the ufunc dispatches.
            c0 = 2.0 * (qy * fb2 - qz * fb1)
            c1 = 2.0 * (qz * fb0 - qx * fb2)
            c2 = 2.0 * (qx * fb1 - qy * fb0)
            r0 = fb0 + qw * c0 + (qy * c2 - qz * c1)
            r1 = fb1 + qw * c1 + (qz * c0 - qx * c2)
            r2 = fb2 + qw * c2 + (qx * c1 - qy * c0)

            derivative = np.empty(y.shape)
            derivative[..., 0:3] = y[..., 3:6]
            v0 = y[..., 3]
            v1 = y[..., 4]
            v2 = y[..., 5]
            derivative[..., 3] = (r0 + -drag0 * (v0 - wind0)) / mass + grav0
            derivative[..., 4] = (r1 + -drag1 * (v1 - wind1)) / mass + grav1
            derivative[..., 5] = (r2 + -drag2 * (v2 - wind2)) / mass + grav2

            w0 = y[..., 10]
            w1 = y[..., 11]
            w2 = y[..., 12]
            # qdot = 0.5 * q (x) (0, omega), zero terms dropped.
            derivative[..., 6] = 0.5 * (-qx * w0 - qy * w1 - qz * w2)
            derivative[..., 7] = 0.5 * (qw * w0 + qy * w2 - qz * w1)
            derivative[..., 8] = 0.5 * (qw * w1 - qx * w2 + qz * w0)
            derivative[..., 9] = 0.5 * (qw * w2 + qx * w1 - qy * w0)

            iw0 = i00 * w0 + i01 * w1 + i02 * w2
            iw1 = i10 * w0 + i11 * w1 + i12 * w2
            iw2 = i20 * w0 + i21 * w1 + i22 * w2
            t0 = tb0 + -angular_drag * w0 - (w1 * iw2 - w2 * iw1)
            t1 = tb1 + -angular_drag * w1 - (w2 * iw0 - w0 * iw2)
            t2 = tb2 + -angular_drag * w2 - (w0 * iw1 - w1 * iw0)
            derivative[..., 10] = v00 * t0 + v01 * t1 + v02 * t2
            derivative[..., 11] = v10 * t0 + v11 * t1 + v12 * t2
            derivative[..., 12] = v20 * t0 + v21 * t1 + v22 * t2
            return derivative

        return f

    return make


def batched_derivative(
    params: QuadrotorParameters,
    environment: Environment,
    force_body: np.ndarray,
    torque_body: np.ndarray,
):
    """One-shot form of :func:`batched_derivative_factory` (same ``f``)."""
    return batched_derivative_factory(params, environment)(force_body, torque_body)


class Quadrotor:
    """Simulated quadrotor plant.

    The plant is advanced with :meth:`step`, which takes the four normalised
    motor commands (0..1) produced by the flight controller's output mixer.
    """

    def __init__(
        self,
        params: QuadrotorParameters | None = None,
        environment: Environment | None = None,
        initial_state: RigidBodyState | None = None,
        integrator: str = "rk4",
    ) -> None:
        self.params = params or QuadrotorParameters()
        self.environment = environment or Environment()
        self.state = initial_state.copy() if initial_state else RigidBodyState()
        self.motors = MotorBank(4, self.params.motor)
        if integrator not in INTEGRATORS:
            raise ValueError(f"unknown integrator {integrator!r}")
        self._integrate = INTEGRATORS[integrator]
        self._inertia_inv = np.linalg.inv(self.params.inertia)
        self.time = 0.0
        self._crashed = False
        self._crash_time: float | None = None
        self._on_ground = not self.environment.below_ground(self.state.position) and (
            abs(self.state.position[2] - self.environment.ground_altitude) < 1e-6
        )

    @property
    def crashed(self) -> bool:
        """True once the vehicle has crashed; the flag is latching."""
        return self._crashed

    @property
    def crash_time(self) -> float | None:
        """Simulation time at which the crash occurred, if any."""
        return self._crash_time

    @property
    def on_ground(self) -> bool:
        """True while the vehicle is resting on the ground plane."""
        return self._on_ground

    def arm(self) -> None:
        """Arm all motors."""
        self.motors.arm()

    def disarm(self) -> None:
        """Disarm all motors."""
        self.motors.disarm()

    def set_state(self, state: RigidBodyState) -> None:
        """Replace the vehicle state (used to initialise hover scenarios)."""
        self.state = state.copy()

    def _derivative(self, force_body: np.ndarray, torque_body: np.ndarray):
        """Return the rigid-body state derivative for the given wrench."""
        params = self.params
        env = self.environment

        def f(_t: float, y: np.ndarray) -> np.ndarray:
            state = RigidBodyState.from_vector(y)
            quat = quat_normalize(state.quaternion)

            wind = env.wind_at(self.time, state.position)
            air_velocity = state.velocity - wind
            drag_force_ned = -params.linear_drag * air_velocity

            force_ned = quat_rotate(quat, force_body) + drag_force_ned
            acceleration = force_ned / params.mass + env.gravity_vector()

            omega = state.angular_velocity
            drag_torque = -params.angular_drag * omega
            # Gyroscopic term omega x (I omega), expanded component-wise: the
            # generic np.cross carries broadcasting machinery that dominated
            # the flight hot path.
            inertia_omega = params.inertia @ omega
            gyroscopic = np.array([
                omega[1] * inertia_omega[2] - omega[2] * inertia_omega[1],
                omega[2] * inertia_omega[0] - omega[0] * inertia_omega[2],
                omega[0] * inertia_omega[1] - omega[1] * inertia_omega[0],
            ])
            angular_acceleration = self._inertia_inv @ (
                torque_body + drag_torque - gyroscopic
            )

            derivative = np.empty(13)
            derivative[0:3] = state.velocity
            derivative[3:6] = acceleration
            derivative[6:10] = quat_derivative(quat, omega)
            derivative[10:13] = angular_acceleration
            return derivative

        return f

    def step(self, motor_commands: np.ndarray, dt: float) -> RigidBodyState:
        """Advance the plant by ``dt`` seconds under the given motor commands.

        Parameters
        ----------
        motor_commands:
            Normalised per-rotor throttle commands in [0, 1].
        dt:
            Integration step [s].
        """
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        if self._crashed:
            # A crashed vehicle stays where it fell; motors are cut.
            self.motors.disarm()
            self.time += dt
            return self.state

        motor_commands = np.asarray(motor_commands, dtype=float)
        self.motors.step(motor_commands, dt)
        force_body, torque_body = forces_and_torques(
            self.motors.thrusts, self.motors.torques, self.params.geometry
        )

        y = self.state.as_vector()
        y_next = self._integrate(self._derivative(force_body, torque_body), self.time, y, dt)
        next_state = RigidBodyState.from_vector(y_next)
        next_state.quaternion = quat_normalize(next_state.quaternion)

        self._apply_ground_contact(next_state)
        self.state = next_state
        self.time += dt
        self._check_crash()
        return self.state

    def _apply_ground_contact(self, state: RigidBodyState) -> None:
        """Clamp the state to the ground plane and detect hard impacts."""
        ground_z = self.environment.ground_altitude
        if state.position[2] >= ground_z:
            descent_speed = float(state.velocity[2])
            roll, pitch, _ = quat_to_euler(state.quaternion)
            tilted = max(abs(roll), abs(pitch)) > self.params.crash_tilt_limit
            if descent_speed > self.params.crash_impact_speed or tilted:
                self._register_crash()
            state.position[2] = ground_z
            state.velocity[:] = 0.0
            state.angular_velocity[:] = 0.0
            self._on_ground = True
        else:
            self._on_ground = False

    def _check_crash(self) -> None:
        """Flag a crash when the vehicle flips over close to the ground."""
        if self._crashed:
            return
        roll, pitch, _ = quat_to_euler(self.state.quaternion)
        tilt = max(abs(roll), abs(pitch))
        if tilt > self.params.crash_tilt_limit and self.state.altitude < 0.3:
            self._register_crash()

    def _register_crash(self) -> None:
        self._crashed = True
        self._crash_time = self.time
        self.motors.disarm()

    # -- convenience accessors -------------------------------------------------

    @property
    def position(self) -> np.ndarray:
        """NED position [m]."""
        return self.state.position

    @property
    def velocity(self) -> np.ndarray:
        """NED velocity [m/s]."""
        return self.state.velocity

    @property
    def attitude(self) -> tuple[float, float, float]:
        """Roll, pitch, yaw in radians."""
        return self.state.euler

    @property
    def altitude(self) -> float:
        """Altitude above the NED origin [m]."""
        return self.state.altitude

    def specific_force_body(self) -> np.ndarray:
        """Specific force (accelerometer measurement) in the body frame [m/s^2].

        On the ground the accelerometer reads the reaction to gravity; in free
        fall it reads zero.  Used by the IMU sensor model.
        """
        force_body, _ = forces_and_torques(
            self.motors.thrusts, self.motors.torques, self.params.geometry
        )
        wind = self.environment.wind_at(self.time, self.state.position)
        air_velocity = self.state.velocity - wind
        drag_ned = -self.params.linear_drag * air_velocity
        drag_body = quat_rotate_inverse(self.state.quaternion, drag_ned)
        if self._on_ground and not self._crashed:
            gravity_body = quat_rotate_inverse(
                self.state.quaternion, -self.environment.gravity_vector()
            )
            return gravity_body
        return (force_body + drag_body) / self.params.mass

"""Campaign work-queue worker: ``python -m repro.campaign.worker QUEUE_DIR``
(file transport) or ``python -m repro.campaign.worker --connect host:port``
(TCP transport).

One worker process drains one :class:`~repro.campaign.workqueue.WorkQueue`:
claim a task, heartbeat the lease while executing it, publish the result,
repeat until the coordinator raises the stop sentinel.  Workers are
stateless — any number may attach to the same queue (the
:class:`~repro.campaign.backends.DistributedBackend` spawns local ones, but
workers started by hand on any host sharing the directory — or able to
reach the coordinator's TCP port — join the same campaign), and a worker
killed mid-task loses nothing: its lease expires and the task is re-issued.
An idle worker also exits when the coordinator grants it a *retire credit*
(autoscaling scale-down) or when the coordinator has been unreachable/silent
for the orphan timeout.

Task payloads are ``(fn, item)`` pairs; results are ``("ok", fn(item))`` or
``("error", traceback_text)``.  ``fn`` must be importable on the worker
(module-level or ``functools.partial`` of one) — the same constraint a
process pool imposes.
"""

from __future__ import annotations

import argparse
import os
import threading
import time
import traceback
from pathlib import Path
from typing import Any

from .workqueue import FileWorkQueue, WorkQueue

__all__ = ["main", "run_worker"]


class _Heartbeat:
    """Background thread refreshing one lease while a task runs."""

    def __init__(self, queue: WorkQueue, lease: Any, interval: float) -> None:
        self._queue = queue
        self._lease = lease
        self._interval = max(interval, 0.01)
        self._done = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._done.wait(self._interval):
            self._queue.heartbeat(self._lease)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._done.set()
        self._thread.join()


def run_worker(
    queue_dir: str | Path | None = None,
    worker_id: str | None = None,
    lease_timeout: float = 30.0,
    poll_interval: float = 0.05,
    max_tasks: int | None = None,
    orphan_timeout: float | None = None,
    connect: str | None = None,
    queue: WorkQueue | None = None,
) -> int:
    """Drain the queue until stop is requested; returns the tasks completed.

    The queue is given as exactly one of ``queue_dir`` (file transport),
    ``connect="host:port"`` (TCP transport) or ``queue`` (an explicit
    :class:`~repro.campaign.workqueue.WorkQueue`, mainly for tests).

    ``lease_timeout`` must match the coordinator's: the heartbeat refreshes
    the lease every quarter of it.  ``max_tasks`` bounds the number of tasks
    (``None`` = unbounded) — useful for tests and one-shot workers.

    ``orphan_timeout`` (default ``4 * lease_timeout``) guards against an
    abandoned queue: a coordinator killed without cleanup never raises the
    stop sentinel, so an idle worker whose coordinator heartbeat is older
    than this — for the TCP transport: whose coordinator has been
    *unreachable* this long — exits on its own instead of polling forever.
    File queues that never announced a coordinator (manually driven) are
    exempt.
    """
    if sum(source is not None for source in (queue_dir, connect, queue)) != 1:
        raise ValueError(
            "exactly one of queue_dir, connect or queue must be given"
        )
    if queue is None:
        if connect is not None:
            from .transport import SocketWorkQueueClient, parse_address

            queue = SocketWorkQueueClient(*parse_address(connect))
        else:
            queue = FileWorkQueue(queue_dir)
    if worker_id is None:
        worker_id = f"w{os.getpid()}"
    if orphan_timeout is None:
        orphan_timeout = 4.0 * lease_timeout
    completed = 0
    while max_tasks is None or completed < max_tasks:
        # Stop is checked *before* claiming: an aborted campaign's leftover
        # tasks must not be drained by the fleet — only the task already in
        # hand is finished.
        if queue.stop_requested():
            break
        claimed = queue.claim(worker_id)
        if claimed is None:
            if queue.try_retire():
                break  # the autoscaler dismissed this (idle) worker
            age = queue.coordinator_age()
            if age is not None and age > orphan_timeout:
                break  # coordinator died without cleanup; don't poll forever
            time.sleep(poll_interval)
            continue
        index, payload, lease = claimed
        with _Heartbeat(queue, lease, lease_timeout / 4.0):
            try:
                fn, item = payload
                result = ("ok", fn(item))
            except Exception:
                # The failure travels back as data; the coordinator decides
                # whether to raise.  Worker-killing failures (os._exit, OOM)
                # are the lease-expiry path instead.
                result = ("error", traceback.format_exc())
        queue.complete(index, result, lease)
        completed += 1
    return completed


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign.worker",
        description="Attach one campaign worker to a work queue: a shared "
        "directory (file transport) or a coordinator's TCP server "
        "(--connect).",
    )
    parser.add_argument("queue", nargs="?", default=None,
                        help="work-queue directory shared with the coordinator "
                        "(omit when using --connect)")
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="connect to a coordinator's socket work queue "
                        "instead of a shared directory")
    parser.add_argument("--worker-id", default=None,
                        help="lease label (default: w<pid>; no dots or path separators)")
    parser.add_argument("--lease-timeout", type=float, default=30.0,
                        help="coordinator's lease expiry [s] (default: 30)")
    parser.add_argument("--poll", type=float, default=0.05, dest="poll_interval",
                        help="idle polling interval [s] (default: 0.05)")
    parser.add_argument("--max-tasks", type=int, default=None,
                        help="exit after completing this many tasks")
    parser.add_argument("--orphan-timeout", type=float, default=None,
                        help="exit when idle and the coordinator heartbeat "
                        "is older than this [s] (default: 4x lease timeout)")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if (args.queue is None) == (args.connect is None):
        parser.error("give exactly one of a queue directory or --connect")
    run_worker(
        args.queue,
        worker_id=args.worker_id,
        lease_timeout=args.lease_timeout,
        poll_interval=args.poll_interval,
        max_tasks=args.max_tasks,
        orphan_timeout=args.orphan_timeout,
        connect=args.connect,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Campaign work-queue worker: ``python -m repro.campaign.worker QUEUE_DIR``.

One worker process drains one :class:`~repro.campaign.workqueue.FileWorkQueue`:
claim a task, heartbeat the lease while executing it, publish the result,
repeat until the coordinator raises the stop sentinel.  Workers are
stateless — any number may attach to the same queue directory (the
:class:`~repro.campaign.backends.DistributedBackend` spawns local ones, but
workers started by hand on any host sharing the directory join the same
campaign), and a worker killed mid-task loses nothing: its lease expires and
the task is re-issued.

Task payloads are ``(fn, item)`` pairs; results are ``("ok", fn(item))`` or
``("error", traceback_text)``.  ``fn`` must be importable on the worker
(module-level or ``functools.partial`` of one) — the same constraint a
process pool imposes.
"""

from __future__ import annotations

import argparse
import os
import threading
import time
import traceback
from pathlib import Path

from .workqueue import FileWorkQueue

__all__ = ["main", "run_worker"]


class _Heartbeat:
    """Background thread refreshing one lease's mtime while a task runs."""

    def __init__(self, queue: FileWorkQueue, lease: Path, interval: float) -> None:
        self._queue = queue
        self._lease = lease
        self._interval = max(interval, 0.01)
        self._done = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._done.wait(self._interval):
            self._queue.heartbeat(self._lease)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._done.set()
        self._thread.join()


def run_worker(
    queue_dir: str | Path,
    worker_id: str | None = None,
    lease_timeout: float = 30.0,
    poll_interval: float = 0.05,
    max_tasks: int | None = None,
    orphan_timeout: float | None = None,
) -> int:
    """Drain the queue until stop is requested; returns the tasks completed.

    ``lease_timeout`` must match the coordinator's: the heartbeat refreshes
    the lease every quarter of it.  ``max_tasks`` bounds the number of tasks
    (``None`` = unbounded) — useful for tests and one-shot workers.

    ``orphan_timeout`` (default ``4 * lease_timeout``) guards against an
    abandoned queue: a coordinator killed without cleanup never raises the
    stop sentinel, so an idle worker whose coordinator heartbeat is older
    than this exits on its own instead of polling forever.  Queues that
    never announced a coordinator (manually driven) are exempt.
    """
    queue = FileWorkQueue(queue_dir)
    if worker_id is None:
        worker_id = f"w{os.getpid()}"
    if orphan_timeout is None:
        orphan_timeout = 4.0 * lease_timeout
    completed = 0
    while max_tasks is None or completed < max_tasks:
        # Stop is checked *before* claiming: an aborted campaign's leftover
        # tasks must not be drained by the fleet — only the task already in
        # hand is finished.
        if queue.stop_requested():
            break
        claimed = queue.claim(worker_id)
        if claimed is None:
            age = queue.coordinator_age()
            if age is not None and age > orphan_timeout:
                break  # coordinator died without cleanup; don't poll forever
            time.sleep(poll_interval)
            continue
        index, payload, lease = claimed
        with _Heartbeat(queue, lease, lease_timeout / 4.0):
            try:
                fn, item = payload
                result = ("ok", fn(item))
            except Exception:
                # The failure travels back as data; the coordinator decides
                # whether to raise.  Worker-killing failures (os._exit, OOM)
                # are the lease-expiry path instead.
                result = ("error", traceback.format_exc())
        queue.complete(index, result, lease)
        completed += 1
    return completed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign.worker",
        description="Attach one campaign worker to a file work-queue directory.",
    )
    parser.add_argument("queue", help="work-queue directory shared with the coordinator")
    parser.add_argument("--worker-id", default=None,
                        help="lease label (default: w<pid>; no dots or path separators)")
    parser.add_argument("--lease-timeout", type=float, default=30.0,
                        help="coordinator's lease expiry [s] (default: 30)")
    parser.add_argument("--poll", type=float, default=0.05, dest="poll_interval",
                        help="idle polling interval [s] (default: 0.05)")
    parser.add_argument("--max-tasks", type=int, default=None,
                        help="exit after completing this many tasks")
    parser.add_argument("--orphan-timeout", type=float, default=None,
                        help="exit when idle and the coordinator heartbeat "
                        "is older than this [s] (default: 4x lease timeout)")
    args = parser.parse_args(argv)
    run_worker(
        args.queue,
        worker_id=args.worker_id,
        lease_timeout=args.lease_timeout,
        poll_interval=args.poll_interval,
        max_tasks=args.max_tasks,
        orphan_timeout=args.orphan_timeout,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

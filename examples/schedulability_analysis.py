#!/usr/bin/env python3
"""Schedulability analysis of the HCE task set (the paper's future work).

The paper lists "hard real-time proof and schedulability analysis for
container drone" as future work.  This example applies classical
response-time analysis to the HCE task set used by the co-simulation, with
execution times inflated by the worst-case memory-contention stretch that
MemGuard permits, and reports which tasks stay schedulable.

Usage::

    python examples/schedulability_analysis.py [--budget ACCESSES_PER_PERIOD]
"""

from __future__ import annotations

import argparse

from repro.analysis import format_table
from repro.core import ContainerDroneConfig
from repro.memsys import DramModel
from repro.rtos import TaskConfig, core_utilization, response_time_analysis
from repro.sim.flight import FLIGHT_DRAM_PARAMETERS


def hce_io_core_tasks(config: ContainerDroneConfig) -> list[TaskConfig]:
    """The driver/feeder/actuator tasks sharing the HCE I/O core."""
    cpu = config.cpu
    rates = config.rates
    return [
        TaskConfig("imu-driver", 1.0 / rates.imu_hz, 0.00015, cpu.driver_priority, 0),
        TaskConfig("baro-driver", 1.0 / rates.baro_hz, 0.00008, cpu.driver_priority, 0),
        TaskConfig("gps-driver", 1.0 / rates.gps_hz, 0.0001, 60, 0),
        TaskConfig("rc-driver", 1.0 / rates.rc_hz, 0.00005, 60, 0),
        TaskConfig("mocap-bridge", 1.0 / rates.mocap_hz, 0.0001, 60, 0),
        TaskConfig("feeder", 1.0 / rates.imu_hz, 0.00015, 50, 0),
        TaskConfig("actuator-driver", 1.0 / rates.actuator_hz, 0.0001, cpu.driver_priority, 0),
        TaskConfig("kworker", 0.01, 0.0005, cpu.interrupt_priority, 0),
    ]


def hce_control_core_tasks(config: ContainerDroneConfig) -> list[TaskConfig]:
    """The safety controller, monitor and receiver sharing the control core."""
    cpu = config.cpu
    rates = config.rates
    return [
        TaskConfig("safety-controller", 1.0 / rates.controller_hz, 0.0004, cpu.safety_priority, 1),
        TaskConfig("security-monitor", 1.0 / config.monitor.rate_hz, 0.00005,
                   cpu.monitor_priority, 1),
        TaskConfig("motor-receiver", 0.001,
                   config.communication.receiver_batch_size * 15e-6, cpu.receiver_priority, 1),
    ]


def worst_case_inflation(config: ContainerDroneConfig, budget: int) -> float:
    """Execution-time inflation when the CCE core uses its full MemGuard budget."""
    dram = DramModel(FLIGHT_DRAM_PARAMETERS)
    hce_demand = 1.5e6  # accesses/s demanded by the HCE pipeline itself
    cce_demand = budget / config.memory.period
    latency = dram.latency_factor(hce_demand + cce_demand)
    # HCE tasks are moderately memory bound (stall fraction ~0.2).
    return DramModel.stretch_execution(latency, 0.2)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=None,
                        help="CCE MemGuard budget in accesses per period "
                             "(default: the framework's default budget)")
    args = parser.parse_args()

    config = ContainerDroneConfig()
    budget = args.budget or config.memory.cce_budget_accesses_per_period
    inflation = worst_case_inflation(config, budget)
    print(f"CCE MemGuard budget: {budget} accesses/period")
    print(f"Worst-case execution-time inflation under that budget: {inflation:.2f}x")
    print()

    for core_name, tasks in (
        ("HCE I/O core (core 0)", hce_io_core_tasks(config)),
        ("HCE control core (core 1)", hce_control_core_tasks(config)),
    ):
        results = response_time_analysis(tasks, execution_inflation=inflation)
        rows = [
            [result.task,
             f"{1000.0 * next(t.period for t in tasks if t.name == result.task):.1f} ms",
             f"{1000.0 * result.response_time:.3f} ms" if result.schedulable else "unbounded",
             "yes" if result.schedulable else "NO"]
            for result in results
        ]
        utilization = core_utilization(tasks) * inflation
        print(format_table(
            ["Task", "Period", "Worst-case response time", "Schedulable"],
            rows,
            title=f"{core_name} — utilisation {utilization:.2f} under contention",
        ))
        print()


if __name__ == "__main__":
    main()

"""Brushless motor and propeller model.

Each rotor is modelled as a first-order lag from the commanded normalised
throttle (0..1, what the PX4-style mixer outputs) to the achieved rotor
angular speed, followed by quadratic thrust and drag-torque maps:

``thrust = k_thrust * omega^2`` and ``torque = k_torque * omega^2``.

The parameters default to a 450-size quadcopter comparable to the paper's
Raspberry Pi 3 + Navio2 prototype (all-up weight around 1.2 kg).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MotorParameters", "Motor", "MotorBank"]


@dataclass(frozen=True)
class MotorParameters:
    """Physical parameters of a single rotor.

    Attributes
    ----------
    max_speed:
        Maximum rotor speed in rad/s at full throttle.
    min_speed:
        Idle rotor speed in rad/s when armed at zero throttle.
    time_constant:
        First-order lag time constant of the motor/ESC/prop combination [s].
    thrust_coefficient:
        Thrust produced per (rad/s)^2 [N s^2].
    torque_coefficient:
        Reaction torque produced per (rad/s)^2 [N m s^2].
    """

    max_speed: float = 1200.0
    min_speed: float = 80.0
    time_constant: float = 0.02
    thrust_coefficient: float = 5.6e-6
    torque_coefficient: float = 1.1e-7

    def __post_init__(self) -> None:
        if self.max_speed <= self.min_speed:
            raise ValueError("max_speed must exceed min_speed")
        if self.time_constant <= 0.0:
            raise ValueError("time_constant must be positive")
        if self.thrust_coefficient <= 0.0 or self.torque_coefficient <= 0.0:
            raise ValueError("thrust and torque coefficients must be positive")

    @property
    def max_thrust(self) -> float:
        """Maximum static thrust of one rotor [N]."""
        return self.thrust_coefficient * self.max_speed**2


class Motor:
    """A single rotor with first-order speed dynamics."""

    def __init__(self, params: MotorParameters | None = None) -> None:
        self.params = params or MotorParameters()
        self._speed = 0.0
        self._armed = False

    @property
    def speed(self) -> float:
        """Current rotor speed [rad/s]."""
        return self._speed

    @property
    def armed(self) -> bool:
        """Whether the motor responds to throttle commands."""
        return self._armed

    def arm(self) -> None:
        """Arm the motor: it spins at idle and accepts throttle."""
        self._armed = True
        self._speed = max(self._speed, self.params.min_speed)

    def disarm(self) -> None:
        """Disarm the motor: the rotor spins down and ignores throttle."""
        self._armed = False

    def command_to_speed(self, throttle: float) -> float:
        """Map a normalised throttle command to the target rotor speed."""
        throttle = float(np.clip(throttle, 0.0, 1.0))
        if not self._armed:
            return 0.0
        return self.params.min_speed + throttle * (self.params.max_speed - self.params.min_speed)

    def step(self, throttle: float, dt: float) -> float:
        """Advance the rotor by ``dt`` seconds toward the commanded throttle."""
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        target = self.command_to_speed(throttle)
        alpha = dt / (self.params.time_constant + dt)
        self._speed += alpha * (target - self._speed)
        return self._speed

    @property
    def thrust(self) -> float:
        """Instantaneous thrust [N]."""
        return self.params.thrust_coefficient * self._speed**2

    @property
    def torque(self) -> float:
        """Instantaneous reaction torque magnitude [N m]."""
        return self.params.torque_coefficient * self._speed**2


class MotorBank:
    """A set of identical rotors driven by a vector of throttle commands."""

    def __init__(self, count: int = 4, params: MotorParameters | None = None) -> None:
        if count < 1:
            raise ValueError("a motor bank needs at least one motor")
        self.motors = [Motor(params) for _ in range(count)]

    def __len__(self) -> int:
        return len(self.motors)

    def arm(self) -> None:
        """Arm every motor in the bank."""
        for motor in self.motors:
            motor.arm()

    def disarm(self) -> None:
        """Disarm every motor in the bank."""
        for motor in self.motors:
            motor.disarm()

    @property
    def armed(self) -> bool:
        """True when every motor is armed."""
        return all(motor.armed for motor in self.motors)

    def step(self, throttles: np.ndarray, dt: float) -> np.ndarray:
        """Advance every rotor; returns the resulting rotor speeds."""
        throttles = np.asarray(throttles, dtype=float)
        if throttles.shape != (len(self.motors),):
            raise ValueError(
                f"expected {len(self.motors)} throttle commands, got shape {throttles.shape}"
            )
        return np.array(
            [motor.step(throttle, dt) for motor, throttle in zip(self.motors, throttles)]
        )

    @property
    def thrusts(self) -> np.ndarray:
        """Per-rotor thrust [N]."""
        return np.array([motor.thrust for motor in self.motors])

    @property
    def torques(self) -> np.ndarray:
        """Per-rotor reaction torque magnitude [N m]."""
        return np.array([motor.torque for motor in self.motors])

    @property
    def speeds(self) -> np.ndarray:
        """Per-rotor speed [rad/s]."""
        return np.array([motor.speed for motor in self.motors])

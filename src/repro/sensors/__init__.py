"""Sensor suite replacing the Navio2 hat and the Vicon motion-capture system.

Default sampling rates follow Table I of the paper.
"""

from .barometer import (
    BARO_RATE_HZ,
    Barometer,
    BarometerParameters,
    BarometerReading,
    altitude_to_pressure,
    pressure_to_altitude,
)
from .base import PeriodicSensor, SensorSample
from .gps import GPS_RATE_HZ, Gps, GpsParameters, GpsReading
from .imu import IMU_RATE_HZ, Imu, ImuParameters, ImuReading
from .mocap import MOCAP_RATE_HZ, MocapParameters, MocapReading, MotionCapture
from .noise import GaussianNoise, QuantizationNoise, RandomWalkBias
from .rc import PWM_MAX, PWM_MID, PWM_MIN, RC_RATE_HZ, RcChannels, RcReceiver, scripted_pilot

__all__ = [
    "BARO_RATE_HZ",
    "Barometer",
    "BarometerParameters",
    "BarometerReading",
    "GPS_RATE_HZ",
    "GaussianNoise",
    "Gps",
    "GpsParameters",
    "GpsReading",
    "IMU_RATE_HZ",
    "Imu",
    "ImuParameters",
    "ImuReading",
    "MOCAP_RATE_HZ",
    "MocapParameters",
    "MocapReading",
    "MotionCapture",
    "PWM_MAX",
    "PWM_MID",
    "PWM_MIN",
    "PeriodicSensor",
    "QuantizationNoise",
    "RC_RATE_HZ",
    "RandomWalkBias",
    "RcChannels",
    "RcReceiver",
    "SensorSample",
    "altitude_to_pressure",
    "pressure_to_altitude",
    "scripted_pilot",
]

"""Structure-of-arrays quadrotor plant.

Steps ``L`` independent quadrotors in lockstep with one set of array
operations.  Every formula mirrors :class:`repro.dynamics.quadrotor.Quadrotor`
step for step — motor lag, mixer summation order, the RK4 call, ground
contact and both crash checks — so a one-lane batch reproduces the scalar
plant's trajectory to within floating-point associativity, and lanes never
interact: all cross-lane reductions are forbidden (see
:func:`repro.dynamics.quadrotor.batched_derivative`).

Crashed lanes keep their frozen state ("a crashed vehicle stays where it
fell") while the rest of the batch keeps flying; the step computes full-width
and restores the frozen lanes afterwards, which keeps the hot path free of
per-lane branching.
"""

from __future__ import annotations

import numpy as np

from ...dynamics.environment import Environment
from ...dynamics.integrators import rk4_step
from ...dynamics.quadrotor import QuadrotorParameters, batched_derivative_factory
from ...dynamics.state import quat_normalize_batched, quat_rotate_inverse_batched, quat_to_euler_batched

__all__ = ["BatchPlant"]


class BatchPlant:
    """``L`` quadrotor plants advanced in lockstep.

    State layout matches :meth:`RigidBodyState.as_vector`: ``y[:, 0:3]``
    position NED, ``y[:, 3:6]`` velocity, ``y[:, 6:10]`` quaternion (w,x,y,z),
    ``y[:, 10:13]`` body rates.
    """

    def __init__(
        self,
        initial_positions: np.ndarray,
        params: QuadrotorParameters | None = None,
        environment: Environment | None = None,
    ) -> None:
        self.params = params or QuadrotorParameters()
        self.environment = environment or Environment()
        positions = np.asarray(initial_positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError("initial_positions must have shape (L, 3)")
        self.lanes = positions.shape[0]

        self.y = np.zeros((self.lanes, 13))
        self.y[:, 0:3] = positions
        self.y[:, 6] = 1.0
        self.motor_speed = np.zeros((self.lanes, 4))
        self.armed = np.zeros(self.lanes, dtype=bool)
        self.crashed = np.zeros(self.lanes, dtype=bool)
        self.crash_time = np.full(self.lanes, np.nan)
        self.time = 0.0

        ground = self.environment.ground_altitude
        below = self.y[:, 2] > ground
        self.on_ground = ~below & (np.abs(self.y[:, 2] - ground) < 1e-6)

        motor = self.params.motor
        self._min_speed = motor.min_speed
        self._max_speed = motor.max_speed
        self._time_constant = motor.time_constant
        self._k_thrust = motor.thrust_coefficient
        self._k_torque = motor.torque_coefficient
        geometry = self.params.geometry
        self._rotor_positions = geometry._position_tuples
        self._spins = geometry.spin_directions
        self._tilt_limit = self.params.crash_tilt_limit
        self._impact_speed = self.params.crash_impact_speed
        self._gravity = self.environment.gravity_vector()
        self._wind = np.asarray(self.environment.wind.velocity_ned, dtype=float)
        self._make_derivative = batched_derivative_factory(self.params, self.environment)

    def arm(self) -> None:
        """Arm every lane: idle the rotors and accept throttle."""
        self.armed[:] = True
        self.motor_speed = np.maximum(self.motor_speed, self._min_speed)

    # -- accessors ---------------------------------------------------------------

    def euler(self, lanes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Roll/pitch/yaw of the selected lanes [rad]."""
        return quat_to_euler_batched(self.y[lanes, 6:10])

    def specific_force_body(self, lanes: np.ndarray) -> np.ndarray:
        """Accelerometer measurement (specific force, body frame) per lane.

        Mirrors :meth:`Quadrotor.specific_force_body`: grounded, uncrashed
        lanes read the reaction to gravity; airborne (or crashed) lanes read
        ``(thrust + drag) / mass``.
        """
        speed = self.motor_speed[lanes]
        thrust = self._k_thrust * speed**2
        force_body = np.zeros((lanes.shape[0], 3))
        force_body[:, 2] = -(
            ((thrust[:, 0] + thrust[:, 1]) + thrust[:, 2]) + thrust[:, 3]
        )
        quat = self.y[lanes, 6:10]
        air_velocity = self.y[lanes, 3:6] - self._wind
        drag_ned = -self.params.linear_drag * air_velocity
        drag_body = quat_rotate_inverse_batched(quat, drag_ned)
        out = (force_body + drag_body) / self.params.mass
        grounded = self.on_ground[lanes] & ~self.crashed[lanes]
        if grounded.any():
            gravity_body = quat_rotate_inverse_batched(
                quat[grounded],
                np.broadcast_to(-self._gravity, (int(grounded.sum()), 3)),
            )
            out[grounded] = gravity_body
        return out

    # -- stepping ----------------------------------------------------------------

    def step(self, commands: np.ndarray, dt: float, step_mask: np.ndarray) -> None:
        """Advance every lane selected by ``step_mask`` by ``dt`` seconds.

        ``step_mask`` excludes lanes the simulation has frozen for non-plant
        reasons (geofence breach); crashed lanes are always frozen.  The
        shared ``time`` advances regardless, exactly like the scalar plant's
        crashed branch.
        """
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        self.armed &= ~self.crashed
        active = step_mask & ~self.crashed
        idx = np.flatnonzero(active)
        if idx.size == 0:
            self.time += dt
            return

        throttle = np.clip(commands[idx], 0.0, 1.0)
        armed = self.armed[idx]
        target = np.where(
            armed[:, None],
            self._min_speed + throttle * (self._max_speed - self._min_speed),
            0.0,
        )
        speed = self.motor_speed[idx]
        alpha = dt / (self._time_constant + dt)
        speed = speed + alpha * (target - speed)
        self.motor_speed[idx] = speed

        thrust = self._k_thrust * speed**2
        reaction = self._k_torque * speed**2
        # Mixer with the scalar accumulation order: left-fold over rotors.
        positions = self._rotor_positions
        spins = self._spins
        force_body = np.zeros((idx.size, 3))
        force_body[:, 2] = -(
            ((thrust[:, 0] + thrust[:, 1]) + thrust[:, 2]) + thrust[:, 3]
        )
        torque_x = positions[0][1] * -thrust[:, 0]
        torque_y = -(positions[0][0] * -thrust[:, 0])
        torque_z = spins[0] * reaction[:, 0]
        for rotor in range(1, 4):
            torque_x = torque_x + positions[rotor][1] * -thrust[:, rotor]
            torque_y = torque_y + -(positions[rotor][0] * -thrust[:, rotor])
            torque_z = torque_z + spins[rotor] * reaction[:, rotor]
        torque_body = np.stack([torque_x, torque_y, torque_z], axis=-1)

        f = self._make_derivative(force_body, torque_body)
        y_next = rk4_step(f, self.time, self.y[idx], dt)
        # from_vector normalises, then the scalar step normalises explicitly.
        quat = quat_normalize_batched(quat_normalize_batched(y_next[:, 6:10]))
        y_next[:, 6:10] = quat
        roll, pitch, _yaw = quat_to_euler_batched(quat)
        tilt = np.maximum(np.abs(roll), np.abs(pitch))

        # Ground contact: crash_time is the *pre-increment* time here.
        ground = self.environment.ground_altitude
        below = y_next[:, 2] >= ground
        if below.any():
            hard = below & (
                (y_next[:, 5] > self._impact_speed) | (tilt > self._tilt_limit)
            )
            impact = idx[hard]
            self.crashed[impact] = True
            self.crash_time[impact] = self.time
            self.armed[impact] = False
            y_next[below, 2] = ground
            y_next[below, 3:6] = 0.0
            y_next[below, 10:13] = 0.0
        self.on_ground[idx] = below
        self.y[idx] = y_next
        self.time += dt

        # Flip check: crash_time is the *post-increment* time here.
        check = ~self.crashed[idx]
        flip = check & (tilt > self._tilt_limit) & (-y_next[:, 2] < 0.3)
        flipped = idx[flip]
        if flipped.size:
            self.crashed[flipped] = True
            self.crash_time[flipped] = self.time
            self.armed[flipped] = False

"""Golden-summary and determinism regressions for the paper scenarios.

These tests pin the *verdicts* of the four figure experiments (crash /
no-crash, Simplex switch, coarse deviation bounds) at shortened durations so
refactors of ``sim/flight.py`` and the dynamics hot path cannot silently
change the paper's results, and pin the bit-exact reproducibility guarantee
the campaign engine relies on.
"""

import numpy as np
import pytest

from repro.sim import FlightScenario, run_scenario


@pytest.fixture(scope="module")
def results():
    """Run each shortened figure scenario once and share across tests."""
    scenarios = {
        "figure4": FlightScenario.figure4(attack_start=3.0, duration=12.0),
        "figure5": FlightScenario.figure5(attack_start=3.0, duration=12.0),
        "figure6": FlightScenario.figure6(kill_time=3.0, duration=10.0),
        "figure7": FlightScenario.figure7(attack_start=3.0, duration=10.0),
    }
    return {name: run_scenario(scenario) for name, scenario in scenarios.items()}


class TestSeedDeterminism:
    def test_same_seed_bit_identical(self):
        first = run_scenario(FlightScenario.figure6(kill_time=2.0, duration=5.0))
        second = run_scenario(FlightScenario.figure6(kill_time=2.0, duration=5.0))
        # Bit-identical, not merely close: the trajectories must match exactly.
        assert np.array_equal(first.recorder.positions(), second.recorder.positions())
        assert np.array_equal(first.recorder.attitudes(), second.recorder.attitudes())
        assert first.recorder.times().tolist() == second.recorder.times().tolist()
        assert first.switch_time == second.switch_time
        assert first.metrics == second.metrics

    def test_different_seeds_differ(self):
        base = FlightScenario.figure6(kill_time=2.0, duration=5.0)
        first = run_scenario(base.with_seed(1))
        second = run_scenario(base.with_seed(2))
        assert not np.array_equal(
            first.recorder.positions(), second.recorder.positions()
        )


class TestGoldenSummaries:
    """Verdicts of the four figures (shortened attacks, same physics)."""

    def test_figure4_crashes_without_memguard(self, results):
        result = results["figure4"]
        assert result.crashed
        assert result.crash_time is not None
        assert 3.0 < result.crash_time < 12.0
        # No Simplex monitor in this configuration: nothing saves the drone.
        assert result.switch_time is None
        assert result.metrics.max_deviation > 0.5

    def test_figure5_memguard_keeps_drone_up(self, results):
        result = results["figure5"]
        assert not result.crashed
        # Bounded oscillation around the setpoint, no crash, no switch.
        assert result.metrics.max_deviation < 0.5
        assert result.metrics.max_deviation_after < 0.3
        assert result.switch_time is None

    def test_figure6_kill_triggers_switch_and_recovery(self, results):
        result = results["figure6"]
        assert not result.crashed
        assert result.switch_time is not None
        assert 3.0 < result.switch_time < 4.0
        assert result.violations[0].rule == "receiving-interval"
        assert result.metrics.max_deviation < 1.5
        assert result.metrics.final_deviation < 0.6

    def test_figure7_flood_triggers_switch_and_recovery(self, results):
        result = results["figure7"]
        assert not result.crashed
        assert result.switch_time is not None
        assert 3.0 < result.switch_time < 4.5
        assert result.metrics.max_deviation < 1.5
        assert result.metrics.final_deviation < 0.6

    def test_only_figure4_crashes(self, results):
        verdicts = {name: result.crashed for name, result in results.items()}
        assert verdicts == {
            "figure4": True,
            "figure5": False,
            "figure6": False,
            "figure7": False,
        }

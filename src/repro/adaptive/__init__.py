"""Adaptive experiment engine: crash-boundary search over scenario axes.

Instead of probing a survival threshold with a dense sweep grid,
:class:`BoundarySearch` brackets and bisects the verdict flip along one
scalar axis (MemGuard budget, flood rate, CPU-hog share, attack start time)
to a requested tolerance in ``O(log n)`` flights.  Probes are ordinary
campaign variants: they run through the
:class:`~repro.campaign.runner.CampaignRunner` (batched rounds keep the
process pool saturated) and are cached in the
:class:`~repro.store.CampaignStore` like grid cells.  See
``docs/adaptive.md``.
"""

from .predicates import (
    VerdictError,
    VerdictPredicate,
    crashed,
    geofence_breach,
    not_recovered,
    recovery_latency_exceeds,
    resolve_predicate,
    switched_to_safety,
)
from .search import BoundaryBracketError, BoundaryProbe, BoundaryResult, BoundarySearch

__all__ = [
    "BoundaryBracketError",
    "BoundaryProbe",
    "BoundaryResult",
    "BoundarySearch",
    "VerdictError",
    "VerdictPredicate",
    "crashed",
    "geofence_breach",
    "not_recovered",
    "recovery_latency_exceeds",
    "resolve_predicate",
    "switched_to_safety",
]

"""Directory-backed work queue with heartbeat leases.

The substrate under :class:`~repro.campaign.backends.DistributedBackend`: a
coordinator enqueues pickled work items into a shared directory, worker
processes (``python -m repro.campaign.worker``) claim them by atomic rename,
heartbeat while executing, and publish pickled results the same way.  All
coordination happens through the filesystem, so "distributed" means anything
that shares the directory — local subprocesses, containers with a bind
mount, or machines on a network filesystem.

Layout under the queue root (``<run>`` is the campaign's run id — results
from another run, e.g. an in-flight worker of a killed previous campaign
finishing late on a reused directory, are ignored)::

    tasks/<index>.<run>.task              pending work (pickled payload)
    claimed/<index>.<run>.<worker>.task   leased work; mtime is the heartbeat
    results/<index>.<run>.result          completed work (pickled result)
    retire/<token>.retire                 one credit = one idle worker may exit
    stop                                  sentinel: workers exit when idle
    coordinator                           coordinator heartbeat (orphan guard)

Claiming renames the task file into ``claimed/`` — the rename is atomic, so
exactly one claimer wins.  A worker that dies mid-task stops refreshing the
lease's mtime; :meth:`FileWorkQueue.reclaim_expired` renames the stale lease
back into ``tasks/`` and another worker picks it up.  A re-leased task may
end up completed twice (the presumed-dead worker finishes after all); both
results are valid renderings of a pure function, and the atomic result
rename makes the last write win cleanly.

The claim/complete/heartbeat/stop semantics are transport-independent:
:class:`WorkQueue` is the protocol both this directory transport and the
TCP transport (:mod:`repro.campaign.transport`) implement, and everything
above the queue (the :class:`~repro.campaign.backends.DistributedBackend`
coordinator loop, ``python -m repro.campaign.worker``) is written against
it.  Lease handles are opaque to the worker: a :class:`~pathlib.Path` here,
a token over TCP.
"""

from __future__ import annotations

import logging
import os
import pickle
import tempfile
import time
import uuid
from pathlib import Path
from typing import Any, Iterable, Protocol, Sequence, runtime_checkable

from ..obs import MetricsRegistry

logger = logging.getLogger(__name__)

__all__ = [
    "AUTH_TOKEN_ENV",
    "AUTH_TOKEN_PREVIOUS_ENV",
    "PROTOCOL_VERSION",
    "FileWorkQueue",
    "WorkItem",
    "WorkQueue",
    "WorkQueueAuthError",
    "WorkQueueProtocolError",
    "resolve_auth_token",
    "resolve_auth_tokens",
]

#: Environment variable both network transports read the shared-secret
#: auth token from when none is passed explicitly.  The environment is the
#: preferred channel for worker processes: unlike a ``--auth-token``
#: argument, it never shows up in process listings.
AUTH_TOKEN_ENV = "REPRO_CAMPAIGN_AUTH_TOKEN"

#: Environment variable a *coordinator* reads additional still-valid tokens
#: from (comma-separated) — the rotation window: a daemon restarted with the
#: new secret as :data:`AUTH_TOKEN_ENV` and the old one here accepts workers
#: that have not been re-keyed yet.  Workers only ever present one token.
AUTH_TOKEN_PREVIOUS_ENV = "REPRO_CAMPAIGN_AUTH_TOKEN_PREVIOUS"

#: Version of the wire protocol both network transports speak.  Served in
#: every ``ping`` response so clients and workers can fail fast with a clear
#: message on a daemon/client mismatch instead of hitting decoding errors
#: mid-campaign.  Bump whenever a wire message or response changes shape.
#:
#: * 2 — multi-run claims (``claim`` answers carry the claimed task's run
#:   id, which may differ per claim on a service-mode coordinator) and
#:   structured ``ping`` bodies.  Version 1 servers answered ``ping`` with
#:   a bare ``{"ok": true}``; the *absence* of a version is how they are
#:   detected.
PROTOCOL_VERSION = 2


class WorkQueueAuthError(RuntimeError):
    """A network coordinator rejected this worker's shared-secret token.

    Deliberately *not* an :class:`OSError`: transient unreachability makes
    the transport clients degrade (claim -> ``None``) so workers survive
    coordinator restarts, but an authentication rejection is a
    configuration error that polling will never fix — the worker must
    surface it and exit instead of retry-looping.
    """


class WorkQueueProtocolError(RuntimeError):
    """The coordinator speaks a different wire-protocol version.

    Raised by the network clients' startup check (see
    ``NetworkWorkQueueClient.check_protocol``) so a version-skewed worker or
    service client exits with one clear message instead of degrading into
    decoding errors or silent idle polling mid-campaign.  Like
    :class:`WorkQueueAuthError`, retrying can never fix it.
    """


def resolve_auth_token(explicit: str | None = None) -> str | None:
    """Auth token to use: the explicit one, else :data:`AUTH_TOKEN_ENV`.

    Returns ``None`` when neither is set (authentication disabled).  An
    empty environment value counts as unset, so ``REPRO_CAMPAIGN_AUTH_TOKEN=""``
    cannot silently configure an empty shared secret.
    """
    if explicit is not None:
        return explicit
    return os.environ.get(AUTH_TOKEN_ENV) or None


def resolve_auth_tokens(
    explicit: str | Sequence[str] | None = None,
    previous: str | Sequence[str] | None = None,
) -> tuple[str, ...] | None:
    """Coordinator-side accepted-token set: primary first, then previous.

    ``explicit`` falls back to :data:`AUTH_TOKEN_ENV` and ``previous`` to
    the comma-separated :data:`AUTH_TOKEN_PREVIOUS_ENV` — the rotation
    window that lets a daemon accept not-yet-re-keyed workers.  Previous
    tokens without a primary are a configuration error (there would be no
    current secret to rotate *to*); no tokens at all returns ``None``
    (authentication disabled).
    """
    def _listed(
        value: str | Sequence[str] | None, env: str, split: bool
    ) -> list[str]:
        if value is None:
            value = os.environ.get(env) or ""
        if isinstance(value, str):
            if split:
                return [part.strip() for part in value.split(",") if part.strip()]
            return [value] if value else []
        return [token for token in value]

    # Only the *previous* set is documented as comma-separated: it is a
    # list by nature (one entry per not-yet-finished rotation), while the
    # primary is one opaque secret that may legally contain a comma.
    primary = _listed(explicit, AUTH_TOKEN_ENV, split=False)
    older = _listed(previous, AUTH_TOKEN_PREVIOUS_ENV, split=True)
    if not primary:
        if older:
            raise ValueError(
                "previous auth tokens need a primary token (set "
                f"${AUTH_TOKEN_ENV} or pass one explicitly)"
            )
        return None
    tokens: list[str] = []
    for token in (*primary, *older):
        if not token:
            raise ValueError("auth tokens must be non-empty strings")
        if token not in tokens:
            tokens.append(token)
    return tuple(tokens)

#: ``(index, payload, lease)`` of one claimed task.  The lease handle is
#: transport-specific and opaque to the worker loop: it is only ever passed
#: back to :meth:`WorkQueue.heartbeat` / :meth:`WorkQueue.complete`.
WorkItem = tuple[int, Any, Any]


@runtime_checkable
class WorkQueue(Protocol):
    """Transport-agnostic campaign work queue.

    One object per campaign run, usable from both sides: the **coordinator**
    enqueues tasks, re-issues expired leases, collects results and raises the
    stop sentinel; **workers** claim tasks, heartbeat their lease while
    executing, and publish results.  Implementations:
    :class:`FileWorkQueue` (shared directory) and
    :class:`~repro.campaign.transport.SocketWorkQueue` /
    :class:`~repro.campaign.transport.SocketWorkQueueClient` (JSON lines
    over TCP).

    Contract highlights every implementation must preserve:

    * exactly one claimer wins a task; claims hand out the lowest pending
      index first;
    * a lease whose heartbeat is older than ``lease_timeout`` may be
      re-issued; the original claimer completing late publishes a duplicate
      — equally valid — result;
    * results are namespaced by run id: a coordinator only collects its own
      run's results;
    * :meth:`set_retire_credits` / :meth:`try_retire` let the coordinator
      shrink the fleet: one credit allows exactly one *idle* worker to exit.
    """

    # -- coordinator side ----------------------------------------------------

    def enqueue(self, index: int, payload: Any) -> Any: ...

    def reset(self) -> None: ...

    def reclaim_expired(self, lease_timeout: float) -> list[int]: ...

    def collect(self, seen: Iterable[int] = ()) -> dict[int, Any]: ...

    def pending_count(self) -> int: ...

    def request_stop(self) -> None: ...

    def touch_coordinator(self) -> None: ...

    def set_retire_credits(self, count: int) -> None: ...

    # -- worker side ---------------------------------------------------------

    def claim(self, worker_id: str) -> WorkItem | None: ...

    def heartbeat(self, lease: Any) -> None: ...

    def complete(self, index: int, result: Any, lease: Any | None = None) -> None: ...

    def stop_requested(self) -> bool: ...

    def coordinator_age(self) -> float | None: ...

    def try_retire(self) -> bool: ...

#: Run id used when none is given (manually driven queues).
_DEFAULT_RUN = "run0"


def validate_run_id(run_id: str) -> None:
    """Run ids embed in queue file names ('.'-separated fields) and wire
    messages; both transports enforce the same character rule so a run id
    valid on one cannot corrupt namespacing on the other."""
    if "." in run_id or os.sep in run_id:
        raise ValueError(
            f"run id {run_id!r} must not contain '.' or path separators"
        )


class FileWorkQueue:
    """One work-queue directory, usable from coordinator and workers alike.

    ``run_id`` namespaces task and result files: a coordinator's
    :meth:`collect` only accepts results of its own run, so a worker of a
    previous (killed) campaign finishing late on a reused directory cannot
    smuggle its outcome into the next one.  Workers claim tasks of *any*
    run and answer under the task's run id, so they never need to know it.
    """

    def __init__(self, root: str | Path, run_id: str | None = None) -> None:
        if run_id is not None:
            validate_run_id(run_id)
        self.root = Path(root)
        self.run_id = run_id or _DEFAULT_RUN
        self.tasks_dir = self.root / "tasks"
        self.claimed_dir = self.root / "claimed"
        self.results_dir = self.root / "results"
        self.retire_dir = self.root / "retire"
        self._stop_path = self.root / "stop"
        for directory in (
            self.tasks_dir, self.claimed_dir, self.results_dir, self.retire_dir
        ):
            directory.mkdir(parents=True, exist_ok=True)
        # Per-instance counters of what *this process* did to the queue —
        # unlike the network transports (where every operation flows through
        # the coordinator's server), a directory queue is driven from many
        # processes, so a coordinator's instance counts enqueues/re-issues
        # and a worker's instance counts claims/completions.
        self.metrics = MetricsRegistry()
        self._enqueued = self.metrics.counter(
            "repro_queue_enqueued_total", "Tasks enqueued by this process.")
        self._claims = self.metrics.counter(
            "repro_queue_claims_total", "Tasks claimed by this process.")
        self._completions = self.metrics.counter(
            "repro_queue_completions_total", "Results published by this process.")
        self._heartbeats = self.metrics.counter(
            "repro_queue_heartbeats_total", "Lease heartbeats by this process.")
        self._reissues = self.metrics.counter(
            "repro_queue_lease_reissues_total",
            "Stale leases re-queued by this process.")

    # -- coordinator side --------------------------------------------------------

    def enqueue(self, index: int, payload: Any) -> Path:
        """Publish one pickled work item as ``tasks/<index>.<run>.task``."""
        path = self.tasks_dir / f"{index:08d}.{self.run_id}.task"
        self._write_atomic(path, pickle.dumps(payload))
        self._enqueued.inc()
        return path

    def reset(self) -> None:
        """Purge tasks, leases, results and the stop sentinel.

        A queue directory hosts **one campaign at a time**: a coordinator
        reusing an explicit directory must reset it first, or stale result
        files from the previous campaign would be collected as this run's
        outcomes and the leftover stop sentinel would send fresh workers
        straight home.
        """
        for directory in (
            self.tasks_dir, self.claimed_dir, self.results_dir, self.retire_dir
        ):
            for path in self._entries(directory):
                try:
                    path.unlink()
                except OSError:
                    pass
        try:
            self._stop_path.unlink()
        except OSError:
            pass

    def set_retire_credits(self, count: int) -> None:
        """Make exactly ``count`` retire credits available to idle workers.

        Setting (rather than adding) is idempotent: the autoscaler re-derives
        the surplus every tick, so credits left over from workers that died
        instead of retiring are withdrawn rather than stockpiled — a later
        scale-up cannot be instantly killed off by stale credits.
        """
        tokens = self._entries(self.retire_dir)
        for token in tokens[max(0, count):]:
            try:
                token.unlink()
            except OSError:
                pass  # consumed by a retiring worker; that's one fewer needed
        for _ in range(count - len(tokens)):
            (self.retire_dir / f"{uuid.uuid4().hex}.retire").touch()

    def reclaim_expired(self, lease_timeout: float) -> list[int]:
        """Re-queue claimed tasks whose heartbeat is older than the lease.

        Returns the re-queued indices.  The rename back into ``tasks/`` is
        atomic, so a worker that is merely slow (not dead) keeps running and
        simply publishes a duplicate — equally valid — result.
        """
        reclaimed: list[int] = []
        now = time.time()
        for lease in self._entries(self.claimed_dir):
            try:
                age = now - lease.stat().st_mtime
            except OSError:
                continue  # completed (or reclaimed) under our feet
            if age <= lease_timeout:
                continue
            index, run = self._index_and_run_of(lease)
            try:
                os.rename(lease, self.tasks_dir / f"{index:08d}.{run}.task")
            except OSError:
                continue
            reclaimed.append(index)
            self._reissues.inc()
            logger.warning(
                "lease on task %d expired after %.1fs; re-queued", index, age
            )
        return reclaimed

    def collect(self, seen: Iterable[int] = ()) -> dict[int, Any]:
        """Unpickle this run's result files not in ``seen``; corrupt files
        are skipped (a torn read of a result being renamed is transient,
        not fatal), other runs' results are ignored."""
        known = set(seen)
        collected: dict[int, Any] = {}
        for path in self._entries(self.results_dir):
            index, run = self._index_and_run_of(path)
            if run != self.run_id or index in known:
                continue
            try:
                collected[index] = pickle.loads(path.read_bytes())
            except (OSError, pickle.UnpicklingError, EOFError):
                continue
        return collected

    def pending_count(self) -> int:
        """Tasks not yet claimed (cheap health probe for coordinators)."""
        return sum(1 for _ in self._entries(self.tasks_dir))

    def request_stop(self) -> None:
        """Raise the stop sentinel: workers finish their current task and exit."""
        self._stop_path.touch()

    def touch_coordinator(self) -> None:
        """Coordinator heartbeat: proof to workers that someone still reads
        results.  A coordinator killed without cleanup stops touching this,
        and idle workers eventually exit instead of polling forever."""
        (self.root / "coordinator").touch()

    def coordinator_age(self) -> float | None:
        """Seconds since the coordinator heartbeat; ``None`` when a
        coordinator never announced itself (manually driven queues)."""
        try:
            return time.time() - (self.root / "coordinator").stat().st_mtime
        except OSError:
            return None

    # -- worker side -------------------------------------------------------------

    def claim(self, worker_id: str) -> WorkItem | None:
        """Lease the lowest-index pending task, or ``None`` when none pend.

        The claim is an atomic rename into ``claimed/``; losing a race for
        one task simply moves on to the next.
        """
        if os.sep in worker_id or "." in worker_id:
            raise ValueError(f"worker id {worker_id!r} must not contain '.' or path separators")
        for task in sorted(self._entries(self.tasks_dir)):
            index, run = self._index_and_run_of(task)
            lease = self.claimed_dir / f"{index:08d}.{run}.{worker_id}.task"
            try:
                os.rename(task, lease)
            except OSError:
                continue  # another claimer won this task
            try:
                payload = pickle.loads(lease.read_bytes())
            except Exception as exc:
                # Enqueue writes are atomic, so an unreadable payload is a
                # poison pill, not a race — including unpickling errors that
                # surface as ImportError/AttributeError when the payload's
                # function is not importable here.  Ship it back as a failed
                # result rather than crash-looping every worker over it.
                self.complete(index, ("error", f"unreadable task payload: {exc!r}"), lease)
                continue
            self._claims.inc()
            logger.debug("claimed task %d for worker %s", index, worker_id)
            return index, payload, lease

    def heartbeat(self, lease_path: Path) -> None:
        """Refresh the lease so the coordinator knows the worker is alive."""
        try:
            os.utime(lease_path)
        except OSError:
            pass  # lease was reclaimed; the result will still be accepted
        self._heartbeats.inc()

    def complete(self, index: int, result: Any, lease_path: Path | None = None) -> None:
        """Publish the pickled result and release the lease.

        The result answers under the *task's* run id (from the lease name)
        so workers serve any coordinator; without a lease (coordinator-side
        injection) this queue's own run id is used.
        """
        run = self._index_and_run_of(lease_path)[1] if lease_path else self.run_id
        self._write_atomic(
            self.results_dir / f"{index:08d}.{run}.result", pickle.dumps(result)
        )
        if lease_path is not None:
            try:
                lease_path.unlink()
            except OSError:
                pass  # reclaimed while we ran; nothing left to release
        self._completions.inc()

    def stop_requested(self) -> bool:
        return self._stop_path.exists()

    def stats_snapshot(self) -> dict[str, Any]:
        """Flat counter snapshot plus current queue depth (JSON-ready).

        Counts reflect this *instance's* operations (see ``__init__``); the
        depth fields are live directory observations and therefore global.
        """
        return {
            "enqueued": int(self._enqueued.value()),
            "claims": int(self._claims.value()),
            "completions": int(self._completions.value()),
            "heartbeats": int(self._heartbeats.value()),
            "lease_reissues": int(self._reissues.value()),
            "pending": self.pending_count(),
            "claimed": sum(1 for _ in self._entries(self.claimed_dir)),
        }

    def try_retire(self) -> bool:
        """Consume one retire credit, if any: unlink is atomic, so each
        credit dismisses exactly one idle worker even when several race."""
        for token in self._entries(self.retire_dir):
            try:
                token.unlink()
            except OSError:
                continue  # another worker took this credit
            return True
        return False

    # -- internal ----------------------------------------------------------------

    @staticmethod
    def _entries(directory: Path) -> list[Path]:
        try:
            return [path for path in directory.iterdir() if not path.name.endswith(".tmp")]
        except FileNotFoundError:
            return []

    @staticmethod
    def _index_and_run_of(path: Path) -> tuple[int, str]:
        tokens = path.name.split(".")
        return int(tokens[0]), tokens[1]

    @staticmethod
    def _write_atomic(path: Path, blob: bytes) -> None:
        with tempfile.NamedTemporaryFile(
            dir=path.parent, suffix=".tmp", delete=False
        ) as handle:
            handle.write(blob)
            temp_name = handle.name
        os.replace(temp_name, path)

"""Shared DRAM bandwidth contention model.

The Raspberry Pi 3 has a single LPDDR2 memory controller shared by the four
CPU cores.  A memory-intensive task on one core therefore inflates the memory
access latency seen by every other core — this is the cross-core channel the
Figure 4/5 attack exploits, and the channel MemGuard closes.

The model is intentionally phenomenological (see DESIGN.md, "Key modelling
decisions"): per scheduler quantum the demanded access rate of every core is
summed, the resulting DRAM utilisation maps to a latency inflation factor, and
each task's execution time is stretched according to its memory-stall
fraction.  The shape of the inflation curve follows the queueing-style
``1 / (1 - rho)`` growth reported in the MemGuard evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DramParameters", "DramModel"]


@dataclass(frozen=True)
class DramParameters:
    """Parameters of the shared-memory contention model.

    Attributes
    ----------
    peak_accesses_per_second:
        Saturation access rate of the memory controller.  The default is
        calibrated so that one IsolBench ``Bandwidth`` instance can saturate
        the controller, as measured on the Raspberry Pi 3 in the MemGuard and
        DeepPicar studies.
    contention_gain:
        Scales how quickly latency grows with utilisation.
    max_utilization:
        Cap on the utilisation used in the latency formula (keeps the factor
        finite when demand exceeds the peak rate).
    """

    peak_accesses_per_second: float = 6.0e6
    contention_gain: float = 0.18
    max_utilization: float = 0.97

    def __post_init__(self) -> None:
        if self.peak_accesses_per_second <= 0.0:
            raise ValueError("peak_accesses_per_second must be positive")
        if not 0.0 < self.max_utilization < 1.0:
            raise ValueError("max_utilization must be in (0, 1)")
        if self.contention_gain < 0.0:
            raise ValueError("contention_gain must be non-negative")


class DramModel:
    """Computes the memory-latency inflation factor for a scheduling quantum."""

    def __init__(self, params: DramParameters | None = None) -> None:
        self.params = params or DramParameters()
        self._last_utilization = 0.0
        self._last_factor = 1.0

    @property
    def last_utilization(self) -> float:
        """DRAM utilisation computed for the most recent quantum."""
        return self._last_utilization

    @property
    def last_latency_factor(self) -> float:
        """Latency factor computed for the most recent quantum."""
        return self._last_factor

    def utilization(self, total_demand_accesses_per_second: float) -> float:
        """Map a total demanded access rate to a (capped) utilisation."""
        if total_demand_accesses_per_second < 0.0:
            raise ValueError("demand must be non-negative")
        rho = total_demand_accesses_per_second / self.params.peak_accesses_per_second
        return min(rho, self.params.max_utilization)

    def latency_factor(self, total_demand_accesses_per_second: float) -> float:
        """Latency inflation factor for the given total demanded access rate.

        Returns 1.0 when the bus is idle and grows like
        ``1 + gain * rho / (1 - rho)`` as the controller saturates.
        """
        rho = self.utilization(total_demand_accesses_per_second)
        factor = 1.0 + self.params.contention_gain * rho / (1.0 - rho)
        self._last_utilization = rho
        self._last_factor = factor
        return factor

    @staticmethod
    def stretch_execution(latency_factor: float, memory_stall_fraction: float) -> float:
        """Execution-time multiplier for a task with the given stall fraction.

        A task that spends fraction ``m`` of its contention-free execution time
        stalled on memory sees its execution stretched to
        ``(1 - m) + m * latency_factor``.
        """
        if not 0.0 <= memory_stall_fraction <= 1.0:
            raise ValueError("memory_stall_fraction must be within [0, 1]")
        if latency_factor < 1.0:
            raise ValueError("latency_factor must be at least 1.0")
        return (1.0 - memory_stall_fraction) + memory_stall_fraction * latency_factor

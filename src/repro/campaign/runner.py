"""Campaign execution: fan a set of scenario variants out over workers.

The runner executes each :class:`~repro.campaign.grid.GridVariant` in its own
:class:`~repro.sim.flight.FlightSimulation` and collects one
:class:`VariantOutcome` per variant.  Execution is embarrassingly parallel —
every variant carries its full configuration (including its seed) in the
pickled scenario, so results are identical whether the campaign runs serially
or on a process pool, and independent of completion order.

Failure isolation: a variant that raises is captured as an outcome with a
``error`` traceback string; the rest of the campaign keeps running.  If the
process pool itself cannot be used (no fork support, pickling failure, broken
pool), the runner falls back to serial execution rather than failing the
campaign.
"""

from __future__ import annotations

import os
import time
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..sim.flight import FlightResult, run_scenario
from ..sim.scenario import FlightScenario
from .grid import RESERVED_AXIS_NAMES, GridVariant, ScenarioGrid
from .results import CampaignResult, VariantOutcome

__all__ = ["CampaignRunner", "run_campaign"]


def _summarise(variant: GridVariant, result: FlightResult) -> dict[str, Any]:
    """Build the per-variant summary dictionary shipped back to the parent.

    Summaries (not full results) cross the process boundary: they are small,
    cheap to pickle and enough for the aggregation layer.  ``recovery_latency``
    is the time from the first attack to the Simplex switch, the paper's
    "how fast does the defence react" quantity.
    """
    from ..analysis.export import result_to_dict

    summary = result_to_dict(result)
    attack_time = variant.scenario.first_attack_time()
    if attack_time is not None and summary["switch_time"] is not None:
        summary["recovery_latency"] = summary["switch_time"] - attack_time
    else:
        summary["recovery_latency"] = None
    return summary


def _execute_variant(variant: GridVariant) -> VariantOutcome:
    """Run one variant, capturing any failure as data (module-level so the
    process pool can pickle it)."""
    start = time.perf_counter()
    try:
        result = run_scenario(variant.scenario)
        summary = _summarise(variant, result)
        error = None
    except Exception:
        summary = None
        error = traceback.format_exc()
    return VariantOutcome(
        name=variant.name,
        axes=variant.axes,
        seed=variant.scenario.seed,
        summary=summary,
        error=error,
        wall_time=time.perf_counter() - start,
    )


def _as_variants(
    campaign: ScenarioGrid | Iterable[GridVariant | FlightScenario],
) -> list[GridVariant]:
    if isinstance(campaign, ScenarioGrid):
        return campaign.variants()
    variants: list[GridVariant] = []
    seen: set[str] = set()
    for entry in campaign:
        if isinstance(entry, FlightScenario):
            entry = GridVariant(name=entry.name, axes=(), scenario=entry)
        elif not isinstance(entry, GridVariant):
            raise TypeError(
                f"expected FlightScenario or GridVariant, got {type(entry).__name__}"
            )
        if entry.name in seen:
            raise ValueError(f"duplicate variant name {entry.name!r}")
        # Hand-built variants bypass ScenarioGrid.add_axis, so enforce its
        # guards here too: reserved names would be silently overwritten by
        # the summary fields in exports, and unhashable values would only
        # blow up in cell aggregation after the whole campaign has flown.
        for axis_name, axis_value in entry.axes:
            if axis_name in RESERVED_AXIS_NAMES:
                raise ValueError(
                    f"variant {entry.name!r} uses reserved axis name "
                    f"{axis_name!r} (it would collide with a summary-export "
                    "column)"
                )
            try:
                hash(axis_value)
            except TypeError:
                raise TypeError(
                    f"variant {entry.name!r} axis {axis_name!r} value "
                    f"{axis_value!r} is not hashable; cell aggregation "
                    "groups on axis values"
                ) from None
            if axis_name == "seed" and axis_value != entry.scenario.seed:
                # The summary's seed column reports the scenario's seed; a
                # declared seed axis that disagrees would silently vanish.
                raise ValueError(
                    f"variant {entry.name!r} declares seed axis value "
                    f"{axis_value!r} but its scenario flies with seed "
                    f"{entry.scenario.seed}"
                )
        seen.add(entry.name)
        variants.append(entry)
    return variants


@dataclass(frozen=True)
class CampaignRunner:
    """Executes a campaign of scenario variants.

    Attributes
    ----------
    max_workers:
        Process-pool size; ``None`` uses the CPU count (capped at the number
        of variants).
    mode:
        ``"auto"`` picks the process pool when the machine has more than one
        core and the campaign more than one variant; ``"parallel"`` and
        ``"serial"`` force the choice.
    """

    max_workers: int | None = None
    mode: str = "auto"

    _MODES = ("auto", "parallel", "serial")

    def __post_init__(self) -> None:
        if self.mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")

    def run(
        self, campaign: ScenarioGrid | Iterable[GridVariant | FlightScenario]
    ) -> CampaignResult:
        """Execute every variant and return the aggregated campaign result.

        Outcome order always matches variant (grid-expansion) order, never
        completion order.
        """
        variants = _as_variants(campaign)
        start = time.perf_counter()
        if self._use_parallel(variants):
            outcomes = self._run_parallel(variants)
        else:
            outcomes = [_execute_variant(variant) for variant in variants]
        return CampaignResult(
            outcomes=tuple(outcomes),
            wall_time=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------ internal --

    def _use_parallel(self, variants: Sequence[GridVariant]) -> bool:
        if self.mode == "serial" or len(variants) < 2:
            return False
        if self.max_workers == 1:
            # A one-worker pool pays spawn + pickling for zero concurrency.
            return False
        if self.mode == "parallel":
            return True
        return (os.cpu_count() or 1) > 1

    def _run_parallel(self, variants: Sequence[GridVariant]) -> list[VariantOutcome]:
        workers = min(self.max_workers or os.cpu_count() or 1, len(variants))
        outcomes: list[VariantOutcome] = []
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for outcome in pool.map(_execute_variant, variants):
                    outcomes.append(outcome)
        except Exception as exc:
            # Pool-level failure (fork unavailable, pickling, broken pool):
            # keep what already completed, finish the rest serially, and tell
            # the user the speedup is gone.
            warnings.warn(
                f"campaign process pool failed after {len(outcomes)}/"
                f"{len(variants)} variants ({type(exc).__name__}: {exc}); "
                "finishing the remaining variants serially",
                RuntimeWarning,
                stacklevel=2,
            )
            outcomes.extend(
                _execute_variant(variant) for variant in variants[len(outcomes):]
            )
        return outcomes


def run_campaign(
    campaign: ScenarioGrid | Iterable[GridVariant | FlightScenario],
    max_workers: int | None = None,
    mode: str = "auto",
) -> CampaignResult:
    """Convenience helper: run ``campaign`` with a fresh :class:`CampaignRunner`."""
    return CampaignRunner(max_workers=max_workers, mode=mode).run(campaign)

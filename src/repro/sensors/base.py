"""Common sensor abstractions.

Each sensor samples the simulated plant at a fixed rate.  Rates default to the
values in Table I of the paper (IMU 250 Hz, barometer 50 Hz, GPS 10 Hz, RC
50 Hz) because those are exactly the rates at which the HCE feeder threads
forward data to the complex controller in the container.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["SensorSample", "PeriodicSensor"]


@dataclass(frozen=True)
class SensorSample:
    """A timestamped sensor reading.

    Attributes
    ----------
    timestamp:
        Simulation time at which the reading was taken [s].
    data:
        Sensor-specific payload (a dataclass from the concrete sensor module).
    """

    timestamp: float
    data: Any


class PeriodicSensor:
    """Base class for sensors sampled at a fixed rate.

    Subclasses implement :meth:`_measure` which converts the true vehicle
    state into a (noisy) measurement payload.
    """

    def __init__(self, rate_hz: float, name: str) -> None:
        if rate_hz <= 0.0:
            raise ValueError("rate_hz must be positive")
        self.rate_hz = float(rate_hz)
        self.name = name
        self.period = 1.0 / self.rate_hz
        self._last_sample_time: float | None = None
        self._last_sample: SensorSample | None = None

    @property
    def last_sample(self) -> SensorSample | None:
        """Most recent sample produced, if any."""
        return self._last_sample

    def due(self, time: float) -> bool:
        """True when a new sample should be produced at simulation time ``time``."""
        if self._last_sample_time is None:
            return True
        # A small epsilon absorbs floating-point drift of the fixed-step clock.
        return time - self._last_sample_time >= self.period - 1e-9

    def sample(self, time: float, plant: Any) -> SensorSample | None:
        """Produce a sample if one is due; otherwise return ``None``."""
        if not self.due(time):
            return None
        return self.sample_now(time, plant)

    def sample_now(self, time: float, plant: Any) -> SensorSample:
        """Produce a sample unconditionally.

        Used when an external scheduler (e.g. the RTOS driver task) already
        paces the sensor: the driver's activation times jitter slightly, so
        gating again on :meth:`due` would spuriously drop samples.
        """
        data = self._measure(time, plant)
        self._last_sample_time = time
        self._last_sample = SensorSample(timestamp=time, data=data)
        return self._last_sample

    def _measure(self, time: float, plant: Any) -> Any:
        raise NotImplementedError

"""Flight-quality metrics used to compare scenarios against the paper's figures.

The paper's evaluation is qualitative (trajectory plots); these metrics turn
the recorded trajectories into the quantities the figure captions describe:
whether the drone crashed, how far it deviated from its setpoint, whether it
oscillated, and whether it recovered after the defence switched controllers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .recorder import FlightRecorder

__all__ = ["FlightMetrics", "compute_metrics"]


@dataclass(frozen=True)
class FlightMetrics:
    """Summary of one recorded flight."""

    duration: float
    crashed: bool
    crash_time: float | None
    switched_to_safety: bool
    switch_time: float | None
    max_deviation: float
    max_deviation_after: float
    rms_error: float
    rms_error_after: float
    final_deviation: float
    recovered: bool

    def summary(self) -> str:
        """One-line human-readable summary."""
        parts = [f"duration={self.duration:.1f}s"]
        parts.append("CRASHED" if self.crashed else "survived")
        if self.crash_time is not None:
            parts.append(f"crash@{self.crash_time:.1f}s")
        if self.switched_to_safety:
            parts.append(f"switch@{self.switch_time:.1f}s")
        parts.append(f"maxdev={self.max_deviation:.2f}m")
        parts.append(f"rms={self.rms_error:.3f}m")
        parts.append("recovered" if self.recovered else "not-recovered")
        return " ".join(parts)


def _deviations(recorder: FlightRecorder) -> tuple[np.ndarray, np.ndarray]:
    times = recorder.times()
    positions = recorder.positions()
    setpoints = recorder.setpoints()
    deviations = np.linalg.norm(positions - setpoints, axis=1)
    return times, deviations


def compute_metrics(
    recorder: FlightRecorder,
    event_time: float | None = None,
    recovery_threshold: float = 0.5,
    recovery_window: float = 5.0,
) -> FlightMetrics:
    """Compute flight metrics from a recording.

    Parameters
    ----------
    recorder:
        The flight recording.
    event_time:
        Reference time (normally the attack start); the ``*_after`` metrics
        are computed over samples at or after this time.
    recovery_threshold:
        Maximum deviation [m] the drone must stay within during the final
        ``recovery_window`` seconds to count as recovered.
    recovery_window:
        Length of the window at the end of the flight used for the recovery
        check [s].
    """
    if len(recorder) == 0:
        raise ValueError("recorder holds no samples")
    times, deviations = _deviations(recorder)
    duration = float(times[-1] - times[0])

    crash_time = recorder.crash_time()
    switch_time = recorder.switch_time()

    if event_time is None:
        after_mask = np.ones_like(times, dtype=bool)
    else:
        after_mask = times >= event_time
        if not np.any(after_mask):
            after_mask = np.ones_like(times, dtype=bool)

    tail_mask = times >= times[-1] - recovery_window
    crashed = crash_time is not None
    recovered = (not crashed) and bool(np.all(deviations[tail_mask] <= recovery_threshold))

    return FlightMetrics(
        duration=duration,
        crashed=crashed,
        crash_time=crash_time,
        switched_to_safety=switch_time is not None,
        switch_time=switch_time,
        max_deviation=float(np.max(deviations)),
        max_deviation_after=float(np.max(deviations[after_mask])),
        rms_error=float(np.sqrt(np.mean(deviations**2))),
        rms_error_after=float(np.sqrt(np.mean(deviations[after_mask] ** 2))),
        final_deviation=float(deviations[-1]),
        recovered=recovered,
    )

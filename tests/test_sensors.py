"""Tests for the sensor suite (IMU, barometer, GPS, RC, motion capture, noise)."""

import numpy as np
import pytest

from repro.dynamics import Quadrotor, RigidBodyState
from repro.sensors import (
    Barometer,
    BarometerParameters,
    GaussianNoise,
    Gps,
    GpsParameters,
    Imu,
    ImuParameters,
    MocapParameters,
    MotionCapture,
    PWM_MAX,
    PWM_MIN,
    QuantizationNoise,
    RandomWalkBias,
    RcChannels,
    RcReceiver,
    altitude_to_pressure,
    pressure_to_altitude,
    scripted_pilot,
)
from repro.sensors.base import PeriodicSensor
from repro.sensors.gps import geodetic_to_ned, ned_to_geodetic


@pytest.fixture
def hovering_plant():
    quad = Quadrotor(initial_state=RigidBodyState(position=np.array([1.0, -2.0, -3.0])))
    quad.arm()
    return quad


class TestNoiseModels:
    def test_gaussian_noise_scales_with_sigma(self, rng):
        small = GaussianNoise(0.01, np.random.default_rng(1))
        large = GaussianNoise(10.0, np.random.default_rng(1))
        small_samples = np.array([small.sample(()) for _ in range(200)])
        large_samples = np.array([large.sample(()) for _ in range(200)])
        assert np.std(large_samples) > np.std(small_samples) * 100

    def test_gaussian_noise_vector_shape(self, rng):
        noise = GaussianNoise(np.array([1.0, 2.0, 3.0]), rng)
        assert noise.sample().shape == (3,)

    def test_random_walk_spread_grows_with_time(self):
        # Across independent walks, the dispersion of the bias grows ~ sqrt(t).
        early, late = [], []
        for seed in range(60):
            bias = RandomWalkBias(0.0, 1.0, np.random.default_rng(seed))
            values = [bias.step(0.01)[0] for _ in range(400)]
            early.append(values[3])
            late.append(values[-1])
        assert np.std(late) > 2.0 * np.std(early)

    def test_random_walk_constant_with_zero_sigma(self, rng):
        bias = RandomWalkBias(1.5, 0.0, rng)
        for _ in range(100):
            bias.step(0.01)
        assert bias.value[0] == pytest.approx(1.5)

    def test_random_walk_rejects_bad_dt(self, rng):
        with pytest.raises(ValueError):
            RandomWalkBias(0.0, 1.0, rng).step(0.0)

    def test_quantization(self):
        quantizer = QuantizationNoise(0.5)
        assert quantizer.apply(0.74) == pytest.approx(0.5)
        assert quantizer.apply(0.76) == pytest.approx(1.0)

    def test_quantization_rejects_bad_resolution(self):
        with pytest.raises(ValueError):
            QuantizationNoise(0.0)


class TestPeriodicSensorScheduling:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            Imu(rate_hz=0.0)

    def test_sampling_respects_rate(self, hovering_plant):
        imu = Imu(rate_hz=100.0, rng=np.random.default_rng(0))
        produced = 0
        for step in range(1000):
            if imu.sample(step * 0.001, hovering_plant) is not None:
                produced += 1
        assert produced == pytest.approx(100, abs=2)

    def test_first_sample_is_immediate(self, hovering_plant):
        imu = Imu(rng=np.random.default_rng(0))
        assert imu.sample(0.0, hovering_plant) is not None

    def test_last_sample_is_cached(self, hovering_plant):
        imu = Imu(rng=np.random.default_rng(0))
        sample = imu.sample(0.0, hovering_plant)
        assert imu.last_sample is sample

    def test_base_class_requires_measure(self, hovering_plant):
        sensor = PeriodicSensor(10.0, "raw")
        with pytest.raises(NotImplementedError):
            sensor.sample(0.0, hovering_plant)


class TestImu:
    def test_gyro_tracks_angular_velocity(self):
        state = RigidBodyState(position=np.array([0.0, 0.0, -5.0]),
                               angular_velocity=np.array([0.5, -0.2, 0.1]))
        quad = Quadrotor(initial_state=state)
        quad.arm()
        imu = Imu(ImuParameters(gyro_noise_sigma=1e-6, gyro_bias_sigma=0.0, gyro_bias_walk=0.0),
                  rng=np.random.default_rng(0))
        reading = imu.sample(0.0, quad).data
        assert np.allclose(reading.gyro, [0.5, -0.2, 0.1], atol=1e-4)

    def test_accel_reads_gravity_reaction_on_ground(self):
        quad = Quadrotor()
        quad.arm()
        imu = Imu(ImuParameters(accel_noise_sigma=1e-6, accel_bias_sigma=0.0, accel_bias_walk=0.0),
                  rng=np.random.default_rng(0))
        reading = imu.sample(0.0, quad).data
        assert reading.accel[2] == pytest.approx(-9.80665, rel=1e-3)

    def test_noise_differs_between_seeds(self, hovering_plant):
        imu_a = Imu(rng=np.random.default_rng(1))
        imu_b = Imu(rng=np.random.default_rng(2))
        a = imu_a.sample(0.0, hovering_plant).data
        b = imu_b.sample(0.0, hovering_plant).data
        assert not np.allclose(a.gyro, b.gyro)

    def test_same_seed_reproducible(self, hovering_plant):
        a = Imu(rng=np.random.default_rng(7)).sample(0.0, hovering_plant).data
        b = Imu(rng=np.random.default_rng(7)).sample(0.0, hovering_plant).data
        assert np.allclose(a.gyro, b.gyro)
        assert np.allclose(a.accel, b.accel)


class TestBarometer:
    def test_pressure_altitude_roundtrip(self):
        for altitude in (0.0, 100.0, 500.0, 2000.0):
            assert pressure_to_altitude(altitude_to_pressure(altitude)) == pytest.approx(altitude)

    def test_altitude_tracks_vehicle(self, hovering_plant):
        baro = Barometer(BarometerParameters(noise_sigma_m=1e-6, drift_walk_m=0.0),
                         rng=np.random.default_rng(0))
        reading = baro.sample(0.0, hovering_plant).data
        expected = BarometerParameters().reference_altitude_m + hovering_plant.altitude
        assert reading.altitude_m == pytest.approx(expected, abs=0.01)

    def test_pressure_decreases_with_altitude(self):
        low = Quadrotor(initial_state=RigidBodyState(position=np.array([0.0, 0.0, -1.0])))
        high = Quadrotor(initial_state=RigidBodyState(position=np.array([0.0, 0.0, -100.0])))
        baro = Barometer(BarometerParameters(noise_sigma_m=0.0, drift_walk_m=0.0),
                         rng=np.random.default_rng(0))
        p_low = baro.sample(0.0, low).data.pressure_pa
        baro_high = Barometer(BarometerParameters(noise_sigma_m=0.0, drift_walk_m=0.0),
                              rng=np.random.default_rng(0))
        p_high = baro_high.sample(0.0, high).data.pressure_pa
        assert p_high < p_low


class TestGps:
    def test_geodetic_roundtrip(self):
        ned = np.array([10.0, -20.0, 3.0])
        lat, lon, alt = ned_to_geodetic(*ned)
        recovered = geodetic_to_ned(lat, lon, alt)
        assert np.allclose(recovered, ned, atol=1e-6)

    def test_fix_metadata(self, hovering_plant):
        gps = Gps(rng=np.random.default_rng(0))
        reading = gps.sample(0.0, hovering_plant).data
        assert reading.fix_type == GpsParameters().fix_type
        assert reading.num_satellites == GpsParameters().num_satellites

    def test_position_noise_has_configured_scale(self, hovering_plant):
        gps = Gps(GpsParameters(horizontal_sigma_m=5.0), rate_hz=1000.0,
                  rng=np.random.default_rng(0))
        norths = []
        for step in range(300):
            sample = gps.sample(step * 0.001, hovering_plant)
            lat, lon, alt = sample.data.latitude_deg, sample.data.longitude_deg, sample.data.altitude_m
            norths.append(geodetic_to_ned(lat, lon, alt)[0])
        assert 2.0 < np.std(norths) < 9.0


class TestRc:
    def test_scripted_pilot_switches_mode(self):
        pilot = scripted_pilot(position_mode_at=5.0)
        assert pilot(0.0).mode_switch == PWM_MIN
        assert pilot(6.0).mode_switch == PWM_MAX

    def test_receiver_samples_pilot(self):
        receiver = RcReceiver(pilot=scripted_pilot(position_mode_at=0.0))
        sample = receiver.sample(0.0, None)
        assert sample.data.mode_switch == PWM_MAX

    def test_channels_as_array(self):
        channels = RcChannels(roll=1400, pitch=1600, throttle=1500, yaw=1450, mode_switch=2000)
        array = channels.as_array()
        assert array.tolist() == [1400, 1600, 1500, 1450, 2000]


class TestMotionCapture:
    def test_low_noise_position(self, hovering_plant):
        mocap = MotionCapture(rng=np.random.default_rng(0))
        reading = mocap.sample(0.0, hovering_plant).data
        assert np.allclose(reading.position_ned, hovering_plant.position, atol=0.02)
        assert reading.valid

    def test_dropout_marks_invalid(self, hovering_plant):
        mocap = MotionCapture(MocapParameters(dropout_probability=1.0),
                              rng=np.random.default_rng(0))
        reading = mocap.sample(0.0, hovering_plant).data
        assert not reading.valid

    def test_yaw_measurement(self):
        from repro.dynamics import quat_from_euler

        state = RigidBodyState(position=np.array([0.0, 0.0, -1.0]),
                               quaternion=quat_from_euler(0.0, 0.0, 0.7))
        quad = Quadrotor(initial_state=state)
        mocap = MotionCapture(MocapParameters(yaw_sigma_rad=1e-9, position_sigma_m=1e-9),
                              rng=np.random.default_rng(0))
        reading = mocap.sample(0.0, quad).data
        assert reading.yaw == pytest.approx(0.7, abs=1e-6)

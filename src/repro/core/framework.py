"""The ContainerDrone framework: the HCE-side software of the architecture.

This class bundles the components that run on the host control environment:

* the **safety controller** (verified, minimal, always running),
* the **decision module** implementing the Simplex switching logic,
* the **security monitor** enforcing the receiving-interval and
  attitude-error rules.

The co-simulation (:mod:`repro.sim.flight`) schedules the framework's entry
points as HCE tasks and connects them to the sensors, the network stack and
the actuators.  The framework itself is deliberately free of scheduling and
networking concerns so it can be unit-tested exhaustively — mirroring the
argument that the HCE must stay simple enough to verify.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..control.safety_controller import SafetyController, SafetyControllerConfig
from ..control.setpoints import ActuatorCommand, PositionSetpoint
from ..dynamics.state import angle_wrap
from ..mavlink.codec import Frame
from ..mavlink.messages import ActuatorOutputs
from ..sensors.barometer import BarometerReading
from ..sensors.imu import ImuReading
from ..sensors.mocap import MocapReading
from .config import ContainerDroneConfig
from .security_monitor import MonitorContext, SecurityMonitor, Violation
from .simplex import ControlSource, DecisionModule

__all__ = ["ContainerDroneFramework"]


class ContainerDroneFramework:
    """HCE software stack: safety controller + decision module + monitor."""

    def __init__(
        self,
        config: ContainerDroneConfig | None = None,
        setpoint: PositionSetpoint | None = None,
        safety_config: SafetyControllerConfig | None = None,
        engaged_at: float = 0.0,
    ) -> None:
        self.config = config or ContainerDroneConfig()
        self.setpoint = setpoint or PositionSetpoint.hover_at(0.0, 0.0, 1.0)
        self.safety_controller = SafetyController(safety_config)
        self.safety_controller.set_position_setpoint(self.setpoint)
        self.decision = DecisionModule(engaged_at=engaged_at)
        self.monitor = SecurityMonitor(self.config.monitor)
        #: Invoked when the monitor kills the HCE receiving thread.
        self.on_kill_receiver: Callable[[float, Violation], None] | None = None
        self._receiver_killed = False

    # -- status -------------------------------------------------------------------

    @property
    def receiver_killed(self) -> bool:
        """True once the monitor has killed the receiving thread."""
        return self._receiver_killed

    @property
    def active_source(self) -> ControlSource:
        """Which controller currently drives the actuators."""
        return self.decision.source

    # -- sensor inputs (from the HCE drivers) ---------------------------------------

    def on_imu(self, reading: ImuReading, timestamp: float) -> None:
        """Forward an IMU sample to the safety controller."""
        self.safety_controller.on_imu(reading, timestamp)

    def on_baro(self, reading: BarometerReading, timestamp: float) -> None:
        """Forward a barometer sample to the safety controller."""
        self.safety_controller.on_baro(reading, timestamp)

    def on_mocap(self, reading: MocapReading, timestamp: float) -> None:
        """Forward a motion-capture fix to the safety controller."""
        self.safety_controller.on_mocap(reading, timestamp)

    def on_gps(self, position_ned: np.ndarray, timestamp: float) -> None:
        """Forward a GPS-derived position fix to the safety controller."""
        self.safety_controller.on_gps(position_ned, timestamp)

    # -- periodic activities ---------------------------------------------------------

    def run_safety_controller(self, now: float) -> ActuatorCommand:
        """Execute one safety-controller iteration and register its output."""
        command = self.safety_controller.compute(now)
        self.decision.submit_safety(command)
        return command

    def handle_actuator_frames(self, frames: list[Frame], now: float) -> int:
        """Consume actuator-output frames received from the CCE.

        Returns the number of valid actuator commands accepted.  Frames of any
        other type (or arriving after the receiver was killed) are ignored.
        """
        if self._receiver_killed:
            return 0
        accepted = 0
        for frame in frames:
            message = frame.message
            if not isinstance(message, ActuatorOutputs):
                continue
            command = ActuatorCommand(
                motors=np.asarray(message.motors, dtype=float),
                timestamp=now,
                source="complex",
                sequence=message.sequence,
            )
            self.decision.submit_complex(command, received_at=now)
            accepted += 1
        return accepted

    def submit_host_complex_command(self, command: ActuatorCommand, now: float) -> None:
        """Register a complex-controller command computed on the host.

        Used by the Figure 4/5 scenarios, where the full controller runs on
        the HCE and the container holds only the attacker.
        """
        if self._receiver_killed:
            return
        self.decision.submit_complex(command, received_at=now)

    def attitude_errors(self) -> tuple[float, float, float]:
        """Roll/pitch/yaw errors of the drone as estimated on the HCE [rad].

        In the hover scenarios the commanded attitude is level with the
        mission yaw, so the roll and pitch errors are simply the estimated
        roll and pitch.
        """
        estimate = self.safety_controller.attitude_estimate
        return (
            angle_wrap(estimate.roll),
            angle_wrap(estimate.pitch),
            angle_wrap(estimate.yaw - self.setpoint.yaw),
        )

    def run_monitor(self, now: float) -> Violation | None:
        """Execute one monitor iteration; switches to safety on a violation."""
        if not self.config.monitor.enabled:
            return None
        roll_error, pitch_error, yaw_error = self.attitude_errors()
        context = MonitorContext(
            now=now,
            engaged_at=self.decision.engaged_at,
            last_receive_time=self.decision.last_complex_received,
            roll_error=roll_error,
            pitch_error=pitch_error,
            yaw_error=yaw_error,
        )
        violation = self.monitor.check(context)
        if violation is not None and not self.decision.switched_to_safety:
            self._kill_receiver(now, violation)
            self.decision.switch_to_safety(now, reason=violation.message)
        return violation

    def _kill_receiver(self, now: float, violation: Violation) -> None:
        if self._receiver_killed:
            return
        self._receiver_killed = True
        if self.on_kill_receiver is not None:
            self.on_kill_receiver(now, violation)

    # -- actuation --------------------------------------------------------------------

    def select_command(self) -> ActuatorCommand | None:
        """The actuator command the PWM driver should apply right now."""
        return self.decision.select()

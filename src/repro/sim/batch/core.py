"""Compile and replay: the batched simulation core.

:class:`BatchSimulation` runs N scenarios as one structure-of-arrays replay:

1. scenarios are grouped by ``(duration, physics_dt)`` — lanes in a group
   share the quantum clock — and partitioned into **timing classes** (see
   :mod:`.trace`); one cached event trace is computed per class,
2. the per-class traces are *compiled* into a single merged op program:
   within each scheduler quantum, classes whose event-kind sequences agree are
   merged positionally into full-width ops (per-lane activation times and
   sample indices), classes that disagree fall back to per-class ops — a pure
   performance distinction, never a semantic one,
3. the program is *replayed* with every state update (sensor models,
   estimators, controllers, Simplex decision logic, plant integration)
   vectorised over the lane axis via :mod:`.physics`, :mod:`.noise` and
   :mod:`.stacks`.

Per-lane event handling — attack kills, safety switching, crash detection,
geofence breaches, early termination — is done with boolean masks, so one
lane crashing never perturbs another.  Results are standard
:class:`~repro.sim.flight.FlightResult` objects, assembled exactly like the
scalar ``FlightSimulation.run``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...core.security_monitor import Violation
from ...obs import span
from ...dynamics.state import angle_wrap_batched
from ...sensors.barometer import BarometerParameters
from ...sensors.gps import DEFAULT_ORIGIN, EARTH_RADIUS_M
from ..flight import FlightResult
from ..metrics import FlightMetrics, compute_metrics
from ..recorder import FlightRecorder, FlightSample
from ..scenario import ControllerPlacement, FlightScenario
from .noise import generate_lane_noise
from .physics import BatchPlant
from .stacks import BatchComplexStack, BatchDecision, BatchSafetyStack
from .trace import timing_fingerprint, trace_for

__all__ = ["BatchSimulation", "run_batch"]

_SENSOR_KINDS = ("imu", "baro", "gps", "mocap")

_LAT0, _LON0, _ALT0 = DEFAULT_ORIGIN
_R_COS_LAT0 = EARTH_RADIUS_M * np.cos(np.deg2rad(_LAT0))


def _f32(values: np.ndarray) -> np.ndarray:
    """float32 wire round-trip (MAVLink packs sensor payloads as ``<f``)."""
    return values.astype(np.float32).astype(np.float64)


def _split_quanta(events: list[tuple]) -> tuple[list[list[tuple]], list[float]]:
    """Partition a trace into per-quantum event lists and their end times."""
    quanta: list[list[tuple]] = []
    ends: list[float] = []
    current: list[tuple] = []
    for event in events:
        if event[0] == "end":
            quanta.append(current)
            ends.append(event[1])
            current = []
        else:
            current.append(event)
    return quanta, ends


def _sensor_times(events: list[tuple]) -> dict[str, list[float]]:
    """Map sensor kind -> sample index -> driver activation time."""
    times: dict[str, list[float]] = {kind: [] for kind in _SENSOR_KINDS}
    for event in events:
        kind = event[0]
        if kind in times:
            times[kind].append(event[1])
    return times


class _ReplayGroup:
    """All lanes sharing one ``(duration, physics_dt)`` quantum clock."""

    def __init__(self, scenarios: Sequence[FlightScenario]) -> None:
        self.scenarios = list(scenarios)
        lanes = len(self.scenarios)
        self.lanes = lanes
        self.dt = self.scenarios[0].physics_dt
        self.duration = self.scenarios[0].duration

        # -- timing classes ------------------------------------------------------
        class_lanes: dict[str, list[int]] = {}
        for lane, scenario in enumerate(self.scenarios):
            class_lanes.setdefault(timing_fingerprint(scenario), []).append(lane)
        self._class_lane_arrays = [
            np.array(members, dtype=np.intp) for members in class_lanes.values()
        ]
        with span("batch.trace"):
            class_traces = [
                trace_for(self.scenarios[members[0]])
                for members in class_lanes.values()
            ]

        # -- per-lane scenario constants -----------------------------------------
        self.sp_pos = np.stack(
            [np.asarray(s.setpoint.position, dtype=float) for s in self.scenarios]
        )
        self.sp_yaw = np.array([s.setpoint.yaw for s in self.scenarios])
        initial = self.sp_pos.copy()
        for lane, scenario in enumerate(self.scenarios):
            if scenario.initial_altitude is not None:
                initial[lane, 2] = -scenario.initial_altitude
        self.geofence_radius = np.array([s.geofence_radius for s in self.scenarios])
        self.is_host = np.array(
            [s.controller_placement == ControllerPlacement.HOST for s in self.scenarios]
        )
        monitors = [s.config.monitor for s in self.scenarios]
        self.monitor_grace = np.array([m.arming_grace_period for m in monitors])
        self.monitor_max_interval = np.array([m.max_receive_interval for m in monitors])
        self.monitor_max_roll = np.array([m.max_roll_error for m in monitors])
        self.monitor_max_pitch = np.array([m.max_pitch_error for m in monitors])
        self.monitor_max_yaw = np.array([m.max_yaw_error for m in monitors])

        # -- plant, stacks, decision ---------------------------------------------
        self.plant = BatchPlant(initial)
        self.plant.arm()
        self.safety = BatchSafetyStack(lanes, self.sp_pos, self.sp_yaw)
        self.complex = BatchComplexStack(lanes, self.sp_pos, self.sp_yaw)
        self.decision = BatchDecision(lanes)
        self.violations: list[list[Violation]] = [[] for _ in range(lanes)]
        self.recorders = [FlightRecorder(s.record_hz) for s in self.scenarios]
        self.record_period = np.array([1.0 / s.record_hz for s in self.scenarios])
        self.record_last = np.full(lanes, np.nan)
        self.geofence_breached = np.zeros(lanes, dtype=bool)
        self.geofence_time = np.full(lanes, np.nan)
        self.done = np.zeros(lanes, dtype=bool)

        # -- noise tables ---------------------------------------------------------
        counts = {kind: 1 for kind in _SENSOR_KINDS}
        for trace in class_traces:
            times = _sensor_times(trace)
            for kind in _SENSOR_KINDS:
                counts[kind] = max(counts[kind], len(times[kind]))
        tables = [
            generate_lane_noise(
                s.seed,
                counts["imu"],
                counts["baro"],
                counts["gps"],
                counts["mocap"],
                imu_rate_hz=s.config.rates.imu_hz,
                baro_rate_hz=s.config.rates.baro_hz,
            )
            for s in self.scenarios
        ]
        self.imu_bias_gyro = np.stack([t.imu_bias_gyro for t in tables])
        self.imu_bias_accel = np.stack([t.imu_bias_accel for t in tables])
        self.imu_noise_gyro = np.stack([t.imu_noise_gyro for t in tables])
        self.imu_noise_accel = np.stack([t.imu_noise_accel for t in tables])
        self.baro_drift = np.stack([t.baro_drift for t in tables])
        self.baro_noise = np.stack([t.baro_noise for t in tables])
        self.gps_noise = np.stack([t.gps_noise for t in tables])
        self.mocap_pos = np.stack([t.mocap_pos for t in tables])
        self.mocap_yaw = np.stack([t.mocap_yaw for t in tables])
        self.baro_reference_alt = BarometerParameters().reference_altitude_m

        # -- container-side sample buffers ---------------------------------------
        n_computes = 1
        for trace in class_traces:
            for event in trace:
                if event[0] == "cce":
                    n_computes = max(n_computes, event[3] + 1)
        if not self.is_host.all():
            self.imu_gyro_buf = np.zeros((lanes, counts["imu"], 3))
            self.imu_accel_buf = np.zeros((lanes, counts["imu"], 3))
            self.baro_buf = np.zeros((lanes, counts["baro"]))
            self.gps_lat_buf = np.zeros((lanes, counts["gps"]))
            self.gps_lon_buf = np.zeros((lanes, counts["gps"]))
            self.gps_alt_buf = np.zeros((lanes, counts["gps"]))
            self.mocap_pos_buf = np.zeros((lanes, counts["mocap"], 3))
            self.mocap_yaw_buf = np.zeros((lanes, counts["mocap"]))
        self.cce_motor_buf = np.zeros((lanes, n_computes, 4))

        with span("batch.compile"):
            self._ops = self._compile(class_traces)

    # --------------------------------------------------------------------- compile

    def _compile(self, class_traces: list[list[tuple]]) -> list[tuple]:
        """Merge the per-class traces into one op program.

        Op layout: ``(kind, lanes, now, extra)`` with per-lane ``lanes``/``now``
        arrays; ``extra`` is the per-lane sample-index array for sensor kinds,
        the delivered-computes tuple for ``recv``, ``(frames, compute)`` for
        ``cce`` (frames enriched with wire timestamps) and ``None`` otherwise.
        ``("end", None, t, None)`` closes each quantum.
        """
        n_classes = len(class_traces)
        lane_arrays = self._class_lane_arrays
        split = [_split_quanta(trace) for trace in class_traces]
        quanta = [s[0] for s in split]
        ends = split[0][1]
        for per_class_quanta, per_class_ends in split[1:]:
            if len(per_class_ends) != len(ends) or per_class_ends != ends:
                raise RuntimeError(
                    "timing classes in one replay group disagree on quantum "
                    "boundaries; this indicates mismatched duration/physics_dt"
                )
        sensor_times = [_sensor_times(trace) for trace in class_traces]
        merged_lanes = np.concatenate(lane_arrays)

        def cce_frames(c: int, event: tuple) -> tuple:
            # Wire timestamp of each dispatched frame: the feeder packs
            # int(sample_time * 1000) into time_ms, the CCE divides by 1000.
            frames = tuple(
                (kind, index, int(sensor_times[c][kind][index] * 1000.0) / 1000.0)
                for kind, index in event[2]
            )
            return frames, event[3]

        def emit(ops: list[tuple], kind: str, members: list[int],
                 events: list[tuple]) -> None:
            """Emit merged op(s) covering one event from each member class."""
            def concat_lanes(subset: list[int]) -> np.ndarray:
                if len(subset) == n_classes:
                    return merged_lanes
                if len(subset) == 1:
                    return lane_arrays[subset[0]]
                return np.concatenate([lane_arrays[c] for c in subset])

            def concat_nows(subset: list[int], nows: dict[int, float]) -> np.ndarray:
                return np.concatenate([
                    np.full(lane_arrays[c].shape[0], nows[c]) for c in subset
                ])

            nows = {c: event[1] for c, event in zip(members, events)}
            if kind in _SENSOR_KINDS:
                idx = np.concatenate([
                    np.full(lane_arrays[c].shape[0], event[2], dtype=np.intp)
                    for c, event in zip(members, events)
                ])
                ops.append((kind, concat_lanes(members), concat_nows(members, nows), idx))
            elif kind in ("recv", "cce"):
                # Payload must match across merged lanes; sub-group by it.
                groups: dict[tuple, list[int]] = {}
                for c, event in zip(members, events):
                    payload = event[2] if kind == "recv" else cce_frames(c, event)
                    groups.setdefault(payload, []).append(c)
                for payload, subset in groups.items():
                    ops.append((kind, concat_lanes(subset),
                                concat_nows(subset, nows), payload))
            else:  # safety, monitor, act, hostctl, kill
                ops.append((kind, concat_lanes(members), concat_nows(members, nows), None))

        # Greedy multi-way merge.  Lanes of different timing classes are
        # disjoint, so their events commute freely; the only order that
        # matters is each class's own.  Repeatedly take the pending class
        # with the earliest next event and merge in every class whose next
        # event has the same kind — when sequences agree (the common case,
        # e.g. outside attack windows) this produces one full-width op per
        # event, and it degrades gracefully to narrower ops as classes
        # diverge instead of falling back to one op per class.
        ops: list[tuple] = []
        for qi in range(len(ends)):
            seqs = [quanta[c][qi] for c in range(n_classes)]
            pos = [0] * n_classes
            pending = [c for c in range(n_classes) if seqs[c]]
            while pending:
                lead = min(pending, key=lambda c: (seqs[c][pos[c]][1], c))
                kind = seqs[lead][pos[lead]][0]
                members = [c for c in pending if seqs[c][pos[c]][0] == kind]
                emit(ops, kind, members, [seqs[c][pos[c]] for c in members])
                for c in members:
                    pos[c] += 1
                pending = [c for c in pending if pos[c] < len(seqs[c])]
            ops.append(("end", None, ends[qi], None))
        return ops

    # ---------------------------------------------------------------------- replay

    def run(self) -> list[FlightResult]:
        handlers = {
            "imu": self._op_imu,
            "baro": self._op_baro,
            "gps": self._op_gps,
            "mocap": self._op_mocap,
            "safety": self._op_safety,
            "monitor": self._op_monitor,
            "recv": self._op_recv,
            "cce": self._op_cce,
            "hostctl": self._op_hostctl,
            "act": self._op_act,
            "kill": self._op_kill,
        }
        done = self.done
        for kind, lanes, now, extra in self._ops:
            if kind == "end":
                self._op_end(now)
                if done.all():
                    break
                continue
            keep = ~done[lanes]
            if not keep.all():
                lanes = lanes[keep]
                if lanes.size == 0:
                    continue
                now = now[keep]
                if kind in _SENSOR_KINDS:
                    extra = extra[keep]
            handlers[kind](lanes, now, extra)
        return self._results()

    # -- sensor drivers ------------------------------------------------------------

    def _op_imu(self, lanes: np.ndarray, now: np.ndarray, idx: np.ndarray) -> None:
        plant = self.plant
        gyro = (plant.y[lanes, 10:13] + self.imu_bias_gyro[lanes, idx]) \
            + self.imu_noise_gyro[lanes, idx]
        accel = (plant.specific_force_body(lanes) + self.imu_bias_accel[lanes, idx]) \
            + self.imu_noise_accel[lanes, idx]
        self.safety.on_imu(lanes, gyro, accel, now)
        host = self.is_host[lanes]
        live = host & self.complex.alive[lanes]
        if live.any():
            self.complex.on_imu(lanes[live], gyro[live], accel[live], now[live])
        container = ~host
        if container.any():
            sub = lanes[container]
            self.imu_gyro_buf[sub, idx[container]] = gyro[container]
            self.imu_accel_buf[sub, idx[container]] = accel[container]

    def _op_baro(self, lanes: np.ndarray, now: np.ndarray, idx: np.ndarray) -> None:
        altitude_asl = (
            (self.baro_reference_alt + -self.plant.y[lanes, 2])
            + self.baro_drift[lanes, idx]
        ) + self.baro_noise[lanes, idx]
        self.safety.estimator.update_baro_altitude(lanes, altitude_asl)
        host = self.is_host[lanes]
        live = host & self.complex.alive[lanes]
        if live.any():
            self.complex.estimator.update_baro_altitude(lanes[live], altitude_asl[live])
        container = ~host
        if container.any():
            self.baro_buf[lanes[container], idx[container]] = altitude_asl[container]

    def _op_gps(self, lanes: np.ndarray, now: np.ndarray, idx: np.ndarray) -> None:
        noise = self.gps_noise[lanes, idx]
        north = self.plant.y[lanes, 0] + noise[:, 0]
        east = self.plant.y[lanes, 1] + noise[:, 1]
        down = self.plant.y[lanes, 2] + noise[:, 2]
        latitude = _LAT0 + np.rad2deg(north / EARTH_RADIUS_M)
        longitude = _LON0 + np.rad2deg(east / _R_COS_LAT0)
        altitude = _ALT0 - down
        position_ned = self._geodetic_to_ned(latitude, longitude, altitude)
        self.safety.estimator.update_gps(lanes, position_ned)
        host = self.is_host[lanes]
        live = host & self.complex.alive[lanes]
        if live.any():
            self.complex.estimator.update_gps(lanes[live], position_ned[live])
        container = ~host
        if container.any():
            sub = lanes[container]
            self.gps_lat_buf[sub, idx[container]] = latitude[container]
            self.gps_lon_buf[sub, idx[container]] = longitude[container]
            self.gps_alt_buf[sub, idx[container]] = altitude[container]

    @staticmethod
    def _geodetic_to_ned(
        latitude: np.ndarray, longitude: np.ndarray, altitude: np.ndarray
    ) -> np.ndarray:
        north = np.deg2rad(latitude - _LAT0) * EARTH_RADIUS_M
        east = np.deg2rad(longitude - _LON0) * EARTH_RADIUS_M * np.cos(np.deg2rad(_LAT0))
        return np.stack([north, east, _ALT0 - altitude], axis=-1)

    def _op_mocap(self, lanes: np.ndarray, now: np.ndarray, idx: np.ndarray) -> None:
        position = self.plant.y[lanes, 0:3] + self.mocap_pos[lanes, idx]
        _, _, plant_yaw = self.plant.euler(lanes)
        yaw = plant_yaw + self.mocap_yaw[lanes, idx]
        self.safety.estimator.update_mocap(lanes, position)
        self.safety.attitude.set_yaw(lanes, yaw)
        host = self.is_host[lanes]
        live = host & self.complex.alive[lanes]
        if live.any():
            sub = lanes[live]
            self.complex.estimator.update_mocap(sub, position[live])
            self.complex.attitude.set_yaw(sub, yaw[live])
        container = ~host
        if container.any():
            sub = lanes[container]
            self.mocap_pos_buf[sub, idx[container]] = position[container]
            self.mocap_yaw_buf[sub, idx[container]] = yaw[container]

    # -- HCE control plane -----------------------------------------------------------

    def _op_safety(self, lanes: np.ndarray, now: np.ndarray, _extra) -> None:
        self.decision.submit_safety(lanes, self.safety.compute(lanes))

    def _op_monitor(self, lanes: np.ndarray, now: np.ndarray, _extra) -> None:
        armed = now - self.decision.engaged_at >= self.monitor_grace[lanes]
        if not armed.any():
            return
        lanes = lanes[armed]
        now = now[armed]
        last = self.decision.last_received[lanes]
        reference = np.where(np.isnan(last), self.decision.engaged_at, last)
        gap = now - reference
        recv_violated = gap > self.monitor_max_interval[lanes]
        roll, pitch, yaw = self.safety.attitude.euler(lanes)
        roll_error = angle_wrap_batched(roll)
        pitch_error = angle_wrap_batched(pitch)
        yaw_error = angle_wrap_batched(yaw - self.sp_yaw[lanes])
        max_roll = self.monitor_max_roll[lanes]
        max_pitch = self.monitor_max_pitch[lanes]
        max_yaw = self.monitor_max_yaw[lanes]
        att_violated = (
            (np.abs(roll_error) > max_roll)
            | (np.abs(pitch_error) > max_pitch)
            | (np.abs(yaw_error) > max_yaw)
        )
        violated = recv_violated | att_violated
        if not violated.any():
            return
        for k in np.flatnonzero(violated):
            lane = int(lanes[k])
            when = float(now[k])
            if recv_violated[k]:
                violation = Violation(
                    rule="receiving-interval",
                    time=when,
                    message=(
                        f"no output from the complex controller for {float(gap[k]):.3f} s "
                        f"(threshold {float(self.monitor_max_interval[lane]):.3f} s)"
                    ),
                )
            else:
                breaches = []
                if abs(roll_error[k]) > max_roll[k]:
                    breaches.append(f"roll error {float(roll_error[k]):+.3f} rad")
                if abs(pitch_error[k]) > max_pitch[k]:
                    breaches.append(f"pitch error {float(pitch_error[k]):+.3f} rad")
                if abs(yaw_error[k]) > max_yaw[k]:
                    breaches.append(f"yaw error {float(yaw_error[k]):+.3f} rad")
                violation = Violation(
                    rule="attitude-error",
                    time=when,
                    message="attitude bound exceeded: " + ", ".join(breaches),
                )
            self.violations[lane].append(violation)
            if not self.decision.switched[lane]:
                self.decision.switched[lane] = True
                self.decision.killed[lane] = True
                self.decision.switch_time[lane] = when

    def _op_recv(self, lanes: np.ndarray, now: np.ndarray, computes: tuple) -> None:
        live = ~self.decision.killed[lanes]
        if not live.any():
            return
        lanes = lanes[live]
        now = now[live]
        for compute in computes:
            motors = _f32(self.cce_motor_buf[lanes, compute])
            self.decision.submit_complex(lanes, motors, now)

    def _op_hostctl(self, lanes: np.ndarray, now: np.ndarray, _extra) -> None:
        alive = self.complex.alive[lanes]
        if not alive.any():
            return
        lanes = lanes[alive]
        now = now[alive]
        motors = self.complex.compute(lanes, now)
        live = ~self.decision.killed[lanes]
        if live.any():
            self.decision.submit_complex(lanes[live], motors[live], now[live])

    def _op_act(self, lanes: np.ndarray, now: np.ndarray, _extra) -> None:
        self.decision.select(lanes)

    def _op_kill(self, lanes: np.ndarray, now: np.ndarray, _extra) -> None:
        self.complex.alive[lanes] = False

    # -- CCE -------------------------------------------------------------------------

    def _op_cce(self, lanes: np.ndarray, now: np.ndarray, payload: tuple) -> None:
        frames, compute = payload
        alive = self.complex.alive[lanes]
        if not alive.any():
            return
        if not alive.all():
            lanes = lanes[alive]
            now = now[alive]
        stack = self.complex
        for kind, idx, timestamp in frames:
            if kind == "imu":
                gyro = _f32(self.imu_gyro_buf[lanes, idx])
                accel = _f32(self.imu_accel_buf[lanes, idx])
                stack.on_imu(lanes, gyro, accel, np.full(lanes.shape[0], timestamp))
            elif kind == "baro":
                stack.estimator.update_baro_altitude(
                    lanes, _f32(self.baro_buf[lanes, idx])
                )
            elif kind == "gps":
                # The feeder truncates to MAVLink's integer fields, the CCE
                # scales back; int() truncates toward zero, like np.trunc.
                latitude = np.trunc(self.gps_lat_buf[lanes, idx] * 1e7) / 1e7
                longitude = np.trunc(self.gps_lon_buf[lanes, idx] * 1e7) / 1e7
                altitude = np.trunc(self.gps_alt_buf[lanes, idx] * 1000.0) / 1000.0
                stack.estimator.update_gps(
                    lanes, self._geodetic_to_ned(latitude, longitude, altitude)
                )
            elif kind == "mocap":
                stack.estimator.update_mocap(
                    lanes, _f32(self.mocap_pos_buf[lanes, idx])
                )
                stack.attitude.set_yaw(lanes, _f32(self.mocap_yaw_buf[lanes, idx]))
        self.cce_motor_buf[lanes, compute] = stack.compute(lanes, now)

    # -- quantum end -----------------------------------------------------------------

    def _op_end(self, now: float) -> None:
        active = ~self.done
        # The scalar loop skips the plant once the sim counts as crashed
        # (plant crash or geofence); the check happens before the step.
        stepped = active & ~self.plant.crashed & ~self.geofence_breached
        self.plant.step(self.decision.motor_command, self.dt, stepped)

        check = np.flatnonzero(stepped)
        if check.size:
            delta = self.plant.y[check, 0:3] - self.sp_pos[check]
            deviation = np.sqrt(
                (delta[:, 0] * delta[:, 0] + delta[:, 1] * delta[:, 1])
                + delta[:, 2] * delta[:, 2]
            )
            breached = check[deviation > self.geofence_radius[check]]
            if breached.size:
                self.geofence_breached[breached] = True
                self.geofence_time[breached] = now

        crashed_now = self.plant.crashed | self.geofence_breached
        lanes = np.flatnonzero(active)
        last = self.record_last[lanes]
        due = lanes[
            np.isnan(last) | (now - last >= self.record_period[lanes] - 1e-9)
        ]
        if due.size:
            roll, pitch, yaw = self.plant.euler(due)
            self.record_last[due] = now
            switched = self.decision.switched
            for k, lane in enumerate(due):
                recorder = self.recorders[lane]
                recorder._last_sample_time = now
                recorder.samples.append(FlightSample(
                    time=now,
                    position=self.plant.y[lane, 0:3].copy(),
                    setpoint=self.sp_pos[lane].copy(),
                    velocity=self.plant.y[lane, 3:6].copy(),
                    roll=float(roll[k]),
                    pitch=float(pitch[k]),
                    yaw=float(yaw[k]),
                    active_source="safety" if switched[lane] else "complex",
                    crashed=bool(crashed_now[lane]),
                ))

        crash_time = np.where(
            self.plant.crashed, self.plant.crash_time, self.geofence_time
        )
        self.done |= active & crashed_now & (now > crash_time + 1.0)

    # -- results ----------------------------------------------------------------------

    def _results(self) -> list[FlightResult]:
        results = []
        for lane, scenario in enumerate(self.scenarios):
            recorder = self.recorders[lane]
            metrics = compute_metrics(recorder, event_time=scenario.first_attack_time())
            plant_crashed = bool(self.plant.crashed[lane])
            crashed = plant_crashed or bool(self.geofence_breached[lane])
            if plant_crashed:
                crash_time: float | None = float(self.plant.crash_time[lane])
            elif crashed:
                crash_time = float(self.geofence_time[lane])
            else:
                crash_time = None
            if crashed and not metrics.crashed:
                metrics = FlightMetrics(
                    duration=metrics.duration,
                    crashed=True,
                    crash_time=crash_time,
                    switched_to_safety=metrics.switched_to_safety,
                    switch_time=metrics.switch_time,
                    max_deviation=metrics.max_deviation,
                    max_deviation_after=metrics.max_deviation_after,
                    rms_error=metrics.rms_error,
                    rms_error_after=metrics.rms_error_after,
                    final_deviation=metrics.final_deviation,
                    recovered=False,
                )
            results.append(FlightResult(
                scenario=scenario,
                recorder=recorder,
                metrics=metrics,
                violations=tuple(self.violations[lane]),
                switch_time=recorder.switch_time(),
                crashed=crashed,
                crash_time=crash_time,
            ))
        return results


class BatchSimulation:
    """Vectorised simulation of many scenarios at once.

    Scenarios may be fully heterogeneous; they are grouped internally so each
    group shares a quantum clock, and results come back in input order.  For
    batches dominated by a few timing classes (campaign grids sweeping seeds
    and state-only parameters) the amortised per-flight cost is a small
    fraction of the scalar co-simulation's.
    """

    def __init__(self, scenarios: Sequence[FlightScenario]) -> None:
        self.scenarios = list(scenarios)
        if not self.scenarios:
            raise ValueError("BatchSimulation needs at least one scenario")

    def run(self) -> list[FlightResult]:
        """Simulate every scenario; returns results in input order."""
        groups: dict[tuple[float, float], list[int]] = {}
        for index, scenario in enumerate(self.scenarios):
            groups.setdefault((scenario.duration, scenario.physics_dt), []).append(index)
        results: list[FlightResult | None] = [None] * len(self.scenarios)
        for members in groups.values():
            group = _ReplayGroup([self.scenarios[i] for i in members])
            # Phase-grained only: the replay's per-timestep inner loop is
            # the hot path and stays uninstrumented.
            with span("batch.replay"):
                for index, result in zip(members, group.run()):
                    results[index] = result
        return results  # type: ignore[return-value]


def run_batch(scenarios: Sequence[FlightScenario]) -> list[FlightResult]:
    """Convenience helper: ``BatchSimulation(scenarios).run()``."""
    return BatchSimulation(scenarios).run()

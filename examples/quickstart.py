#!/usr/bin/env python3
"""Quickstart: fly the ContainerDrone and watch the Simplex defence in action.

Runs the paper's Figure 6 experiment: the drone hovers at a setpoint with the
complex controller running inside the container; at t = 12 s the attacker
kills the complex controller; the security monitor notices the missing output
and switches control to the safety controller, which recovers the hover.

Usage::

    python examples/quickstart.py [--duration SECONDS]
"""

from __future__ import annotations

import argparse

from repro import FlightScenario, run_scenario
from repro.analysis import ascii_plot, extract_axes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=20.0,
                        help="flight duration in seconds (paper uses 30)")
    parser.add_argument("--kill-time", type=float, default=12.0,
                        help="time at which the attacker kills the complex controller")
    args = parser.parse_args()

    scenario = FlightScenario.figure6(kill_time=args.kill_time, duration=args.duration)
    print(f"Running scenario {scenario.name!r} for {scenario.duration:.0f} s "
          f"(this simulates the full software stack, expect roughly real time)...")
    result = run_scenario(scenario)

    print()
    print("Flight summary:", result.metrics.summary())
    if result.violations:
        violation = result.violations[0]
        print(f"Security monitor fired: rule={violation.rule!r} at t={violation.time:.2f} s")
        print(f"  -> {violation.message}")
    if result.switch_time is not None:
        print(f"Control switched to the safety controller at t={result.switch_time:.2f} s")

    for axis in extract_axes(result.recorder):
        print()
        print(ascii_plot(axis))


if __name__ == "__main__":
    main()

"""Full-system flight co-simulation.

This module wires every substrate into the system of Figure 2 of the paper:

* the quadrotor plant and its sensor suite (:mod:`repro.dynamics`,
  :mod:`repro.sensors`),
* the host control environment: sensor drivers, feeder threads, the safety
  controller, the security monitor, the receiving thread and the actuator
  (PWM) driver, all scheduled as SCHED_FIFO tasks on the HCE cores,
* the container control environment: the complex controller and its motor
  output publisher running inside a Docker-like container pinned to the CCE
  core, exchanging MAVLink messages with the host over the simulated docker0
  bridge,
* the protections: cgroup cpuset/priority limits, MemGuard on the shared
  DRAM, iptables rate limiting and the security monitor,
* the attacks of Section V, launched from inside the container.

The result of a run is a :class:`~repro.sim.recorder.FlightRecorder` plus the
derived :class:`~repro.sim.metrics.FlightMetrics`, which the benchmarks use to
regenerate Figures 4-7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attacks.controller_kill import ControllerKillAttack
from ..attacks.cpu_hog import CpuHogAttack
from ..attacks.memory_dos import MemoryBandwidthAttack
from ..attacks.udp_flood import UdpFloodAttack
from ..container.runtime import ContainerRuntime
from ..control.complex_controller import ComplexController, ComplexControllerConfig
from ..control.setpoints import ActuatorCommand
from ..core.framework import ContainerDroneFramework
from ..core.protections import build_container_config, build_memguard, build_network
from ..core.security_monitor import Violation
from ..dynamics.quadrotor import Quadrotor, QuadrotorParameters
from ..dynamics.state import RigidBodyState
from ..mavlink.connection import MavlinkConnection
from ..mavlink.messages import (
    ActuatorOutputs,
    GpsRawInt,
    HighresImu,
    LocalPositionNed,
    RcChannelsOverride,
    ScaledPressure,
)
from ..memsys.dram import DramModel, DramParameters
from ..rtos.scheduler import MulticoreScheduler
from ..rtos.task import Task, TaskConfig
from ..sensors.barometer import Barometer, BarometerReading
from ..sensors.gps import Gps, geodetic_to_ned
from ..sensors.imu import Imu, ImuReading
from ..sensors.mocap import MocapReading, MotionCapture
from ..sensors.rc import RcChannels, RcReceiver, scripted_pilot
from .metrics import FlightMetrics, compute_metrics
from .recorder import FlightRecorder, FlightSample
from .scenario import ControllerPlacement, FlightScenario

__all__ = ["FlightResult", "FlightSimulation", "run_scenario"]

#: Default parameters of the shared-DRAM model used by flight scenarios.  The
#: contention curve is steeper than the :class:`DramParameters` defaults so a
#: saturating attacker reproduces the severe slowdowns measured on the Pi 3.
FLIGHT_DRAM_PARAMETERS = DramParameters(
    peak_accesses_per_second=6.0e6,
    contention_gain=0.35,
    max_utilization=0.99,
)


@dataclass
class _SensorHub:
    """Latest sensor samples shared between HCE drivers and feeder threads."""

    imu: ImuReading | None = None
    imu_time: float = 0.0
    imu_fresh: bool = False
    baro: BarometerReading | None = None
    baro_time: float = 0.0
    baro_fresh: bool = False
    gps_position: np.ndarray | None = None
    gps_geodetic: tuple[float, float, float] | None = None
    gps_velocity: np.ndarray | None = None
    gps_time: float = 0.0
    gps_fresh: bool = False
    rc: RcChannels | None = None
    rc_time: float = 0.0
    rc_fresh: bool = False
    mocap: MocapReading | None = None
    mocap_time: float = 0.0
    mocap_fresh: bool = False


@dataclass(frozen=True)
class FlightResult:
    """Outcome of one simulated flight."""

    scenario: FlightScenario
    recorder: FlightRecorder
    metrics: FlightMetrics
    violations: tuple[Violation, ...]
    switch_time: float | None
    crashed: bool
    crash_time: float | None


class FlightSimulation:
    """Co-simulation of one :class:`FlightScenario`."""

    def __init__(self, scenario: FlightScenario) -> None:
        self.scenario = scenario
        config = scenario.config
        seed = np.random.SeedSequence(scenario.seed)
        seeds = seed.spawn(8)

        # -- physical plant and sensors ------------------------------------------
        setpoint_position = np.asarray(scenario.setpoint.position, dtype=float)
        initial_position = setpoint_position.copy()
        if scenario.initial_altitude is not None:
            # NED: altitude is -z.
            initial_position[2] = -scenario.initial_altitude
        initial_state = RigidBodyState(position=initial_position)
        self.plant = Quadrotor(QuadrotorParameters(), initial_state=initial_state)
        self.plant.arm()

        rates = config.rates
        self.imu = Imu(rate_hz=rates.imu_hz, rng=np.random.default_rng(seeds[0]))
        self.baro = Barometer(rate_hz=rates.baro_hz, rng=np.random.default_rng(seeds[1]))
        self.gps = Gps(rate_hz=rates.gps_hz, rng=np.random.default_rng(seeds[2]))
        self.mocap = MotionCapture(rate_hz=rates.mocap_hz, rng=np.random.default_rng(seeds[3]))
        self.rc = RcReceiver(pilot=scripted_pilot(position_mode_at=0.0), rate_hz=rates.rc_hz)

        # -- substrates ------------------------------------------------------------
        self.network = build_network(config)
        self.memguard = build_memguard(config)
        self.dram = DramModel(FLIGHT_DRAM_PARAMETERS)
        self.scheduler = MulticoreScheduler(
            num_cores=config.cpu.num_cores,
            quantum=scenario.physics_dt,
            dram=self.dram,
            memguard=self.memguard,
        )
        self.runtime = ContainerRuntime(self.scheduler, self.network)
        self.container = self.runtime.create(build_container_config(config))
        self.runtime.run(self.container)

        # -- control environments ----------------------------------------------------
        self.framework = ContainerDroneFramework(config=config, setpoint=scenario.setpoint)
        self.framework.on_kill_receiver = self._kill_receiver
        self.complex_controller = ComplexController(ComplexControllerConfig(
            nominal_execution_time=0.0025,
            memory_stall_fraction=0.5,
            memory_accesses_per_iteration=3000,
        ))
        self.complex_controller.set_position_setpoint(scenario.setpoint)

        self._hub = _SensorHub()
        self._motor_command = np.full(4, 0.57)
        self._cce_outbox: ActuatorOutputs | None = None
        self._geofence_breached = False
        self._geofence_time: float | None = None
        self._controller_killed = False

        self.recorder = FlightRecorder(sample_rate_hz=scenario.record_hz)

        self._hce_core_io = min(config.cpu.hce_cores)
        remaining = sorted(config.cpu.hce_cores - {self._hce_core_io})
        self._hce_core_ctrl = remaining[0] if remaining else self._hce_core_io
        self._hce_core_aux = remaining[1] if len(remaining) > 1 else self._hce_core_ctrl
        self._cce_core = min(config.cpu.cce_cores)

        self._build_connections()
        self._build_hce_tasks()
        if scenario.controller_placement == ControllerPlacement.CONTAINER:
            self._build_cce_tasks()
        else:
            self._build_host_controller_task()
        self._build_attack_tasks()

    # ------------------------------------------------------------------ wiring --

    def _build_connections(self) -> None:
        communication = self.scenario.config.communication
        container_ns = self.container.namespace
        # HCE side: feeder -> CCE sensor port, receiver <- CCE motor traffic.
        self.hce_feeder_tx = MavlinkConnection(
            self.network,
            local_namespace="host",
            local_port=47001,
            remote_namespace=container_ns,
            remote_port=communication.sensor_port,
            system_id=1,
        )
        self.hce_motor_rx = MavlinkConnection(
            self.network,
            local_namespace="host",
            local_port=communication.motor_port,
            remote_namespace=container_ns,
            remote_port=0,
            system_id=1,
            queue_capacity=communication.motor_queue_capacity,
        )
        # CCE side: sensor receiver and motor publisher.
        self.cce_sensor_rx = MavlinkConnection(
            self.network,
            local_namespace=container_ns,
            local_port=communication.sensor_port,
            remote_namespace="host",
            remote_port=0,
            system_id=2,
            queue_capacity=communication.sensor_queue_capacity,
        )
        self.cce_motor_tx = MavlinkConnection(
            self.network,
            local_namespace=container_ns,
            local_port=47002,
            remote_namespace="host",
            remote_port=communication.motor_port,
            system_id=2,
        )

    def _add_hce_task(
        self,
        name: str,
        rate_hz: float,
        execution_time: float,
        priority: int,
        core: int,
        callback,
        memory_stall_fraction: float = 0.2,
        accesses_per_job: int = 50,
        dynamic_cost=None,
    ) -> Task:
        task = Task(
            TaskConfig(
                name=name,
                period=1.0 / rate_hz,
                execution_time=execution_time,
                priority=priority,
                core=core,
                memory_stall_fraction=memory_stall_fraction,
                accesses_per_job=accesses_per_job,
            ),
            callback=callback,
            dynamic_cost=dynamic_cost,
        )
        self.scheduler.add_task(task)
        return task

    def _build_hce_tasks(self) -> None:
        config = self.scenario.config
        cpu = config.cpu
        rates = config.rates
        io_core = self._hce_core_io
        ctrl_core = self._hce_core_ctrl

        # Kernel sensor drivers (priority 90, Section IV-C).
        self._add_hce_task("imu-driver", rates.imu_hz, 0.00015, cpu.driver_priority,
                           io_core, self._imu_driver, accesses_per_job=60)
        self._add_hce_task("baro-driver", rates.baro_hz, 0.00008, cpu.driver_priority,
                           io_core, self._baro_driver, accesses_per_job=30)
        self._add_hce_task("gps-driver", rates.gps_hz, 0.0001, 60,
                           io_core, self._gps_driver, accesses_per_job=30)
        self._add_hce_task("rc-driver", rates.rc_hz, 0.00005, 60,
                           io_core, self._rc_driver, accesses_per_job=20)
        self._add_hce_task("mocap-bridge", rates.mocap_hz, 0.0001, 60,
                           io_core, self._mocap_driver, accesses_per_job=40)
        # Feeder (I/O) thread forwarding sensor data to the CCE.
        self._add_hce_task("feeder", rates.imu_hz, 0.00015, 50,
                           io_core, self._feeder, accesses_per_job=60)
        # Actuator (PWM) output driver.
        self._add_hce_task("actuator-driver", rates.actuator_hz, 0.0001, cpu.driver_priority,
                           io_core, self._actuator_driver, accesses_per_job=30)
        # Kernel housekeeping / interrupt threads.
        self._add_hce_task("kworker", 100.0, 0.0005, cpu.interrupt_priority,
                           io_core, None, accesses_per_job=100)

        # Safety controller (priority 20, Section IV-C).
        safety_config = self.framework.safety_controller.config
        self._add_hce_task(
            "safety-controller",
            rates.controller_hz,
            safety_config.nominal_execution_time,
            cpu.safety_priority,
            ctrl_core,
            self._safety_controller_step,
            memory_stall_fraction=safety_config.memory_stall_fraction,
            accesses_per_job=safety_config.memory_accesses_per_iteration,
        )
        # Security monitor.
        self._add_hce_task("security-monitor", config.monitor.rate_hz, 0.00005,
                           cpu.monitor_priority, ctrl_core, self._monitor_step,
                           accesses_per_job=20)
        # Receiving thread for CCE actuator output.
        self._receiver_task = self._add_hce_task(
            "motor-receiver",
            1000.0,
            0.0,
            cpu.receiver_priority,
            ctrl_core,
            self._receiver_step,
            accesses_per_job=0,
            dynamic_cost=self._receiver_cost,
        )

    def _build_cce_tasks(self) -> None:
        """Complex controller and motor publisher inside the container."""
        config = self.scenario.config
        controller_config = self.complex_controller.config
        controller_task = TaskConfig(
            name="complex-controller",
            period=1.0 / config.rates.controller_hz,
            execution_time=controller_config.nominal_execution_time,
            priority=30,
            core=self._cce_core,
            memory_stall_fraction=controller_config.memory_stall_fraction,
            accesses_per_job=controller_config.memory_accesses_per_iteration,
        )
        self._cce_controller_task = self.runtime.spawn_process(
            self.container, controller_task, callback=self._cce_controller_step
        )
        publisher_task = TaskConfig(
            name="motor-publisher",
            period=1.0 / config.rates.motor_output_hz,
            execution_time=0.00005,
            priority=30,
            core=self._cce_core,
            memory_stall_fraction=0.1,
            accesses_per_job=20,
        )
        self._cce_publisher_task = self.runtime.spawn_process(
            self.container, publisher_task, callback=self._cce_publisher_step
        )

    def _build_host_controller_task(self) -> None:
        """Complex controller on the HCE (Figure 4/5 configuration)."""
        controller_config = self.complex_controller.config
        self._add_hce_task(
            "complex-controller-host",
            self.scenario.config.rates.controller_hz,
            controller_config.nominal_execution_time,
            30,
            self._hce_core_aux,
            self._host_controller_step,
            memory_stall_fraction=controller_config.memory_stall_fraction,
            accesses_per_job=controller_config.memory_accesses_per_iteration,
        )

    def _build_attack_tasks(self) -> None:
        quantum = self.scenario.physics_dt
        for attack in self.scenario.attacks:
            if isinstance(attack, MemoryBandwidthAttack):
                self.runtime.spawn_process(
                    self.container, attack.task_config(self._cce_core, quantum)
                )
            elif isinstance(attack, UdpFloodAttack):
                self.runtime.spawn_process(
                    self.container,
                    attack.task_config(self._cce_core, quantum),
                    callback=self._make_flood_callback(attack),
                )
            elif isinstance(attack, CpuHogAttack):
                for task_config in attack.task_configs(
                    0, self.scenario.config.cpu.num_cores, quantum
                ):
                    self.runtime.spawn_process(self.container, task_config)
            elif isinstance(attack, ControllerKillAttack):
                # Handled in the stepping loop (it is an event, not a process).
                continue

    # ------------------------------------------------------------- HCE callbacks --

    def _imu_driver(self, now: float) -> None:
        sample = self.imu.sample_now(now, self.plant)
        self._hub.imu = sample.data
        self._hub.imu_time = sample.timestamp
        self._hub.imu_fresh = True
        self.framework.on_imu(sample.data, sample.timestamp)
        if self.scenario.controller_placement == ControllerPlacement.HOST:
            self.complex_controller.on_imu(sample.data, sample.timestamp)

    def _baro_driver(self, now: float) -> None:
        sample = self.baro.sample_now(now, self.plant)
        self._hub.baro = sample.data
        self._hub.baro_time = sample.timestamp
        self._hub.baro_fresh = True
        self.framework.on_baro(sample.data, sample.timestamp)
        if self.scenario.controller_placement == ControllerPlacement.HOST:
            self.complex_controller.on_baro(sample.data, sample.timestamp)

    def _gps_driver(self, now: float) -> None:
        sample = self.gps.sample_now(now, self.plant)
        reading = sample.data
        position_ned = geodetic_to_ned(
            reading.latitude_deg, reading.longitude_deg, reading.altitude_m, self.gps.origin
        )
        self._hub.gps_position = position_ned
        self._hub.gps_geodetic = (
            reading.latitude_deg, reading.longitude_deg, reading.altitude_m
        )
        self._hub.gps_velocity = reading.velocity_ned
        self._hub.gps_time = sample.timestamp
        self._hub.gps_fresh = True
        self.framework.on_gps(position_ned, sample.timestamp)
        if self.scenario.controller_placement == ControllerPlacement.HOST:
            self.complex_controller.on_gps(position_ned, sample.timestamp)

    def _rc_driver(self, now: float) -> None:
        sample = self.rc.sample_now(now, self.plant)
        self._hub.rc = sample.data
        self._hub.rc_time = sample.timestamp
        self._hub.rc_fresh = True
        if self.scenario.controller_placement == ControllerPlacement.HOST:
            self.complex_controller.on_rc(sample.data, sample.timestamp)

    def _mocap_driver(self, now: float) -> None:
        sample = self.mocap.sample_now(now, self.plant)
        self._hub.mocap = sample.data
        self._hub.mocap_time = sample.timestamp
        self._hub.mocap_fresh = True
        self.framework.on_mocap(sample.data, sample.timestamp)
        if self.scenario.controller_placement == ControllerPlacement.HOST:
            self.complex_controller.on_mocap(sample.data, sample.timestamp)

    def _feeder(self, now: float) -> None:
        """Forward fresh sensor samples to the CCE (simulation control mode)."""
        hub = self._hub
        if hub.imu_fresh and hub.imu is not None:
            self.hce_feeder_tx.send(now, HighresImu.from_arrays(
                int(hub.imu_time * 1000.0), np.asarray(hub.imu.gyro), np.asarray(hub.imu.accel)
            ))
            hub.imu_fresh = False
        if hub.baro_fresh and hub.baro is not None:
            self.hce_feeder_tx.send(now, ScaledPressure(
                time_ms=int(hub.baro_time * 1000.0),
                pressure_abs=hub.baro.pressure_pa,
                altitude_m=hub.baro.altitude_m,
                temperature_c=hub.baro.temperature_c,
            ))
            hub.baro_fresh = False
        if hub.gps_fresh and hub.gps_geodetic is not None:
            latitude, longitude, altitude = hub.gps_geodetic
            velocity = hub.gps_velocity if hub.gps_velocity is not None else np.zeros(3)
            self.hce_feeder_tx.send(now, GpsRawInt(
                time_ms=int(hub.gps_time * 1000.0),
                lat_e7=int(latitude * 1e7),
                lon_e7=int(longitude * 1e7),
                alt_mm=int(altitude * 1000.0),
                vel_north=float(velocity[0]),
                vel_east=float(velocity[1]),
                vel_down=float(velocity[2]),
            ))
            hub.gps_fresh = False
        if hub.rc_fresh and hub.rc is not None:
            channels = tuple(int(v) for v in hub.rc.as_array()) + (1500,) * 11
            self.hce_feeder_tx.send(now, RcChannelsOverride(
                time_ms=int(hub.rc_time * 1000.0), channels=channels[:16]
            ))
            hub.rc_fresh = False
        if hub.mocap_fresh and hub.mocap is not None:
            self.hce_feeder_tx.send(now, LocalPositionNed(
                time_ms=int(hub.mocap_time * 1000.0),
                x=float(hub.mocap.position_ned[0]),
                y=float(hub.mocap.position_ned[1]),
                z=float(hub.mocap.position_ned[2]),
                yaw=float(hub.mocap.yaw),
            ))
            hub.mocap_fresh = False

    def _actuator_driver(self, now: float) -> None:
        command = self.framework.select_command()
        if command is not None:
            self._motor_command = np.clip(np.asarray(command.motors, dtype=float), 0.0, 1.0)

    def _safety_controller_step(self, now: float) -> None:
        self.framework.run_safety_controller(now)

    def _monitor_step(self, now: float) -> None:
        self.framework.run_monitor(now)

    def _receiver_cost(self, now: float) -> tuple[float, int]:
        endpoint = self.hce_motor_rx.endpoint
        if endpoint is None:
            return 0.0, 0
        batch = self.scenario.config.communication.receiver_batch_size
        pending = min(endpoint.queue_depth, batch)
        # Each datagram costs a syscall plus MAVLink parsing (~15 us on the Pi).
        return pending * 15e-6, pending * 30

    def _receiver_step(self, now: float) -> None:
        batch = self.scenario.config.communication.receiver_batch_size
        frames = self.hce_motor_rx.receive(now, max_datagrams=batch)
        if frames:
            self.framework.handle_actuator_frames(frames, now)

    def _host_controller_step(self, now: float) -> None:
        command = self.complex_controller.compute(now)
        if command is not None:
            self.framework.submit_host_complex_command(command, now)

    def _kill_receiver(self, now: float, violation: Violation) -> None:
        """Monitor action: kill the HCE receiving thread (Section III-E)."""
        self.hce_motor_rx.close()
        try:
            self.scheduler.remove_task("motor-receiver")
        except KeyError:
            pass

    # ------------------------------------------------------------- CCE callbacks --

    def _cce_controller_step(self, now: float) -> None:
        if not self.complex_controller.alive:
            return
        frames = self.cce_sensor_rx.receive(now)
        for frame in frames:
            message = frame.message
            timestamp = getattr(message, "time_ms", int(now * 1000)) / 1000.0
            if isinstance(message, HighresImu):
                self.complex_controller.on_imu(
                    ImuReading(gyro=np.array(message.gyro), accel=np.array(message.accel)),
                    timestamp,
                )
            elif isinstance(message, ScaledPressure):
                self.complex_controller.on_baro(
                    BarometerReading(
                        pressure_pa=message.pressure_abs,
                        altitude_m=message.altitude_m,
                        temperature_c=message.temperature_c,
                    ),
                    timestamp,
                )
            elif isinstance(message, GpsRawInt):
                position_ned = geodetic_to_ned(
                    message.lat_e7 / 1e7, message.lon_e7 / 1e7, message.alt_mm / 1000.0,
                    self.gps.origin,
                )
                self.complex_controller.on_gps(position_ned, timestamp)
            elif isinstance(message, LocalPositionNed):
                self.complex_controller.on_mocap(
                    MocapReading(
                        position_ned=np.array([message.x, message.y, message.z]),
                        yaw=message.yaw,
                        valid=True,
                    ),
                    timestamp,
                )
            elif isinstance(message, RcChannelsOverride):
                channels = message.channels
                self.complex_controller.on_rc(
                    RcChannels(
                        roll=channels[0], pitch=channels[1], throttle=channels[2],
                        yaw=channels[3], mode_switch=channels[4],
                    ),
                    timestamp,
                )
        command = self.complex_controller.compute(now)
        if command is not None:
            self._cce_outbox = ActuatorOutputs.from_command(
                int(now * 1000), command.motors, command.sequence
            )

    def _cce_publisher_step(self, now: float) -> None:
        if self._cce_outbox is None or not self.complex_controller.alive:
            return
        self.cce_motor_tx.send(now, self._cce_outbox)

    def _make_flood_callback(self, attack: UdpFloodAttack):
        payload = attack.payload()
        container_ns = self.container.namespace

        def flood(now: float) -> None:
            for _ in range(attack.packets_per_quantum(self.scenario.physics_dt)):
                self.network.send(
                    now,
                    payload,
                    source_namespace=container_ns,
                    source_port=55555,
                    destination_namespace="host",
                    destination_port=attack.target_port,
                )

        return flood

    # ------------------------------------------------------------------- events --

    def _apply_event_attacks(self, now: float) -> None:
        for attack in self.scenario.attacks:
            if isinstance(attack, ControllerKillAttack):
                if attack.active(now) and not self._controller_killed:
                    self._controller_killed = True
                    self.complex_controller.kill()
                    for task_name in ("complex-controller", "motor-publisher",
                                      "complex-controller-host"):
                        try:
                            self.scheduler.remove_task(task_name)
                        except KeyError:
                            continue

    # ------------------------------------------------------------------ stepping --

    @property
    def crashed(self) -> bool:
        """True when the plant crashed or the drone left the lab volume."""
        return self.plant.crashed or self._geofence_breached

    @property
    def crash_time(self) -> float | None:
        """Time of the crash, if any."""
        if self.plant.crashed:
            return self.plant.crash_time
        return self._geofence_time

    def _check_geofence(self, now: float) -> None:
        if self._geofence_breached:
            return
        deviation = float(np.linalg.norm(
            self.plant.position - np.asarray(self.scenario.setpoint.position)
        ))
        if deviation > self.scenario.geofence_radius:
            self._geofence_breached = True
            self._geofence_time = now

    def step(self) -> None:
        """Advance the co-simulation by one physics step."""
        dt = self.scenario.physics_dt
        self.scheduler.advance(dt)
        now = self.scheduler.time
        self._apply_event_attacks(now)
        if not self.crashed:
            self.plant.step(self._motor_command, dt)
            self._check_geofence(now)
        roll, pitch, yaw = self.plant.attitude
        self.recorder.maybe_record(FlightSample(
            time=now,
            position=self.plant.position.copy(),
            setpoint=np.asarray(self.scenario.setpoint.position, dtype=float).copy(),
            velocity=self.plant.velocity.copy(),
            roll=roll,
            pitch=pitch,
            yaw=yaw,
            active_source=self.framework.active_source.value,
            crashed=self.crashed,
        ))

    def run(self) -> FlightResult:
        """Run the scenario to completion and return the result."""
        steps = int(round(self.scenario.duration / self.scenario.physics_dt))
        for _ in range(steps):
            self.step()
            if self.crashed and self.scheduler.time > (self.crash_time or 0.0) + 1.0:
                break
        metrics = compute_metrics(
            self.recorder, event_time=self.scenario.first_attack_time()
        )
        # The recorder may not have caught the crash flag if it happened after
        # the last decimated sample; trust the simulation state.
        if self.crashed and not metrics.crashed:
            metrics = FlightMetrics(
                duration=metrics.duration,
                crashed=True,
                crash_time=self.crash_time,
                switched_to_safety=metrics.switched_to_safety,
                switch_time=metrics.switch_time,
                max_deviation=metrics.max_deviation,
                max_deviation_after=metrics.max_deviation_after,
                rms_error=metrics.rms_error,
                rms_error_after=metrics.rms_error_after,
                final_deviation=metrics.final_deviation,
                recovered=False,
            )
        return FlightResult(
            scenario=self.scenario,
            recorder=self.recorder,
            metrics=metrics,
            violations=tuple(self.framework.monitor.violations),
            switch_time=self.recorder.switch_time(),
            crashed=self.crashed,
            crash_time=self.crash_time,
        )


def run_scenario(scenario: FlightScenario) -> FlightResult:
    """Convenience helper: build and run a flight simulation for ``scenario``."""
    return FlightSimulation(scenario).run()

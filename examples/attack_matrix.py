#!/usr/bin/env python3
"""Run every attack in the library against the fully protected framework.

Produces a single comparison table: for each attack, whether the drone
crashed, which security rule (if any) triggered the Simplex switch, and how
large the disturbance was.  This is the "capabilities of the framework"
summary of the paper's Section V in one run.

Usage::

    python examples/attack_matrix.py [--duration SECONDS] [--attack-start SECONDS]
"""

from __future__ import annotations

import argparse

from repro import FlightScenario
from repro.analysis import compare_results
from repro.attacks import ControllerKillAttack, CpuHogAttack, MemoryBandwidthAttack, UdpFloodAttack
from repro.sim import ControllerPlacement, run_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=18.0)
    parser.add_argument("--attack-start", type=float, default=6.0)
    args = parser.parse_args()

    scenarios = {
        "no attack": FlightScenario.baseline(duration=args.duration),
        "memory DoS (MemGuard on)": FlightScenario.figure5(
            attack_start=args.attack_start, duration=args.duration
        ),
        "memory DoS (MemGuard off)": FlightScenario.figure4(
            attack_start=args.attack_start, duration=args.duration
        ),
        "controller kill": FlightScenario.figure6(
            kill_time=args.attack_start, duration=args.duration
        ),
        "UDP flood": FlightScenario.figure7(
            attack_start=args.attack_start, duration=args.duration
        ),
        "CPU hog": FlightScenario(
            name="cpu-hog",
            duration=args.duration,
            attacks=(CpuHogAttack(start_time=args.attack_start),),
        ),
    }

    results = {}
    for label, scenario in scenarios.items():
        print(f"Running {label!r} ({scenario.name}) ...")
        results[label] = run_scenario(scenario)

    print()
    print(compare_results(results))
    print()
    print("Notes: the memory-DoS scenarios follow the paper's Figure 4/5 setup (controller on")
    print("the host, only the attacker in the container, monitor not involved); the other")
    print("attacks run against the full container configuration with all protections on.")


if __name__ == "__main__":
    main()

"""Tests for the JSON-lines-over-TCP work-queue transport and autoscaling.

Mirrors the layering of ``tests/test_distributed.py`` for the socket
transport:

* :class:`~repro.campaign.transport.SocketWorkQueue` /
  :class:`~repro.campaign.transport.SocketWorkQueueClient` primitives over a
  real TCP server — exclusive claims, heartbeat leases, run namespacing,
  retire credits;
* the failure modes the ISSUE names: a worker whose TCP connection dies
  mid-flight triggers lease re-issue, and a coordinator *restart* on the
  same port is survived by live workers;
* :class:`~repro.campaign.DistributedBackend` with ``transport="socket"``
  end-to-end over real subprocess workers, plus the autoscaler (spawn on
  backlog, retire idle, crash-loop guard) on both transports.

The expensive acceptance run (12 real flights over TCP == serial) lives in
``benchmarks/test_distributed_backend.py``.
"""

import threading
import time

import pytest

from repro.campaign import (
    DistributedBackend,
    SocketWorkQueue,
    SocketWorkQueueClient,
    WorkQueueAuthError,
)
from repro.campaign.transport import parse_address
from repro.campaign.worker import main as worker_main, run_worker
from repro.campaign.workqueue import WorkQueue


# -- picklable worker functions (module-level so queue workers can import them) --


def _double(item):
    return item * 2


def _boom(item):
    raise RuntimeError(f"boom on {item!r}")


def _exit_hard(item):
    import os

    os._exit(3)  # worker killed mid-task: no heartbeat survives


def _sleepy(item):
    time.sleep(item)
    return item


@pytest.fixture
def queue():
    with SocketWorkQueue(run_id="rtest") as server:
        yield server


def client_for(server: SocketWorkQueue) -> SocketWorkQueueClient:
    return SocketWorkQueueClient(*server.address, timeout=5.0)


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("example.org:9000") == ("example.org", 9000)

    def test_bracketed_ipv6(self):
        assert parse_address("[::1]:9000") == ("::1", 9000)

    def test_missing_port_rejected(self):
        with pytest.raises(ValueError, match="host:port"):
            parse_address("example.org")

    def test_non_numeric_port_rejected(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_address("example.org:http")


class TestSocketWorkQueuePrimitives:
    def test_satisfies_the_workqueue_protocol(self, queue):
        assert isinstance(queue, WorkQueue)
        assert isinstance(client_for(queue), WorkQueue)

    def test_enqueue_claim_complete_roundtrip_over_tcp(self, queue):
        for index, payload in enumerate(["x", "y"]):
            queue.enqueue(index, payload)
        assert queue.pending_count() == 2

        client = client_for(queue)
        index, payload, lease = client.claim("w1")
        assert (index, payload) == (0, "x")  # lowest index first
        client.complete(index, ("ok", "done"), lease)
        assert queue.collect() == {0: ("ok", "done")}
        assert queue.collect(seen={0}) == {}
        assert queue.pending_count() == 1

    def test_claims_are_exclusive(self, queue):
        queue.enqueue(0, "only")
        assert client_for(queue).claim("w1") is not None
        assert client_for(queue).claim("w2") is None

    def test_disconnected_worker_lease_is_reissued(self, queue):
        # The mid-flight TCP disconnect: a client claims a task and then
        # vanishes (no heartbeat ever arrives — a dropped connection and a
        # dead worker are indistinguishable on purpose).  The lease expires
        # and another worker gets the task.
        queue.enqueue(0, "task")
        assert client_for(queue).claim("gone") is not None
        assert client_for(queue).claim("w2") is None  # still leased
        time.sleep(0.05)
        assert queue.reclaim_expired(lease_timeout=0.01) == [0]
        index, payload, _ = client_for(queue).claim("w2")
        assert (index, payload) == (0, "task")

    def test_heartbeat_keeps_the_lease(self, queue):
        queue.enqueue(0, "task")
        client = client_for(queue)
        _, _, lease = client.claim("w1")
        time.sleep(0.2)
        client.heartbeat(lease)
        assert queue.reclaim_expired(lease_timeout=0.15) == []

    def test_results_of_other_runs_are_ignored(self, queue):
        # A lease claimed from a previous coordinator carries the old run
        # id; a new coordinator on the same port must not collect its
        # result (the lease token is unknown there too).
        queue.enqueue(0, "old-task")
        client = client_for(queue)
        index, _, old_lease = client.claim("w1")

        with SocketWorkQueue(run_id="rnew") as successor:
            heir = client_for(successor)
            # Answering the *old* coordinator's task to the *new* one: the
            # result must be dropped, not collected as rnew's outcome.
            heir.complete(index, ("ok", "stale"), old_lease)
            assert successor.collect() == {}
            successor.enqueue(0, _double)
            fresh_index, _, fresh_lease = heir.claim("w2")
            heir.complete(fresh_index, ("ok", 10), fresh_lease)
            assert successor.collect() == {0: ("ok", 10)}

    def test_reset_purges_state(self, queue):
        queue.enqueue(0, "stale")
        queue.complete(1, ("ok", "stale-result"))
        queue.request_stop()
        queue.set_retire_credits(3)
        queue.reset()
        assert queue.pending_count() == 0
        assert queue.collect() == {}
        assert not queue.stop_requested()
        assert not queue.try_retire()

    def test_stop_travels_over_the_wire(self, queue):
        client = client_for(queue)
        assert client.stop_requested() is False
        queue.request_stop()
        assert client.stop_requested() is True

    def test_each_retire_credit_dismisses_exactly_one_worker(self, queue):
        queue.set_retire_credits(2)
        client = client_for(queue)
        assert client.try_retire() is True
        assert client.try_retire() is True
        assert client.try_retire() is False

    def test_retire_credits_are_set_not_added(self, queue):
        queue.set_retire_credits(5)
        queue.set_retire_credits(1)  # autoscaler re-derives the surplus
        client = client_for(queue)
        assert client.try_retire() is True
        assert client.try_retire() is False

    def test_unreadable_payload_is_a_poison_pill_not_a_crash(self, queue):
        # A payload whose module is not importable on the worker raises
        # from pickle.loads at claim time; the client must ship the failure
        # back and keep going, not crash-loop over it.
        with queue._lock:
            run = queue._runs[queue.run_id]
            run.pending[0] = b"cdefinitely_missing_module\nboom\n."
        assert client_for(queue).claim("w1") is None
        status, text = queue.collect()[0]
        assert status == "error"
        assert "unreadable task payload" in text

    def test_unpicklable_payload_fails_loudly_in_the_coordinator(self, queue):
        with pytest.raises(Exception):
            queue.enqueue(0, lambda x: x)  # locals never pickle

    def test_undecodable_result_requeues_the_task(self, queue):
        # A result blob the coordinator cannot decode must not take the
        # task down with it: the claim is rolled back into the pending set
        # and another worker re-flies it (releasing the lease alone would
        # strand the task — reclaim_expired only scans live claims).
        queue.enqueue(0, "task")
        client = client_for(queue)
        index, _, lease = client.claim("w1")
        assert queue.pending_count() == 0
        response = client._request({
            "op": "complete", "index": index, "run": lease.run,
            "lease": lease.token, "result": "!!!not-a-pickle!!!",
        })
        assert response is None  # server answered ok: false
        assert queue.collect() == {}
        assert queue.pending_count() == 1  # task is claimable again
        assert client.claim("w2") is not None

    def test_client_degrades_when_coordinator_is_unreachable(self):
        server = SocketWorkQueue()
        client = client_for(server)
        assert client.coordinator_age() < 1.0
        server.close()
        time.sleep(0.05)
        assert client.claim("w1") is None
        assert client.stop_requested() is False
        assert client.try_retire() is False
        assert client.coordinator_age() > 0.0


class TestSocketAuthentication:
    """Shared-secret auth on the TCP transport: unauthenticated requests
    are rejected with a *distinct* error (never the silent degrade that
    keeps a worker polling), and the token stays out of every output."""

    TOKEN = "socket-test-secret"

    @pytest.fixture
    def auth_queue(self):
        with SocketWorkQueue(run_id="rauth", auth_token=self.TOKEN) as server:
            server.enqueue(0, "guarded")
            yield server

    def test_matching_token_claims_normally(self, auth_queue):
        client = SocketWorkQueueClient(
            *auth_queue.address, timeout=5.0, auth_token=self.TOKEN
        )
        index, payload, lease = client.claim("w1")
        assert (index, payload) == (0, "guarded")
        client.complete(index, ("ok", "done"), lease)
        assert auth_queue.collect() == {0: ("ok", "done")}

    def test_missing_token_is_rejected_distinctly(self, auth_queue):
        client = SocketWorkQueueClient(*auth_queue.address, timeout=5.0)
        with pytest.raises(WorkQueueAuthError, match="none was supplied"):
            client.claim("w1")
        assert auth_queue.pending_count() == 1  # nothing was leased

    def test_wrong_token_is_rejected_distinctly(self, auth_queue):
        client = SocketWorkQueueClient(
            *auth_queue.address, timeout=5.0, auth_token="not-the-secret"
        )
        with pytest.raises(WorkQueueAuthError, match="rejected"):
            client.stop_requested()

    def test_rejection_message_never_contains_either_token(self, auth_queue):
        client = SocketWorkQueueClient(
            *auth_queue.address, timeout=5.0, auth_token="attacker-guess"
        )
        with pytest.raises(WorkQueueAuthError) as excinfo:
            client.claim("w1")
        assert self.TOKEN not in str(excinfo.value)
        assert "attacker-guess" not in str(excinfo.value)

    def test_server_without_auth_ignores_a_client_token(self, queue):
        queue.enqueue(0, "open")
        client = SocketWorkQueueClient(
            *queue.address, timeout=5.0, auth_token="superfluous"
        )
        assert client.claim("w1") is not None

    def test_worker_exits_immediately_instead_of_retry_looping(self, auth_queue):
        host, port = auth_queue.address
        start = time.monotonic()
        with pytest.raises(WorkQueueAuthError):
            run_worker(
                connect=f"{host}:{port}", worker_id="t", poll_interval=0.2,
                auth_token="wrong",
            )
        # The very first poll must raise — a retry loop would burn at
        # least one poll_interval per attempt.
        assert time.monotonic() - start < 2.0

    def test_worker_cli_exits_with_clear_message(self, auth_queue, capsys):
        host, port = auth_queue.address
        code = worker_main([
            "--connect", f"{host}:{port}", "--auth-token", "wrong",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "authentication failed" in err
        assert self.TOKEN not in err and "wrong" not in err

    def test_worker_cli_rejects_token_with_file_queue(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            worker_main([str(tmp_path), "--auth-token", "anything"])
        assert "no authentication" in capsys.readouterr().err

    def test_empty_token_rejected_on_both_sides(self):
        with pytest.raises(ValueError, match="non-empty"):
            SocketWorkQueue(auth_token="")
        with pytest.raises(ValueError, match="non-empty"):
            SocketWorkQueueClient("127.0.0.1", 1, auth_token="")

    def test_spawned_fleet_token_travels_via_env_not_argv(self, monkeypatch):
        # The coordinator hands its token to spawned workers through the
        # environment; the subprocess command line must never carry it.
        recorded: list[tuple[list[str], dict]] = []
        import subprocess

        real_popen = subprocess.Popen

        def spy(cmd, env=None, **kwargs):
            recorded.append((cmd, env or {}))
            return real_popen(cmd, env=env, **kwargs)

        monkeypatch.setattr(subprocess, "Popen", spy)
        backend = DistributedBackend(
            workers=1, transport="socket", lease_timeout=60.0,
            poll_interval=0.02, auth_token="argv-must-not-see-me",
        )
        assert list(backend.map(_double, [21])) == [42]
        assert recorded, "a worker must have been spawned"
        for cmd, env in recorded:
            assert all("argv-must-not-see-me" not in part for part in cmd)
            assert env.get("REPRO_CAMPAIGN_AUTH_TOKEN") == "argv-must-not-see-me"

    def test_token_stays_out_of_repr_logs_and_scale_events(self, caplog):
        import json as json_module
        import logging

        backend = DistributedBackend(
            workers=0, max_workers=2, transport="socket",
            lease_timeout=60.0, poll_interval=0.02,
            auth_token="log-must-not-see-me",
        )
        with caplog.at_level(logging.DEBUG):
            assert list(backend.map(_double, [1, 2])) == [2, 4]
        assert "log-must-not-see-me" not in repr(backend)
        assert "log-must-not-see-me" not in caplog.text
        assert backend.scale_events, "autoscaler must have recorded events"
        assert "log-must-not-see-me" not in json_module.dumps(
            backend.scale_events
        )


class TestRunWorkerOverTcp:
    def test_worker_drains_queue(self, queue):
        for index, item in enumerate([1, 2, 3]):
            queue.enqueue(index, (_double, item))
        host, port = queue.address
        completed = run_worker(
            connect=f"{host}:{port}", worker_id="t", poll_interval=0.01,
            max_tasks=3,
        )
        assert completed == 3
        assert queue.collect() == {0: ("ok", 2), 1: ("ok", 4), 2: ("ok", 6)}

    def test_worker_ships_exceptions_as_data(self, queue):
        queue.enqueue(0, (_boom, "it"))
        host, port = queue.address
        run_worker(connect=f"{host}:{port}", worker_id="t",
                   poll_interval=0.01, max_tasks=1)
        status, text = queue.collect()[0]
        assert status == "error"
        assert "RuntimeError" in text and "boom on 'it'" in text

    def test_idle_worker_exits_when_coordinator_is_unreachable(self):
        server = SocketWorkQueue()
        host, port = server.address
        server.close()
        completed = run_worker(
            connect=f"{host}:{port}", worker_id="t", poll_interval=0.01,
            orphan_timeout=0.05,
        )
        assert completed == 0

    def test_worker_survives_a_coordinator_restart(self):
        # The live worker keeps polling through the outage (connection
        # refused degrades to "nothing to claim") and serves the successor
        # coordinator on the same port under its new run id.
        first = SocketWorkQueue(run_id="first")
        host, port = first.address
        first.enqueue(0, (_double, 21))

        done: list[int] = []

        def worker() -> None:
            done.append(run_worker(
                connect=f"{host}:{port}", worker_id="survivor",
                poll_interval=0.01, max_tasks=2, orphan_timeout=30.0,
            ))

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        deadline = time.time() + 10.0
        while not first.collect() and time.time() < deadline:
            time.sleep(0.01)
        assert first.collect() == {0: ("ok", 42)}
        first.close()

        second = SocketWorkQueue(host, port, run_id="second")
        try:
            second.enqueue(0, (_double, 100))
            while not second.collect() and time.time() < deadline:
                time.sleep(0.01)
            assert second.collect() == {0: ("ok", 200)}
        finally:
            second.request_stop()
            thread.join(timeout=10.0)
            second.close()
        assert done == [2]

    def test_exactly_one_queue_source_required(self, tmp_path):
        with pytest.raises(ValueError, match="exactly one"):
            run_worker(tmp_path, connect="localhost:1")
        with pytest.raises(ValueError, match="exactly one"):
            run_worker()


class TestDistributedBackendSocketTransport:
    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="transport"):
            DistributedBackend(transport="carrier-pigeon")
        with pytest.raises(ValueError, match="queue_dir applies"):
            DistributedBackend(transport="socket", queue_dir=str(tmp_path))
        with pytest.raises(ValueError, match="port applies"):
            DistributedBackend(transport="file", port=9000)
        with pytest.raises(ValueError, match="fixed"):
            DistributedBackend(transport="socket", workers=0)
        with pytest.raises(ValueError, match="max_workers must be >= workers"):
            DistributedBackend(workers=4, max_workers=2)
        with pytest.raises(ValueError, match="max_workers must be at least 1"):
            DistributedBackend(max_workers=0)
        # Autoscaling is local-fleet-only: an external attachment point
        # would let foreign workers eat the retire credits.
        with pytest.raises(ValueError, match="external-fleet queue_dir"):
            DistributedBackend(max_workers=4, queue_dir=str(tmp_path))
        with pytest.raises(ValueError, match="fixed port"):
            DistributedBackend(transport="socket", max_workers=4, port=18764)
        # Legal corners: external socket fleet on a fixed port, and
        # autoscaling from zero without any attachment point.
        DistributedBackend(transport="socket", workers=0, port=18765)
        DistributedBackend(workers=0, max_workers=2)
        DistributedBackend(transport="socket", workers=0, max_workers=2)

    def test_empty_items(self):
        backend = DistributedBackend(workers=1, transport="socket")
        assert list(backend.map(_double, [])) == []

    def test_spawned_workers_complete_over_tcp(self):
        backend = DistributedBackend(
            workers=2, transport="socket", lease_timeout=60.0,
            poll_interval=0.02,
        )
        completions = []
        results = list(backend.map(
            _double, [10, 20, 30], on_complete=lambda i, r: completions.append(i)
        ))
        assert results == [20, 40, 60]
        assert sorted(completions) == [0, 1, 2]

    def test_remote_failure_raises_with_traceback(self):
        backend = DistributedBackend(workers=1, transport="socket",
                                     lease_timeout=60.0)
        with pytest.raises(RuntimeError, match="distributed worker failed"):
            list(backend.map(_boom, [1]))

    def test_all_workers_dead_fails_loudly(self):
        backend = DistributedBackend(workers=1, transport="socket",
                                     lease_timeout=60.0, poll_interval=0.05)
        with pytest.raises(RuntimeError, match="workers exited"):
            list(backend.map(_exit_hard, [1, 2]))


class TestExternalSocketFleet:
    def test_external_worker_drains_and_exits_on_stop(self):
        # The documented bring-your-own-fleet flow: workers=0 on a fixed
        # port, a worker attached by hand (here: in a thread, starting
        # *before* the server exists — early connection failures must
        # degrade, not crash).  After the campaign the coordinator lingers
        # long enough for the idle worker to observe the stop sentinel and
        # exit promptly — not via the (minutes-long) orphan timeout.
        import socket as socket_module

        with socket_module.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        backend = DistributedBackend(
            workers=0, transport="socket", port=port,
            lease_timeout=60.0, poll_interval=0.02,
        )
        done: list[int] = []
        thread = threading.Thread(
            target=lambda: done.append(run_worker(
                connect=f"127.0.0.1:{port}", worker_id="ext",
                poll_interval=0.02, orphan_timeout=60.0,
            )),
            daemon=True,
        )
        thread.start()
        assert list(backend.map(_double, [1, 2, 3])) == [2, 4, 6]
        thread.join(timeout=10.0)
        assert not thread.is_alive(), "worker must exit on the stop sentinel"
        assert done == [3]


class TestAutoscaling:
    def test_scales_up_from_zero_on_backlog(self):
        backend = DistributedBackend(
            workers=0, max_workers=2, lease_timeout=60.0, poll_interval=0.02,
        )
        assert list(backend.map(_double, [1, 2, 3])) == [2, 4, 6]
        ups = [e for e in backend.scale_events if e["event"] == "scale-up"]
        assert ups, "backlog must have triggered a scale-up"
        assert ups[0]["workers"] == 2  # ceiling respected (backlog was 3)
        assert ups[0]["backlog"] == 3
        assert set(ups[0]) == {"event", "workers", "backlog", "elapsed"}

    def test_scales_up_from_zero_over_tcp(self):
        backend = DistributedBackend(
            workers=0, max_workers=2, transport="socket",
            lease_timeout=60.0, poll_interval=0.02,
        )
        assert list(backend.map(_double, [4, 5])) == [8, 10]
        assert any(e["event"] == "scale-up" for e in backend.scale_events)

    def test_idle_workers_retire_once_backlog_drains(self):
        # Three workers spawn for four tasks; the long tail keeps exactly
        # one busy, so the surplus receives retire credits, exits, and the
        # shrink is recorded as a scale-down event.
        backend = DistributedBackend(
            workers=0, max_workers=3, transport="socket",
            lease_timeout=60.0, poll_interval=0.02,
        )
        results = list(backend.map(_sleepy, [0.0, 0.0, 0.0, 2.5]))
        assert results == [0.0, 0.0, 0.0, 2.5]
        events = [e["event"] for e in backend.scale_events]
        assert "scale-up" in events
        assert "scale-down" in events, backend.scale_events

    def test_events_reset_between_campaigns(self):
        backend = DistributedBackend(
            workers=0, max_workers=2, lease_timeout=60.0, poll_interval=0.02,
        )
        list(backend.map(_double, [1]))
        first = list(backend.scale_events)
        list(backend.map(_double, [2]))
        assert backend.scale_events, "second campaign records its own events"
        assert backend.scale_events is not first

    def test_crash_looping_fleet_is_not_respawned_forever(self):
        backend = DistributedBackend(
            workers=0, max_workers=1, lease_timeout=0.4, poll_interval=0.02,
        )
        with pytest.raises(RuntimeError, match="without progress"):
            list(backend.map(_exit_hard, [1]))

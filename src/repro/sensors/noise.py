"""Reusable noise models for the sensor suite.

Every stochastic component takes an explicit :class:`numpy.random.Generator`
so simulations are reproducible end to end (see DESIGN.md, "Determinism").
"""

from __future__ import annotations

import numpy as np

__all__ = ["GaussianNoise", "RandomWalkBias", "QuantizationNoise"]


class GaussianNoise:
    """Additive white Gaussian noise with a fixed standard deviation."""

    def __init__(self, sigma: float | np.ndarray, rng: np.random.Generator) -> None:
        self.sigma = np.asarray(sigma, dtype=float)
        self._rng = rng

    def sample(self, shape: tuple[int, ...] | None = None) -> np.ndarray | float:
        """Draw one noise sample; shape defaults to the sigma's shape."""
        if shape is None:
            if self.sigma.shape == ():
                return float(self._rng.normal(0.0, float(self.sigma)))
            shape = self.sigma.shape
        return self._rng.normal(0.0, 1.0, size=shape) * self.sigma


class RandomWalkBias:
    """Slowly drifting bias modelled as a discrete random walk.

    Used for gyroscope and accelerometer bias instability.
    """

    def __init__(
        self,
        initial: float | np.ndarray,
        walk_sigma: float | np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        self.value = np.atleast_1d(np.asarray(initial, dtype=float)).copy()
        self.walk_sigma = np.asarray(walk_sigma, dtype=float)
        self._rng = rng

    def step(self, dt: float) -> np.ndarray:
        """Advance the bias by ``dt`` seconds and return the new value."""
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        self.value = self.value + self._rng.normal(
            0.0, 1.0, size=self.value.shape
        ) * self.walk_sigma * np.sqrt(dt)
        return self.value


class QuantizationNoise:
    """Quantizes measurements to a fixed resolution (ADC / packet encoding)."""

    def __init__(self, resolution: float) -> None:
        if resolution <= 0.0:
            raise ValueError("resolution must be positive")
        self.resolution = float(resolution)

    def apply(self, value: np.ndarray | float) -> np.ndarray | float:
        """Quantize ``value`` to the configured resolution."""
        return np.round(np.asarray(value, dtype=float) / self.resolution) * self.resolution

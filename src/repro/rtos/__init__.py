"""Real-time scheduling substrate: FIFO-priority multicore scheduler."""

from .analysis import ResponseTimeResult, core_utilization, response_time_analysis
from .cpu import CpuCore
from .scheduler import MulticoreScheduler
from .task import Job, Task, TaskConfig, TaskStats

__all__ = [
    "CpuCore",
    "Job",
    "MulticoreScheduler",
    "ResponseTimeResult",
    "Task",
    "TaskConfig",
    "TaskStats",
    "core_utilization",
    "response_time_analysis",
]

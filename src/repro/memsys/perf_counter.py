"""Per-core performance counters.

MemGuard programs the hardware performance counter of each core to count
last-level-cache misses (DRAM accesses) and to raise an interrupt when the
per-period budget is exhausted.  The simulator keeps an equivalent per-core
counter that the scheduler increments as tasks execute.
"""

from __future__ import annotations

__all__ = ["PerformanceCounter", "CounterBank"]


class PerformanceCounter:
    """Counts DRAM accesses issued by one core, with an optional overflow target."""

    def __init__(self, core: int) -> None:
        self.core = int(core)
        self._total = 0
        self._since_reset = 0
        self._overflow_threshold: int | None = None
        self._overflowed = False

    @property
    def total(self) -> int:
        """Accesses counted since the counter was created."""
        return self._total

    @property
    def since_reset(self) -> int:
        """Accesses counted since the last :meth:`reset`."""
        return self._since_reset

    @property
    def overflowed(self) -> bool:
        """True once the count since reset reached the programmed threshold."""
        return self._overflowed

    def program_overflow(self, threshold: int | None) -> None:
        """Program the overflow threshold (MemGuard sets this to the budget)."""
        if threshold is not None and threshold < 0:
            raise ValueError("threshold must be non-negative")
        self._overflow_threshold = threshold
        self._overflowed = (
            threshold is not None and self._since_reset >= threshold
        )

    def add(self, accesses: int) -> bool:
        """Record ``accesses`` more accesses; returns True if overflow fired."""
        if accesses < 0:
            raise ValueError("accesses must be non-negative")
        self._total += accesses
        self._since_reset += accesses
        if (
            self._overflow_threshold is not None
            and self._since_reset >= self._overflow_threshold
        ):
            self._overflowed = True
        return self._overflowed

    def reset(self) -> None:
        """Reset the per-period count (called at each MemGuard period boundary)."""
        self._since_reset = 0
        self._overflowed = (
            self._overflow_threshold is not None and self._overflow_threshold == 0
        )


class CounterBank:
    """One performance counter per CPU core."""

    def __init__(self, num_cores: int) -> None:
        if num_cores < 1:
            raise ValueError("num_cores must be at least 1")
        self.counters = [PerformanceCounter(core) for core in range(num_cores)]

    def __getitem__(self, core: int) -> PerformanceCounter:
        return self.counters[core]

    def __len__(self) -> int:
        return len(self.counters)

    def totals(self) -> list[int]:
        """Total accesses per core."""
        return [counter.total for counter in self.counters]

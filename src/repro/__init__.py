"""ContainerDrone reproduction: container-based DoS-resilient UAV control.

This package reproduces, in simulation, the system and evaluation of
"A Container-based DoS Attack-Resilient Control Framework for Real-Time UAV
Systems" (DATE 2019).  See ``DESIGN.md`` for the system inventory and
``EXPERIMENTS.md`` for the experiment-by-experiment comparison.

Quick start::

    from repro import FlightScenario, run_scenario

    result = run_scenario(FlightScenario.figure6())
    print(result.metrics.summary())
"""

from .adaptive import BoundaryResult, BoundarySearch
from .campaign import (
    CampaignResult,
    CampaignRunner,
    ScenarioGrid,
    run_campaign,
)
from .core import (
    ContainerDroneConfig,
    ContainerDroneFramework,
    ControlSource,
    SecurityMonitor,
)
from .control import ComplexController, PositionSetpoint, SafetyController
from .dynamics import Quadrotor, QuadrotorParameters, RigidBodyState
from .sim import (
    FlightMetrics,
    FlightRecorder,
    FlightResult,
    FlightScenario,
    FlightSimulation,
    SystemSimulation,
    run_scenario,
)
from .store import CampaignStore, cache_key

__version__ = "1.1.0"

__all__ = [
    "BoundaryResult",
    "BoundarySearch",
    "CampaignResult",
    "CampaignRunner",
    "CampaignStore",
    "ComplexController",
    "ContainerDroneConfig",
    "ContainerDroneFramework",
    "ControlSource",
    "FlightMetrics",
    "FlightRecorder",
    "FlightResult",
    "FlightScenario",
    "FlightSimulation",
    "PositionSetpoint",
    "Quadrotor",
    "QuadrotorParameters",
    "RigidBodyState",
    "SafetyController",
    "ScenarioGrid",
    "SecurityMonitor",
    "SystemSimulation",
    "cache_key",
    "run_campaign",
    "run_scenario",
    "__version__",
]

"""Tests for the scenario-campaign engine (repro.campaign).

Covers grid expansion and naming, axis appliers, serial-vs-parallel result
equality, per-variant failure isolation and the aggregation/export layer.
Flights here are deliberately tiny (fractions of a second) — full-length
sweeps live in the benchmarks.
"""

import io
import json
from dataclasses import replace

import pytest

from repro.attacks import ControllerKillAttack, MemoryBandwidthAttack
from repro.campaign import (
    CampaignRunner,
    GridVariant,
    ScenarioGrid,
    register_axis,
    run_campaign,
)
from repro.sim import ControllerPlacement, FlightScenario


def tiny_scenario(**kwargs) -> FlightScenario:
    defaults = dict(name="tiny", duration=0.5, record_hz=20.0)
    defaults.update(kwargs)
    return FlightScenario(**defaults)


def _break_cpuset(scenario: FlightScenario, value) -> FlightScenario:
    """Axis applier producing variants that fail inside FlightSimulation."""
    if not value:
        return scenario
    config = scenario.config
    return scenario.with_config(
        replace(config, cpu=replace(config.cpu, cce_cores=frozenset()))
    )


class TestGridExpansion:
    def test_cartesian_count(self):
        grid = ScenarioGrid(tiny_scenario(), axes={
            "seed": [1, 2, 3],
            "duration": [0.5, 1.0],
            "monitor": [True, False],
        })
        assert len(grid) == 12
        assert len(grid.variants()) == 12

    def test_no_axes_yields_base(self):
        grid = ScenarioGrid(tiny_scenario())
        variants = grid.variants()
        assert len(grid) == len(variants) == 1
        assert variants[0].scenario.name == "tiny"
        assert variants[0].scenario.seed == tiny_scenario().seed
        assert variants[0].axes == ()

    def test_names_are_unique_and_structured(self):
        grid = ScenarioGrid(tiny_scenario(), axes={
            "seed": [1, 2],
            "memguard": [True, False],
        })
        names = [variant.name for variant in grid.variants()]
        assert len(set(names)) == 4
        assert "tiny/seed=1/memguard=on" in names
        assert "tiny/seed=2/memguard=off" in names

    def test_variant_scenario_is_named_after_variant(self):
        grid = ScenarioGrid(tiny_scenario(), axes={"seed": [5]})
        variant = grid.variants()[0]
        assert variant.scenario.name == variant.name

    def test_expansion_order_is_deterministic(self):
        axes = {"seed": [1, 2], "duration": [0.5, 1.0]}
        first = [v.name for v in ScenarioGrid(tiny_scenario(), axes=axes).variants()]
        second = [v.name for v in ScenarioGrid(tiny_scenario(), axes=axes).variants()]
        assert first == second
        # Last axis iterates fastest, like nested loops.
        assert first[0].endswith("seed=1/duration=0.5")
        assert first[1].endswith("seed=1/duration=1")

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate values"):
            ScenarioGrid(tiny_scenario(), axes={"seed": [1, 1]})

    def test_equal_values_of_mixed_types_are_duplicates(self):
        # 1 == 1.0 for dict keys, so cell aggregation would merge them into
        # one cell; the grid must reject them as duplicates up front.
        with pytest.raises(ValueError, match="duplicate values"):
            ScenarioGrid(tiny_scenario(), axes={"duration": [1, 1.0]})

    def test_close_floats_are_distinct_values(self):
        # Distinct values that %g-format identically must expand to distinct,
        # uniquely named variants, not be rejected as duplicates.
        grid = ScenarioGrid(
            tiny_scenario(), axes={"duration": [10.0000001, 10.0000002]}
        )
        variants = grid.variants()
        assert len(variants) == 2
        names = {v.name for v in variants}
        assert len(names) == 2
        assert [v.scenario.duration for v in variants] == [10.0000001, 10.0000002]

    def test_duplicate_axis_name_rejected(self):
        grid = ScenarioGrid(tiny_scenario(), axes={"seed": [1]})
        with pytest.raises(ValueError, match="duplicate axis"):
            grid.add_axis("seed", [2])

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            ScenarioGrid(tiny_scenario(), axes={"seed": []})

    def test_unknown_axis_rejected(self):
        with pytest.raises(KeyError, match="unknown axis"):
            ScenarioGrid(tiny_scenario(), axes={"warp_factor": [9]})

    def test_reserved_axis_names_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            ScenarioGrid(tiny_scenario()).add_axis(
                "crashed", [True], applier=lambda s, v: s
            )
        with pytest.raises(ValueError, match="reserved"):
            register_axis("variant", lambda s, v: s)

    def test_unhashable_axis_values_rejected_at_declaration(self):
        # Cell aggregation groups on axis values; fail at add_axis, not
        # after the whole campaign has flown.
        with pytest.raises(TypeError, match="not hashable"):
            ScenarioGrid(tiny_scenario()).add_axis(
                "wind", [[1, 0], [0, 1]], applier=lambda s, v: s
            )

    def test_base_must_be_scenario(self):
        with pytest.raises(TypeError):
            ScenarioGrid("not-a-scenario", axes={"seed": [1]})


class TestAxisAppliers:
    def test_seed_axis(self):
        variants = ScenarioGrid(tiny_scenario(), axes={"seed": [7, 8]}).variants()
        assert [v.scenario.seed for v in variants] == [7, 8]

    def test_integer_axes_reject_non_integral_values(self):
        # int() truncation would merge "distinct" values (seeds 1 and 1.9
        # both flying as seed 1), silently double-counting a replicate.
        with pytest.raises(ValueError, match="not integral"):
            ScenarioGrid(tiny_scenario(), axes={"seed": [1, 1.9]}).variants()
        with pytest.raises(ValueError, match="not integral"):
            ScenarioGrid(
                tiny_scenario(), axes={"memguard_budget": [1500.2]}
            ).variants()
        # Integral floats and numpy ints are fine.
        variants = ScenarioGrid(tiny_scenario(), axes={"seed": [2.0]}).variants()
        assert variants[0].scenario.seed == 2

    def test_memguard_budget_axis(self):
        variants = ScenarioGrid(
            tiny_scenario(), axes={"memguard_budget": [1111, 2222]}
        ).variants()
        budgets = [
            v.scenario.config.memory.cce_budget_accesses_per_period for v in variants
        ]
        assert budgets == [1111, 2222]

    def test_attack_start_axis_moves_all_attacks(self):
        base = tiny_scenario(attacks=(
            MemoryBandwidthAttack(start_time=5.0),
            ControllerKillAttack(start_time=9.0),
        ))
        variant = ScenarioGrid(base, axes={"attack_start": [0.25]}).variants()[0]
        assert all(a.start_time == 0.25 for a in variant.scenario.attacks)

    def test_attack_start_requires_attacks(self):
        grid = ScenarioGrid(tiny_scenario(), axes={"attack_start": [1.0]})
        with pytest.raises(ValueError, match="requires a base scenario with attacks"):
            grid.variants()

    def test_controller_placement_axis(self):
        variants = ScenarioGrid(
            tiny_scenario(),
            axes={"controller_placement": [
                ControllerPlacement.CONTAINER, ControllerPlacement.HOST,
            ]},
        ).variants()
        assert [v.scenario.controller_placement for v in variants] == [
            "container", "host",
        ]

    def test_protection_toggle_axes(self):
        variants = ScenarioGrid(
            tiny_scenario(), axes={"memguard": [True, False], "monitor": [False]}
        ).variants()
        assert variants[0].scenario.config.memory.enabled is True
        assert variants[1].scenario.config.memory.enabled is False
        assert all(not v.scenario.config.monitor.enabled for v in variants)

    def test_custom_applier_per_grid(self):
        grid = ScenarioGrid(tiny_scenario()).add_axis(
            "fence", [2.0, 4.0],
            applier=lambda s, v: replace(s, geofence_radius=v),
        )
        assert [v.scenario.geofence_radius for v in grid.variants()] == [2.0, 4.0]

    def test_registered_custom_axis(self, monkeypatch):
        from repro.campaign import grid as grid_module

        # Register on a copy so the process-wide registry stays pristine.
        monkeypatch.setattr(
            grid_module, "_AXIS_APPLIERS", dict(grid_module._AXIS_APPLIERS)
        )
        register_axis("tight_fence", lambda s, v: replace(s, geofence_radius=float(v)))
        variant = ScenarioGrid(tiny_scenario(), axes={"tight_fence": [3.0]}).variants()[0]
        assert variant.scenario.geofence_radius == 3.0

    def test_register_axis_rejects_existing_names(self):
        # Shadowing a built-in (or re-registering) would silently change the
        # semantics of every later campaign in the process.
        with pytest.raises(ValueError, match="already registered"):
            register_axis("seed", lambda s, v: s)

    def test_applier_must_return_scenario(self):
        grid = ScenarioGrid(tiny_scenario()).add_axis(
            "bad", [1], applier=lambda s, v: None
        )
        with pytest.raises(TypeError, match="expected FlightScenario"):
            grid.variants()


class TestCampaignRunner:
    def test_serial_and_parallel_summaries_identical(self):
        grid = ScenarioGrid(tiny_scenario(), axes={"seed": [1, 2], "monitor": [True, False]})
        serial = CampaignRunner(mode="serial").run(grid)
        parallel = CampaignRunner(mode="parallel", max_workers=2).run(grid)
        assert len(serial) == len(parallel) == 4
        assert serial.summaries() == parallel.summaries()
        assert [o.name for o in serial] == [v.name for v in grid.variants()]

    def test_failure_isolation(self):
        grid = ScenarioGrid(tiny_scenario(), axes={"seed": [1, 2]}).add_axis(
            "broken", [False, True], applier=_break_cpuset
        )
        result = CampaignRunner(mode="serial").run(grid)
        assert len(result) == 4
        failures = result.failures()
        assert len(failures) == 2
        assert all("cpuset must allow at least one core" in f.error for f in failures)
        assert all(f.summary is None for f in failures)
        # The healthy variants still completed normally.
        assert len(result.successes()) == 2
        assert all(o.summary is not None for o in result.successes())

    def test_failure_isolation_in_parallel(self):
        grid = ScenarioGrid(tiny_scenario(), axes={"seed": [1]}).add_axis(
            "broken", [True, False], applier=_break_cpuset
        )
        result = CampaignRunner(mode="parallel", max_workers=2).run(grid)
        assert len(result.failures()) == 1
        assert len(result.successes()) == 1

    def test_accepts_plain_scenarios(self):
        result = run_campaign(
            [tiny_scenario(name="a"), tiny_scenario(name="b", seed=3)],
            mode="serial",
        )
        assert [o.name for o in result] == ["a", "b"]
        assert result["b"].seed == 3

    def test_duplicate_scenario_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate variant name"):
            run_campaign([tiny_scenario(), tiny_scenario()], mode="serial")

    def test_handbuilt_variant_with_reserved_axis_rejected(self):
        variant = GridVariant(
            name="v", axes=(("crashed", "x"),), scenario=tiny_scenario()
        )
        with pytest.raises(ValueError, match="reserved axis name"):
            run_campaign([variant], mode="serial")

    def test_handbuilt_variant_with_mismatched_seed_axis_rejected(self):
        variant = GridVariant(
            name="v", axes=(("seed", 5),), scenario=tiny_scenario(seed=1)
        )
        with pytest.raises(ValueError, match="declares seed axis value"):
            run_campaign([variant], mode="serial")

    def test_handbuilt_variant_with_unhashable_axis_rejected(self):
        variant = GridVariant(
            name="v", axes=(("wind", [1, 0]),), scenario=tiny_scenario()
        )
        with pytest.raises(TypeError, match="not hashable"):
            run_campaign([variant], mode="serial")

    def test_numpy_axis_values_export_to_json(self):
        import numpy as np

        grid = ScenarioGrid(
            tiny_scenario(), axes={"memguard_budget": np.arange(1000, 3000, 1000)}
        )
        result = CampaignRunner(mode="serial").run(grid)
        data = json.loads(result.to_json())
        assert [row["memguard_budget"] for row in data["rows"]] == [1000, 2000]

    def test_single_worker_pool_degrades_to_serial(self):
        # A one-worker pool is pure overhead; the runner must not use it.
        runner = CampaignRunner(mode="parallel", max_workers=1)
        grid = ScenarioGrid(tiny_scenario(), axes={"seed": [1, 2]})
        assert not runner._use_parallel(grid.variants())
        result = runner.run(grid)
        assert len(result.successes()) == 2

    def test_all_failed_campaign_has_no_crash_rate(self):
        grid = ScenarioGrid(tiny_scenario(), axes={"seed": [1, 2]}).add_axis(
            "broken", [True], applier=_break_cpuset
        )
        result = CampaignRunner(mode="serial").run(grid)
        assert len(result.failures()) == 2
        # No completed flight -> no crash rate, not a misleading 0%.
        assert result.crash_rate() is None
        assert result.to_dict()["crash_rate"] is None
        assert "crash rate n/a" in result.to_text()
        # Same rationale per cell: an all-failed cell has no rates.
        cell = result.cells()[0]
        assert cell.failures == cell.runs == 2
        assert cell.crash_rate is None
        assert cell.recovery_rate is None

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            CampaignRunner(mode="threads")

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            CampaignRunner(max_workers=0)


class TestCampaignResult:
    @pytest.fixture(scope="class")
    def campaign(self):
        grid = ScenarioGrid(tiny_scenario(), axes={
            "monitor": [True, False],
            "seed": [1, 2],
        })
        return CampaignRunner(mode="serial").run(grid)

    def test_cells_group_out_seeds(self, campaign):
        cells = campaign.cells()
        assert len(cells) == 2
        assert all(cell.runs == 2 for cell in cells)
        assert [dict(cell.axes)["monitor"] for cell in cells] == [True, False]

    def test_cell_statistics_populated(self, campaign):
        cell = campaign.cells()[0]
        assert cell.failures == 0
        assert 0.0 <= cell.crash_rate <= 1.0
        assert cell.mean_max_deviation is not None
        assert cell.worst_max_deviation >= cell.mean_max_deviation

    def test_crash_rate_of_stable_hover_is_zero(self, campaign):
        assert campaign.crash_rate() == 0.0

    def test_lookup_by_name(self, campaign):
        outcome = campaign["tiny/monitor=on/seed=2"]
        assert outcome.seed == 2
        with pytest.raises(KeyError):
            campaign["nonexistent"]

    def test_csv_export(self, campaign):
        buffer = io.StringIO()
        assert campaign.to_csv(buffer) == 4
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 5
        assert lines[0].startswith("variant,monitor,seed,error,crashed")

    def test_json_export(self, campaign, tmp_path):
        path = tmp_path / "campaign.json"
        text = campaign.to_json(path)
        data = json.loads(text)
        assert data["variants"] == 4
        assert data["failures"] == 0
        assert len(data["rows"]) == 4
        assert len(data["cells"]) == 2
        assert json.loads(path.read_text()) == data

    def test_markdown_and_text_tables(self, campaign):
        markdown = campaign.to_markdown()
        assert markdown.count("|") > 10
        assert "monitor=True" in markdown
        text = campaign.to_text()
        assert "Campaign summary" in text

    def test_rows_have_uniform_keys(self, campaign):
        from repro.analysis import campaign_to_rows

        rows = campaign_to_rows(campaign)
        assert len({tuple(row.keys()) for row in rows}) == 1

    def test_summaries_have_no_wall_times(self, campaign):
        assert all("wall_time" not in row for row in campaign.summaries())
        assert all(outcome.wall_time > 0.0 for outcome in campaign)


class TestExecutorBackends:
    def test_explicit_backend_is_used(self):
        from repro.campaign import SerialBackend

        flown = []

        class CountingBackend(SerialBackend):
            def map(self, fn, items):
                for item in items:
                    flown.append(item.name)
                    yield fn(item)

        result = CampaignRunner(backend=CountingBackend()).run(
            ScenarioGrid(tiny_scenario(), axes={"seed": [1, 2]})
        )
        assert len(result.successes()) == 2
        assert len(flown) == 2

    def test_backend_failure_records_fallback_reason(self):
        from repro.campaign import SerialBackend

        class FlakyBackend(SerialBackend):
            """Produces one outcome, then dies like a broken pool."""

            def map(self, fn, items):
                yield fn(items[0])
                raise OSError("fork exhausted")

        grid = ScenarioGrid(tiny_scenario(), axes={"seed": [1, 2, 3]})
        with pytest.warns(RuntimeWarning, match="finishing the remaining"):
            result = CampaignRunner(backend=FlakyBackend()).run(grid)
        # The campaign still completed, and the degradation is recorded
        # instead of silently swallowed.
        assert len(result.successes()) == 3
        assert result.fallback_reason == "OSError('fork exhausted')"
        assert result.to_dict()["executor_fallback"] == "OSError('fork exhausted')"
        assert "executor fell back to serial" in result.to_text()

    def test_no_fallback_reports_none(self):
        result = CampaignRunner(mode="serial").run(
            ScenarioGrid(tiny_scenario(), axes={"seed": [1]})
        )
        assert result.fallback_reason is None
        assert result.to_dict()["executor_fallback"] is None
        assert "fell back" not in result.to_text()

    def test_distributed_backend_matches_serial(self):
        # The file-queue backend flies real (tiny) flights in spawned worker
        # processes; execution substrate must not leak into the results.
        from repro.campaign import DistributedBackend

        grid = ScenarioGrid(tiny_scenario(), axes={"seed": [1, 2]})
        serial = CampaignRunner(mode="serial").run(grid)
        distributed = CampaignRunner(
            backend=DistributedBackend(workers=2, lease_timeout=120.0)
        ).run(grid)
        assert distributed.fallback_reason is None
        assert distributed.summaries() == serial.summaries()

    def test_get_backend_registry(self):
        from repro.campaign import (
            ProcessPoolBackend,
            SerialBackend,
            get_backend,
        )

        assert isinstance(get_backend("serial"), SerialBackend)
        pool = get_backend("process-pool", max_workers=2)
        assert isinstance(pool, ProcessPoolBackend)
        assert pool.max_workers == 2
        with pytest.raises(KeyError, match="unknown executor backend"):
            get_backend("quantum")


class TestGridVariant:
    def test_axis_dict(self):
        variant = GridVariant(
            name="v", axes=(("seed", 1), ("monitor", True)), scenario=tiny_scenario()
        )
        assert variant.axis_dict() == {"seed": 1, "monitor": True}

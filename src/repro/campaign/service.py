"""Persistent multi-tenant campaign service: ``python -m repro.campaign.service``.

Every earlier execution substrate dies with its campaign: the distributed
coordinator (:class:`~repro.campaign.backends.DistributedBackend`) starts a
queue server, runs one campaign, and tears everything down.  This module
promotes that coordinator to a **long-lived daemon**: one
:class:`~repro.campaign.transport_http.HttpWorkQueue` (in ``service`` mode)
hosts a registry of concurrent *runs* over the run-id-namespaced queue
state, one attached worker fleet serves whichever runs have pending tasks,
and "users" are HTTP clients that *submit* work instead of owning
coordinator processes::

    POST   <base>/runs              submit a run -> {"ok": true, "run": id}
    GET    <base>/runs              registry listing
    GET    <base>/runs/<id>/status  one run's lifecycle + queue state
    GET    <base>/runs/<id>/results one run's results
    DELETE <base>/runs/<id>         cancel the run, drop its queue state
    POST   <base>/rotate-token      install a new auth secret (old one kept)

Two kinds of run share the registry:

* **Spec runs** — ``POST /runs`` with ``{"spec": {...}}``, a JSON campaign
  spec in the exact dialect of the spec *files* (:mod:`repro.campaign.spec`).
  The daemon builds the grid/search and a
  :class:`~repro.campaign.runner.CampaignRunner` whose backend enqueues
  every variant into the shared queue under the run's id; results are the
  campaign's JSON report.  The daemon's own store (``--store``) caches
  cells across tenants — two users submitting the same grid share flights.
* **Task runs** — ``POST /runs`` with ``{"tasks": [<b64 pickle>, ...]}``,
  raw ``(fn, item)`` task payloads.  This is the wire form of
  :class:`~repro.campaign.backends.ServiceBackend` (``--backend service
  --connect-http URL``): a *client-side* :class:`CampaignRunner` keeps its
  own store/policy and only rents the daemon's fleet for execution.

Lifecycle separation is the point of the refactor underneath
(:class:`~repro.campaign.transport.NetworkWorkQueue`): cancelling or
draining one run never raises the transport stop sentinel, so the fleet
keeps serving sibling runs; only daemon shutdown stops workers.

The trust model is the work queue's: task payloads and results are pickled,
so expose the port only to clients you would also hand a pickle file to,
and prefer ``$REPRO_CAMPAIGN_AUTH_TOKEN`` (plus
``$REPRO_CAMPAIGN_AUTH_TOKEN_PREVIOUS`` during rotation) over ``--auth-token``.
"""

from __future__ import annotations

import argparse
import json
import logging
import signal
import sys
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

from ..obs import EventLog, configure_json_logging, emit, set_event_log
from .transport_http import HttpWorkQueue
from .workqueue import resolve_auth_tokens, validate_run_id

logger = logging.getLogger(__name__)

__all__ = ["CampaignService", "RunCancelled", "main"]


class RunCancelled(BaseException):
    """A hosted run was cancelled while executing.

    Deliberately **not** an :class:`Exception`: the campaign runner treats
    any ``Exception`` out of a backend as a backend failure and finishes
    the campaign *serially in-process* — which, inside the daemon, would
    fly a cancelled tenant's whole grid on the daemon thread.  Cancellation
    must unwind, not fall back.
    """


class _HostedRun:
    """Registry record of one submitted run (spec- or task-kind)."""

    __slots__ = (
        "run_id", "kind", "label", "state", "submitted", "finished",
        "total", "error", "result_json", "thread",
    )

    def __init__(self, run_id: str, kind: str, label: str, total: int) -> None:
        self.run_id = run_id
        self.kind = kind
        self.label = label
        self.state = "running"
        self.submitted = time.time()
        self.finished: float | None = None
        self.total = total
        self.error: str | None = None
        self.result_json: dict[str, Any] | None = None
        self.thread: threading.Thread | None = None

    def describe(self) -> dict[str, Any]:
        entry = {
            "run": self.run_id,
            "kind": self.kind,
            "label": self.label,
            "state": self.state,
            "total": self.total,
            "submitted_s_ago": round(max(0.0, time.time() - self.submitted), 3),
        }
        if self.error is not None:
            entry["error"] = self.error
        return entry


class _HostedQueueBackend:
    """Executor backend of a daemon-hosted spec run.

    Looks like :class:`~repro.campaign.backends.DistributedBackend` to the
    runner, but owns nothing: tasks go into the *shared* service queue under
    this run's id, the attached fleet (shared with every other run) executes
    them, and the drain loop only watches this run's results.  Cancellation
    (``DELETE /runs/<id>``) raises :class:`RunCancelled` out of ``map`` so
    the runner unwinds instead of falling back to serial.
    """

    name = "service-hosted"

    def __init__(
        self, queue: HttpWorkQueue, run_id: str, poll_interval: float
    ) -> None:
        self._queue = queue
        self._run_id = run_id
        self._poll_interval = poll_interval

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        on_complete: Callable[[int, Any], None] | None = None,
    ) -> Iterator[Any]:
        items = list(items)
        if not items:
            return
        for index, item in enumerate(items):
            self._queue.enqueue_in(self._run_id, index, (fn, item))
        seen: set[int] = set()
        ready: dict[int, Any] = {}
        next_index = 0
        while next_index < len(items):
            if self._queue.run_cancelled(self._run_id):
                raise RunCancelled(self._run_id)
            fresh = self._queue.collect_run(self._run_id, seen)
            for index in sorted(fresh):
                status, value = fresh[index]
                seen.add(index)
                if status != "ok":
                    raise RuntimeError(
                        f"worker failed on item {index}:\n{value}"
                    )
                ready[index] = value
                if on_complete is not None:
                    on_complete(index, value)
            while next_index in ready:
                yield ready.pop(next_index)
                next_index += 1
            if next_index >= len(items):
                return
            time.sleep(self._poll_interval)


class CampaignService:
    """The daemon: one shared queue server, a run registry, a worker fleet.

    Constructing the service binds and starts the HTTP server (``port=0``
    picks an ephemeral port, published via :attr:`url`), spawns ``workers``
    local worker processes attached over HTTP, and starts the housekeeping
    thread (lease reclaim + task-run completion).  Use as a context manager
    or call :meth:`close`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        store_dir: str | Path | None = None,
        auth_tokens: Sequence[str] | None = None,
        lease_timeout: float = 30.0,
        poll_interval: float = 0.05,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if lease_timeout <= 0 or poll_interval <= 0:
            raise ValueError("lease_timeout and poll_interval must be positive")
        self.lease_timeout = lease_timeout
        self.poll_interval = poll_interval
        self.queue = HttpWorkQueue(
            host, port, auth_token=auth_tokens, mode="service"
        )
        self._store = None
        if store_dir is not None:
            from ..store import CampaignStore

            self._store = CampaignStore(Path(store_dir))
        self._lock = threading.Lock()
        self._runs: dict[str, _HostedRun] = {}
        self._closing = threading.Event()
        # Route /runs requests on the queue's HTTP server to this service.
        self.queue._server.service = self
        self._processes = [self._spawn_worker() for _ in range(workers)]
        self._housekeeper = threading.Thread(
            target=self._housekeeping, name="service-housekeeping", daemon=True
        )
        self._housekeeper.start()

    # -- lifecycle ---------------------------------------------------------------

    @property
    def url(self) -> str:
        return self.queue.url

    @property
    def address(self) -> tuple[str, int]:
        return self.queue.address

    def close(self) -> None:
        """Shut the daemon down: raise the transport stop sentinel (the one
        event that sends the fleet home), reap workers, stop serving."""
        self._closing.set()
        self.queue.request_stop()
        self._reap()
        self._housekeeper.join(timeout=5.0)
        self.queue.close()

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def serve_forever(self) -> None:
        """Block until :meth:`close` is called (signal handlers call it)."""
        while not self._closing.wait(0.5):
            pass

    # -- service API (called from HTTP handler threads) --------------------------

    def submit(self, request: Mapping[str, Any]) -> tuple[int, dict[str, Any]]:
        """``POST /runs``: start a spec run or a task run."""
        spec = request.get("spec")
        tasks = request.get("tasks")
        if (spec is None) == (tasks is None):
            return 400, {
                "ok": False,
                "error": "submit exactly one of 'spec' (JSON campaign spec) "
                         "or 'tasks' (base64-pickled task payloads)",
            }
        run_id = request.get("run")
        if run_id is None:
            run_id = f"svc{uuid.uuid4().hex[:12]}"
        try:
            validate_run_id(str(run_id))
        except ValueError as exc:
            return 400, {"ok": False, "error": str(exc)}
        label = str(request.get("label") or "")
        if spec is not None:
            return self._submit_spec(str(run_id), spec, label)
        return self._submit_tasks(str(run_id), tasks, label)

    def list_runs(self) -> tuple[int, dict[str, Any]]:
        """``GET /runs``: the registry, newest submission last."""
        with self._lock:
            records = sorted(
                self._runs.values(), key=lambda record: record.submitted
            )
            entries = [record.describe() for record in records]
        return 200, {"ok": True, "mode": "service", "runs": entries}

    def run_status(self, run_id: str) -> tuple[int, dict[str, Any]]:
        """``GET /runs/<id>/status``: lifecycle plus live queue state."""
        with self._lock:
            record = self._runs.get(run_id)
            if record is None:
                return 404, {"ok": False, "error": f"unknown run {run_id!r}"}
            entry = record.describe()
        queue_state = self.queue.status()["runs"].get(run_id)
        if queue_state is not None:
            entry["queue"] = queue_state
        return 200, {"ok": True, **entry}

    def run_results(self, run_id: str) -> tuple[int, dict[str, Any]]:
        """``GET /runs/<id>/results``.

        Task runs answer with the raw base64-pickled result blobs keyed by
        task index (the submitting client decodes them — same trust model
        as the queue itself).  Spec runs answer with the campaign's JSON
        report once the run is done.
        """
        with self._lock:
            record = self._runs.get(run_id)
            if record is None:
                return 404, {"ok": False, "error": f"unknown run {run_id!r}"}
            state = record.state
            entry: dict[str, Any] = {
                "ok": True, "run": run_id, "kind": record.kind,
                "state": state, "total": record.total,
            }
            if record.error is not None:
                entry["error"] = record.error
            result_json = record.result_json
        if record.kind == "tasks":
            from .transport import _encode

            results = self.queue.collect_run(run_id)
            entry["done"] = len(results)
            entry["results"] = {
                str(index): _encode(value) for index, value in results.items()
            }
            if state == "running" and len(results) >= record.total:
                # Task runs have no driving thread; finalize on observation
                # (the housekeeper does the same for unwatched runs).
                entry["state"] = self._finish_task_run(record)
        else:
            entry["result"] = result_json
        return 200, entry

    def cancel(self, run_id: str) -> tuple[int, dict[str, Any]]:
        """``DELETE /runs/<id>``: cancel if running, drop queue state.

        The registry record stays (state ``cancelled``/its final state) so
        late status queries explain what happened instead of 404ing.
        """
        with self._lock:
            record = self._runs.get(run_id)
            if record is None:
                return 404, {"ok": False, "error": f"unknown run {run_id!r}"}
            was_running = record.state == "running"
            if was_running:
                record.state = "cancelled"
                record.finished = time.time()
        self.queue.cancel_run(run_id)
        emit("run-cancel", "campaign.service", run=run_id)
        return 200, {"ok": True, "run": run_id, "cancelled": was_running}

    def rotate_token(
        self, request: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        """``POST /rotate-token``: install a new primary auth secret.

        Requires auth to be enabled (the request itself must carry a
        currently-valid token; the transport checked that before routing
        here).  The previous primary stays accepted so the attached fleet
        keeps serving while workers re-configure.
        """
        new_token = request.get("new_token")
        if not isinstance(new_token, str) or not new_token:
            return 400, {"ok": False,
                         "error": "rotate-token needs a non-empty 'new_token'"}
        try:
            self.queue.rotate_auth_token(
                new_token, keep_previous=int(request.get("keep_previous", 1))
            )
        except ValueError as exc:
            return 400, {"ok": False, "error": str(exc)}
        emit("token-rotate", "campaign.service")
        return 200, {"ok": True}

    # -- internal ----------------------------------------------------------------

    def _submit_tasks(
        self, run_id: str, tasks: Any, label: str
    ) -> tuple[int, dict[str, Any]]:
        from .transport import _decode

        if not isinstance(tasks, list) or not tasks:
            return 400, {"ok": False,
                         "error": "'tasks' must be a non-empty list"}
        try:
            payloads = [_decode(blob) for blob in tasks]
        except Exception as exc:
            return 400, {"ok": False,
                         "error": f"undecodable task payload: {exc!r}"}
        record = _HostedRun(run_id, "tasks", label, len(payloads))
        try:
            with self._lock:
                if run_id in self._runs:
                    return 409, {"ok": False,
                                 "error": f"run {run_id!r} already exists"}
                self.queue.add_run(run_id)
                self._runs[run_id] = record
        except ValueError as exc:
            return 409, {"ok": False, "error": str(exc)}
        for index, payload in enumerate(payloads):
            self.queue.enqueue_in(run_id, index, payload)
        emit("run-submit", "campaign.service",
             run=run_id, kind="tasks", total=len(payloads))
        logger.info("run %s submitted: %d task(s)", run_id, len(payloads))
        return 200, {"ok": True, "run": run_id, "total": len(payloads)}

    def _submit_spec(
        self, run_id: str, spec: Any, label: str
    ) -> tuple[int, dict[str, Any]]:
        from .runner import CampaignRunner
        from .spec import build_grid, build_search

        if not isinstance(spec, Mapping):
            return 400, {"ok": False, "error": "'spec' must be a JSON object"}
        if ("axes" in spec) == ("adaptive" in spec):
            return 400, {
                "ok": False,
                "error": "spec must contain exactly one of 'axes' (grid "
                         "sweep) or 'adaptive' (boundary search)",
            }
        section = dict(spec.get("runner") or {})
        try:
            work = build_search(spec) if "adaptive" in spec else build_grid(spec)
            total = len(work) if "axes" in spec else 0
        except (ValueError, KeyError, TypeError) as exc:
            return 400, {"ok": False, "error": str(exc)}
        # The daemon's fleet is the execution substrate for hosted runs:
        # the spec's backend/mode/max_workers describe a substrate the
        # submitting client does not own here, so they are ignored.  Store
        # policy is the daemon's too (shared cells across tenants).
        runner = CampaignRunner(
            backend=_HostedQueueBackend(self.queue, run_id, self.poll_interval),
            store=self._store,
            record_arrays=bool(section.get("record_arrays"))
            and self._store is not None,
            telemetry=bool(section.get("telemetry", True)),
        )
        record = _HostedRun(run_id, "spec", label, total)
        try:
            with self._lock:
                if run_id in self._runs:
                    return 409, {"ok": False,
                                 "error": f"run {run_id!r} already exists"}
                self.queue.add_run(run_id)
                self._runs[run_id] = record
        except ValueError as exc:
            return 409, {"ok": False, "error": str(exc)}
        record.thread = threading.Thread(
            target=self._run_spec,
            args=(record, runner, work, "adaptive" in spec),
            name=f"service-run-{run_id}",
            daemon=True,
        )
        record.thread.start()
        emit("run-submit", "campaign.service",
             run=run_id, kind="spec", total=total)
        logger.info("run %s submitted: spec campaign (%d variant(s))",
                    run_id, total)
        return 200, {"ok": True, "run": run_id, "total": total}

    def _run_spec(
        self, record: _HostedRun, runner: Any, work: Any, adaptive: bool
    ) -> None:
        try:
            if adaptive:
                result = work.run(runner)
            else:
                result = runner.run(work)
            payload = json.loads(result.to_json())
        except RunCancelled:
            with self._lock:
                record.state = "cancelled"
                record.finished = time.time()
            return
        except Exception as exc:
            with self._lock:
                record.state = "failed"
                record.error = repr(exc)
                record.finished = time.time()
            logger.warning("run %s failed: %r", record.run_id, exc)
            return
        with self._lock:
            # A cancel that raced the final variants wins: the tenant asked
            # for the run to end, so it ends as cancelled.
            if record.state == "running":
                record.state = "done"
                record.result_json = payload
                record.finished = time.time()
        emit("run-done", "campaign.service", run=record.run_id)
        logger.info("run %s done", record.run_id)

    def _spawn_worker(self) -> Any:
        # The daemon's fleet attaches over its own HTTP endpoint — the same
        # path an external fleet uses, so local and remote workers are
        # indistinguishable to the queue.  spawn_worker handles PYTHONPATH
        # and passes the token via the environment (never argv).
        from .backends import spawn_worker

        token = self.queue._auth_tokens[0] if self.queue._auth_tokens else None
        return spawn_worker(
            ["--connect-http", self.queue.url],
            transport="http",
            auth_token=token,
            lease_timeout=self.lease_timeout,
            poll_interval=self.poll_interval,
        )

    def _reap(self) -> None:
        import subprocess

        deadline = time.time() + max(2.0, 8 * self.poll_interval)
        for proc in self._processes:
            try:
                proc.wait(timeout=max(0.0, deadline - time.time()))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()

    def _housekeeping(self) -> None:
        period = self.lease_timeout / 4.0
        while not self._closing.wait(min(period, 1.0)):
            self.queue.reclaim_expired(self.lease_timeout)
            # Task runs have no driving thread; completion is observed here
            # (and on demand in run_results — this just keeps GET /runs
            # honest without a results poll).
            with self._lock:
                records = [
                    record for record in self._runs.values()
                    if record.kind == "tasks" and record.state == "running"
                ]
            for record in records:
                if len(self.queue.collect_run(record.run_id)) >= record.total:
                    self._finish_task_run(record)

    def _finish_task_run(self, record: _HostedRun) -> str:
        """Mark a fully-collected task run done; returns the final state."""
        with self._lock:
            if record.state == "running":
                record.state = "done"
                record.finished = time.time()
                emit("run-done", "campaign.service", run=record.run_id)
            return record.state


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign.service",
        description="Run the persistent multi-tenant campaign service: an "
        "HTTP coordinator daemon hosting many concurrent runs, served by "
        "one attached worker fleet.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8765,
                        help="bind port (default: 8765; 0 picks one)")
    parser.add_argument("--workers", type=int, default=2,
                        help="local worker processes to spawn (default: 2; "
                        "0 = bring your own fleet via the worker CLI)")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="result-store directory shared by hosted spec "
                        "runs (cells cached across tenants)")
    parser.add_argument("--auth-token", default=None, metavar="TOKEN",
                        help="shared-secret token clients and workers must "
                        "present (default: $REPRO_CAMPAIGN_AUTH_TOKEN; "
                        "prefer the environment — argv is visible in "
                        "process listings)")
    parser.add_argument("--previous-auth-token", default=None, metavar="TOKEN",
                        help="additionally accepted old token(s), comma-"
                        "separated, for rotation without fleet restart "
                        "(default: $REPRO_CAMPAIGN_AUTH_TOKEN_PREVIOUS)")
    parser.add_argument("--lease-timeout", type=float, default=30.0,
                        help="seconds without a heartbeat before a claimed "
                        "task is re-issued (default: 30)")
    parser.add_argument("--poll", type=float, default=0.05,
                        dest="poll_interval",
                        help="hosted-run result polling interval [s] "
                        "(default: 0.05)")
    parser.add_argument("--metrics-jsonl", metavar="PATH", default=None,
                        help="append structured JSONL event records (run "
                        "submissions/completions, worker spawns) to PATH")
    parser.add_argument("--log-json", action="store_true",
                        help="emit log records as JSON lines on stderr")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    logging.basicConfig(level=logging.INFO, format="%(message)s")
    if args.log_json:
        configure_json_logging()
    event_log = None
    if args.metrics_jsonl is not None:
        event_log = EventLog(args.metrics_jsonl, run_id="service")
        set_event_log(event_log)
    try:
        tokens = resolve_auth_tokens(args.auth_token, args.previous_auth_token)
    except ValueError as exc:
        print(f"service: {exc}", file=sys.stderr)
        return 2
    try:
        service = CampaignService(
            host=args.host,
            port=args.port,
            workers=args.workers,
            store_dir=args.store,
            auth_tokens=tokens,
            lease_timeout=args.lease_timeout,
            poll_interval=args.poll_interval,
        )
    except (OSError, ValueError) as exc:
        print(f"service: {exc}", file=sys.stderr)
        return 2
    host, port = service.address
    print(f"campaign service listening on http://{host}:{port} "
          f"(auth {'on' if tokens else 'off'}, "
          f"{len(service._processes)} local worker(s))", flush=True)
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: service._closing.set())
    try:
        service.serve_forever()
    finally:
        service.close()
        if event_log is not None:
            set_event_log(None)
            event_log.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Control allocation: collective thrust + body torques to motor commands.

This is the inverse of the physical mixer in :mod:`repro.dynamics.mixer` for
the PX4 quad-X geometry, followed by normalisation and saturation handling
(desaturation prioritises roll/pitch authority over yaw, as PX4 does).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ControlAllocation", "QuadXAllocator"]


@dataclass(frozen=True)
class ControlAllocation:
    """Normalised control demands handed to the allocator.

    ``thrust`` is the collective command in [0, 1]; ``roll``/``pitch``/``yaw``
    are normalised torque demands in [-1, 1].
    """

    thrust: float
    roll: float
    pitch: float
    yaw: float


class QuadXAllocator:
    """Maps normalised thrust/torque demands onto four motors (quad-X)."""

    #: Per-motor contribution signs for (roll, pitch, yaw) in PX4 quad-X order:
    #: motor 0 front-right CCW, 1 rear-left CCW, 2 front-left CW, 3 rear-right CW.
    _MIX = np.array(
        [
            # roll, pitch, yaw
            [-1.0, 1.0, 1.0],   # front-right, CCW
            [1.0, -1.0, 1.0],   # rear-left, CCW
            [1.0, 1.0, -1.0],   # front-left, CW
            [-1.0, -1.0, -1.0],  # rear-right, CW
        ]
    )

    def __init__(self, roll_scale: float = 1.0, pitch_scale: float = 1.0, yaw_scale: float = 1.0) -> None:
        self.scales = np.array([roll_scale, pitch_scale, yaw_scale])

    def allocate(self, allocation: ControlAllocation) -> np.ndarray:
        """Return four normalised motor commands in [0, 1]."""
        demands = np.array([allocation.roll, allocation.pitch, allocation.yaw]) * self.scales
        motors = allocation.thrust + self._MIX @ demands

        # Desaturation: if commands exceed [0, 1], first drop the yaw demand,
        # then shift the collective, mirroring PX4's multirotor mixer.
        if motors.max() > 1.0 or motors.min() < 0.0:
            motors = allocation.thrust + self._MIX[:, :2] @ demands[:2]
            overshoot = max(motors.max() - 1.0, 0.0)
            undershoot = max(-motors.min(), 0.0)
            motors = motors - overshoot + undershoot
        return np.clip(motors, 0.0, 1.0)

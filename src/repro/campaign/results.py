"""Aggregation layer over campaign outcomes.

A :class:`CampaignResult` holds one :class:`VariantOutcome` per flown variant
(in grid-expansion order) and derives the quantities a sweep is run for:
per-cell crash rates, deviation statistics and recovery latencies, where a
*cell* is one combination of the non-``seed`` axes and the seeds are its
replicates.  Export goes through :mod:`repro.analysis.export` (CSV/JSON) and
:mod:`repro.analysis.report` (text/markdown tables).
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

__all__ = ["VariantOutcome", "CampaignCell", "CampaignResult"]

#: Summary keys every outcome row exposes, in export order.
SUMMARY_FIELDS = (
    "crashed",
    "crash_time",
    "switched_to_safety",
    "switch_time",
    "recovery_latency",
    "first_violation_rule",
    "max_deviation",
    "max_deviation_after",
    "rms_error",
    "rms_error_after",
    "final_deviation",
    "recovered",
)


@dataclass(frozen=True)
class VariantOutcome:
    """Result of one variant: either a summary or a captured failure.

    Attributes
    ----------
    name:
        Variant name (unique within the campaign).
    axes:
        The grid-axis assignment that produced the variant.
    seed:
        Seed the variant flew with.
    summary:
        Flight summary dictionary (see ``repro.analysis.export.result_to_dict``
        plus ``recovery_latency``); ``None`` when the variant failed.
    error:
        Traceback string when the variant raised; ``None`` on success.
    wall_time:
        Wall-clock execution time of the variant [s].  Excluded from
        summary comparisons — it is the only non-deterministic field.
        For cached outcomes this is the wall time of the *original* flight.
    cached:
        ``True`` when the outcome was served from a
        :class:`~repro.store.CampaignStore` instead of being flown.
        Excluded from summaries: cold and warm runs must compare equal.
    """

    name: str
    axes: tuple[tuple[str, Any], ...]
    seed: int
    summary: dict[str, Any] | None
    error: str | None
    wall_time: float
    cached: bool = False

    @property
    def ok(self) -> bool:
        """True when the variant ran to completion."""
        return self.error is None

    def cell_key(self) -> tuple[tuple[str, Any], ...]:
        """Axis assignment without the ``seed`` axis (seeds are replicates)."""
        return tuple((axis, value) for axis, value in self.axes if axis != "seed")


def _mean(values: list[float]) -> float | None:
    return sum(values) / len(values) if values else None


def _json_default(value: Any) -> Any:
    """Unwrap numpy scalars (common axis values, e.g. from ``np.arange``)."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"Object of type {type(value).__name__} is not JSON serializable")


@dataclass(frozen=True)
class CampaignCell:
    """Aggregate over the replicates (seeds) of one grid cell.

    Rates are ``None`` when no replicate of the cell completed — a cell with
    no data has no crash/recovery rate (same rationale as
    :meth:`CampaignResult.crash_rate`).
    """

    axes: tuple[tuple[str, Any], ...]
    runs: int
    failures: int
    crash_rate: float | None
    mean_max_deviation: float | None
    worst_max_deviation: float | None
    mean_recovery_latency: float | None
    recovery_rate: float | None

    def label(self) -> str:
        """Compact ``axis=value`` rendering of the cell coordinates."""
        if not self.axes:
            return "(all)"
        return " ".join(f"{axis}={value}" for axis, value in self.axes)


@dataclass(frozen=True)
class CampaignResult:
    """All outcomes of one campaign run, in grid-expansion order."""

    outcomes: tuple[VariantOutcome, ...]
    #: Wall-clock time of the whole campaign [s].
    wall_time: float = 0.0
    #: Variants served from the result store without flying.
    cache_hits: int = 0
    #: Variants that had to fly (when a store was consulted; 0 otherwise).
    cache_misses: int = 0
    #: ``repr`` of the exception that forced the runner off its executor
    #: backend onto serial execution; ``None`` when no fallback happened.
    fallback_reason: str | None = None
    #: Autoscaling decisions the executor backend recorded while the
    #: campaign ran (``DistributedBackend(max_workers=...)``): dicts with
    #: ``event``/``workers``/``backlog``/``elapsed``.  Empty for fixed-size
    #: backends.  Excluded from summaries — like wall times, fleet sizing is
    #: execution metadata, not a flight outcome.
    scale_events: tuple[dict[str, Any], ...] = ()
    #: Observability block the runner assembled for this run (``None`` when
    #: telemetry is disabled): ``schema``, ``backend`` (name or ``None``),
    #: ``store`` (per-run hit/miss/corrupt/write deltas), ``spans``
    #: (per-phase timing summaries) and ``queue`` (work-queue counters for
    #: distributed runs).  Excluded from summaries like every other piece
    #: of execution metadata — timings and cache state are not outcomes.
    telemetry: dict[str, Any] | None = None

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    # -- selection ---------------------------------------------------------------

    def successes(self) -> tuple[VariantOutcome, ...]:
        """Outcomes that ran to completion."""
        return tuple(outcome for outcome in self.outcomes if outcome.ok)

    def failures(self) -> tuple[VariantOutcome, ...]:
        """Outcomes whose variant raised."""
        return tuple(outcome for outcome in self.outcomes if not outcome.ok)

    def cached_outcomes(self) -> tuple[VariantOutcome, ...]:
        """Outcomes served from the result store."""
        return tuple(outcome for outcome in self.outcomes if outcome.cached)

    def __getitem__(self, name: str) -> VariantOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(name)

    # -- aggregates --------------------------------------------------------------

    def crash_rate(self) -> float | None:
        """Fraction of completed flights that crashed.

        ``None`` when no flight completed — a campaign with no data has no
        crash rate, and reporting 0% would read as "all survived".
        """
        completed = self.successes()
        if not completed:
            return None
        crashed = sum(1 for outcome in completed if outcome.summary["crashed"])
        return crashed / len(completed)

    def summaries(self) -> list[dict[str, Any]]:
        """Deterministic per-variant rows (no wall times): name, axes, seed,
        error flag and the summary fields.

        Two campaign runs over the same variants produce identical summaries
        regardless of serial/parallel execution, which is what the equality
        tests and the reproducibility guarantee rely on.
        """
        rows: list[dict[str, Any]] = []
        for outcome in self.outcomes:
            row: dict[str, Any] = {"variant": outcome.name}
            row.update(outcome.axes)
            row["seed"] = outcome.seed
            row["error"] = (
                outcome.error.strip().splitlines()[-1] if outcome.error else None
            )
            for field in SUMMARY_FIELDS:
                row[field] = outcome.summary[field] if outcome.summary else None
            rows.append(row)
        return rows

    def cells(self) -> list[CampaignCell]:
        """Aggregate outcomes per grid cell (non-``seed`` axes), preserving
        first-appearance order."""
        grouped: dict[tuple[tuple[str, Any], ...], list[VariantOutcome]] = {}
        for outcome in self.outcomes:
            grouped.setdefault(outcome.cell_key(), []).append(outcome)
        cells = []
        for key, members in grouped.items():
            completed = [outcome for outcome in members if outcome.ok]
            crashed = [outcome for outcome in completed if outcome.summary["crashed"]]
            recovered = [outcome for outcome in completed if outcome.summary["recovered"]]
            max_deviations = [
                outcome.summary["max_deviation"] for outcome in completed
            ]
            latencies = [
                outcome.summary["recovery_latency"]
                for outcome in completed
                if outcome.summary["recovery_latency"] is not None
            ]
            cells.append(CampaignCell(
                axes=key,
                runs=len(members),
                failures=len(members) - len(completed),
                crash_rate=len(crashed) / len(completed) if completed else None,
                mean_max_deviation=_mean(max_deviations),
                worst_max_deviation=max(max_deviations) if max_deviations else None,
                mean_recovery_latency=_mean(latencies),
                recovery_rate=len(recovered) / len(completed) if completed else None,
            ))
        return cells

    # -- export ------------------------------------------------------------------

    def to_csv(self, destination: str | Path | io.TextIOBase) -> int:
        """Write the per-variant summary rows as CSV; returns the row count."""
        from ..analysis.export import write_campaign_csv

        return write_campaign_csv(self, destination)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable campaign summary (variants + cells + aggregates)."""
        from ..analysis.export import campaign_to_dict

        return campaign_to_dict(self)

    def to_json(self, destination: str | Path | None = None, indent: int = 2) -> str:
        """Serialise :meth:`to_dict` as JSON, optionally writing it to a file."""
        text = json.dumps(self.to_dict(), indent=indent, default=_json_default)
        if destination is not None:
            Path(destination).write_text(text + "\n")
        return text

    def to_markdown(self) -> str:
        """Markdown table of the per-cell aggregates."""
        from ..analysis.report import format_campaign_table

        return format_campaign_table(self, markdown=True)

    def to_text(self) -> str:
        """Fixed-width text table of the per-cell aggregates."""
        from ..analysis.report import format_campaign_table

        return format_campaign_table(self, markdown=False)

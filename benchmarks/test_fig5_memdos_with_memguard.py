"""Figure 5 — memory-bandwidth DoS with MemGuard enabled.

Paper: "the drone oscillates for a short time but then managed to stabilize
itself."

Same attack and mission as Figure 4, but MemGuard regulates the container
core's DRAM access budget.  The reproduced claim: the flight survives the
full 30 s with bounded tracking error (no crash), in contrast to Figure 4.
"""

from __future__ import annotations

from repro.sim import FlightScenario, run_scenario

from figure_report import render_figure

ATTACK_START = 10.0


def run_figure5():
    return run_scenario(FlightScenario.figure5(attack_start=ATTACK_START))


def test_fig5_memdos_with_memguard(benchmark, report):
    result = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    report("fig5_memdos_with_memguard",
           render_figure(result, "memory-bandwidth DoS at t=10 s, MemGuard ON"))

    metrics = result.metrics
    assert not result.crashed
    # Bounded tracking error for the whole flight, including after the attack.
    assert metrics.max_deviation_after < 1.5
    assert metrics.final_deviation < 0.5
    # The full-duration flight completed (no early termination).
    assert metrics.duration > 29.0

"""Export helpers: turn recordings and results into CSV / plain dictionaries.

The paper's figures were produced from PX4 flight logs; these helpers play the
same role for the simulated flights so the traces can be post-processed with
external tools (pandas, gnuplot, ...) without depending on this package.
"""

from __future__ import annotations

import csv
import io
import math
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..sim.flight import FlightResult
from ..sim.recorder import FlightRecorder

if TYPE_CHECKING:
    from ..adaptive.search import BoundaryResult
    from ..campaign.results import CampaignResult

__all__ = [
    "recorder_to_rows",
    "write_csv",
    "result_to_dict",
    "compare_results",
    "campaign_to_rows",
    "campaign_to_dict",
    "write_campaign_csv",
    "boundary_to_dict",
    "trajectory_to_rows",
    "write_trajectory_csv",
]

_FIELDS = [
    "time",
    "x", "y", "z",
    "x_setpoint", "y_setpoint", "z_setpoint",
    "vx", "vy", "vz",
    "roll", "pitch", "yaw",
    "active_source",
    "crashed",
]


def recorder_to_rows(recorder: FlightRecorder) -> list[dict[str, Any]]:
    """Flatten a recording into one dictionary per telemetry sample."""
    rows = []
    for sample in recorder.samples:
        rows.append({
            "time": sample.time,
            "x": float(sample.position[0]),
            "y": float(sample.position[1]),
            "z": float(sample.position[2]),
            "x_setpoint": float(sample.setpoint[0]),
            "y_setpoint": float(sample.setpoint[1]),
            "z_setpoint": float(sample.setpoint[2]),
            "vx": float(sample.velocity[0]),
            "vy": float(sample.velocity[1]),
            "vz": float(sample.velocity[2]),
            "roll": sample.roll,
            "pitch": sample.pitch,
            "yaw": sample.yaw,
            "active_source": sample.active_source,
            "crashed": sample.crashed,
        })
    return rows


def _write_rows(
    rows: list[dict[str, Any]],
    fields: list[str],
    destination: str | Path | io.TextIOBase,
) -> int:
    """Write dictionaries as CSV to a path or open text file; returns row count."""

    def _write(handle) -> None:
        writer = csv.DictWriter(handle, fieldnames=fields)
        writer.writeheader()
        writer.writerows(rows)

    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as handle:
            _write(handle)
    else:
        _write(destination)
    return len(rows)


def write_csv(recorder: FlightRecorder, destination: str | Path | io.TextIOBase) -> int:
    """Write a recording as CSV; returns the number of data rows written.

    ``destination`` may be a path or an open text file object.
    """
    return _write_rows(recorder_to_rows(recorder), _FIELDS, destination)


def trajectory_to_rows(arrays: dict[str, Any]) -> list[dict[str, Any]]:
    """Flatten stored trajectory arrays into telemetry rows.

    Inverts :func:`repro.campaign.trajectory_arrays`: given the ``.npz``
    payload a ``record_arrays`` campaign persisted
    (``CampaignStore.get_arrays``), produce the same row schema as
    :func:`recorder_to_rows` — so cached campaigns can be plotted or
    post-processed without re-flying a single variant.
    """
    times = arrays["time"]
    position = arrays["position"]
    setpoint = arrays["setpoint"]
    velocity = arrays["velocity"]
    attitude = arrays["attitude"]
    sources = arrays["active_source"]
    crashed = arrays["crashed"]
    rows = []
    for i in range(len(times)):
        rows.append({
            "time": float(times[i]),
            "x": float(position[i, 0]),
            "y": float(position[i, 1]),
            "z": float(position[i, 2]),
            "x_setpoint": float(setpoint[i, 0]),
            "y_setpoint": float(setpoint[i, 1]),
            "z_setpoint": float(setpoint[i, 2]),
            "vx": float(velocity[i, 0]),
            "vy": float(velocity[i, 1]),
            "vz": float(velocity[i, 2]),
            "roll": float(attitude[i, 0]),
            "pitch": float(attitude[i, 1]),
            "yaw": float(attitude[i, 2]),
            "active_source": str(sources[i]),
            "crashed": bool(crashed[i]),
        })
    return rows


def write_trajectory_csv(
    arrays: dict[str, Any], destination: str | Path | io.TextIOBase
) -> int:
    """Write stored trajectory arrays as telemetry CSV; returns the row count.

    The output is column-compatible with :func:`write_csv` of a live
    recording.
    """
    return _write_rows(trajectory_to_rows(arrays), _FIELDS, destination)


def result_to_dict(result: FlightResult) -> dict[str, Any]:
    """Summarise a flight result as a JSON-serialisable dictionary."""
    metrics = result.metrics
    return {
        "scenario": result.scenario.name,
        "duration": metrics.duration,
        "crashed": result.crashed,
        "crash_time": result.crash_time,
        "switched_to_safety": metrics.switched_to_safety,
        "switch_time": result.switch_time,
        "first_violation_rule": result.violations[0].rule if result.violations else None,
        "first_violation_time": result.violations[0].time if result.violations else None,
        "max_deviation": metrics.max_deviation,
        "max_deviation_after": metrics.max_deviation_after,
        "rms_error": metrics.rms_error,
        "rms_error_after": metrics.rms_error_after,
        "final_deviation": metrics.final_deviation,
        "recovered": metrics.recovered,
    }


def campaign_to_rows(campaign: "CampaignResult") -> list[dict[str, Any]]:
    """Flatten a campaign into one summary row per flown variant.

    Every row carries the same key set (the union of the axis names plus the
    summary fields), so the rows are directly writable as CSV or loadable
    into pandas.
    """
    rows = campaign.summaries()
    fields: list[str] = []
    for row in rows:
        for key in row:
            if key not in fields:
                fields.append(key)
    return [{field: row.get(field) for field in fields} for row in rows]


def write_campaign_csv(
    campaign: "CampaignResult", destination: str | Path | io.TextIOBase
) -> int:
    """Write per-variant campaign summaries as CSV; returns the row count."""
    rows = campaign_to_rows(campaign)
    fields = list(rows[0].keys()) if rows else ["variant"]
    return _write_rows(rows, fields, destination)


def campaign_to_dict(campaign: "CampaignResult") -> dict[str, Any]:
    """Summarise a campaign as a JSON-serialisable dictionary."""
    return {
        "variants": len(campaign),
        "failures": len(campaign.failures()),
        "crash_rate": campaign.crash_rate(),
        "wall_time": campaign.wall_time,
        "cache_hits": campaign.cache_hits,
        "cache_misses": campaign.cache_misses,
        "executor_fallback": campaign.fallback_reason,
        "scale_events": [dict(event) for event in campaign.scale_events],
        "telemetry": dict(campaign.telemetry) if campaign.telemetry else None,
        "rows": campaign_to_rows(campaign),
        "cells": [
            {
                "cell": cell.label(),
                "axes": dict(cell.axes),
                "runs": cell.runs,
                "failures": cell.failures,
                "crash_rate": cell.crash_rate,
                "mean_max_deviation": cell.mean_max_deviation,
                "worst_max_deviation": cell.worst_max_deviation,
                "mean_recovery_latency": cell.mean_recovery_latency,
                "recovery_rate": cell.recovery_rate,
            }
            for cell in campaign.cells()
        ],
    }


def boundary_to_dict(result: "BoundaryResult") -> dict[str, Any]:
    """Summarise a boundary search as a JSON-serialisable dictionary.

    ``probes`` rides along as regular campaign rows (one per probe, in
    probe order, with the verdict added), so boundary flights feed the same
    downstream tooling as grid sweeps.
    """
    campaign = result.campaign()
    rows = campaign_to_rows(campaign)
    for row, probe in zip(rows, result.probes):
        row["verdict"] = probe.verdict
    return {
        "axis": result.axis,
        "tolerance": result.tolerance,
        "initial_interval": [result.initial_lo, result.initial_hi],
        "bracket": [result.lo, result.hi],
        "boundary": result.boundary,
        "width": result.width,
        "lo_verdict": result.lo_verdict,
        "flights": result.flights,
        "cache_hits": result.cache_hits,
        "dense_grid_size": math.ceil(
            (result.initial_hi - result.initial_lo) / result.tolerance
        ) + 1,
        "wall_time": result.wall_time,
        "probes": rows,
    }


def compare_results(results: dict[str, FlightResult]) -> str:
    """Render a comparison table over several named flight results."""
    from .report import format_table

    headers = ["Scenario", "Crashed", "Switch", "Rule", "Max dev after", "RMS after", "Recovered"]
    rows = []
    for label, result in results.items():
        summary = result_to_dict(result)
        rows.append([
            label,
            "yes" if summary["crashed"] else "no",
            f"{summary['switch_time']:.1f} s" if summary["switch_time"] is not None else "-",
            summary["first_violation_rule"] or "-",
            f"{summary['max_deviation_after']:.2f} m",
            f"{summary['rms_error_after']:.3f} m",
            "yes" if summary["recovered"] else "no",
        ])
    return format_table(headers, rows, title="Scenario comparison")

"""Motion-capture (Vicon) positioning model.

The paper uses a Vicon system plus the ViconMAVLink bridge to provide indoor
positioning to the drone.  The substitute is a low-noise, low-latency external
position and yaw reference sampled at a configurable rate (Vicon systems run
at 100 Hz or more; the bridge forwards at a lower rate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dynamics.quadrotor import Quadrotor
from .base import PeriodicSensor
from .noise import GaussianNoise

__all__ = ["MocapParameters", "MocapReading", "MotionCapture", "MOCAP_RATE_HZ"]

#: Rate at which the ViconMAVLink bridge forwards position updates.
MOCAP_RATE_HZ = 50.0


@dataclass(frozen=True)
class MocapParameters:
    """Noise characteristics of the motion-capture feed."""

    position_sigma_m: float = 0.002
    yaw_sigma_rad: float = 0.002
    dropout_probability: float = 0.0


@dataclass(frozen=True)
class MocapReading:
    """One motion-capture position/yaw update."""

    position_ned: np.ndarray
    yaw: float
    valid: bool = True


class MotionCapture(PeriodicSensor):
    """Vicon-like external positioning reference."""

    def __init__(
        self,
        params: MocapParameters | None = None,
        rate_hz: float = MOCAP_RATE_HZ,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(rate_hz, name="mocap")
        self.params = params or MocapParameters()
        self._rng = rng or np.random.default_rng(3)
        self._position_noise = GaussianNoise(self.params.position_sigma_m, self._rng)
        self._yaw_noise = GaussianNoise(self.params.yaw_sigma_rad, self._rng)

    def _measure(self, time: float, plant: Quadrotor) -> MocapReading:
        if self.params.dropout_probability > 0.0:
            if self._rng.random() < self.params.dropout_probability:
                return MocapReading(
                    position_ned=plant.position.copy(), yaw=plant.attitude[2], valid=False
                )
        position = plant.position + self._position_noise.sample((3,))
        yaw = plant.attitude[2] + float(self._yaw_noise.sample(()))
        return MocapReading(position_ned=position, yaw=yaw, valid=True)

"""Body angular-rate control loop (innermost loop of the cascade)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .allocator import ControlAllocation
from .pid import PidController, PidGains
from .setpoints import RateSetpoint

__all__ = ["RateControlGains", "RateController"]


def _default_roll_pitch_gains() -> PidGains:
    return PidGains(kp=0.15, ki=0.05, kd=0.003, integral_limit=0.3, output_limit=1.0,
                    derivative_filter_tau=0.005)


def _default_yaw_gains() -> PidGains:
    return PidGains(kp=0.2, ki=0.1, kd=0.0, integral_limit=0.3, output_limit=1.0)


@dataclass(frozen=True)
class RateControlGains:
    """Per-axis PID gains for the rate loop."""

    roll: PidGains = field(default_factory=_default_roll_pitch_gains)
    pitch: PidGains = field(default_factory=_default_roll_pitch_gains)
    yaw: PidGains = field(default_factory=_default_yaw_gains)


class RateController:
    """PID rate controller producing normalised torque demands."""

    def __init__(self, gains: RateControlGains | None = None) -> None:
        gains = gains or RateControlGains()
        self._roll = PidController(gains.roll)
        self._pitch = PidController(gains.pitch)
        self._yaw = PidController(gains.yaw)

    def reset(self) -> None:
        """Reset all axis integrators."""
        self._roll.reset()
        self._pitch.reset()
        self._yaw.reset()

    def update(self, setpoint: RateSetpoint, rates: np.ndarray, dt: float) -> ControlAllocation:
        """Compute torque demands from the rate error."""
        rates = np.asarray(rates, dtype=float)
        error = np.asarray(setpoint.rates, dtype=float) - rates
        return ControlAllocation(
            thrust=float(np.clip(setpoint.thrust, 0.0, 1.0)),
            roll=self._roll.update(float(error[0]), dt),
            pitch=self._pitch.update(float(error[1]), dt),
            yaw=self._yaw.update(float(error[2]), dt),
        )

"""Declarative campaign specs: JSON/TOML files describing a grid or search.

A spec file makes a campaign runnable without writing a script (see
``python -m repro.campaign``).  It has up to four tables:

``[scenario]``
    Base scenario.  ``figure`` picks a canonical constructor (``baseline``,
    ``figure4`` ... ``figure7``); remaining keys are constructor arguments
    (e.g. ``attack_start``) or direct ``FlightScenario`` field overrides
    (``duration``, ``seed``, ``record_hz``, ``geofence_radius``, ...).

``[axes]``
    Grid sweep: axis name -> list of values (any axis a
    :class:`~repro.campaign.grid.ScenarioGrid` accepts, including
    ``attack.<param>``).  Mutually exclusive with ``[adaptive]``.

``[adaptive]``
    Boundary search: ``axis``, ``lo``, ``hi``, ``tolerance``, and optionally
    ``predicate`` (a :func:`repro.adaptive.resolve_predicate` name, default
    ``crashed``), ``batch`` and ``integral``.

``[runner]``
    Execution policy: ``mode``/``max_workers`` or an explicit ``backend``
    registry name plus ``backend_options`` — e.g. ``{workers = 2}``,
    ``{transport = "socket"}``, ``{transport = "http", auth_token = "..."}``
    or ``{workers = 0, max_workers = 4}``
    (autoscaling) for the distributed backend, see
    ``docs/distributed.md`` — an optional ``store`` directory for cached
    results (with an optional generation ``salt``), ``record_arrays``
    to persist trajectory arrays alongside the summary cells, and
    ``telemetry = false`` to drop the result's telemetry block.

Example (TOML)::

    [scenario]
    figure = "figure5"
    duration = 12.0

    [axes]
    memguard_budget = [1000, 3000]
    seed = [0, 1, 2]

    [runner]
    store = ".campaign-store"
"""

from __future__ import annotations

import dataclasses
import inspect
import json
import warnings
from pathlib import Path
from typing import Any, Mapping

from ..sim.scenario import FlightScenario
from .backends import get_backend
from .grid import ScenarioGrid
from .runner import CampaignRunner

__all__ = [
    "build_grid",
    "build_runner",
    "build_scenario",
    "build_search",
    "load_spec",
]

_CONSTRUCTORS = {
    "baseline": FlightScenario.baseline,
    "figure4": FlightScenario.figure4,
    "figure5": FlightScenario.figure5,
    "figure6": FlightScenario.figure6,
    "figure7": FlightScenario.figure7,
}

_SCENARIO_FIELDS = {spec.name for spec in dataclasses.fields(FlightScenario)}


def _as_integral(label: str, value: Any) -> int:
    """Coerce to int, rejecting values that truncation would silently change
    (``3.0`` is fine, ``3.5`` is a spec error, not seed 3)."""
    try:
        coerced = int(value)
    except (TypeError, ValueError):
        raise ValueError(f"{label} value {value!r} is not an integer") from None
    if coerced != value:
        raise ValueError(
            f"{label} value {value!r} is not integral (would be truncated "
            f"to {coerced})"
        )
    return coerced


def load_spec(path: str | Path) -> dict[str, Any]:
    """Load a campaign spec from a ``.json`` or ``.toml`` file."""
    path = Path(path)
    if path.suffix.lower() == ".toml":
        import tomllib

        with open(path, "rb") as handle:
            spec = tomllib.load(handle)
    else:
        spec = json.loads(path.read_text())
    if not isinstance(spec, Mapping):
        raise ValueError(f"spec {path} must contain a table/object at top level")
    has_axes = "axes" in spec
    has_adaptive = "adaptive" in spec
    if has_axes == has_adaptive:
        raise ValueError(
            "spec must contain exactly one of 'axes' (grid sweep) or "
            "'adaptive' (boundary search)"
        )
    return dict(spec)


def build_scenario(section: Mapping[str, Any] | None) -> FlightScenario:
    """Build the base scenario of a spec's ``[scenario]`` table."""
    options = dict(section or {})
    kind = options.pop("figure", None)
    if kind is None:
        constructor: Any = FlightScenario
    else:
        try:
            constructor = _CONSTRUCTORS[kind]
        except KeyError:
            raise ValueError(
                f"unknown scenario figure {kind!r} "
                f"(available: {sorted(_CONSTRUCTORS)})"
            ) from None
    if "seed" in options:
        # Coerce before the constructor-kwarg split: a seed absorbed as a
        # constructor argument must get the same integral coercion as one
        # applied via dataclasses.replace, or a JSON spec's `"seed": 3.0`
        # flies with a float seed and caches under a different key than 3.
        options["seed"] = _as_integral("seed", options["seed"])
    parameters = inspect.signature(constructor).parameters
    constructor_kwargs = {
        name: options.pop(name) for name in list(options) if name in parameters
    }
    scenario = constructor(**constructor_kwargs)

    unknown = set(options) - _SCENARIO_FIELDS
    if unknown:
        raise ValueError(
            f"unknown scenario option(s) {sorted(unknown)}; valid keys are "
            f"'figure', constructor arguments and FlightScenario fields "
            f"({sorted(_SCENARIO_FIELDS)})"
        )
    if options:
        scenario = dataclasses.replace(scenario, **options)
    return scenario


def build_grid(spec: Mapping[str, Any]) -> ScenarioGrid:
    """Build the sweep grid of a grid spec."""
    axes = spec.get("axes")
    if not isinstance(axes, Mapping) or not axes:
        raise ValueError("grid spec needs a non-empty 'axes' table")
    return ScenarioGrid(build_scenario(spec.get("scenario")), axes=axes)


def build_search(spec: Mapping[str, Any]) -> "Any":
    """Build the boundary search of an adaptive spec."""
    from ..adaptive import BoundarySearch, resolve_predicate

    section = spec.get("adaptive")
    if not isinstance(section, Mapping):
        raise ValueError("adaptive spec needs an 'adaptive' table")
    options = dict(section)
    try:
        axis = options.pop("axis")
        lo = float(options.pop("lo"))
        hi = float(options.pop("hi"))
        tolerance = float(options.pop("tolerance"))
    except KeyError as exc:
        raise ValueError(f"adaptive spec is missing {exc.args[0]!r}") from None
    predicate = resolve_predicate(options.pop("predicate", "crashed"))
    batch = int(options.pop("batch", 1))
    integral = options.pop("integral", None)
    if options:
        raise ValueError(f"unknown adaptive option(s) {sorted(options)}")
    return BoundarySearch(
        scenario=build_scenario(spec.get("scenario")),
        axis=axis,
        lo=lo,
        hi=hi,
        tolerance=tolerance,
        predicate=predicate,
        batch=batch,
        integral=None if integral is None else bool(integral),
    )


def build_runner(
    spec: Mapping[str, Any],
    store_dir: str | Path | None = None,
    mode: str | None = None,
    max_workers: int | None = None,
    backend: str | None = None,
    record_arrays: bool | None = None,
    backend_options: Mapping[str, Any] | None = None,
) -> CampaignRunner:
    """Build the runner of a spec's ``[runner]`` table.

    ``store_dir``/``mode``/``max_workers``/``backend``/``record_arrays`` are
    command-line overrides that win over the spec.  ``mode``/``max_workers``
    win over an explicit spec ``backend`` too: an explicit backend would be
    used unconditionally by the runner, so when the command line forces an
    execution policy the spec's backend is dropped (with a warning — the
    override is deliberate, the silence would not be) in favour of the
    built-in ``mode``/``max_workers`` selection.  A ``backend`` override
    names a registry backend; it keeps the spec's ``backend_options`` only
    when the spec configured the *same* backend (options for a different
    backend would be meaningless or wrong).  The ``backend_options``
    *parameter* carries command-line additions for the override (e.g. the
    service URL of ``--connect-http``) and wins key-by-key over the spec's.
    """
    section = dict(spec.get("runner") or {})
    spec_backend = section.pop("backend", None)
    spec_backend_options = dict(section.pop("backend_options", {}) or {})
    if spec_backend is None and spec_backend_options:
        raise ValueError(
            "runner option 'backend_options' requires a 'backend' name"
        )
    if backend_options and backend is None:
        raise ValueError(
            "backend_options overrides require an explicit backend override"
        )
    chosen_backend = None
    if backend is not None:
        if mode is not None or max_workers is not None:
            raise ValueError(
                "an explicit backend override cannot be combined with "
                "--serial/--max-workers; configure it via backend_options"
            )
        if spec_backend_options and spec_backend != backend:
            warnings.warn(
                f"--backend {backend!r} discards the spec's backend_options "
                f"(they configure backend {spec_backend!r})",
                RuntimeWarning,
                stacklevel=2,
            )
        options = dict(
            spec_backend_options if spec_backend == backend else {}
        )
        options.update(backend_options or {})
        chosen_backend = get_backend(backend, **options)
    elif spec_backend is not None:
        if mode is not None or max_workers is not None:
            warnings.warn(
                f"command-line execution override (--serial/--max-workers) "
                f"discards the spec's explicit backend {spec_backend!r}",
                RuntimeWarning,
                stacklevel=2,
            )
        else:
            chosen_backend = get_backend(spec_backend, **spec_backend_options)

    # 'salt' and 'store' pop unconditionally: a salt without a store must be
    # a clear error, not an "unknown runner option(s) ['salt']" tail-raise.
    store_path = store_dir if store_dir is not None else section.pop("store", None)
    section.pop("store", None)
    salt = section.pop("salt", None)
    store = None
    if store_path is not None:
        from ..store import CampaignStore

        store = (
            CampaignStore(Path(store_path))
            if salt is None
            else CampaignStore(Path(store_path), salt=salt)
        )
    elif salt is not None:
        raise ValueError(
            "runner option 'salt' requires a 'store' directory (the salt "
            "partitions store generations and does nothing without one)"
        )

    arrays = section.pop("record_arrays", False)
    if record_arrays is not None:
        arrays = record_arrays
    telemetry = bool(section.pop("telemetry", True))
    if arrays and store is None:
        raise ValueError(
            "runner option 'record_arrays' requires a 'store' directory "
            "(trajectory arrays are persisted via the store)"
        )
    runner_mode = mode if mode is not None else section.pop("mode", "auto")
    workers = max_workers if max_workers is not None else section.pop("max_workers", None)
    section.pop("mode", None)
    section.pop("max_workers", None)
    if section:
        raise ValueError(f"unknown runner option(s) {sorted(section)}")
    return CampaignRunner(
        max_workers=workers,
        mode=runner_mode,
        backend=chosen_backend,
        store=store,
        record_arrays=bool(arrays),
        telemetry=telemetry,
    )

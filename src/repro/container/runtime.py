"""Container runtime: creates containers and wires them into the substrates.

Plays the role of the Docker engine on the prototype: it creates containers,
applies their cgroup limits to every process they spawn, gives them a
sandboxed network namespace reachable only through the docker0 bridge, sets up
port mappings via iptables-style rules (hairpin NAT, no userland proxy), and
contributes the engine's own background load to the host.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network.stack import CONTAINER_NAMESPACE, HOST_NAMESPACE, NetworkStack
from ..rtos.scheduler import MulticoreScheduler
from ..rtos.task import Task, TaskConfig
from .container import Container, ContainerConfig, ContainerState

__all__ = ["RuntimeConfig", "ContainerRuntime"]


@dataclass(frozen=True)
class RuntimeConfig:
    """Configuration of the container engine itself."""

    #: CPU load of the dockerd/containerd daemons while containers run.
    daemon_load: float = 0.01
    #: Core the daemons run on.
    daemon_core: int = 3
    #: Period of the daemon housekeeping activity [s].
    daemon_period: float = 0.02


class ContainerRuntime:
    """Docker-like engine managing container lifecycle on the simulated host."""

    def __init__(
        self,
        scheduler: MulticoreScheduler,
        network: NetworkStack,
        config: RuntimeConfig | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.network = network
        self.config = config or RuntimeConfig()
        self.containers: dict[str, Container] = {}
        self._daemon_task: Task | None = None

    # -- engine -----------------------------------------------------------------

    def _ensure_daemon(self) -> None:
        """Start the engine daemons the first time a container runs."""
        if self._daemon_task is not None or self.config.daemon_load <= 0.0:
            return
        core = min(self.config.daemon_core, self.scheduler.num_cores - 1)
        config = TaskConfig(
            name="dockerd",
            period=self.config.daemon_period,
            execution_time=self.config.daemon_load * self.config.daemon_period,
            priority=1,
            core=core,
            memory_stall_fraction=0.1,
            accesses_per_job=200,
        )
        self._daemon_task = Task(config)
        self.scheduler.add_task(self._daemon_task)

    # -- container lifecycle -----------------------------------------------------

    def create(self, config: ContainerConfig | None = None) -> Container:
        """Create a container (does not run anything yet)."""
        container = Container(config or ContainerConfig())
        if container.name in self.containers:
            raise ValueError(f"container {container.name!r} already exists")
        self.containers[container.name] = container
        if container.namespace not in (HOST_NAMESPACE, CONTAINER_NAMESPACE):
            # User-defined network: reachable only from/to the host.
            self.network.add_namespace(container.namespace, reachable={HOST_NAMESPACE})
        return container

    def run(self, container: Container) -> None:
        """Start a created container (engine daemons start with the first one)."""
        if container.state is ContainerState.RUNNING:
            raise RuntimeError(f"container {container.name!r} is already running")
        self._ensure_daemon()
        container.mark_running()

    def spawn_process(
        self,
        container: Container,
        config: TaskConfig,
        callback=None,
        dynamic_cost=None,
    ) -> Task:
        """Start a process inside the container, subject to its cgroups."""
        if container.state is not ContainerState.RUNNING:
            raise RuntimeError(f"container {container.name!r} is not running")
        admitted = container.admit_task(config)
        task = Task(admitted, callback=callback, dynamic_cost=dynamic_cost)
        self.scheduler.add_task(task)
        container.register_task(task)
        return task

    def stop(self, container: Container) -> None:
        """Stop a running container."""
        container.stop()

    def kill(self, container: Container) -> None:
        """Kill a running container."""
        container.kill()

"""Smoke tests: every example script runs to completion on a reduced workload.

The examples are part of the public deliverable, so the suite executes each
one (with short durations) in a subprocess and checks that it exits cleanly
and prints the expected kind of report.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.parametrize(
    "name, args, expected_fragments",
    [
        ("quickstart.py", ["--duration", "5", "--kill-time", "3"],
         ["Flight summary", "X position"]),
        ("controller_failover.py", ["--duration", "6", "--kill-time", "3"],
         ["Timeline", "switched to"]),
        ("overhead_comparison.py", ["--seconds", "3"],
         ["System overhead comparison", "One VM"]),
        ("telemetry_rates.py", ["--duration", "2"],
         ["Table I (reproduced)", "Motor Output"]),
        ("schedulability_analysis.py", [],
         ["Worst-case execution-time inflation", "safety-controller"]),
        ("campaign_sweep.py",
         ["--duration", "2", "--seeds", "1", "--budgets", "2000",
          "--attack-starts", "1.0", "--serial"],
         ["Campaign summary", "memguard_budget=2000"]),
        ("adaptive_boundary.py",
         ["--duration", "3", "--attack-start", "0.5", "--geofence", "1.0",
          "--tolerance-mbps", "250", "--batch", "1", "--serial"],
         ["Boundary search on 'memguard_budget'", "Boundary estimate"]),
    ],
)
def test_example_runs(name, args, expected_fragments):
    completed = run_example(name, *args)
    assert completed.returncode == 0, completed.stderr[-2000:]
    for fragment in expected_fragments:
        assert fragment in completed.stdout


@pytest.mark.slow
def test_memory_dos_defense_example_runs():
    completed = run_example("memory_dos_defense.py", "--duration", "8", "--attack-start", "3")
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert "MemGuard off vs on" in completed.stdout


@pytest.mark.slow
def test_udp_flood_defense_example_runs():
    completed = run_example("udp_flood_defense.py", "--duration", "8", "--attack-start", "3",
                            "--rate", "20000")
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert "UDP flood" in completed.stdout

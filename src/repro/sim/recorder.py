"""Telemetry recorder for flight simulations.

Records the quantities the paper plots (local position X/Y/Z against their
setpoints) plus everything needed to analyse the defence behaviour: attitude,
active control source, violations and crash state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FlightSample", "FlightRecorder"]


@dataclass(frozen=True)
class FlightSample:
    """One telemetry sample."""

    time: float
    position: np.ndarray
    setpoint: np.ndarray
    velocity: np.ndarray
    roll: float
    pitch: float
    yaw: float
    active_source: str
    crashed: bool


class FlightRecorder:
    """Accumulates telemetry samples at a fixed decimation."""

    def __init__(self, sample_rate_hz: float = 50.0) -> None:
        if sample_rate_hz <= 0.0:
            raise ValueError("sample_rate_hz must be positive")
        self.sample_rate_hz = float(sample_rate_hz)
        self._period = 1.0 / self.sample_rate_hz
        self._last_sample_time: float | None = None
        self.samples: list[FlightSample] = []

    def __len__(self) -> int:
        return len(self.samples)

    def maybe_record(self, sample: FlightSample) -> bool:
        """Record the sample if the decimation period has elapsed."""
        if (
            self._last_sample_time is not None
            and sample.time - self._last_sample_time < self._period - 1e-9
        ):
            return False
        self._last_sample_time = sample.time
        self.samples.append(sample)
        return True

    # -- array accessors --------------------------------------------------------

    def times(self) -> np.ndarray:
        """Sample times [s]."""
        return np.array([sample.time for sample in self.samples])

    def positions(self) -> np.ndarray:
        """NED positions, one row per sample [m]."""
        return np.array([sample.position for sample in self.samples])

    def setpoints(self) -> np.ndarray:
        """NED position setpoints, one row per sample [m]."""
        return np.array([sample.setpoint for sample in self.samples])

    def attitudes(self) -> np.ndarray:
        """Roll/pitch/yaw, one row per sample [rad]."""
        return np.array([[sample.roll, sample.pitch, sample.yaw] for sample in self.samples])

    def sources(self) -> list[str]:
        """Active control source per sample."""
        return [sample.active_source for sample in self.samples]

    def axis(self, name: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(times, estimated, setpoint)`` for axis ``"x"``, ``"y"`` or ``"z"``.

        The Z axis is returned as altitude (positive up), matching how the
        paper's figures plot it.
        """
        index = {"x": 0, "y": 1, "z": 2}[name.lower()]
        times = self.times()
        positions = self.positions()[:, index]
        setpoints = self.setpoints()[:, index]
        if index == 2:
            positions = -positions
            setpoints = -setpoints
        return times, positions, setpoints

    def switch_time(self) -> float | None:
        """Time at which the active source first became the safety controller."""
        for sample in self.samples:
            if sample.active_source == "safety":
                return sample.time
        return None

    def crash_time(self) -> float | None:
        """Time at which the vehicle was first recorded as crashed."""
        for sample in self.samples:
            if sample.crashed:
                return sample.time
        return None

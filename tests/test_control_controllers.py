"""Tests for the complex and safety flight controllers."""

import numpy as np
import pytest

from repro.control import (
    ComplexController,
    ComplexControllerConfig,
    FlightMode,
    PositionSetpoint,
    SafetyController,
    SafetyControllerConfig,
)
from repro.sensors import RcChannels
from repro.sensors.barometer import BarometerReading
from repro.sensors.imu import ImuReading
from repro.sensors.mocap import MocapReading


def hover_imu() -> ImuReading:
    return ImuReading(gyro=np.zeros(3), accel=np.array([0.0, 0.0, -9.80665]))


def feed_hover_data(controller, position=np.array([0.0, 0.0, -1.0]), steps=50):
    """Feed consistent hover sensor data so estimators converge."""
    for step in range(steps):
        t = step * 0.004
        controller.on_imu(hover_imu(), t)
        if step % 5 == 0:
            controller.on_mocap(MocapReading(position_ned=position.copy(), yaw=0.0), t)
    return steps * 0.004


class TestComplexController:
    def test_produces_command_after_data(self):
        controller = ComplexController()
        controller.set_position_setpoint(PositionSetpoint.hover_at(0.0, 0.0, 1.0))
        t = feed_hover_data(controller)
        command = controller.compute(t)
        assert command is not None
        assert command.motors.shape == (4,)
        assert np.all(command.motors >= 0.0) and np.all(command.motors <= 1.0)
        assert command.source == "complex"

    def test_sequence_increments(self):
        controller = ComplexController()
        t = feed_hover_data(controller)
        first = controller.compute(t)
        second = controller.compute(t + 0.004)
        assert second.sequence == first.sequence + 1

    def test_kill_stops_output(self):
        controller = ComplexController()
        t = feed_hover_data(controller)
        controller.kill()
        assert not controller.alive
        assert controller.compute(t) is None

    def test_killed_controller_ignores_sensor_data(self):
        controller = ComplexController()
        controller.kill()
        controller.on_imu(hover_imu(), 0.0)
        controller.on_mocap(MocapReading(position_ned=np.zeros(3), yaw=0.0), 0.0)
        assert not controller.position_estimate.valid

    def test_mode_follows_rc(self):
        controller = ComplexController()
        controller.on_rc(RcChannels(mode_switch=1000), 0.0)
        assert controller.mode is FlightMode.MANUAL
        controller.on_rc(RcChannels(mode_switch=2000), 0.1)
        assert controller.mode is FlightMode.POSITION

    def test_thrust_increases_when_below_setpoint(self):
        low = ComplexController()
        low.set_position_setpoint(PositionSetpoint.hover_at(0.0, 0.0, 3.0))
        t = feed_hover_data(low, position=np.array([0.0, 0.0, -1.0]))
        command_low = low.compute(t)

        at_target = ComplexController()
        at_target.set_position_setpoint(PositionSetpoint.hover_at(0.0, 0.0, 1.0))
        t = feed_hover_data(at_target, position=np.array([0.0, 0.0, -1.0]))
        command_at = at_target.compute(t)
        assert command_low.motors.mean() > command_at.motors.mean()

    def test_manual_mode_holds_level_attitude(self):
        controller = ComplexController()
        controller.on_rc(RcChannels(mode_switch=1000), 0.0)
        t = feed_hover_data(controller)
        command = controller.compute(t)
        # All four motors nearly equal: no position correction in manual mode.
        assert np.max(command.motors) - np.min(command.motors) < 0.05

    def test_without_position_fix_falls_back_to_level(self):
        controller = ComplexController()
        for step in range(20):
            controller.on_imu(hover_imu(), step * 0.004)
        command = controller.compute(0.1)
        assert command is not None
        assert np.max(command.motors) - np.min(command.motors) < 0.05

    def test_baro_consumed_without_error(self):
        controller = ComplexController()
        controller.on_baro(BarometerReading(pressure_pa=101000.0, altitude_m=221.0), 0.0)
        controller.on_gps(np.array([0.0, 0.0, -1.0]), 0.0)

    def test_config_execution_profile_positive(self):
        config = ComplexControllerConfig()
        assert config.nominal_execution_time > 0.0
        assert 0.0 <= config.memory_stall_fraction <= 1.0
        assert config.memory_accesses_per_iteration > 0


class TestSafetyController:
    def test_produces_bounded_command(self):
        controller = SafetyController()
        controller.set_position_setpoint(PositionSetpoint.hover_at(0.0, 0.0, 1.0))
        t = feed_hover_data(controller)
        command = controller.compute(t)
        assert command.source == "safety"
        assert np.all(command.motors >= 0.0) and np.all(command.motors <= 1.0)

    def test_thrust_rises_when_below_target(self):
        controller = SafetyController()
        controller.set_position_setpoint(PositionSetpoint.hover_at(0.0, 0.0, 5.0))
        t = feed_hover_data(controller, position=np.array([0.0, 0.0, -1.0]))
        below = controller.compute(t)

        at_target = SafetyController()
        at_target.set_position_setpoint(PositionSetpoint.hover_at(0.0, 0.0, 1.0))
        t = feed_hover_data(at_target, position=np.array([0.0, 0.0, -1.0]))
        at = at_target.compute(t)
        assert below.motors.mean() > at.motors.mean()

    def test_tilt_is_conservative(self):
        config = SafetyControllerConfig()
        controller = SafetyController(config)
        controller.set_position_setpoint(PositionSetpoint.hover_at(10.0, 0.0, 1.0))
        t = feed_hover_data(controller)
        command = controller.compute(t)
        # With the conservative 15 deg tilt limit the motor differential stays small.
        assert np.max(command.motors) - np.min(command.motors) < 0.4

    def test_attitude_estimate_exposed(self):
        controller = SafetyController()
        feed_hover_data(controller)
        estimate = controller.attitude_estimate
        assert abs(estimate.roll) < 0.05
        assert abs(estimate.pitch) < 0.05

    def test_position_estimate_exposed(self):
        controller = SafetyController()
        feed_hover_data(controller, position=np.array([0.2, -0.3, -1.5]))
        estimate = controller.position_estimate
        assert estimate.valid
        assert np.allclose(estimate.position, [0.2, -0.3, -1.5], atol=0.2)

    def test_sequence_increments(self):
        controller = SafetyController()
        t = feed_hover_data(controller)
        assert controller.compute(t).sequence + 1 == controller.compute(t + 0.004).sequence

    def test_gps_input_accepted(self):
        controller = SafetyController()
        controller.on_gps(np.array([1.0, 1.0, -2.0]), 0.0)
        assert controller.position_estimate.valid

    def test_execution_profile_is_lighter_than_complex(self):
        safety = SafetyControllerConfig()
        complex_config = ComplexControllerConfig()
        assert safety.nominal_execution_time < complex_config.nominal_execution_time
        assert safety.memory_accesses_per_iteration < complex_config.memory_accesses_per_iteration


class TestClosedLoopHover:
    """End-to-end closed-loop sanity checks (controller + plant, ideal wiring)."""

    @pytest.mark.parametrize("controller_cls", [ComplexController, SafetyController])
    def test_controller_holds_hover(self, controller_cls):
        from repro.dynamics import Quadrotor, RigidBodyState
        from repro.sensors import Barometer, Imu, MotionCapture

        plant = Quadrotor(initial_state=RigidBodyState(position=np.array([0.0, 0.0, -1.0])))
        plant.arm()
        imu = Imu(rng=np.random.default_rng(1))
        baro = Barometer(rng=np.random.default_rng(2))
        mocap = MotionCapture(rng=np.random.default_rng(3))
        controller = controller_cls()
        controller.set_position_setpoint(PositionSetpoint.hover_at(0.0, 0.3, 1.0))

        dt = 0.001
        motors = np.full(4, 0.57)
        last_control = -1.0
        for step in range(6000):
            t = step * dt
            sample = imu.sample(t, plant)
            if sample:
                controller.on_imu(sample.data, t)
            sample = baro.sample(t, plant)
            if sample:
                controller.on_baro(sample.data, t)
            sample = mocap.sample(t, plant)
            if sample:
                controller.on_mocap(sample.data, t)
            if t - last_control >= 1.0 / 250.0 - 1e-9:
                command = controller.compute(t)
                if command is not None:
                    motors = command.motors
                last_control = t
            plant.step(motors, dt)
        assert not plant.crashed
        assert abs(plant.position[1] - 0.3) < 0.3
        assert abs(plant.altitude - 1.0) < 0.4

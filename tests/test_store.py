"""Tests for the content-addressed campaign result store (repro.store).

Covers key stability and sensitivity (scenario, attack parameters, framework
config, version salt), hit/miss/corruption accounting, runner integration
(warm re-runs fly nothing, changed cells fly alone), killed-then-resumed
campaigns, and the optional trajectory-array payload.
"""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.attacks import MemoryBandwidthAttack, UdpFloodAttack
from repro.campaign import CampaignRunner, GridVariant, ScenarioGrid
from repro.sim import FlightScenario
from repro.store import VERSION_SALT, CampaignStore, cache_key, scenario_fingerprint


def tiny_scenario(**kwargs) -> FlightScenario:
    defaults = dict(name="tiny", duration=0.5, record_hz=20.0)
    defaults.update(kwargs)
    return FlightScenario(**defaults)


def tiny_grid(seeds=(1, 2), **kwargs) -> ScenarioGrid:
    return ScenarioGrid(tiny_scenario(**kwargs), axes={"seed": list(seeds)})


class TestCacheKey:
    def test_key_is_stable_across_instances(self):
        assert cache_key(tiny_scenario()) == cache_key(tiny_scenario())

    def test_key_is_hex_sha256(self):
        key = cache_key(tiny_scenario())
        assert len(key) == 64
        int(key, 16)

    def test_scenario_fields_change_the_key(self):
        base = tiny_scenario()
        assert cache_key(base) != cache_key(base.with_seed(3))
        assert cache_key(base) != cache_key(replace(base, duration=0.6))

    def test_name_does_not_change_the_key(self):
        # The name labels reports and never influences the flight; hashing
        # it would re-fly physically identical flights after a grid rename.
        base = tiny_scenario()
        assert cache_key(base) == cache_key(base.with_name("other"))

    def test_attack_parameters_change_the_key(self):
        base = tiny_scenario(attacks=(MemoryBandwidthAttack(start_time=0.2),))
        moved = base.with_attack_start(0.3)
        tuned = base.with_attacks(
            MemoryBandwidthAttack(start_time=0.2, access_rate=1.0e7)
        )
        keys = {cache_key(base), cache_key(moved), cache_key(tuned)}
        assert len(keys) == 3

    def test_attack_type_changes_the_key(self):
        # Two attacks with coincidentally equal field values must not
        # collide: the class name participates in the canonical form.
        memory = tiny_scenario(attacks=(MemoryBandwidthAttack(start_time=0.2),))
        flood = tiny_scenario(attacks=(UdpFloodAttack(start_time=0.2),))
        assert cache_key(memory) != cache_key(flood)

    def test_framework_config_changes_the_key(self):
        base = tiny_scenario()
        budget = base.with_config(base.config.with_memguard_budget(1234))
        toggled = base.with_config(base.config.with_protections(monitor=False))
        keys = {cache_key(base), cache_key(budget), cache_key(toggled)}
        assert len(keys) == 3

    def test_salt_changes_the_key(self):
        base = tiny_scenario()
        assert cache_key(base) != cache_key(base, salt="other-generation")
        assert cache_key(base) == cache_key(base, salt=VERSION_SALT)

    def test_numpy_values_hash_like_python_values(self):
        # Axis values frequently arrive as numpy scalars (np.arange).
        assert cache_key(tiny_scenario(seed=np.int64(7))) == cache_key(
            tiny_scenario(seed=7)
        )

    def test_negative_zero_hashes_like_zero(self):
        # -0.0 == 0.0 flies the same flight but repr()s as "-0.0"; the
        # canonical form must normalise it or identical scenarios re-fly.
        from repro.store import canonical

        assert json.dumps(canonical(-0.0)) == "0.0"
        assert json.dumps(canonical(np.float64(-0.0))) == "0.0"
        plus = tiny_scenario(attacks=(UdpFloodAttack(start_time=0.0),))
        minus = tiny_scenario(attacks=(UdpFloodAttack(start_time=-0.0),))
        assert cache_key(plus) == cache_key(minus)

    def test_non_finite_floats_are_rejected(self):
        # NaN != NaN breaks the equal-keys-fly-equal-flights guarantee, and
        # json.dumps would emit non-interoperable NaN/Infinity tokens; the
        # canonical form must refuse instead of silently passing through.
        from repro.store import canonical

        for bad in (float("nan"), float("inf"), float("-inf"),
                    np.float64("nan"), np.float64("inf")):
            with pytest.raises(TypeError, match="non-finite"):
                canonical(bad)
        # The error names the offending value.
        with pytest.raises(TypeError, match="inf"):
            canonical(float("inf"))
        with pytest.raises(TypeError, match="nan"):
            canonical(float("nan"))

    def test_non_finite_floats_rejected_when_nested(self):
        from repro.store import canonical

        with pytest.raises(TypeError, match="non-finite"):
            canonical({"x": [1.0, float("nan")]})
        with pytest.raises(TypeError, match="non-finite"):
            canonical(np.array([1.0, np.inf]))  # __ndarray__ payload
        with pytest.raises(TypeError, match="non-finite"):
            cache_key(
                tiny_scenario(attacks=(UdpFloodAttack(start_time=float("nan")),))
            )

    def test_fingerprint_is_canonical_json(self):
        payload = json.loads(scenario_fingerprint(tiny_scenario()))
        assert payload["__dataclass__"].endswith("FlightScenario")
        assert payload["seed"] == 2019

    def test_unsupported_values_fail_loudly(self):
        from repro.store import canonical

        with pytest.raises(TypeError, match="canonicalise"):
            canonical(object())


class TestCampaignStoreCells:
    def test_miss_then_hit_accounting(self, tmp_path):
        store = CampaignStore(tmp_path)
        runner = CampaignRunner(mode="serial", store=store)
        cold = runner.run(tiny_grid())
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)
        assert store.stats.as_dict() == {
            "hits": 0, "misses": 2, "corrupt": 0, "writes": 2,
        }
        assert len(store) == 2

        warm = CampaignRunner(mode="serial", store=CampaignStore(tmp_path)).run(
            tiny_grid()
        )
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        assert warm.summaries() == cold.summaries()
        assert all(outcome.cached for outcome in warm)
        assert not any(outcome.cached for outcome in cold)

    def test_renamed_grid_reuses_cached_flights(self, tmp_path):
        # Same physics under a different base name: every cell hits, and the
        # served summaries carry the *new* scenario names.
        store = CampaignStore(tmp_path)
        CampaignRunner(mode="serial", store=store).run(tiny_grid())
        renamed = ScenarioGrid(
            tiny_scenario(name="renamed"), axes={"seed": [1, 2]}
        )
        warm = CampaignRunner(mode="serial", store=CampaignStore(tmp_path)).run(
            renamed
        )
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        assert [outcome.name for outcome in warm] == [
            "renamed/seed=1", "renamed/seed=2",
        ]
        assert all(
            outcome.summary["scenario"] == outcome.name for outcome in warm
        )

    def test_changed_cells_fly_alone(self, tmp_path):
        store = CampaignStore(tmp_path)
        CampaignRunner(mode="serial", store=store).run(tiny_grid(seeds=(1, 2, 3)))
        # One value changed, two kept: only the new seed flies.
        rerun = CampaignRunner(mode="serial", store=store).run(
            tiny_grid(seeds=(1, 2, 9))
        )
        assert (rerun.cache_hits, rerun.cache_misses) == (2, 1)

    def test_corrupt_entry_falls_back_to_rerun(self, tmp_path):
        store = CampaignStore(tmp_path)
        runner = CampaignRunner(mode="serial", store=store)
        cold = runner.run(tiny_grid())
        victim = next(tmp_path.glob("*/*.json"))
        victim.write_text("{ not json at all")

        fresh = CampaignStore(tmp_path)
        warm = CampaignRunner(mode="serial", store=fresh).run(tiny_grid())
        assert (warm.cache_hits, warm.cache_misses) == (1, 1)
        assert fresh.stats.corrupt == 1
        assert warm.summaries() == cold.summaries()
        # The corrupt cell was replaced by a valid one.
        assert CampaignStore(tmp_path).get(
            tiny_grid().variants()[0]
        ) is not None or CampaignStore(tmp_path).get(
            tiny_grid().variants()[1]
        ) is not None
        assert len(CampaignStore(tmp_path)) == 2

    def test_non_numeric_wall_time_reads_as_corruption(self, tmp_path):
        # Valid JSON with a garbage wall_time must be a miss, not a crash
        # inside the runner's cache-lookup loop.
        store = CampaignStore(tmp_path)
        CampaignRunner(mode="serial", store=store).run(tiny_grid(seeds=(1,)))
        victim = next(tmp_path.glob("*/*.json"))
        payload = json.loads(victim.read_text())
        payload["wall_time"] = "fast"
        victim.write_text(json.dumps(payload))
        fresh = CampaignStore(tmp_path)
        assert fresh.get(tiny_grid(seeds=(1,)).variants()[0]) is None
        assert fresh.stats.corrupt == 1

    def test_schema_mismatch_reads_as_corruption(self, tmp_path):
        store = CampaignStore(tmp_path)
        CampaignRunner(mode="serial", store=store).run(tiny_grid(seeds=(1,)))
        victim = next(tmp_path.glob("*/*.json"))
        payload = json.loads(victim.read_text())
        payload["format"] = 999
        victim.write_text(json.dumps(payload))
        fresh = CampaignStore(tmp_path)
        assert fresh.get(tiny_grid(seeds=(1,)).variants()[0]) is None
        assert fresh.stats.corrupt == 1

    def test_killed_campaign_resumes_from_cache(self, tmp_path):
        # Reference: the full campaign, flown cold with no store.
        reference = CampaignRunner(mode="serial").run(tiny_grid(seeds=(1, 2, 3, 4)))

        # "Kill" a campaign halfway: only the first two variants completed
        # (and were persisted) before the process died.
        store = CampaignStore(tmp_path)
        partial = tiny_grid(seeds=(1, 2, 3, 4)).variants()[:2]
        CampaignRunner(mode="serial", store=store).run(partial)
        assert len(store) == 2

        # The resumed campaign completes, flying only what is missing, and
        # its summaries equal the uninterrupted cold run.
        resumed_store = CampaignStore(tmp_path)
        resumed = CampaignRunner(mode="serial", store=resumed_store).run(
            tiny_grid(seeds=(1, 2, 3, 4))
        )
        assert (resumed.cache_hits, resumed.cache_misses) == (2, 2)
        assert resumed.summaries() == reference.summaries()

    def test_failed_outcomes_are_not_cached(self, tmp_path):
        def _break_cpuset(scenario, value):
            if not value:
                return scenario
            config = scenario.config
            return scenario.with_config(
                replace(config, cpu=replace(config.cpu, cce_cores=frozenset()))
            )

        grid = ScenarioGrid(tiny_scenario()).add_axis(
            "broken", [True], applier=_break_cpuset
        )
        store = CampaignStore(tmp_path)
        first = CampaignRunner(mode="serial", store=store).run(grid)
        assert len(first.failures()) == 1
        assert len(store) == 0
        # A transient failure is re-attempted, never served from cache.
        second = CampaignRunner(mode="serial", store=store).run(grid)
        assert (second.cache_hits, second.cache_misses) == (0, 1)

    def test_cells_persist_as_flights_complete(self, tmp_path):
        # The resume guarantee depends on writing each cell when its flight
        # finishes, not when the campaign ends: a SIGKILL at flight N must
        # leave N cells on disk.  The spy observes the store between yields.
        from repro.campaign import SerialBackend

        cells_after_each_flight = []

        class SpyBackend(SerialBackend):
            def map(self, fn, items):
                for item in items:
                    yield fn(item)
                    cells_after_each_flight.append(len(CampaignStore(tmp_path)))

        CampaignRunner(backend=SpyBackend(), store=CampaignStore(tmp_path)).run(
            tiny_grid(seeds=(1, 2))
        )
        assert cells_after_each_flight == [1, 2]

    def test_interrupt_mid_campaign_keeps_completed_cells(self, tmp_path):
        # KeyboardInterrupt is not swallowed by the serial fallback, but the
        # flights that completed before it must already be on disk.
        from repro.campaign import SerialBackend

        class InterruptingBackend(SerialBackend):
            def map(self, fn, items):
                yield fn(items[0])
                raise KeyboardInterrupt

        store = CampaignStore(tmp_path)
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(backend=InterruptingBackend(), store=store).run(
                tiny_grid(seeds=(1, 2, 3))
            )
        assert len(store) == 1
        # The resumed campaign serves that cell from cache.
        resumed = CampaignRunner(mode="serial", store=CampaignStore(tmp_path)).run(
            tiny_grid(seeds=(1, 2, 3))
        )
        assert (resumed.cache_hits, resumed.cache_misses) == (1, 2)

    def test_unwritable_store_does_not_lose_the_campaign(self, tmp_path):
        # The store is a cache, never an authority: a failing write warns
        # and the campaign keeps its results.
        class BrokenStore(CampaignStore):
            def put(self, variant, outcome):
                raise OSError("read-only file system")

        with pytest.warns(RuntimeWarning, match="store write failed"):
            result = CampaignRunner(
                mode="serial", store=BrokenStore(tmp_path)
            ).run(tiny_grid())
        assert len(result.successes()) == 2

    def test_store_salt_partitions_results(self, tmp_path):
        old = CampaignStore(tmp_path, salt="gen-1")
        CampaignRunner(mode="serial", store=old).run(tiny_grid())
        new = CampaignStore(tmp_path, salt="gen-2")
        rerun = CampaignRunner(mode="serial", store=new).run(tiny_grid())
        # The other generation's cells are invisible, not corrupt.
        assert (rerun.cache_hits, rerun.cache_misses) == (0, 2)
        assert new.stats.corrupt == 0
        assert len(new) == 4  # both generations share the directory

    def test_parallel_run_populates_and_uses_store(self, tmp_path):
        store = CampaignStore(tmp_path)
        cold = CampaignRunner(mode="parallel", max_workers=2, store=store).run(
            tiny_grid()
        )
        warm = CampaignRunner(mode="parallel", max_workers=2,
                              store=CampaignStore(tmp_path)).run(tiny_grid())
        assert warm.cache_hits == 2
        assert warm.summaries() == cold.summaries()

    def test_clear(self, tmp_path):
        store = CampaignStore(tmp_path)
        CampaignRunner(mode="serial", store=store).run(tiny_grid())
        assert store.clear() == 2
        assert len(store) == 0

    def test_clear_removes_empty_fanout_directories(self, tmp_path):
        store = CampaignStore(tmp_path)
        CampaignRunner(mode="serial", store=store).run(tiny_grid())
        assert any(path.is_dir() for path in tmp_path.iterdir())
        store.clear()
        # No skeleton of two-character fan-out directories left behind.
        assert [path for path in tmp_path.iterdir()] == []

    def test_clear_keeps_foreign_files_and_directories(self, tmp_path):
        store = CampaignStore(tmp_path)
        CampaignRunner(mode="serial", store=store).run(tiny_grid())
        fanout = next(path for path in tmp_path.iterdir() if path.is_dir())
        (fanout / "notes.txt").write_text("parked next to the cells")
        foreign = tmp_path / "ab" / "nested"
        foreign.mkdir(parents=True)
        (foreign / "keep.txt").write_text("not ours")
        store.clear()
        assert (fanout / "notes.txt").exists()
        assert (foreign / "keep.txt").exists()
        assert len(store) == 0


class TestTrajectoryArrays:
    def test_roundtrip(self, tmp_path):
        store = CampaignStore(tmp_path)
        variant = GridVariant(name="v", axes=(), scenario=tiny_scenario())
        assert store.get_arrays(variant) is None
        times = np.linspace(0.0, 1.0, 5)
        positions = np.zeros((5, 3))
        store.put_arrays(variant, time=times, position=positions)
        loaded = store.get_arrays(variant)
        assert set(loaded) == {"time", "position"}
        np.testing.assert_array_equal(loaded["time"], times)

    def test_has_arrays_probe(self, tmp_path):
        store = CampaignStore(tmp_path)
        variant = GridVariant(name="v", axes=(), scenario=tiny_scenario())
        assert store.has_arrays(variant) is False
        store.put_arrays(variant, time=np.zeros(3))
        assert store.has_arrays(variant) is True
        archive = store.path_for(store.key_for(variant)).with_suffix(".npz")
        archive.write_bytes(b"garbage")
        assert store.has_arrays(variant) is False  # dropped and counted
        assert store.stats.corrupt == 1
        assert not archive.exists()

    def test_corrupt_archive_is_dropped(self, tmp_path):
        store = CampaignStore(tmp_path)
        variant = GridVariant(name="v", axes=(), scenario=tiny_scenario())
        store.put_arrays(variant, time=np.zeros(3))
        archive = store.path_for(store.key_for(variant)).with_suffix(".npz")
        archive.write_bytes(b"garbage")
        assert store.get_arrays(variant) is None
        assert store.stats.corrupt == 1
        assert not archive.exists()

"""Run a campaign from a spec file: ``python -m repro.campaign spec.toml``.

Loads a JSON/TOML campaign spec (see :mod:`repro.campaign.spec`), executes
the sweep grid or adaptive boundary search it describes, and prints the
markdown report (``--format text|json`` for other renderings).  Exit status:
0 on success, 2 when any variant failed or no boundary could be bracketed.
"""

from __future__ import annotations

import argparse
import sys

from ..obs import (
    EventLog,
    configure_json_logging,
    default_registry,
    emit,
    set_event_log,
)
from .spec import build_grid, build_runner, build_search, load_spec

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run a scenario campaign (sweep grid or adaptive "
        "boundary search) from a JSON/TOML spec file.",
    )
    parser.add_argument("spec", help="path to the campaign spec (.json or .toml)")
    parser.add_argument(
        "--format", choices=("markdown", "text", "json"), default="markdown",
        help="report rendering (default: markdown)",
    )
    parser.add_argument(
        "--csv", metavar="PATH", default=None,
        help="also write per-flight summary rows to this CSV file",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, dest="json_path",
        help="also write the full result JSON to this file",
    )
    parser.add_argument(
        "--store", metavar="DIR", default=None,
        help="result-store directory (overrides the spec's runner.store)",
    )
    policy = parser.add_mutually_exclusive_group()
    policy.add_argument(
        "--serial", action="store_true",
        help="force serial execution (overrides the spec's runner.mode; "
        "drops an explicit spec backend with a warning)",
    )
    policy.add_argument(
        "--backend", default=None, metavar="NAME",
        help="executor backend registry name (serial, batch, process-pool, "
        "distributed, service); overrides the spec's runner.backend and "
        "keeps the spec's backend_options only when it names the same "
        "backend",
    )
    parser.add_argument(
        "--connect-http", default=None, metavar="URL",
        help="campaign-service base URL; implies --backend service (the "
        "sweep's tasks run on the daemon's worker fleet; auth via "
        "$REPRO_CAMPAIGN_AUTH_TOKEN)",
    )
    parser.add_argument(
        "--max-workers", type=int, default=None,
        help="process-pool size (overrides the spec's runner.max_workers; "
        "not combinable with --backend)",
    )
    parser.add_argument(
        "--record-arrays", action="store_true",
        help="persist each flight's trajectory arrays to the store "
        "(requires a store; overrides the spec's runner.record_arrays)",
    )
    parser.add_argument(
        "--metrics-jsonl", metavar="PATH", default=None,
        help="append structured JSONL event records (campaign/variant "
        "events, final metrics snapshot) to this file",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log records as JSON lines on stderr",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.log_json:
        configure_json_logging()
    event_log = None
    if args.metrics_jsonl is not None:
        event_log = EventLog(args.metrics_jsonl)
        set_event_log(event_log)
    try:
        return _run(args)
    finally:
        if event_log is not None:
            # One closing record carries the process-wide metric state, so
            # a JSONL file is a self-contained account of the run.
            emit(
                "metrics-snapshot", "campaign.cli",
                metrics=default_registry().snapshot(),
            )
            set_event_log(None)
            event_log.close()


def _run(args: argparse.Namespace) -> int:
    backend = args.backend
    backend_options = None
    if args.connect_http is not None:
        if backend is None:
            backend = "service"
        elif backend != "service":
            print(
                f"error: --connect-http only applies to the service backend "
                f"(got --backend {backend})",
                file=sys.stderr,
            )
            return 2
        from .workqueue import resolve_auth_token

        # The URL from the flag, the secret from the environment: argv is
        # visible in process listings, so there is no --auth-token here.
        backend_options = {"url": args.connect_http}
        token = resolve_auth_token(None)
        if token is not None:
            backend_options["auth_token"] = token
    try:
        spec = load_spec(args.spec)
        runner = build_runner(
            spec,
            store_dir=args.store,
            mode="serial" if args.serial else None,
            max_workers=args.max_workers,
            backend=backend,
            record_arrays=True if args.record_arrays else None,
            backend_options=backend_options,
        )
        work = build_search(spec) if "adaptive" in spec else build_grid(spec)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if "adaptive" in spec:
        from ..adaptive import BoundaryBracketError, VerdictError

        try:
            result = work.run(runner)
        except (BoundaryBracketError, VerdictError, KeyError, ValueError) as exc:
            # KeyError/ValueError: the swept axis resolves lazily inside
            # run() (unknown axis name, attack.<param> on no attack) and
            # must honour the CLI's "error: ..." + exit 2 contract too.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        campaign = result.campaign()
    else:
        try:
            result = runner.run(work)
        except ValueError as exc:
            # Grid-expansion errors (bad axis value, attack_start without
            # attacks) surface when the runner expands the grid.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        campaign = result

    # Both result kinds expose the same report surface.
    renderers = {"json": result.to_json, "text": result.to_text,
                 "markdown": result.to_markdown}
    print(renderers[args.format]())
    if args.json_path:
        result.to_json(args.json_path)
    if args.csv:
        campaign.to_csv(args.csv)

    failures = campaign.failures()
    if failures:
        for outcome in failures:
            tail = outcome.error.strip().splitlines()[-1] if outcome.error else "?"
            print(f"FAILED: {outcome.name}: {tail}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure from the paper's evaluation
(Section V), prints the reproduced rows/series and stores them under
``benchmarks/results/`` so they can be compared against the paper (see
EXPERIMENTS.md).

Benchmarks that measure *performance* (wall times, cache hit counts,
speedups) additionally pass a ``data`` mapping to the :func:`report`
fixture, which writes it as ``benchmarks/results/BENCH_<name>.json`` — the
machine-readable perf trajectory CI uploads as artifacts, so speed
regressions are diffable across runs instead of buried in prose reports.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import Any, Mapping

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Bump when the JSON envelope below changes shape.
BENCH_SCHEMA = 1


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where reproduced tables/figures are written."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_bench_json(
    results_dir: Path, name: str, data: Mapping[str, Any]
) -> Path:
    """Write one machine-readable benchmark record.

    The envelope carries the benchmark name, a schema version and the
    machine context every perf number needs for comparison (core count,
    python version); ``data`` supplies the measurements themselves — wall
    times, flown/cached counts, speedups.  Keys are sorted so records diff
    cleanly between runs.
    """
    record = {
        "bench": name,
        "schema": BENCH_SCHEMA,
        "machine": {
            "cores": os.cpu_count(),
            "python": platform.python_version(),
        },
        **dict(data),
    }
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture
def report(results_dir):
    """Return a function that prints a report and stores it on disk.

    ``report(name, text)`` writes the human-readable ``<name>.txt``;
    ``report(name, text, data={...})`` additionally emits the
    machine-readable ``BENCH_<name>.json`` perf record.
    """

    def _report(
        name: str, text: str, data: Mapping[str, Any] | None = None
    ) -> None:
        print()
        print("=" * 78)
        print(text)
        print("=" * 78)
        (results_dir / f"{name}.txt").write_text(text + "\n")
        if data is not None:
            write_bench_json(results_dir, name, data)

    return _report

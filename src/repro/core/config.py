"""Configuration of the ContainerDrone framework.

The defaults reproduce the prototype described in Section IV of the paper:
a four-core board with one core dedicated to the container, SCHED_FIFO
priorities 90 (kernel drivers) / ~40 (interrupt threads) / 20 (safety
controller), the UDP ports and stream rates of Table I, MemGuard protecting
the shared memory bus and iptables limiting the docker0 packet rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

__all__ = [
    "CpuProtectionConfig",
    "MemoryProtectionConfig",
    "CommunicationProtectionConfig",
    "MonitorConfig",
    "StreamRates",
    "ContainerDroneConfig",
]


@dataclass(frozen=True)
class CpuProtectionConfig:
    """CPU DoS protection: cpuset pinning and priority restriction."""

    enabled: bool = True
    num_cores: int = 4
    #: Cores reserved for the container control environment.
    cce_cores: frozenset[int] = frozenset({3})
    #: Maximum SCHED_FIFO priority a container process can obtain.
    cce_max_priority: int = 10
    #: Priority of the HCE kernel sensor/actuator drivers.
    driver_priority: int = 90
    #: Approximate priority of system interrupt threads.
    interrupt_priority: int = 40
    #: Priority of the safety controller process.
    safety_priority: int = 20
    #: Priority of the HCE receiving and monitoring threads.
    monitor_priority: int = 25
    receiver_priority: int = 30

    @property
    def hce_cores(self) -> frozenset[int]:
        """Cores available to the host control environment."""
        return frozenset(range(self.num_cores)) - self.cce_cores


@dataclass(frozen=True)
class MemoryProtectionConfig:
    """Memory-bandwidth DoS protection via MemGuard."""

    enabled: bool = True
    #: MemGuard regulation period [s].
    period: float = 0.001
    #: Budget of the CCE core in DRAM accesses per period.  The value leaves
    #: the complex controller enough bandwidth to run (the paper chooses the
    #: budget the same way) while keeping the shared bus far from saturation.
    cce_budget_accesses_per_period: int = 3000
    #: Optional budgets for HCE cores (``None`` = unregulated).
    hce_budget_accesses_per_period: int | None = None
    #: Enable MemGuard's best-effort budget reclaiming.
    reclaim: bool = False


@dataclass(frozen=True)
class CommunicationProtectionConfig:
    """Communication DoS protection: sandboxed network + iptables + monitoring."""

    #: UDP port on which the CCE receives forwarded sensor data (Table I).
    sensor_port: int = 14660
    #: UDP port on which the HCE receives actuator outputs (Table I).
    motor_port: int = 14600
    #: Enable the iptables packet-rate limit on the docker0 bridge.
    iptables_enabled: bool = True
    #: Sustained packet rate allowed toward each protected port [pkt/s].
    iptables_rate_per_second: float = 5000.0
    #: Burst allowance of the iptables limit [packets].
    iptables_burst: int = 200
    #: Receive-queue capacity of the HCE motor socket [datagrams].
    motor_queue_capacity: int = 256
    #: Receive-queue capacity of the CCE sensor socket [datagrams].
    sensor_queue_capacity: int = 512
    #: Datagrams the HCE receiving thread processes per 1 kHz wakeup.  The
    #: bound keeps the thread's per-cycle work constant (a real-time design
    #: rule), which is why a flood translates into queueing delay rather than
    #: unbounded CPU use.
    receiver_batch_size: int = 4
    #: One-way latency of the docker0 bridge [s].
    bridge_latency: float = 0.0002


@dataclass(frozen=True)
class MonitorConfig:
    """Security-monitor rule thresholds (Section III-E)."""

    enabled: bool = True
    #: Monitor execution rate [Hz].
    rate_hz: float = 100.0
    #: Maximum allowed interval between consecutive CCE outputs [s].  The CCE
    #: publishes at 400 Hz, so 0.1 s corresponds to 40 consecutive missed
    #: outputs.
    max_receive_interval: float = 0.1
    #: Bounds on the attitude errors [rad].
    max_roll_error: float = np.deg2rad(20.0)
    max_pitch_error: float = np.deg2rad(20.0)
    max_yaw_error: float = np.deg2rad(45.0)
    #: Grace period after engagement before the rules are enforced [s].
    arming_grace_period: float = 2.0


@dataclass(frozen=True)
class StreamRates:
    """Data-stream rates between the control environments (Table I)."""

    imu_hz: float = 250.0
    baro_hz: float = 50.0
    gps_hz: float = 10.0
    rc_hz: float = 50.0
    mocap_hz: float = 50.0
    motor_output_hz: float = 400.0
    #: Rate of the HCE actuator (PWM) output task.
    actuator_hz: float = 400.0
    #: Rate of both controllers' main loops.
    controller_hz: float = 250.0


@dataclass(frozen=True)
class ContainerDroneConfig:
    """Top-level configuration of the ContainerDrone framework."""

    cpu: CpuProtectionConfig = field(default_factory=CpuProtectionConfig)
    memory: MemoryProtectionConfig = field(default_factory=MemoryProtectionConfig)
    communication: CommunicationProtectionConfig = field(
        default_factory=CommunicationProtectionConfig
    )
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    rates: StreamRates = field(default_factory=StreamRates)

    def without_memguard(self) -> "ContainerDroneConfig":
        """Copy of the configuration with MemGuard disabled (Figure 4 setup)."""
        return replace(self, memory=replace(self.memory, enabled=False))

    def without_monitor(self) -> "ContainerDroneConfig":
        """Copy of the configuration with the security monitor disabled."""
        return replace(self, monitor=replace(self.monitor, enabled=False))

    def without_iptables(self) -> "ContainerDroneConfig":
        """Copy of the configuration without the iptables rate limit."""
        return replace(
            self, communication=replace(self.communication, iptables_enabled=False)
        )

    # -- parameterization hooks (used by campaign sweep grids) -------------------

    def with_memguard_budget(self, accesses_per_period: int) -> "ContainerDroneConfig":
        """Copy of the configuration with a different CCE MemGuard budget.

        The budget is a count of DRAM accesses per period; non-integral
        values are rejected rather than silently truncated.
        """
        coerced = int(accesses_per_period)
        if coerced != accesses_per_period:
            raise ValueError(
                f"MemGuard budget must be integral, got {accesses_per_period!r}"
            )
        accesses_per_period = coerced
        if accesses_per_period <= 0:
            raise ValueError("MemGuard budget must be positive")
        return replace(
            self,
            memory=replace(
                self.memory, cce_budget_accesses_per_period=accesses_per_period
            ),
        )

    def with_protections(
        self,
        memguard: bool | None = None,
        monitor: bool | None = None,
        iptables: bool | None = None,
    ) -> "ContainerDroneConfig":
        """Copy of the configuration with individual protections toggled.

        ``None`` leaves a protection unchanged, so sweep axes can toggle one
        mechanism without having to restate the others.
        """
        config = self
        if memguard is not None:
            config = replace(config, memory=replace(config.memory, enabled=bool(memguard)))
        if monitor is not None:
            config = replace(config, monitor=replace(config.monitor, enabled=bool(monitor)))
        if iptables is not None:
            config = replace(
                config,
                communication=replace(
                    config.communication, iptables_enabled=bool(iptables)
                ),
            )
        return config

"""MAVLink connection over the simulated UDP stack.

A :class:`MavlinkConnection` pairs a bound UDP endpoint with a codec and a
destination address, mirroring how the HCE feeder threads and the complex
controller exchange messages on ports 14660 and 14600 (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network.stack import NetworkStack
from ..network.udp import UdpEndpoint
from .codec import DecodeError, Frame, MavlinkCodec
from .messages import MavlinkMessage

__all__ = ["MavlinkConnection", "SENSOR_PORT", "MOTOR_PORT"]

#: Table I: all sensor/RC streams from the HCE are received by the CCE on this port.
SENSOR_PORT = 14660
#: Table I: motor output from the CCE is received by the HCE on this port.
MOTOR_PORT = 14600


class MavlinkConnection:
    """One end of a MAVLink-over-UDP link."""

    def __init__(
        self,
        stack: NetworkStack,
        local_namespace: str,
        local_port: int,
        remote_namespace: str,
        remote_port: int,
        system_id: int = 1,
        queue_capacity: int = 256,
    ) -> None:
        self.stack = stack
        self.local_namespace = local_namespace
        self.local_port = int(local_port)
        self.remote_namespace = remote_namespace
        self.remote_port = int(remote_port)
        self.codec = MavlinkCodec(system_id=system_id)
        self._endpoint: UdpEndpoint | None = stack.bind(
            local_namespace, local_port, queue_capacity=queue_capacity
        )
        self.malformed_received = 0

    @property
    def endpoint(self) -> UdpEndpoint | None:
        """The underlying UDP endpoint, or ``None`` after :meth:`close`."""
        return self._endpoint

    @property
    def closed(self) -> bool:
        """True once the connection's receive side has been torn down."""
        return self._endpoint is None

    def close(self) -> None:
        """Unbind the local endpoint (the monitor does this to the HCE receiver)."""
        if self._endpoint is not None:
            self.stack.unbind(self._endpoint)
            self._endpoint = None

    def send(self, now: float, message: MavlinkMessage) -> bool:
        """Encode and send one message to the remote end."""
        datagram = self.codec.encode(message)
        return self.stack.send(
            now,
            datagram,
            source_namespace=self.local_namespace,
            source_port=self.local_port,
            destination_namespace=self.remote_namespace,
            destination_port=self.remote_port,
        )

    def receive(self, now: float, max_datagrams: int | None = None) -> list[Frame]:
        """Decode every datagram available by ``now``; malformed data is counted."""
        if self._endpoint is None:
            return []
        frames: list[Frame] = []
        for datagram in self._endpoint.receive(now, max_datagrams=max_datagrams):
            try:
                frames.append(self.codec.decode(datagram.payload))
            except DecodeError:
                self.malformed_received += 1
        return frames

"""Builders translating the framework configuration into substrate objects.

Each of the three protected resources maps onto one builder:

* CPU — a :class:`~repro.container.container.ContainerConfig` carrying the
  cpuset and the priority cap.
* Memory — a :class:`~repro.memsys.memguard.MemGuard` instance with the CCE
  core budget.
* Communication — an :class:`~repro.network.iptables.IptablesFirewall` with
  rate limits on the two HCE/CCE ports, plus the network stack they attach to.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..container.container import ContainerConfig, PortMapping
from ..memsys.memguard import MemGuard, MemGuardConfig
from ..network.iptables import IptablesFirewall, RateLimitRule
from ..network.stack import NetworkStack
from .config import ContainerDroneConfig

__all__ = ["ProtectionStatus", "build_container_config", "build_memguard", "build_network"]


@dataclass(frozen=True)
class ProtectionStatus:
    """Summary of which protections a scenario has active."""

    cpu_pinning: bool
    priority_restriction: bool
    memguard: bool
    iptables: bool
    security_monitor: bool

    @classmethod
    def from_config(cls, config: ContainerDroneConfig) -> "ProtectionStatus":
        """Derive the status flags from a framework configuration."""
        return cls(
            cpu_pinning=config.cpu.enabled,
            priority_restriction=config.cpu.enabled,
            memguard=config.memory.enabled,
            iptables=config.communication.iptables_enabled,
            security_monitor=config.monitor.enabled,
        )


def build_container_config(config: ContainerDroneConfig, name: str = "cce") -> ContainerConfig:
    """Container configuration implementing the CPU protection."""
    cpu = config.cpu
    if cpu.enabled:
        cpuset = frozenset(cpu.cce_cores)
        max_priority = cpu.cce_max_priority
    else:
        # Unprotected baseline: the container may use every core and any priority.
        cpuset = frozenset(range(cpu.num_cores))
        max_priority = 99
    communication = config.communication
    return ContainerConfig(
        name=name,
        cpuset_cores=cpuset,
        max_priority=max_priority,
        port_mappings=(
            PortMapping(container_port=communication.sensor_port,
                        host_port=communication.sensor_port),
            PortMapping(container_port=communication.motor_port,
                        host_port=communication.motor_port),
        ),
    )


def build_memguard(config: ContainerDroneConfig) -> MemGuard:
    """MemGuard instance implementing the memory protection.

    The returned regulator is disabled (pass-through) when the configuration
    turns the protection off, which keeps the scheduler wiring identical
    between the Figure 4 and Figure 5 scenarios.
    """
    cpu = config.cpu
    memory = config.memory
    budgets: dict[int, int | None] = {core: None for core in range(cpu.num_cores)}
    for core in cpu.cce_cores:
        budgets[core] = memory.cce_budget_accesses_per_period
    if memory.hce_budget_accesses_per_period is not None:
        for core in cpu.hce_cores:
            budgets[core] = memory.hce_budget_accesses_per_period
    memguard = MemGuard(
        cpu.num_cores,
        MemGuardConfig(period=memory.period, budgets=budgets, reclaim=memory.reclaim),
    )
    if not memory.enabled:
        memguard.disable()
    return memguard


def build_network(config: ContainerDroneConfig) -> NetworkStack:
    """Network stack with the iptables rate limits of the communication protection."""
    communication = config.communication
    firewall = IptablesFirewall()
    if communication.iptables_enabled:
        firewall.add_rule(
            RateLimitRule(
                destination_port=communication.motor_port,
                rate_per_second=communication.iptables_rate_per_second,
                burst=communication.iptables_burst,
            )
        )
        firewall.add_rule(
            RateLimitRule(
                destination_port=communication.sensor_port,
                rate_per_second=communication.iptables_rate_per_second,
                burst=communication.iptables_burst,
            )
        )
    return NetworkStack(latency=communication.bridge_latency, firewall=firewall)

"""Analysis and reporting helpers for the reproduced experiments."""

from .export import (
    boundary_to_dict,
    campaign_to_dict,
    campaign_to_rows,
    compare_results,
    recorder_to_rows,
    result_to_dict,
    trajectory_to_rows,
    write_campaign_csv,
    write_csv,
    write_trajectory_csv,
)
from .report import (
    format_boundary_table,
    format_campaign_table,
    format_figure_summary,
    format_markdown_table,
    format_overhead_table,
    format_table,
)
from .trajectory import AxisSeries, ascii_plot, extract_axes, oscillation_amplitude

__all__ = [
    "AxisSeries",
    "ascii_plot",
    "boundary_to_dict",
    "campaign_to_dict",
    "campaign_to_rows",
    "compare_results",
    "extract_axes",
    "format_boundary_table",
    "format_campaign_table",
    "format_figure_summary",
    "format_markdown_table",
    "format_overhead_table",
    "format_table",
    "oscillation_amplitude",
    "recorder_to_rows",
    "result_to_dict",
    "trajectory_to_rows",
    "write_campaign_csv",
    "write_csv",
    "write_trajectory_csv",
]

"""Position and velocity control loops (outer loops of the cascade).

The structure follows PX4's multicopter position controller: a proportional
position loop produces a velocity setpoint, a PID velocity loop produces an
acceleration/thrust demand, which is converted into an attitude setpoint plus
collective thrust.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dynamics.state import GRAVITY
from .pid import PidController, PidGains
from .setpoints import AttitudeSetpoint, PositionSetpoint

__all__ = ["PositionControlGains", "PositionController"]


def _default_velocity_xy_gains() -> PidGains:
    return PidGains(kp=1.8, ki=0.4, kd=0.2, integral_limit=1.0, output_limit=5.0)


def _default_velocity_z_gains() -> PidGains:
    return PidGains(kp=4.0, ki=1.0, kd=0.0, integral_limit=2.0, output_limit=8.0)


@dataclass(frozen=True)
class PositionControlGains:
    """Gains of the position/velocity cascade."""

    position_p_xy: float = 0.95
    position_p_z: float = 1.0
    velocity_xy: PidGains = field(default_factory=_default_velocity_xy_gains)
    velocity_z: PidGains = field(default_factory=_default_velocity_z_gains)
    max_velocity_xy: float = 3.0
    max_velocity_z: float = 1.5
    max_tilt: float = np.deg2rad(30.0)
    hover_thrust: float = 0.57
    max_thrust: float = 0.95
    min_thrust: float = 0.08


class PositionController:
    """Cascaded position → velocity → attitude/thrust controller."""

    def __init__(self, gains: PositionControlGains | None = None) -> None:
        self.gains = gains or PositionControlGains()
        self._velocity_pids = [
            PidController(self.gains.velocity_xy),
            PidController(self.gains.velocity_xy),
            PidController(self.gains.velocity_z),
        ]

    def reset(self) -> None:
        """Reset the velocity-loop integrators."""
        for pid in self._velocity_pids:
            pid.reset()

    def update(
        self,
        setpoint: PositionSetpoint,
        position: np.ndarray,
        velocity: np.ndarray,
        yaw: float,
        dt: float,
    ) -> AttitudeSetpoint:
        """Compute an attitude/thrust setpoint driving the vehicle to ``setpoint``."""
        gains = self.gains
        position = np.asarray(position, dtype=float)
        velocity = np.asarray(velocity, dtype=float)

        position_error = np.asarray(setpoint.position, dtype=float) - position
        velocity_setpoint = np.array(
            [
                gains.position_p_xy * position_error[0],
                gains.position_p_xy * position_error[1],
                gains.position_p_z * position_error[2],
            ]
        )
        velocity_setpoint[0:2] = np.clip(
            velocity_setpoint[0:2], -gains.max_velocity_xy, gains.max_velocity_xy
        )
        velocity_setpoint[2] = np.clip(
            velocity_setpoint[2], -gains.max_velocity_z, gains.max_velocity_z
        )

        velocity_error = velocity_setpoint - velocity
        acceleration = np.array(
            [pid.update(float(err), dt) for pid, err in zip(self._velocity_pids, velocity_error)]
        )

        # Convert the NED acceleration demand into tilt angles and collective
        # thrust.  In the yaw-aligned frame a forward acceleration requires a
        # nose-down (negative) pitch and a rightward acceleration requires a
        # positive roll; the small-angle mapping is standard for hover regimes.
        cos_yaw, sin_yaw = np.cos(yaw), np.sin(yaw)
        acc_body_x = cos_yaw * acceleration[0] + sin_yaw * acceleration[1]
        acc_body_y = -sin_yaw * acceleration[0] + cos_yaw * acceleration[1]

        pitch = np.clip(-acc_body_x / GRAVITY, -gains.max_tilt, gains.max_tilt)
        roll = np.clip(acc_body_y / GRAVITY, -gains.max_tilt, gains.max_tilt)

        thrust = gains.hover_thrust * (1.0 - acceleration[2] / GRAVITY)
        thrust = float(np.clip(thrust, gains.min_thrust, gains.max_thrust))

        return AttitudeSetpoint(roll=float(roll), pitch=float(pitch), yaw=setpoint.yaw, thrust=thrust)

"""Geometry and force/torque mapping for a quadrotor in X configuration.

The mixer here is the *physical* mapping from individual rotor thrusts to the
net body force and torque.  The inverse mapping (controller outputs to motor
commands) lives in :mod:`repro.control.allocator`, mirroring the PX4 split
between the mixer module and the airframe geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["QuadGeometry", "forces_and_torques"]


def _default_spin_directions() -> tuple[int, int, int, int]:
    return (1, 1, -1, -1)


@dataclass(frozen=True)
class QuadGeometry:
    """Rotor placement of an X-configuration quadrotor.

    Rotor numbering follows the PX4 quad-X convention:

    * rotor 0: front-right, spins counter-clockwise
    * rotor 1: rear-left, spins counter-clockwise
    * rotor 2: front-left, spins clockwise
    * rotor 3: rear-right, spins clockwise

    Attributes
    ----------
    arm_length:
        Distance from the centre of mass to each rotor axis [m].
    spin_directions:
        +1 for counter-clockwise rotors (their reaction torque on the
        airframe is positive yaw), -1 for clockwise rotors.
    """

    arm_length: float = 0.225
    spin_directions: tuple[int, int, int, int] = field(default_factory=_default_spin_directions)

    def __post_init__(self) -> None:
        if self.arm_length <= 0.0:
            raise ValueError("arm_length must be positive")
        if len(self.spin_directions) != 4:
            raise ValueError("spin_directions must have four entries")
        if any(direction not in (-1, 1) for direction in self.spin_directions):
            raise ValueError("spin directions must be +1 or -1")
        # Normalize to a tuple so the frozen geometry stays hashable even
        # when a list is passed in.
        object.__setattr__(self, "spin_directions", tuple(self.spin_directions))
        # Rotor positions as plain float tuples, precomputed once: the mixer
        # reads them at the physics rate and scalar indexing beats ndarray
        # access there.
        object.__setattr__(
            self,
            "_position_tuples",
            tuple(tuple(float(v) for v in row) for row in self.rotor_positions),
        )

    @property
    def rotor_positions(self) -> np.ndarray:
        """Rotor positions in the body (FRD) frame, one row per rotor [m]."""
        offset = self.arm_length / np.sqrt(2.0)
        return np.array(
            [
                [offset, offset, 0.0],    # front-right
                [-offset, -offset, 0.0],  # rear-left
                [offset, -offset, 0.0],   # front-left
                [-offset, offset, 0.0],   # rear-right
            ]
        )


def forces_and_torques(
    thrusts: np.ndarray,
    reaction_torques: np.ndarray,
    geometry: QuadGeometry,
) -> tuple[np.ndarray, np.ndarray]:
    """Combine per-rotor thrusts into the net body-frame force and torque.

    Parameters
    ----------
    thrusts:
        Per-rotor thrust magnitudes [N]; thrust acts along body -Z (upward).
    reaction_torques:
        Per-rotor aerodynamic reaction torque magnitudes [N m].
    geometry:
        Rotor placement and spin directions.

    Returns
    -------
    tuple of (force, torque) in the body frame.
    """
    thrusts = np.asarray(thrusts, dtype=float)
    reaction_torques = np.asarray(reaction_torques, dtype=float)
    if thrusts.shape != (4,) or reaction_torques.shape != (4,):
        raise ValueError("quad mixer expects exactly four rotors")

    force = np.array([0.0, 0.0, -float(np.sum(thrusts))])

    # Thrust acts along body -Z, so cross(p, [0, 0, -T]) reduces to
    # (-p_y T, p_x T, 0); the scalar accumulation below keeps the exact
    # summation order of the generic formulation while avoiding the
    # per-rotor np.cross calls that dominated the flight hot path.
    positions = geometry._position_tuples
    torque_x = 0.0
    torque_y = 0.0
    torque_z = 0.0
    for index in range(4):
        thrust = float(thrusts[index])
        torque_x += positions[index][1] * -thrust
        torque_y += -(positions[index][0] * -thrust)
        # A CCW rotor (+1, viewed from above) is driven against its drag, so
        # the reaction torque on the airframe is positive yaw (nose right).
        torque_z += geometry.spin_directions[index] * float(reaction_torques[index])
    return force, np.array([torque_x, torque_y, torque_z])

"""Environmental model: gravity, air density, wind and the ground plane.

The paper's flights take place indoors (Vicon-tracked lab), so wind defaults
to zero but gusts can be injected for robustness experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .state import GRAVITY

__all__ = ["Environment", "ConstantWind", "GustWind"]


class ConstantWind:
    """Constant wind field returning the same NED wind velocity everywhere."""

    def __init__(self, velocity_ned: np.ndarray | None = None) -> None:
        self.velocity_ned = (
            np.zeros(3) if velocity_ned is None else np.asarray(velocity_ned, dtype=float)
        )

    def at(self, time: float, position_ned: np.ndarray) -> np.ndarray:
        """Wind velocity at ``time`` and ``position_ned`` [m/s, NED]."""
        return self.velocity_ned.copy()


class GustWind:
    """Deterministic sinusoidal gust superimposed on a mean wind."""

    def __init__(
        self,
        mean_ned: np.ndarray | None = None,
        gust_amplitude: float = 0.5,
        gust_period: float = 3.0,
    ) -> None:
        if gust_period <= 0.0:
            raise ValueError("gust_period must be positive")
        self.mean_ned = np.zeros(3) if mean_ned is None else np.asarray(mean_ned, dtype=float)
        self.gust_amplitude = float(gust_amplitude)
        self.gust_period = float(gust_period)

    def at(self, time: float, position_ned: np.ndarray) -> np.ndarray:
        """Wind velocity at ``time`` [m/s, NED]; gust acts along North."""
        gust = self.gust_amplitude * np.sin(2.0 * np.pi * time / self.gust_period)
        return self.mean_ned + np.array([gust, 0.0, 0.0])


@dataclass
class Environment:
    """Environment the vehicle flies in.

    Attributes
    ----------
    gravity:
        Gravitational acceleration [m/s^2], acting along +Z in NED (down).
    air_density:
        Air density [kg/m^3] used for drag.
    ground_altitude:
        NED Z coordinate of the ground plane (0 means the origin is on the
        ground); the vehicle cannot descend below it.
    wind:
        Wind model with an ``at(time, position)`` method.
    """

    gravity: float = GRAVITY
    air_density: float = 1.225
    ground_altitude: float = 0.0
    wind: ConstantWind | GustWind = field(default_factory=ConstantWind)

    def gravity_vector(self) -> np.ndarray:
        """Gravity acceleration vector in the NED frame."""
        return np.array([0.0, 0.0, self.gravity])

    def wind_at(self, time: float, position_ned: np.ndarray) -> np.ndarray:
        """Wind velocity at the given time and position."""
        return self.wind.at(time, position_ned)

    def below_ground(self, position_ned: np.ndarray) -> bool:
        """True when the position is below the ground plane."""
        return float(position_ned[2]) > self.ground_altitude

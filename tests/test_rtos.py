"""Tests for the task model, the multicore FIFO scheduler and the RTA helper."""

import numpy as np
import pytest

from repro.memsys import DramModel, DramParameters, MemGuard, MemGuardConfig
from repro.rtos import (
    MulticoreScheduler,
    Task,
    TaskConfig,
    core_utilization,
    response_time_analysis,
)


def make_task(name="task", period=0.01, execution=0.001, priority=10, core=0,
              callback=None, accesses=0, stall=0.1, offset=0.0, dynamic_cost=None):
    return Task(
        TaskConfig(
            name=name,
            period=period,
            execution_time=execution,
            priority=priority,
            core=core,
            memory_stall_fraction=stall,
            accesses_per_job=accesses,
            offset=offset,
        ),
        callback=callback,
        dynamic_cost=dynamic_cost,
    )


class TestTaskConfig:
    def test_utilization(self):
        config = TaskConfig(name="t", period=0.01, execution_time=0.002, priority=1, core=0)
        assert config.utilization == pytest.approx(0.2)

    def test_access_rate(self):
        config = TaskConfig(name="t", period=0.01, execution_time=0.002, priority=1, core=0,
                            accesses_per_job=100)
        assert config.access_rate == pytest.approx(50000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskConfig(name="t", period=0.0, execution_time=0.001, priority=1, core=0)
        with pytest.raises(ValueError):
            TaskConfig(name="t", period=0.01, execution_time=-1.0, priority=1, core=0)
        with pytest.raises(ValueError):
            TaskConfig(name="t", period=0.01, execution_time=0.001, priority=1, core=0,
                       memory_stall_fraction=2.0)


class TestTaskReleases:
    def test_jobs_released_at_period(self):
        task = make_task(period=0.01)
        jobs = task.release_due_jobs(0.0)
        assert len(jobs) == 1
        assert task.next_release == pytest.approx(0.01)

    def test_offset_delays_first_release(self):
        task = make_task(offset=0.05)
        assert task.release_due_jobs(0.0) == []
        assert len(task.release_due_jobs(0.05)) == 1

    def test_skip_if_pending(self):
        task = make_task(period=0.01)
        jobs = task.release_due_jobs(0.0)
        assert len(jobs) == 1
        # The first job is still pending: the next two releases are skipped.
        assert task.release_due_jobs(0.025) == []
        assert task.stats.skipped_releases == 2

    def test_stopped_task_releases_nothing(self):
        task = make_task()
        task.stop()
        assert task.release_due_jobs(10.0) == []

    def test_zero_cost_job_completes_immediately(self):
        completions = []
        task = make_task(callback=completions.append, dynamic_cost=lambda now: (0.0, 0))
        assert task.release_due_jobs(0.0) == []
        assert completions == [0.0]
        assert task.stats.completed == 1

    def test_completion_statistics(self):
        task = make_task(period=0.01, execution=0.001)
        (job,) = task.release_due_jobs(0.0)
        task.complete_job(job, 0.003)
        assert task.stats.completed == 1
        assert task.stats.worst_response_time == pytest.approx(0.003)
        assert task.stats.deadline_misses == 0
        (job,) = task.release_due_jobs(0.01)
        task.complete_job(job, 0.05)
        assert task.stats.deadline_misses == 1


class TestScheduler:
    def test_single_task_completes_each_period(self):
        completions = []
        scheduler = MulticoreScheduler(num_cores=1)
        scheduler.add_task(make_task(period=0.01, execution=0.001, callback=completions.append))
        scheduler.advance(0.1)
        assert len(completions) == 10

    def test_rejects_task_on_missing_core(self):
        scheduler = MulticoreScheduler(num_cores=2)
        with pytest.raises(ValueError):
            scheduler.add_task(make_task(core=5))

    def test_duration_must_be_multiple_of_quantum(self):
        scheduler = MulticoreScheduler()
        with pytest.raises(ValueError):
            scheduler.advance(0.0015)

    def test_higher_priority_task_preempts(self):
        order = []
        scheduler = MulticoreScheduler(num_cores=1)
        scheduler.add_task(make_task(name="low", period=1.0, execution=0.0004, priority=1,
                                     callback=lambda t: order.append("low")))
        scheduler.add_task(make_task(name="high", period=1.0, execution=0.0004, priority=90,
                                     callback=lambda t: order.append("high")))
        scheduler.advance(0.01)
        assert order[0] == "high"

    def test_overloaded_core_starves_low_priority(self):
        scheduler = MulticoreScheduler(num_cores=1)
        high_completions = []
        low_completions = []
        scheduler.add_task(make_task(name="hog", period=0.001, execution=0.001, priority=50,
                                     callback=lambda t: high_completions.append(t)))
        scheduler.add_task(make_task(name="victim", period=0.01, execution=0.001, priority=10,
                                     callback=lambda t: low_completions.append(t)))
        scheduler.advance(0.5)
        assert len(high_completions) > 400
        assert len(low_completions) < 5

    def test_tasks_on_different_cores_run_independently(self):
        scheduler = MulticoreScheduler(num_cores=2)
        completions_a, completions_b = [], []
        scheduler.add_task(make_task(name="a", core=0, period=0.001, execution=0.001,
                                     callback=lambda t: completions_a.append(t)))
        scheduler.add_task(make_task(name="b", core=1, period=0.001, execution=0.0005,
                                     callback=lambda t: completions_b.append(t)))
        scheduler.advance(0.1)
        assert len(completions_a) == pytest.approx(100, abs=2)
        assert len(completions_b) == pytest.approx(100, abs=2)

    def test_idle_rates_reflect_load(self):
        scheduler = MulticoreScheduler(num_cores=2)
        scheduler.add_task(make_task(name="half-load", core=0, period=0.01, execution=0.005))
        scheduler.advance(1.0)
        idle = scheduler.idle_rates()
        assert idle[0] == pytest.approx(0.5, abs=0.05)
        assert idle[1] == pytest.approx(1.0, abs=0.01)

    def test_utilizations_complement_idle(self):
        scheduler = MulticoreScheduler(num_cores=1)
        scheduler.add_task(make_task(period=0.01, execution=0.002))
        scheduler.advance(1.0)
        assert scheduler.utilizations()[0] + scheduler.idle_rates()[0] == pytest.approx(1.0, abs=1e-6)

    def test_remove_task_stops_execution(self):
        completions = []
        scheduler = MulticoreScheduler(num_cores=1)
        scheduler.add_task(make_task(name="victim", callback=completions.append))
        scheduler.advance(0.02)
        count = len(completions)
        scheduler.remove_task("victim")
        scheduler.advance(0.1)
        assert len(completions) == count

    def test_task_lookup(self):
        scheduler = MulticoreScheduler()
        scheduler.add_task(make_task(name="findme"))
        assert scheduler.task("findme").name == "findme"
        with pytest.raises(KeyError):
            scheduler.task("missing")

    def test_completion_time_is_monotone_with_load(self):
        # The same task completes later when it shares its core with a hog.
        def run(with_hog: bool) -> float:
            scheduler = MulticoreScheduler(num_cores=1)
            completions = []
            scheduler.add_task(make_task(name="task", period=0.01, execution=0.002, priority=10,
                                         callback=completions.append))
            if with_hog:
                scheduler.add_task(make_task(name="hog", period=0.01, execution=0.006, priority=50))
            scheduler.advance(0.01)
            return completions[0]

        assert run(with_hog=True) > run(with_hog=False)


class TestMemoryCoupledScheduling:
    def test_memory_contention_stretches_execution(self):
        def completions_with_attacker(attacker: bool) -> int:
            dram = DramModel(DramParameters(peak_accesses_per_second=1e6, contention_gain=0.5))
            scheduler = MulticoreScheduler(num_cores=2, dram=dram)
            completions = []
            scheduler.add_task(make_task(name="victim", core=0, period=0.002, execution=0.0018,
                                         stall=0.6, accesses=200, callback=completions.append))
            if attacker:
                scheduler.add_task(make_task(name="attacker", core=1, period=0.001,
                                             execution=0.001, stall=0.9, accesses=5000))
            scheduler.advance(1.0)
            return len(completions)

        assert completions_with_attacker(True) < completions_with_attacker(False)

    def test_memguard_throttles_attacker_core(self):
        memguard = MemGuard(2, MemGuardConfig(period=0.001, budgets={1: 100}))
        scheduler = MulticoreScheduler(num_cores=2, memguard=memguard)
        scheduler.add_task(make_task(name="attacker", core=1, period=0.001, execution=0.001,
                                     stall=0.9, accesses=5000))
        scheduler.advance(0.1)
        assert memguard.throttle_events > 50
        # The attacker core spends most of its time throttled.
        assert scheduler.cores[1].throttled_time > 0.05

    def test_memguard_protects_victim_completion_rate(self):
        def victim_completions(with_memguard: bool) -> int:
            dram = DramModel(DramParameters(peak_accesses_per_second=1e6, contention_gain=0.5))
            memguard = MemGuard(2, MemGuardConfig(period=0.001, budgets={1: 50}))
            if not with_memguard:
                memguard.disable()
            scheduler = MulticoreScheduler(num_cores=2, dram=dram, memguard=memguard)
            completions = []
            scheduler.add_task(make_task(name="victim", core=0, period=0.002, execution=0.0018,
                                         stall=0.6, accesses=200, callback=completions.append))
            scheduler.add_task(make_task(name="attacker", core=1, period=0.001, execution=0.001,
                                         stall=0.9, accesses=5000))
            scheduler.advance(1.0)
            return len(completions)

        assert victim_completions(True) > victim_completions(False)


class TestResponseTimeAnalysis:
    def test_utilization_sum(self):
        tasks = [
            TaskConfig(name="a", period=0.01, execution_time=0.002, priority=2, core=0),
            TaskConfig(name="b", period=0.02, execution_time=0.004, priority=1, core=0),
        ]
        assert core_utilization(tasks) == pytest.approx(0.4)

    def test_schedulable_set(self):
        tasks = [
            TaskConfig(name="drivers", period=0.004, execution_time=0.0005, priority=90, core=0),
            TaskConfig(name="safety", period=0.004, execution_time=0.0004, priority=20, core=0),
        ]
        results = response_time_analysis(tasks)
        assert all(result.schedulable for result in results)
        # The lower-priority task's response time includes the driver interference.
        safety = next(result for result in results if result.task == "safety")
        assert safety.response_time >= 0.0009

    def test_unschedulable_set_detected(self):
        tasks = [
            TaskConfig(name="heavy", period=0.004, execution_time=0.003, priority=90, core=0),
            TaskConfig(name="light", period=0.004, execution_time=0.002, priority=10, core=0),
        ]
        results = response_time_analysis(tasks)
        light = next(result for result in results if result.task == "light")
        assert not light.schedulable

    def test_inflation_can_break_schedulability(self):
        tasks = [
            TaskConfig(name="a", period=0.004, execution_time=0.0015, priority=90, core=0),
            TaskConfig(name="b", period=0.004, execution_time=0.0015, priority=10, core=0),
        ]
        nominal = response_time_analysis(tasks)
        inflated = response_time_analysis(tasks, execution_inflation=2.0)
        assert all(result.schedulable for result in nominal)
        assert not all(result.schedulable for result in inflated)

    def test_rejects_deflation(self):
        with pytest.raises(ValueError):
            response_time_analysis([], execution_inflation=0.5)

"""Crash-boundary search: localize a threshold with O(log n) flights.

The paper's claims are *threshold* claims — a MemGuard budget, a flood rate
or an attack start time either keeps the drone inside its geofence or it
does not.  A dense :class:`~repro.campaign.grid.ScenarioGrid` probes such a
threshold with ``(hi - lo) / tolerance`` flights; :class:`BoundarySearch`
localizes it by bracketing + bisection in ``O(log((hi - lo) / tolerance))``
flights instead, while reusing the whole campaign machinery: probes are
ordinary :class:`~repro.campaign.grid.GridVariant`s executed by a
:class:`~repro.campaign.runner.CampaignRunner`, so they parallelise over the
process pool (``batch > 1``) and hit the content-addressed result store like
any grid cell.

Semantics and guarantees
------------------------

* The verdict predicate is assumed **monotone** along the axis between
  ``lo`` and ``hi`` (exactly one flip).  If the endpoints agree, there is no
  bracket and the search refuses to run.  If the response is non-monotone,
  the search converges to the *first* flip above ``lo``.
* On return, ``hi - lo <= tolerance`` (for integral axes: ``<=
  max(tolerance, 1)``), i.e. the boundary is pinned inside a bracket no
  wider than the tolerance; the midpoint estimate is off by at most half of
  it.
* With ``batch = k`` each refinement round flies ``k`` evenly spaced
  interior probes through the runner at once, shrinking the bracket by
  ``k + 1`` per round — bisection that still saturates a ``k``-worker pool.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from ..campaign.grid import (
    ATTACK_AXIS_PREFIX,
    AxisApplier,
    GridVariant,
    _axis_labels,
    resolve_applier,
)
from ..campaign.results import CampaignResult, VariantOutcome
from ..campaign.runner import CampaignRunner
from ..sim.scenario import FlightScenario
from . import predicates as _predicates
from .predicates import VerdictPredicate

__all__ = ["BoundaryBracketError", "BoundaryProbe", "BoundaryResult", "BoundarySearch"]

#: Built-in axes whose values are integer counts (probe values are rounded
#: and deduplicated instead of bisected to fractional values).
INTEGRAL_AXES = frozenset({"memguard_budget", "seed"})


class BoundaryBracketError(ValueError):
    """The endpoints of the search interval yield the same verdict."""


@dataclass(frozen=True)
class BoundaryProbe:
    """One probed axis value and its verdict."""

    value: float
    verdict: bool
    outcome: VariantOutcome


@dataclass(frozen=True)
class BoundaryResult:
    """Outcome of one boundary search.

    The final bracket ``[lo, hi]`` satisfies ``verdict(lo) == lo_verdict``
    and ``verdict(hi) == (not lo_verdict)``; the boundary lies inside it.
    """

    axis: str
    tolerance: float
    initial_lo: float
    initial_hi: float
    lo: float
    hi: float
    lo_verdict: bool
    probes: tuple[BoundaryProbe, ...]
    #: Probes that actually flew (cache hits excluded).
    flights: int
    cache_hits: int
    wall_time: float

    @property
    def boundary(self) -> float:
        """Midpoint estimate of the threshold (error <= ``width / 2``)."""
        return (self.lo + self.hi) / 2.0

    @property
    def width(self) -> float:
        """Width of the final bracket."""
        return self.hi - self.lo

    def campaign(self) -> CampaignResult:
        """All probe outcomes as a regular campaign result (probe order), so
        boundary flights export through the same CSV/JSON/cell machinery as
        grid cells."""
        return CampaignResult(
            outcomes=tuple(probe.outcome for probe in self.probes),
            wall_time=self.wall_time,
            cache_hits=self.cache_hits,
            cache_misses=self.flights,
        )

    # -- export ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable summary (see ``repro.analysis.export``)."""
        from ..analysis.export import boundary_to_dict

        return boundary_to_dict(self)

    def to_json(self, destination: Any = None, indent: int = 2) -> str:
        """Serialise :meth:`to_dict` as JSON, optionally writing a file."""
        import json
        from pathlib import Path

        from ..campaign.results import _json_default

        text = json.dumps(self.to_dict(), indent=indent, default=_json_default)
        if destination is not None:
            Path(destination).write_text(text + "\n")
        return text

    def to_markdown(self) -> str:
        """Markdown table of the probes and the localized boundary."""
        from ..analysis.report import format_boundary_table

        return format_boundary_table(self, markdown=True)

    def to_text(self) -> str:
        """Fixed-width text table of the probes and the localized boundary."""
        from ..analysis.report import format_boundary_table

        return format_boundary_table(self, markdown=False)


@dataclass(frozen=True)
class BoundarySearch:
    """Bracketing + bisection over one scalar axis of a scenario template.

    Attributes
    ----------
    scenario:
        Template every probe starts from (the swept axis is applied on top).
    axis:
        Axis name — anything a grid accepts: built-ins like
        ``memguard_budget`` or ``attack_start``, dynamic ``attack.<param>``
        axes (e.g. ``attack.packets_per_second``), registered customs, or an
        explicit ``applier``.
    lo / hi:
        Search interval; the verdicts at the two endpoints must differ.
    predicate:
        Verdict predicate (default: :func:`repro.adaptive.predicates.crashed`).
    tolerance:
        Requested maximal width of the final bracket (axis units).
    batch:
        Interior probes per refinement round (pool saturation knob).
    integral:
        Round probe values to integers; ``None`` auto-detects (built-in
        integer axes, or ``attack.<param>`` whose template value is an int).
    applier:
        Explicit axis applier, overriding name resolution.
    """

    scenario: FlightScenario
    axis: str
    lo: float
    hi: float
    tolerance: float
    predicate: VerdictPredicate = _predicates.crashed
    batch: int = 1
    integral: bool | None = None
    applier: AxisApplier | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.scenario, FlightScenario):
            raise TypeError("scenario must be a FlightScenario")
        if not self.lo < self.hi:
            raise ValueError("search interval requires lo < hi")
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if self.batch < 1:
            raise ValueError("batch must be at least 1")
        if self.hi - self.lo <= self.tolerance:
            raise ValueError(
                "search interval is already narrower than the tolerance; "
                "nothing to localize"
            )

    # -- public API --------------------------------------------------------------

    def dense_grid_size(self) -> int:
        """Flights of the equivalent dense sweep: probes every ``tolerance``
        step across ``[lo, hi]`` (the cost the bisection replaces)."""
        import math

        return int(math.ceil((self.hi - self.lo) / self.tolerance)) + 1

    def run(self, runner: CampaignRunner | None = None) -> BoundaryResult:
        """Localize the boundary; probes fly through ``runner`` (its store
        and backend apply)."""
        runner = runner if runner is not None else CampaignRunner()
        integral = self._integral()
        applier = self.applier if self.applier is not None else resolve_applier(self.axis)
        state = _SearchState(self, runner, applier, integral)
        start = time.perf_counter()

        lo, hi = float(self.lo), float(self.hi)
        if integral:
            lo, hi = float(round(lo)), float(round(hi))
        floor = max(self.tolerance, 1.0) if integral else self.tolerance

        lo_verdict, hi_verdict = state.evaluate([lo, hi])
        if lo_verdict == hi_verdict:
            raise BoundaryBracketError(
                f"no boundary bracketed: axis {self.axis!r} yields verdict "
                f"{lo_verdict} at both {lo:g} and {hi:g}; widen the interval "
                "or check the predicate's monotonicity"
            )

        while hi - lo > floor:
            values = self._interior_values(lo, hi, integral)
            if not values:
                break
            verdicts = state.evaluate(values)
            lo, hi, lo_verdict = self._shrink(
                lo, hi, lo_verdict, values, verdicts
            )

        return BoundaryResult(
            axis=self.axis,
            tolerance=self.tolerance,
            initial_lo=float(self.lo),
            initial_hi=float(self.hi),
            lo=lo,
            hi=hi,
            lo_verdict=lo_verdict,
            probes=tuple(state.probes),
            flights=state.flights,
            cache_hits=state.cache_hits,
            wall_time=time.perf_counter() - start,
        )

    # -- internal ----------------------------------------------------------------

    def _integral(self) -> bool:
        if self.integral is not None:
            return self.integral
        if self.axis in INTEGRAL_AXES:
            return True
        if self.axis.startswith(ATTACK_AXIS_PREFIX):
            param = self.axis[len(ATTACK_AXIS_PREFIX):]
            values = [
                getattr(attack, param)
                for attack in self.scenario.attacks
                if attack.has_param(param)
            ]
            return bool(values) and all(
                isinstance(value, int) and not isinstance(value, bool)
                for value in values
            )
        return False

    def _interior_values(self, lo: float, hi: float, integral: bool) -> list[float]:
        step = (hi - lo) / (self.batch + 1)
        values = [lo + step * index for index in range(1, self.batch + 1)]
        if integral:
            values = sorted({float(round(value)) for value in values})
        # Keep strictly interior points only: a value that rounds (integrally
        # or in floating point, once the bracket nears 1 ulp) onto an endpoint
        # cannot shrink the bracket, and re-probing it would loop forever.
        return [value for value in values if lo < value < hi]

    @staticmethod
    def _shrink(
        lo: float,
        hi: float,
        lo_verdict: bool,
        values: list[float],
        verdicts: list[bool],
    ) -> tuple[float, float, bool]:
        """New bracket: the first adjacent pair whose verdicts differ."""
        points = [(lo, lo_verdict)] + list(zip(values, verdicts))
        points.append((hi, not lo_verdict))
        for (left, left_verdict), (right, right_verdict) in zip(points, points[1:]):
            if left_verdict != right_verdict:
                return left, right, left_verdict
        raise AssertionError("bracket invariant violated")  # pragma: no cover

    def _make_variant(
        self, value: float, label: str, applier: AxisApplier, integral: bool
    ) -> GridVariant:
        probe_value: float | int = value
        if integral and float(value).is_integer():
            probe_value = int(value)
        scenario = applier(self.scenario, probe_value)
        if not isinstance(scenario, FlightScenario):
            raise TypeError(
                f"applier for axis {self.axis!r} returned "
                f"{type(scenario).__name__}, expected FlightScenario"
            )
        name = f"{self.scenario.name}/{self.axis}={label}"
        return GridVariant(
            name=name,
            axes=((self.axis, probe_value),),
            scenario=scenario.with_name(name),
        )


class _SearchState:
    """Mutable bookkeeping of one :meth:`BoundarySearch.run` invocation."""

    def __init__(
        self,
        search: BoundarySearch,
        runner: CampaignRunner,
        applier: AxisApplier,
        integral: bool,
    ) -> None:
        self.search = search
        self.runner = runner
        self.applier = applier
        self.integral = integral
        self.probes: list[BoundaryProbe] = []
        self.verdict_by_value: dict[float, bool] = {}
        self.flights = 0
        self.cache_hits = 0

    def evaluate(self, values: list[float]) -> list[bool]:
        """Fly the not-yet-probed values as one campaign batch; return the
        verdicts of *all* requested values (memoised ones included)."""
        fresh = [value for value in values if value not in self.verdict_by_value]
        if fresh:
            labels = _axis_labels(tuple(fresh))
            variants = [
                self.search._make_variant(value, label, self.applier, self.integral)
                for value, label in zip(fresh, labels)
            ]
            result = self.runner.run(variants)
            self.flights += len(variants) - result.cache_hits
            self.cache_hits += result.cache_hits
            for value, outcome in zip(fresh, result.outcomes):
                verdict = bool(self.search.predicate(outcome))
                self.verdict_by_value[value] = verdict
                self.probes.append(BoundaryProbe(
                    value=value, verdict=verdict, outcome=outcome,
                ))
        return [self.verdict_by_value[value] for value in values]

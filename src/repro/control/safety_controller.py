"""The safety controller: minimal verified controller running on the HCE.

Following the Simplex philosophy the safety controller implements only the
minimum set of modules critical to keeping the drone in a safe, controllable
state: attitude stabilisation, altitude hold and a gentle position hold toward
the mission setpoint.  It uses conservative gains and contains no mission
logic, no mode machinery and no estimator configuration options, which keeps
it small enough to be exhaustively tested (see ``tests/control``).

It consumes the same sensor data as the complex controller, but directly from
the HCE drivers rather than through the network interface, so a communication
DoS cannot starve it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dynamics.state import GRAVITY, angle_wrap
from ..estimation.attitude import ComplementaryFilter
from ..estimation.position import PositionEstimator
from ..sensors.barometer import BarometerReading
from ..sensors.imu import ImuReading
from ..sensors.mocap import MocapReading
from .allocator import ControlAllocation, QuadXAllocator
from .setpoints import ActuatorCommand, PositionSetpoint

__all__ = ["SafetyControllerConfig", "SafetyController"]


@dataclass(frozen=True)
class SafetyControllerConfig:
    """Conservative, fixed gains of the safety controller."""

    position_p: float = 0.5
    velocity_p: float = 1.2
    velocity_d: float = 0.15
    max_velocity: float = 1.0
    altitude_p: float = 1.0
    climb_rate_p: float = 2.5
    max_climb_rate: float = 0.8
    attitude_p: float = 5.0
    rate_p: float = 0.12
    rate_d: float = 0.002
    yaw_rate_p: float = 0.15
    max_tilt: float = np.deg2rad(15.0)
    hover_thrust: float = 0.58
    #: Nominal execution time of one safety-controller iteration [s].
    nominal_execution_time: float = 0.0004
    #: Fraction of the execution time stalled on memory under no contention.
    memory_stall_fraction: float = 0.15
    #: DRAM accesses issued per iteration (small, simple loop).
    memory_accesses_per_iteration: int = 1200


class SafetyController:
    """Minimal attitude + altitude + position-hold controller (runs on HCE)."""

    def __init__(self, config: SafetyControllerConfig | None = None) -> None:
        self.config = config or SafetyControllerConfig()
        self._attitude_filter = ComplementaryFilter()
        self._position_estimator = PositionEstimator()
        self._allocator = QuadXAllocator()
        self._setpoint = PositionSetpoint.hover_at(0.0, 0.0, 1.0)
        self._last_imu_time: float | None = None
        self._last_rates = np.zeros(3)
        self._sequence = 0

    @property
    def setpoint(self) -> PositionSetpoint:
        """Position the controller steers toward when engaged."""
        return self._setpoint

    @property
    def attitude_estimate(self):
        """Current attitude estimate (used by the security monitor)."""
        return self._attitude_filter.estimate

    @property
    def position_estimate(self):
        """Current position/velocity estimate."""
        return self._position_estimator.estimate

    def set_position_setpoint(self, setpoint: PositionSetpoint) -> None:
        """Set the hold position (normally the mission setpoint)."""
        self._setpoint = setpoint

    # -- sensor inputs (direct from HCE drivers) ---------------------------------

    def on_imu(self, reading: ImuReading, timestamp: float) -> None:
        """Consume one IMU sample from the HCE driver."""
        if self._last_imu_time is None:
            dt = 1.0 / 250.0
        else:
            dt = max(timestamp - self._last_imu_time, 1e-4)
        self._last_imu_time = timestamp
        self._attitude_filter.update(reading, dt)
        self._position_estimator.predict(dt)

    def on_baro(self, reading: BarometerReading, timestamp: float) -> None:
        """Consume one barometer sample from the HCE driver."""
        self._position_estimator.update_baro_altitude(reading.altitude_m)

    def on_mocap(self, reading: MocapReading, timestamp: float) -> None:
        """Consume one motion-capture fix from the HCE driver."""
        if reading.valid:
            self._position_estimator.update_mocap(reading.position_ned)
            self._attitude_filter.set_yaw(reading.yaw)

    def on_gps(self, position_ned: np.ndarray, timestamp: float) -> None:
        """Consume one GPS-derived local position fix from the HCE driver."""
        self._position_estimator.update_gps(position_ned)

    # -- control ----------------------------------------------------------------

    def compute(self, timestamp: float) -> ActuatorCommand:
        """Run one control iteration and return the actuator command."""
        config = self.config
        attitude = self._attitude_filter.estimate
        position = self._position_estimator.estimate

        # Horizontal position hold: P position loop -> PD velocity loop.
        position_error = self._setpoint.position[0:2] - position.position[0:2]
        velocity_setpoint = np.clip(
            config.position_p * position_error, -config.max_velocity, config.max_velocity
        )
        velocity_error = velocity_setpoint - position.velocity[0:2]
        acceleration = config.velocity_p * velocity_error - config.velocity_d * position.velocity[0:2]

        cos_yaw, sin_yaw = np.cos(attitude.yaw), np.sin(attitude.yaw)
        acc_body_x = cos_yaw * acceleration[0] + sin_yaw * acceleration[1]
        acc_body_y = -sin_yaw * acceleration[0] + cos_yaw * acceleration[1]
        pitch_setpoint = float(np.clip(-acc_body_x / GRAVITY, -config.max_tilt, config.max_tilt))
        roll_setpoint = float(np.clip(acc_body_y / GRAVITY, -config.max_tilt, config.max_tilt))

        # Altitude hold: P altitude loop -> P climb-rate loop -> thrust.
        altitude_error = float(self._setpoint.position[2] - position.position[2])
        climb_rate_setpoint = float(
            np.clip(config.altitude_p * altitude_error, -config.max_climb_rate, config.max_climb_rate)
        )
        climb_rate_error = climb_rate_setpoint - float(position.velocity[2])
        thrust = config.hover_thrust * (1.0 - config.climb_rate_p * climb_rate_error / GRAVITY)
        thrust = float(np.clip(thrust, 0.1, 0.9))

        # Attitude stabilisation: P attitude loop -> PD rate loop.
        rates = attitude.rates
        rate_setpoint = np.array(
            [
                config.attitude_p * angle_wrap(roll_setpoint - attitude.roll),
                config.attitude_p * angle_wrap(pitch_setpoint - attitude.pitch),
                config.attitude_p * 0.5 * angle_wrap(self._setpoint.yaw - attitude.yaw),
            ]
        )
        rate_error = rate_setpoint - rates
        rate_derivative = rates - self._last_rates
        self._last_rates = rates.copy()

        allocation = ControlAllocation(
            thrust=thrust,
            roll=float(config.rate_p * rate_error[0] - config.rate_d * rate_derivative[0]),
            pitch=float(config.rate_p * rate_error[1] - config.rate_d * rate_derivative[1]),
            yaw=float(config.yaw_rate_p * rate_error[2]),
        )
        motors = self._allocator.allocate(allocation)

        self._sequence += 1
        return ActuatorCommand(
            motors=motors, timestamp=timestamp, source="safety", sequence=self._sequence
        )

"""Rigid-body state representation and quaternion utilities.

The dynamics subpackage uses a North-East-Down (NED) world frame and a
Forward-Right-Down (FRD) body frame, matching the conventions of the PX4
autopilot that the paper's complex controller is based on.  Attitude is stored
as a unit quaternion ``[w, x, y, z]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "GRAVITY",
    "RigidBodyState",
    "quat_normalize",
    "quat_multiply",
    "quat_conjugate",
    "quat_rotate",
    "quat_rotate_inverse",
    "quat_from_euler",
    "quat_to_euler",
    "quat_to_rotation_matrix",
    "quat_derivative",
    "quat_from_axis_angle",
    "angle_wrap",
    "euler_error",
    "quat_normalize_batched",
    "quat_multiply_batched",
    "quat_conjugate_batched",
    "quat_rotate_batched",
    "quat_rotate_inverse_batched",
    "quat_from_euler_batched",
    "quat_to_euler_batched",
    "quat_derivative_batched",
    "angle_wrap_batched",
]

#: Standard gravity used throughout the simulator [m/s^2].
GRAVITY = 9.80665


def quat_normalize(q: np.ndarray) -> np.ndarray:
    """Return ``q`` scaled to unit norm.

    A zero quaternion is mapped to the identity rotation rather than raising,
    because numerical integration can transiently produce very small norms.
    """
    q = np.asarray(q, dtype=float)
    norm = np.linalg.norm(q)
    if norm < 1e-12:
        return np.array([1.0, 0.0, 0.0, 0.0])
    return q / norm


def quat_multiply(q1: np.ndarray, q2: np.ndarray) -> np.ndarray:
    """Hamilton product ``q1 ⊗ q2`` with ``[w, x, y, z]`` ordering."""
    w1, x1, y1, z1 = q1
    w2, x2, y2, z2 = q2
    return np.array(
        [
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
        ]
    )


def quat_conjugate(q: np.ndarray) -> np.ndarray:
    """Return the conjugate (inverse for unit quaternions) of ``q``."""
    return np.array([q[0], -q[1], -q[2], -q[3]])


def quat_rotate(q: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Rotate vector ``v`` from the body frame to the world frame by ``q``."""
    qv = np.array([0.0, v[0], v[1], v[2]])
    rotated = quat_multiply(quat_multiply(q, qv), quat_conjugate(q))
    return rotated[1:]


def quat_rotate_inverse(q: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Rotate vector ``v`` from the world frame to the body frame by ``q``."""
    return quat_rotate(quat_conjugate(q), v)


def quat_from_euler(roll: float, pitch: float, yaw: float) -> np.ndarray:
    """Build a quaternion from intrinsic Z-Y-X (yaw-pitch-roll) Euler angles."""
    cr, sr = math.cos(roll / 2.0), math.sin(roll / 2.0)
    cp, sp = math.cos(pitch / 2.0), math.sin(pitch / 2.0)
    cy, sy = math.cos(yaw / 2.0), math.sin(yaw / 2.0)
    return np.array(
        [
            cr * cp * cy + sr * sp * sy,
            sr * cp * cy - cr * sp * sy,
            cr * sp * cy + sr * cp * sy,
            cr * cp * sy - sr * sp * cy,
        ]
    )


def quat_to_euler(q: np.ndarray) -> tuple[float, float, float]:
    """Return ``(roll, pitch, yaw)`` in radians for quaternion ``q``."""
    w, x, y, z = quat_normalize(q)
    sinr_cosp = 2.0 * (w * x + y * z)
    cosr_cosp = 1.0 - 2.0 * (x * x + y * y)
    roll = math.atan2(sinr_cosp, cosr_cosp)

    sinp = 2.0 * (w * y - z * x)
    sinp = max(-1.0, min(1.0, sinp))
    pitch = math.asin(sinp)

    siny_cosp = 2.0 * (w * z + x * y)
    cosy_cosp = 1.0 - 2.0 * (y * y + z * z)
    yaw = math.atan2(siny_cosp, cosy_cosp)
    return roll, pitch, yaw


def quat_to_rotation_matrix(q: np.ndarray) -> np.ndarray:
    """Return the 3x3 body-to-world rotation matrix for quaternion ``q``."""
    w, x, y, z = quat_normalize(q)
    return np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
            [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
            [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
        ]
    )


def quat_derivative(q: np.ndarray, omega_body: np.ndarray) -> np.ndarray:
    """Time derivative of quaternion ``q`` given body angular rate ``omega_body``."""
    omega_quat = np.array([0.0, omega_body[0], omega_body[1], omega_body[2]])
    return 0.5 * quat_multiply(q, omega_quat)


def quat_from_axis_angle(axis: np.ndarray, angle: float) -> np.ndarray:
    """Quaternion rotating by ``angle`` radians about unit vector ``axis``."""
    axis = np.asarray(axis, dtype=float)
    norm = np.linalg.norm(axis)
    if norm < 1e-12:
        return np.array([1.0, 0.0, 0.0, 0.0])
    axis = axis / norm
    half = angle / 2.0
    return np.concatenate(([math.cos(half)], axis * math.sin(half)))


def angle_wrap(angle: float) -> float:
    """Wrap an angle to the interval ``(-pi, pi]``."""
    wrapped = math.fmod(angle + math.pi, 2.0 * math.pi)
    if wrapped <= 0.0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi


# -- batched variants --------------------------------------------------------
#
# The batch simulation core (:mod:`repro.sim.batch`) advances many flights in
# lockstep over arrays whose *leading* axes index the lane.  The helpers below
# mirror the scalar functions above formula-for-formula — same operation
# order, same degenerate-norm guard — and stay strictly elementwise over the
# lane axes: no matrix products, whose BLAS kernels reorder summation with
# operand shape and would make a lane's trajectory depend on the batch width.


def quat_normalize_batched(q: np.ndarray) -> np.ndarray:
    """Row-wise :func:`quat_normalize` for an ``(..., 4)`` quaternion stack."""
    q = np.asarray(q, dtype=float)
    norm = np.sqrt(
        q[..., 0] * q[..., 0]
        + q[..., 1] * q[..., 1]
        + q[..., 2] * q[..., 2]
        + q[..., 3] * q[..., 3]
    )
    degenerate = norm < 1e-12
    out = q / np.where(degenerate, 1.0, norm)[..., np.newaxis]
    if degenerate.any():
        out[degenerate] = np.array([1.0, 0.0, 0.0, 0.0])
    return out


def quat_multiply_batched(q1: np.ndarray, q2: np.ndarray) -> np.ndarray:
    """Row-wise Hamilton product for ``(..., 4)`` quaternion stacks."""
    w1, x1, y1, z1 = q1[..., 0], q1[..., 1], q1[..., 2], q1[..., 3]
    w2, x2, y2, z2 = q2[..., 0], q2[..., 1], q2[..., 2], q2[..., 3]
    shape = q1.shape if q1.shape == q2.shape else np.broadcast_shapes(q1.shape, q2.shape)
    out = np.empty(shape)
    out[..., 0] = w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2
    out[..., 1] = w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2
    out[..., 2] = w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2
    out[..., 3] = w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2
    return out


def quat_conjugate_batched(q: np.ndarray) -> np.ndarray:
    """Row-wise conjugate for an ``(..., 4)`` quaternion stack."""
    out = np.empty(q.shape)
    out[..., 0] = q[..., 0]
    out[..., 1] = -q[..., 1]
    out[..., 2] = -q[..., 2]
    out[..., 3] = -q[..., 3]
    return out


def quat_rotate_batched(q: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Row-wise body-to-world rotation of ``(..., 3)`` vectors by ``q``."""
    v = np.asarray(v, dtype=float)
    base = q.shape[:-1] if q.shape[:-1] == v.shape[:-1] else np.broadcast_shapes(
        q[..., 0].shape, v[..., 0].shape
    )
    qv = np.zeros(base + (4,))
    qv[..., 1] = v[..., 0]
    qv[..., 2] = v[..., 1]
    qv[..., 3] = v[..., 2]
    rotated = quat_multiply_batched(quat_multiply_batched(q, qv), quat_conjugate_batched(q))
    return rotated[..., 1:]


def quat_rotate_inverse_batched(q: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Row-wise world-to-body rotation of ``(..., 3)`` vectors by ``q``."""
    return quat_rotate_batched(quat_conjugate_batched(q), v)


def quat_from_euler_batched(
    roll: np.ndarray, pitch: np.ndarray, yaw: np.ndarray
) -> np.ndarray:
    """Row-wise :func:`quat_from_euler` for arrays of Euler angles."""
    cr, sr = np.cos(np.asarray(roll) / 2.0), np.sin(np.asarray(roll) / 2.0)
    cp, sp = np.cos(np.asarray(pitch) / 2.0), np.sin(np.asarray(pitch) / 2.0)
    cy, sy = np.cos(np.asarray(yaw) / 2.0), np.sin(np.asarray(yaw) / 2.0)
    out = np.empty(np.broadcast_shapes(cr.shape, cp.shape, cy.shape) + (4,))
    out[..., 0] = cr * cp * cy + sr * sp * sy
    out[..., 1] = sr * cp * cy - cr * sp * sy
    out[..., 2] = cr * sp * cy + sr * cp * sy
    out[..., 3] = cr * cp * sy - sr * sp * cy
    return out


def quat_to_euler_batched(
    q: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-wise :func:`quat_to_euler`; returns ``(roll, pitch, yaw)`` arrays."""
    q = quat_normalize_batched(q)
    w, x, y, z = q[..., 0], q[..., 1], q[..., 2], q[..., 3]
    roll = np.arctan2(2.0 * (w * x + y * z), 1.0 - 2.0 * (x * x + y * y))
    # minimum(maximum(...)) == clip here, with less call overhead.
    pitch = np.arcsin(np.minimum(np.maximum(2.0 * (w * y - z * x), -1.0), 1.0))
    yaw = np.arctan2(2.0 * (w * z + x * y), 1.0 - 2.0 * (y * y + z * z))
    return roll, pitch, yaw


def quat_derivative_batched(q: np.ndarray, omega_body: np.ndarray) -> np.ndarray:
    """Row-wise :func:`quat_derivative` for stacked states."""
    omega_quat = np.zeros(omega_body[..., 0].shape + (4,))
    omega_quat[..., 1] = omega_body[..., 0]
    omega_quat[..., 2] = omega_body[..., 1]
    omega_quat[..., 3] = omega_body[..., 2]
    return 0.5 * quat_multiply_batched(q, omega_quat)


def angle_wrap_batched(angle: np.ndarray) -> np.ndarray:
    """Elementwise :func:`angle_wrap` (``np.fmod`` matches ``math.fmod``)."""
    wrapped = np.fmod(np.asarray(angle, dtype=float) + math.pi, 2.0 * math.pi)
    wrapped = np.where(wrapped <= 0.0, wrapped + 2.0 * math.pi, wrapped)
    return wrapped - math.pi


def euler_error(actual: tuple[float, float, float],
                desired: tuple[float, float, float]) -> tuple[float, float, float]:
    """Wrapped per-axis attitude error ``desired - actual`` in radians."""
    return (
        angle_wrap(desired[0] - actual[0]),
        angle_wrap(desired[1] - actual[1]),
        angle_wrap(desired[2] - actual[2]),
    )


@dataclass
class RigidBodyState:
    """Full rigid-body state of the vehicle.

    Attributes
    ----------
    position:
        NED position of the centre of mass in metres.
    velocity:
        NED velocity in metres per second.
    quaternion:
        Body-to-world attitude quaternion ``[w, x, y, z]``.
    angular_velocity:
        Body-frame angular rates ``[p, q, r]`` in radians per second.
    """

    position: np.ndarray = field(default_factory=lambda: np.zeros(3))
    velocity: np.ndarray = field(default_factory=lambda: np.zeros(3))
    quaternion: np.ndarray = field(default_factory=lambda: np.array([1.0, 0.0, 0.0, 0.0]))
    angular_velocity: np.ndarray = field(default_factory=lambda: np.zeros(3))

    def copy(self) -> "RigidBodyState":
        """Return a deep copy of the state."""
        return RigidBodyState(
            position=self.position.copy(),
            velocity=self.velocity.copy(),
            quaternion=self.quaternion.copy(),
            angular_velocity=self.angular_velocity.copy(),
        )

    @property
    def euler(self) -> tuple[float, float, float]:
        """Attitude as ``(roll, pitch, yaw)`` in radians."""
        return quat_to_euler(self.quaternion)

    @property
    def altitude(self) -> float:
        """Altitude above the NED origin in metres (positive up)."""
        return -float(self.position[2])

    def as_vector(self) -> np.ndarray:
        """Flatten the state into a 13-element vector (pos, vel, quat, rates)."""
        return np.concatenate(
            [self.position, self.velocity, self.quaternion, self.angular_velocity]
        )

    @classmethod
    def from_vector(cls, vector: np.ndarray) -> "RigidBodyState":
        """Rebuild a state from a 13-element vector produced by :meth:`as_vector`."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (13,):
            raise ValueError(f"state vector must have 13 elements, got {vector.shape}")
        return cls(
            position=vector[0:3].copy(),
            velocity=vector[3:6].copy(),
            quaternion=quat_normalize(vector[6:10]),
            angular_velocity=vector[10:13].copy(),
        )

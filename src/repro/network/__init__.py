"""Simulated network substrate: UDP, namespaces, docker0 bridge, iptables."""

from .iptables import IptablesFirewall, RateLimitRule, TokenBucket
from .stack import CONTAINER_NAMESPACE, HOST_NAMESPACE, NetworkStack, NetworkStats
from .udp import Datagram, SocketAddress, SocketStats, UdpEndpoint

__all__ = [
    "CONTAINER_NAMESPACE",
    "Datagram",
    "HOST_NAMESPACE",
    "IptablesFirewall",
    "NetworkStack",
    "NetworkStats",
    "RateLimitRule",
    "SocketAddress",
    "SocketStats",
    "TokenBucket",
    "UdpEndpoint",
]

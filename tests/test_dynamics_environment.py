"""Tests for the environment, wind models and fixed-step integrators."""

import numpy as np
import pytest

from repro.dynamics import ConstantWind, Environment, GustWind, euler_step, rk4_step
from repro.dynamics.integrators import INTEGRATORS


class TestWindModels:
    def test_constant_wind_returns_same_everywhere(self):
        wind = ConstantWind(np.array([1.0, -2.0, 0.0]))
        assert np.allclose(wind.at(0.0, np.zeros(3)), [1.0, -2.0, 0.0])
        assert np.allclose(wind.at(100.0, np.ones(3) * 50.0), [1.0, -2.0, 0.0])

    def test_constant_wind_defaults_to_calm(self):
        assert np.allclose(ConstantWind().at(5.0, np.zeros(3)), 0.0)

    def test_gust_wind_oscillates_about_mean(self):
        wind = GustWind(mean_ned=np.array([2.0, 0.0, 0.0]), gust_amplitude=1.0, gust_period=4.0)
        at_zero = wind.at(0.0, np.zeros(3))
        at_quarter = wind.at(1.0, np.zeros(3))
        assert at_zero[0] == pytest.approx(2.0)
        assert at_quarter[0] == pytest.approx(3.0)

    def test_gust_wind_rejects_bad_period(self):
        with pytest.raises(ValueError):
            GustWind(gust_period=0.0)


class TestEnvironment:
    def test_gravity_vector_points_down(self):
        env = Environment()
        gravity = env.gravity_vector()
        assert gravity[2] > 9.0
        assert gravity[0] == gravity[1] == 0.0

    def test_below_ground_detection(self):
        env = Environment()
        assert env.below_ground(np.array([0.0, 0.0, 0.5]))
        assert not env.below_ground(np.array([0.0, 0.0, -0.5]))

    def test_wind_at_delegates_to_model(self):
        env = Environment(wind=ConstantWind(np.array([0.0, 3.0, 0.0])))
        assert np.allclose(env.wind_at(1.0, np.zeros(3)), [0.0, 3.0, 0.0])


class TestIntegrators:
    def test_registry_contains_both_schemes(self):
        assert set(INTEGRATORS) == {"euler", "rk4"}

    def test_euler_linear_system(self):
        # y' = -y, y(0) = 1 -> y(dt) ~ 1 - dt
        y = np.array([1.0])
        result = euler_step(lambda t, y: -y, 0.0, y, 0.1)
        assert result[0] == pytest.approx(0.9)

    def test_rk4_matches_exponential_closely(self):
        y = np.array([1.0])
        dt = 0.1
        for step in range(10):
            y = rk4_step(lambda t, y: -y, step * dt, y, dt)
        assert y[0] == pytest.approx(np.exp(-1.0), rel=1e-6)

    def test_rk4_is_more_accurate_than_euler(self):
        def decay(t, y):
            return -y

        y_euler = np.array([1.0])
        y_rk4 = np.array([1.0])
        dt = 0.05
        for step in range(20):
            y_euler = euler_step(decay, step * dt, y_euler, dt)
            y_rk4 = rk4_step(decay, step * dt, y_rk4, dt)
        exact = np.exp(-1.0)
        assert abs(y_rk4[0] - exact) < abs(y_euler[0] - exact)

    def test_rk4_exact_for_constant_acceleration(self):
        # State [position, velocity] with constant acceleration 2.
        def f(t, y):
            return np.array([y[1], 2.0])

        y = np.array([0.0, 0.0])
        y = rk4_step(f, 0.0, y, 1.0)
        assert y[0] == pytest.approx(1.0)
        assert y[1] == pytest.approx(2.0)

"""Content-addressed, directory-backed store of per-flight campaign results.

Layout: one JSON document per flown scenario under
``<root>/<key[:2]>/<key>.json`` (git-style fan-out so a directory never holds
millions of entries), where ``key`` is :func:`~repro.store.keys.cache_key` of
the scenario.  Optional bulky payloads (trajectory arrays) live next to the
JSON cell as ``<key>.npz``.

Only *successful* outcomes are persisted: a variant that raised may have
failed for a transient reason (a broken pool, an out-of-memory kill), and a
sticky cached failure would silently poison every later campaign.  Corrupt
or unreadable entries are treated as misses, deleted, and re-flown — the
store is a cache, never an authority.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from .keys import VERSION_SALT, cache_key

if TYPE_CHECKING:
    from ..campaign.grid import GridVariant

__all__ = ["CampaignStore", "StoreStats"]

#: Schema version of the stored JSON cells; bump on incompatible layout
#: changes (old cells then read as corrupt and are re-flown).
_FORMAT = 1


@dataclass
class StoreStats:
    """Lookup/write accounting of one :class:`CampaignStore` instance."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    writes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "corrupt": self.corrupt, "writes": self.writes}


@dataclass
class CampaignStore:
    """Persistent cache of :class:`~repro.campaign.results.VariantOutcome`s.

    Parameters
    ----------
    root:
        Directory holding the cells (created on first use).
    salt:
        Version salt mixed into every key; defaults to
        :data:`~repro.store.keys.VERSION_SALT`.  Results stored under a
        different salt are invisible — stale generations are simply never
        hit, so a salt bump needs no explicit invalidation pass.
    """

    root: Path
    salt: str = VERSION_SALT
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- keys and paths ----------------------------------------------------------

    def key_for(self, variant: "GridVariant") -> str:
        """Cache key of a variant (content hash of its scenario + salt)."""
        return cache_key(variant.scenario, salt=self.salt)

    def path_for(self, key: str) -> Path:
        """Path of the JSON cell for ``key``."""
        return self.root / key[:2] / f"{key}.json"

    # -- outcome cells -----------------------------------------------------------

    def get(self, variant: "GridVariant") -> "Any | None":
        """Cached outcome for ``variant``, or ``None`` on miss.

        A hit is rebuilt around the *live* variant's name/axes (they are
        grid-level metadata, not flight content — the key deliberately
        excludes the scenario name, so a hit may come from a flight flown
        under a different label), carrying the cached summary and the
        original flight's wall time.  Corrupt cells count in
        ``stats.corrupt``, are deleted and reported as misses.
        """
        from ..campaign.results import SUMMARY_FIELDS, VariantOutcome

        key = self.key_for(variant)
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError):
            self._drop_corrupt(path)
            return None
        if (
            not isinstance(payload, Mapping)
            or payload.get("format") != _FORMAT
            or payload.get("key") != key
            or not isinstance(payload.get("summary"), Mapping)
            or not set(SUMMARY_FIELDS) <= set(payload["summary"])
            or not isinstance(payload.get("wall_time", 0.0), (int, float))
            or isinstance(payload.get("wall_time", 0.0), bool)
        ):
            self._drop_corrupt(path)
            return None
        self.stats.hits += 1
        summary = dict(payload["summary"])
        summary["scenario"] = variant.scenario.name
        return VariantOutcome(
            name=variant.name,
            axes=variant.axes,
            seed=variant.scenario.seed,
            summary=summary,
            error=None,
            wall_time=float(payload.get("wall_time", 0.0)),
            cached=True,
        )

    def put(self, variant: "GridVariant", outcome: "Any") -> bool:
        """Persist a successful outcome; returns ``True`` when written.

        Failed outcomes (``outcome.error`` set) and outcomes that were
        themselves served from a store are skipped.
        """
        from ..campaign.results import _json_default

        if outcome.error is not None or outcome.summary is None or outcome.cached:
            return False
        key = self.key_for(variant)
        path = self.path_for(key)
        payload = {
            "format": _FORMAT,
            "key": key,
            "salt": self.salt,
            "scenario": variant.scenario.name,
            "summary": outcome.summary,
            "wall_time": outcome.wall_time,
        }
        self._write_atomic(path, json.dumps(payload, indent=2, default=_json_default))
        self.stats.writes += 1
        return True

    # -- trajectory arrays -------------------------------------------------------

    def put_arrays(self, variant: "GridVariant", **arrays: Any) -> Path:
        """Persist named numpy arrays (e.g. trajectory traces) for a variant.

        The arrays ride alongside the JSON cell as ``<key>.npz``; they are
        optional payload — :meth:`get` never requires them.
        """
        import numpy as np

        path = self.path_for(self.key_for(variant)).with_suffix(".npz")
        path.parent.mkdir(parents=True, exist_ok=True)
        with tempfile.NamedTemporaryFile(
            dir=path.parent, suffix=".tmp", delete=False
        ) as handle:
            np.savez_compressed(handle, **arrays)
            temp_name = handle.name
        os.replace(temp_name, path)
        return path

    def has_arrays(self, variant: "GridVariant") -> bool:
        """Cheap validity probe for a variant's array payload.

        Opens the archive and lists its members without decompressing the
        payload (``np.load`` is lazy), so warm-run validation of a large
        campaign does not re-read every trajectory.  An archive that fails
        to open is dropped and counted like :meth:`get_arrays` would.
        """
        import numpy as np

        path = self.path_for(self.key_for(variant)).with_suffix(".npz")
        if not path.exists():
            return False
        try:
            with np.load(path) as archive:
                return len(archive.files) > 0
        except (OSError, ValueError):
            path.unlink(missing_ok=True)
            self.stats.corrupt += 1
            return False

    def get_arrays(self, variant: "GridVariant") -> dict[str, Any] | None:
        """Load the arrays stored for a variant, or ``None`` when absent."""
        import numpy as np

        path = self.path_for(self.key_for(variant)).with_suffix(".npz")
        if not path.exists():
            return None
        try:
            with np.load(path) as archive:
                return {name: archive[name] for name in archive.files}
        except (OSError, ValueError):
            path.unlink(missing_ok=True)
            self.stats.corrupt += 1
            return None

    # -- maintenance -------------------------------------------------------------

    def __len__(self) -> int:
        """Number of stored JSON cells (all salts)."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cell (and array payload); returns the cell count.

        The fan-out subdirectories are removed too once empty — a cleared
        store leaves no skeleton of hundreds of two-character directories
        behind (foreign files someone parked in the tree are kept, and
        their directories with them).
        """
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*"):
            # Only delete what the store writes: cells (.json), array
            # payloads (.npz) and torn temp files from killed writes.
            if path.is_dir() or path.suffix not in (".json", ".npz", ".tmp"):
                continue
            if path.suffix == ".json":
                removed += 1
            path.unlink()
        for subdir in self.root.iterdir():
            if subdir.is_dir():
                try:
                    subdir.rmdir()
                except OSError:
                    pass  # holds something we did not create
        return removed

    # -- internal ----------------------------------------------------------------

    def _drop_corrupt(self, path: Path) -> None:
        self.stats.corrupt += 1
        self.stats.misses += 1
        try:
            path.unlink()
        except OSError:
            pass

    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        """Write via rename so a killed campaign never leaves a torn cell
        (a half-written JSON would read as corruption on resume, which is
        safe but wastes a flight)."""
        path.parent.mkdir(parents=True, exist_ok=True)
        with tempfile.NamedTemporaryFile(
            "w", dir=path.parent, suffix=".tmp", delete=False
        ) as handle:
            handle.write(text)
            handle.write("\n")
            temp_name = handle.name
        os.replace(temp_name, path)

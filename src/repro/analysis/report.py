"""Text rendering of the reproduced tables and figures.

The benchmark harness prints the same rows/series the paper reports; these
helpers format them consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..sim.metrics import FlightMetrics

if TYPE_CHECKING:
    from ..adaptive.search import BoundaryResult
    from ..campaign.results import CampaignResult

__all__ = [
    "format_table",
    "format_markdown_table",
    "format_figure_summary",
    "format_overhead_table",
    "format_boundary_table",
    "format_campaign_table",
]


def format_table(headers: list[str], rows: list[list[str]], title: str | None = None) -> str:
    """Render a simple fixed-width text table."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def format_markdown_table(
    headers: list[str], rows: list[list[str]], title: str | None = None
) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("| " + " | ".join("---" for _ in headers) + " |")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def _format_optional(value: float | None, pattern: str = "{:.2f}") -> str:
    return pattern.format(value) if value is not None else "-"


def format_campaign_table(campaign: "CampaignResult", markdown: bool = False) -> str:
    """Render the per-cell aggregates of a campaign as a table.

    One row per grid cell (combination of non-seed axes); the seeds of a cell
    are replicates aggregated into crash/recovery rates and deviation stats.
    """
    headers = [
        "Cell", "Runs", "Failed", "Crash rate", "Mean maxdev",
        "Worst maxdev", "Mean latency", "Recovery rate",
    ]
    rows = []
    for cell in campaign.cells():
        rows.append([
            cell.label(),
            str(cell.runs),
            str(cell.failures),
            _format_optional(cell.crash_rate, "{:.0%}"),
            _format_optional(cell.mean_max_deviation, "{:.2f} m"),
            _format_optional(cell.worst_max_deviation, "{:.2f} m"),
            _format_optional(cell.mean_recovery_latency, "{:.2f} s"),
            _format_optional(cell.recovery_rate, "{:.0%}"),
        ])
    crash_rate = campaign.crash_rate()
    extras = ""
    if campaign.cache_hits:
        extras += f", {campaign.cache_hits} from cache"
    title = (
        f"Campaign summary ({len(campaign)} flights, "
        f"{len(campaign.failures())} failed, crash rate "
        f"{f'{crash_rate:.0%}' if crash_rate is not None else 'n/a'}{extras})"
    )
    renderer = format_markdown_table if markdown else format_table
    table = renderer(headers, rows, title=title)
    if campaign.fallback_reason is not None:
        table += f"\n\nexecutor fell back to serial: {campaign.fallback_reason}"
    return table


def format_boundary_table(result: "BoundaryResult", markdown: bool = False) -> str:
    """Render a boundary search: one row per probe (sorted by axis value)
    plus the localized bracket in the title.

    The verdict column shows which side of the boundary the probe landed on;
    cached probes are marked so a resumed search is legible.
    """
    headers = [result.axis, "Verdict", "Crashed", "Max dev", "Latency", "Cached"]
    rows = []
    for probe in sorted(result.probes, key=lambda probe: probe.value):
        summary = probe.outcome.summary or {}
        rows.append([
            f"{probe.value:g}",
            "fail" if probe.verdict else "ok",
            "yes" if summary.get("crashed") else "no",
            _format_optional(summary.get("max_deviation"), "{:.2f} m"),
            _format_optional(summary.get("recovery_latency"), "{:.2f} s"),
            "yes" if probe.outcome.cached else "no",
        ])
    title = (
        f"Boundary search on {result.axis!r}: boundary in "
        f"[{result.lo:g}, {result.hi:g}] (estimate {result.boundary:g}, "
        f"width {result.width:g} <= tolerance {result.tolerance:g}) after "
        f"{result.flights} flight(s)"
        + (f" + {result.cache_hits} cached" if result.cache_hits else "")
    )
    renderer = format_markdown_table if markdown else format_table
    return renderer(headers, rows, title=title)


def format_overhead_table(results: dict[str, list[float]]) -> str:
    """Render the Table II style idle-rate comparison."""
    headers = ["Case"] + [f"CPU{core}" for core in range(len(next(iter(results.values()))))]
    rows = [
        [case] + [f"{rate:.2f}" for rate in rates]
        for case, rates in results.items()
    ]
    return format_table(headers, rows, title="System overhead comparison (CPU idle rates)")


def format_figure_summary(name: str, metrics: FlightMetrics, expectation: str) -> str:
    """One-paragraph summary comparing a reproduced figure to the paper's claim."""
    return (
        f"{name}: {metrics.summary()}\n"
        f"  paper expectation: {expectation}"
    )

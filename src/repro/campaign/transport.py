"""JSON-lines-over-TCP work-queue transport for hosts that share no filesystem.

The :class:`~repro.campaign.workqueue.FileWorkQueue` makes "distributed" mean
"anything that shares a directory".  This module removes the shared-directory
requirement: :class:`SocketWorkQueue` is a coordinator-hosted TCP server whose
in-memory state implements the same
:class:`~repro.campaign.workqueue.WorkQueue` protocol, and
:class:`SocketWorkQueueClient` is the worker side used by
``python -m repro.campaign.worker --connect host:port``.

The queue state, request handling and worker-side client logic are
transport-agnostic: :class:`NetworkWorkQueue` / :class:`NetworkWorkQueueClient`
carry everything except the wire, and the HTTP transport
(:mod:`repro.campaign.transport_http`) reuses them verbatim — parity between
the network transports is inheritance, not duplication.

Wire protocol: one request per connection, one JSON object per line; task
payloads and results are pickled and base64-encoded inside the JSON (the same
trust model as the file queue — only run workers you would also hand a pickle
file to).  Operations mirror the queue protocol::

    {"op": "claim", "worker": "w123"}
        -> {"ok": true, "index": 3, "run": "r...", "payload": "<b64>",
            "lease": "<token>"}
        -> {"ok": true, "index": null}           # nothing pending
    {"op": "heartbeat", "lease": "<token>"}      -> {"ok": true}
    {"op": "complete", "index": 3, "run": "r...",
     "lease": "<token>", "result": "<b64>"}      -> {"ok": true}
    {"op": "stop"}                               -> {"ok": true, "stop": false}
    {"op": "retire"}                             -> {"ok": true, "retire": false}
    {"op": "ping"}                               -> {"ok": true, "protocol": 2,
                                                     "mode": "campaign",
                                                     "service": false}

**Authentication** — a coordinator constructed with ``auth_token`` requires
every request to carry a matching ``"token"`` field (compared in constant
time via :func:`hmac.compare_digest`).  Unauthenticated requests are answered
with the *distinct* response ``{"ok": false, "denied": "auth", ...}`` — never
the generic degrade path — and the client raises
:class:`~repro.campaign.workqueue.WorkQueueAuthError` so a misconfigured
worker exits with a clear message instead of retry-looping.  The token never
appears in logs, error messages or results.

Fault semantics match the file transport exactly:

* **Heartbeat leases** — the server timestamps every heartbeat;
  ``reclaim_expired`` moves stale claims back into the pending set and the
  task is re-issued.  A worker whose TCP connection dies mid-task simply
  stops heartbeating — the disconnect *is* the missed heartbeat.
* **Run namespacing** — ``complete`` messages carry the run id the task was
  claimed under; a server ignores results of other runs, so a worker of a
  killed previous campaign finishing late cannot smuggle its outcome into a
  new run listening on the same port.
* **Orphan detection** — there is no coordinator heartbeat file; server
  *reachability* is the heartbeat.  The client tracks its last successful
  round trip and reports the elapsed time as ``coordinator_age()``, so the
  worker's standard orphan timeout applies unchanged.  Transient
  unreachability (a coordinator restarting) merely degrades: ``claim``
  returns ``None``, ``stop_requested`` returns ``False``, and the worker
  keeps polling until the server is back or the orphan timeout expires.
"""

from __future__ import annotations

import base64
import hmac
import json
import logging
import pickle
import socket
import socketserver
import threading
import time
import uuid
from typing import Any, Iterable, NamedTuple, Sequence

from ..obs import MetricsRegistry
from .workqueue import (
    _DEFAULT_RUN,
    PROTOCOL_VERSION,
    WorkQueueAuthError,
    WorkQueueProtocolError,
    validate_run_id,
)

logger = logging.getLogger(__name__)

__all__ = [
    "NetworkWorkQueue",
    "NetworkWorkQueueClient",
    "SocketWorkQueue",
    "SocketWorkQueueClient",
    "parse_address",
]


def parse_address(text: str) -> tuple[str, int]:
    """Split ``host:port`` (IPv6 hosts may be bracketed: ``[::1]:9000``)."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address {text!r} must be host:port")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"address {text!r} has a non-numeric port") from None
    return host.strip("[]"), port


def _encode(value: Any) -> str:
    return base64.b64encode(pickle.dumps(value)).decode("ascii")


def _decode(blob: str) -> Any:
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


class _Lease(NamedTuple):
    """Client-side lease handle: opaque to the worker loop, it carries the
    token plus the run id the task must be answered under."""

    token: str
    run: str
    index: int


class _Claim:
    """Server-side record of one leased task (of one hosted run)."""

    __slots__ = ("run", "index", "payload", "worker_id", "last_beat")

    def __init__(
        self, run: str, index: int, payload: bytes, worker_id: str
    ) -> None:
        self.run = run
        self.index = index
        self.payload = payload
        self.worker_id = worker_id
        self.last_beat = time.time()


class _RunState:
    """Queue state of one hosted run: the unit a service-mode coordinator
    multiplies.  A single-campaign coordinator hosts exactly one."""

    __slots__ = ("run_id", "pending", "results", "cancelled", "created",
                 "enqueued_total")

    def __init__(self, run_id: str) -> None:
        self.run_id = run_id
        self.pending: dict[int, bytes] = {}
        self.results: dict[int, Any] = {}
        self.cancelled = False
        self.created = time.time()
        self.enqueued_total = 0


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via the client
        line = self.rfile.readline()
        if not line:
            return
        try:
            request = json.loads(line)
            response = self.server.work_queue._handle(request)
        except Exception as exc:
            response = {"ok": False, "error": repr(exc)}
        try:
            self.wfile.write((json.dumps(response) + "\n").encode("ascii"))
        except OSError:
            pass  # client went away mid-response; its next poll retries


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    work_queue: "NetworkWorkQueue"


class NetworkWorkQueue:
    """In-memory coordinator-side work queue served over a network transport.

    Everything except the wire lives here: the per-run pending/claimed/result
    state, every :class:`~repro.campaign.workqueue.WorkQueue` method, the
    request dispatcher (:meth:`_handle`) and the shared-secret check.
    Subclasses only provide the server: :meth:`_make_server` returns a
    started-ready ``socketserver`` instance whose handler feeds requests to
    :meth:`_handle` (:class:`SocketWorkQueue` speaks JSON lines over raw
    TCP, :class:`~repro.campaign.transport_http.HttpWorkQueue` speaks
    HTTP/JSON).

    **Runs, not campaigns, are the unit of state.**  The queue hosts a
    registry of :class:`_RunState` — one per run id — and claims hand out
    tasks of *whichever* non-cancelled run has work (round-robin across
    runs, lowest index within a run), so one attached worker fleet serves
    every hosted run and keeps serving when any single run drains.  A
    single-campaign coordinator (:class:`~repro.campaign.backends.
    DistributedBackend`) hosts exactly one run — the *default* run bound to
    the plain :class:`~repro.campaign.workqueue.WorkQueue` protocol methods
    (``enqueue``/``collect``/``reset``/...), which preserves their
    one-campaign semantics verbatim — while the campaign service
    (:mod:`repro.campaign.service`) adds and retires runs on the fly via
    :meth:`add_run` / :meth:`cancel_run` / :meth:`remove_run`.

    Lifecycle is split accordingly: :meth:`request_stop` raises the
    *transport-level* sentinel ("this coordinator is going away, workers
    may exit"), while cancelling or completing a run never touches it — a
    drained run must not send a shared fleet home while sibling runs still
    have work.

    Task payloads are pickled at :meth:`enqueue` time (like the file
    transport, so an unpicklable payload fails loudly in the coordinator,
    not silently on a worker) and kept in memory; nothing touches disk.

    With ``auth_token`` set — a single token or a small accepted set
    (primary first, then still-valid previous tokens; see
    :meth:`rotate_auth_token`) — every wire request must carry a matching
    token; in-process calls (the coordinator's own) bypass the wire and
    need none.
    """

    #: Ping/status self-description: a plain campaign coordinator or a
    #: persistent multi-run service daemon.
    _MODES = ("campaign", "service")

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        run_id: str | None = None,
        auth_token: str | Sequence[str] | None = None,
        mode: str = "campaign",
    ) -> None:
        if run_id is not None:
            validate_run_id(run_id)
        if mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}, got {mode!r}")
        if isinstance(auth_token, str):
            auth_token = (auth_token,)
        elif auth_token is not None:
            auth_token = tuple(auth_token)
        if auth_token is not None and (
            not auth_token or not all(auth_token)
        ):
            raise ValueError("auth tokens must be non-empty strings")
        self.run_id = run_id or _DEFAULT_RUN
        self.mode = mode
        self._auth_tokens = auth_token
        self._lock = threading.Lock()
        self._runs: dict[str, _RunState] = {
            self.run_id: _RunState(self.run_id)
        }
        self._claims: dict[str, _Claim] = {}
        self._rotation = 0
        self._stop = False
        self._retire_credits = 0
        self._started = time.time()
        # Unlike the directory queue, every operation of every worker flows
        # through this server, so these counters are authoritative for the
        # whole run — the HTTP transport serves them at ``GET /metrics``.
        self.metrics = MetricsRegistry()
        self._m_enqueued = self.metrics.counter(
            "repro_queue_enqueued_total", "Tasks enqueued on this coordinator.")
        self._m_claims = self.metrics.counter(
            "repro_queue_claims_total", "Task leases issued.")
        self._m_completions = self.metrics.counter(
            "repro_queue_completions_total", "Results accepted (any run id).")
        self._m_heartbeats = self.metrics.counter(
            "repro_queue_heartbeats_total", "Lease heartbeats received.")
        self._m_reissues = self.metrics.counter(
            "repro_queue_lease_reissues_total", "Expired leases re-queued.")
        self._m_denied = self.metrics.counter(
            "repro_queue_auth_denials_total",
            "Wire requests rejected by the shared-secret check.")
        self._g_pending = self.metrics.gauge(
            "repro_queue_pending", "Tasks awaiting a claim right now.")
        self._g_claimed = self.metrics.gauge(
            "repro_queue_claimed", "Tasks currently under lease.")
        # Per-run views of the same flow, labeled by run id: the service
        # dashboard tells tenants apart while the unlabeled totals above
        # keep their whole-coordinator meaning (and their scrape names).
        self._m_run_enqueued = self.metrics.counter(
            "repro_run_enqueued_total", "Tasks enqueued, by run id.")
        self._m_run_completions = self.metrics.counter(
            "repro_run_completions_total", "Results accepted, by run id.")
        self._g_run_pending = self.metrics.gauge(
            "repro_run_pending", "Tasks awaiting a claim, by run id.")
        self._server = self._make_server(host, port)
        self._server.work_queue = self
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=f"{type(self).__name__}-{self.run_id}",
            daemon=True,
        )
        self._thread.start()

    def _make_server(self, host: str, port: int) -> socketserver.BaseServer:
        raise NotImplementedError  # pragma: no cover - subclass hook

    # -- lifecycle ---------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` the server is listening on."""
        host, port = self._server.server_address[:2]
        return host, port

    def close(self) -> None:
        """Stop serving.  Workers observe connection failures from here on
        and retire via their orphan timeout."""
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "NetworkWorkQueue":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- run registry (service mode hosts many; campaign mode keeps one) ---------

    def add_run(self, run_id: str) -> None:
        """Host a new run alongside the existing ones.

        Raises :class:`ValueError` if the id is invalid or already hosted —
        two tenants sharing a run id would merge their result sets.
        """
        validate_run_id(run_id)
        with self._lock:
            if run_id in self._runs:
                raise ValueError(f"run {run_id!r} is already hosted")
            self._runs[run_id] = _RunState(run_id)

    def remove_run(self, run_id: str) -> None:
        """Forget a hosted run entirely: pending tasks, results, and any
        live leases on it.  The default run cannot be removed — it *is* the
        identity of a single-campaign coordinator."""
        with self._lock:
            if run_id == self.run_id:
                raise ValueError("cannot remove the coordinator's default run")
            self._runs.pop(run_id, None)
            for token, claim in list(self._claims.items()):
                if claim.run == run_id:
                    del self._claims[token]

    def cancel_run(self, run_id: str) -> bool:
        """Stop one hosted run without touching its siblings or the
        transport: drop its pending tasks, release its leases (late results
        are then ignored), keep already-collected results readable.
        Returns ``False`` for an unknown run."""
        with self._lock:
            state = self._runs.get(run_id)
            if state is None:
                return False
            state.cancelled = True
            state.pending.clear()
            for token, claim in list(self._claims.items()):
                if claim.run == run_id:
                    del self._claims[token]
        logger.info("run %s cancelled", run_id)
        return True

    def run_ids(self) -> list[str]:
        """Ids of every hosted run (the default run included), sorted."""
        with self._lock:
            return sorted(self._runs)

    def run_cancelled(self, run_id: str) -> bool:
        """Whether a hosted run was cancelled (or removed entirely)."""
        with self._lock:
            state = self._runs.get(run_id)
            return state is None or state.cancelled

    def enqueue_in(self, run_id: str, index: int, payload: Any) -> None:
        """Enqueue one task into a specific hosted run (KeyError if the run
        is unknown, ValueError if it was cancelled)."""
        blob = pickle.dumps(payload)
        with self._lock:
            state = self._runs[run_id]
            if state.cancelled:
                raise ValueError(f"run {run_id!r} is cancelled")
            state.pending[index] = blob
            state.enqueued_total += 1
        self._m_enqueued.inc()
        self._m_run_enqueued.inc(run=run_id)

    def collect_run(
        self, run_id: str, seen: Iterable[int] = ()
    ) -> dict[int, Any]:
        """Results of one hosted run not in ``seen`` (empty if unknown)."""
        known = set(seen)
        with self._lock:
            state = self._runs.get(run_id)
            if state is None:
                return {}
            return {
                index: result
                for index, result in state.results.items()
                if index not in known
            }

    def pending_count_in(self, run_id: str) -> int:
        with self._lock:
            state = self._runs.get(run_id)
            return len(state.pending) if state is not None else 0

    def rotate_auth_token(self, new_token: str, keep_previous: int = 1) -> None:
        """Install ``new_token`` as the primary secret while the most
        recently accepted ``keep_previous`` old tokens stay valid, so an
        attached worker fleet re-configures at leisure instead of
        restarting.  Only valid on a coordinator that already requires
        auth: rotation must never silently turn an open coordinator into
        an authenticated one (workers would all start failing) or exist as
        a path that could do the reverse.
        """
        if not new_token:
            raise ValueError("auth tokens must be non-empty strings")
        if keep_previous < 0:
            raise ValueError("keep_previous must be >= 0")
        with self._lock:
            if self._auth_tokens is None:
                raise ValueError(
                    "cannot rotate tokens on a coordinator without auth"
                )
            kept = tuple(
                token for token in self._auth_tokens if token != new_token
            )[:keep_previous]
            self._auth_tokens = (new_token,) + kept
        logger.info("auth token rotated (%d previous kept)", len(kept))

    def ping_info(self) -> dict[str, Any]:
        """Structured ping body: protocol schema version and service mode,
        so clients and workers can fail fast on daemon/client version skew
        instead of hitting decode errors mid-campaign."""
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "mode": self.mode,
            "service": self.mode == "service",
        }

    # -- coordinator side (WorkQueue protocol, bound to the default run) ---------

    def enqueue(self, index: int, payload: Any) -> None:
        self.enqueue_in(self.run_id, index, payload)

    def reset(self) -> None:
        """Clear the *default* run's queue state plus the coordinator-wide
        stop/retire flags — exactly the old single-campaign semantics.
        Other hosted runs are untouched (the service resets a tenant by
        cancel/remove instead)."""
        with self._lock:
            state = self._runs[self.run_id]
            state.pending.clear()
            state.results.clear()
            state.cancelled = False
            for token, claim in list(self._claims.items()):
                if claim.run == self.run_id:
                    del self._claims[token]
            self._stop = False
            self._retire_credits = 0

    def reclaim_expired(self, lease_timeout: float) -> list[int]:
        now = time.time()
        reclaimed: list[int] = []
        with self._lock:
            for token, claim in list(self._claims.items()):
                if now - claim.last_beat <= lease_timeout:
                    continue
                del self._claims[token]
                state = self._runs.get(claim.run)
                if state is not None and not state.cancelled:
                    state.pending[claim.index] = claim.payload
                    reclaimed.append(claim.index)
        for index in reclaimed:
            self._m_reissues.inc()
            logger.warning("lease on task %d expired; re-queued", index)
        return reclaimed

    def collect(self, seen: Iterable[int] = ()) -> dict[int, Any]:
        return self.collect_run(self.run_id, seen)

    def pending_count(self) -> int:
        return self.pending_count_in(self.run_id)

    def request_stop(self) -> None:
        """Raise the *transport-level* shutdown sentinel: this coordinator
        is going away and attached workers may exit.  A single run draining
        or being cancelled never calls this — on a service daemon the fleet
        outlives every individual run."""
        with self._lock:
            self._stop = True

    def touch_coordinator(self) -> None:
        """No-op: over the network, server reachability *is* the coordinator
        heartbeat (see the module docstring)."""

    def set_retire_credits(self, count: int) -> None:
        with self._lock:
            self._retire_credits = max(0, count)

    # -- worker side (also served over the wire via _handle) ---------------------

    def claim(self, worker_id: str) -> tuple[int, Any, Any] | None:
        claimed = self._claim_blob(worker_id)
        if claimed is None:
            return None
        run, index, blob, token = claimed
        return index, pickle.loads(blob), _Lease(token, run, index)

    def heartbeat(self, lease: Any) -> None:
        token = lease.token if isinstance(lease, _Lease) else lease
        with self._lock:
            claim = self._claims.get(token)
            if claim is not None:
                claim.last_beat = time.time()
        self._m_heartbeats.inc()

    def complete(self, index: int, result: Any, lease: Any | None = None) -> None:
        run = lease.run if isinstance(lease, _Lease) else self.run_id
        token = lease.token if isinstance(lease, _Lease) else None
        self._complete(index, run, result, token)

    def stop_requested(self) -> bool:
        with self._lock:
            return self._stop

    def coordinator_age(self) -> float | None:
        return 0.0  # in-process callers share the coordinator's fate

    def try_retire(self) -> bool:
        with self._lock:
            if self._retire_credits > 0:
                self._retire_credits -= 1
                return True
        return False

    # -- observability -----------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """Live queue state, JSON-ready (``GET /status`` on the HTTP
        transport).  Leases are described — index, worker, heartbeat age —
        but their tokens are capability handles and never leave the server.
        """
        now = time.time()
        with self._lock:
            pending = sum(len(state.pending) for state in self._runs.values())
            done = sum(len(state.results) for state in self._runs.values())
            stop = self._stop
            retire = self._retire_credits
            claimed = [
                {
                    "run": claim.run,
                    "index": claim.index,
                    "worker": claim.worker_id,
                    "lease_age_s": round(max(0.0, now - claim.last_beat), 3),
                }
                for claim in self._claims.values()
            ]
            runs = {
                state.run_id: {
                    "pending": len(state.pending),
                    "claimed": sum(
                        1 for claim in self._claims.values()
                        if claim.run == state.run_id
                    ),
                    "done": len(state.results),
                    "enqueued_total": state.enqueued_total,
                    "cancelled": state.cancelled,
                    "age_s": round(max(0.0, now - state.created), 3),
                }
                for state in self._runs.values()
            }
        claimed.sort(key=lambda entry: (entry["run"], entry["index"]))
        return {
            "run": self.run_id,
            "mode": self.mode,
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(now - self._started, 3),
            "auth": self._auth_tokens is not None,
            "pending": pending,
            "claimed": claimed,
            "done": done,
            "stop": stop,
            "retire_credits": retire,
            "runs": runs,
        }

    def metrics_text(self) -> str:
        """Prometheus text exposition of this queue's registry (depth
        gauges — total and per-run — are refreshed at render time)."""
        with self._lock:
            depths = {
                state.run_id: len(state.pending)
                for state in self._runs.values()
            }
            claimed = len(self._claims)
        self._g_pending.set(sum(depths.values()))
        self._g_claimed.set(claimed)
        for run_id, depth in depths.items():
            self._g_run_pending.set(depth, run=run_id)
        return self.metrics.render_prometheus()

    def stats_snapshot(self) -> dict[str, Any]:
        """Flat counter snapshot plus current depths (JSON-ready); same
        shape as :meth:`FileWorkQueue.stats_snapshot`, with the wire-only
        ``auth_denials`` extra.  Depths sum over every hosted run."""
        with self._lock:
            pending = sum(len(state.pending) for state in self._runs.values())
            claimed = len(self._claims)
        return {
            "enqueued": int(self._m_enqueued.value()),
            "claims": int(self._m_claims.value()),
            "completions": int(self._m_completions.value()),
            "heartbeats": int(self._m_heartbeats.value()),
            "lease_reissues": int(self._m_reissues.value()),
            "auth_denials": int(self._m_denied.value()),
            "pending": pending,
            "claimed": claimed,
        }

    # -- internal ----------------------------------------------------------------

    def _claim_blob(self, worker_id: str) -> tuple[str, int, bytes, str] | None:
        with self._lock:
            # Round-robin across hosted runs so one worker fleet starves no
            # tenant, lowest index first within the chosen run.  Sorting by
            # run id keeps the rotation order stable between claims.
            active = sorted(
                (
                    state for state in self._runs.values()
                    if state.pending and not state.cancelled
                ),
                key=lambda state: state.run_id,
            )
            if not active:
                return None
            state = active[self._rotation % len(active)]
            self._rotation += 1
            run = state.run_id
            index = min(state.pending)
            blob = state.pending.pop(index)
            token = uuid.uuid4().hex
            self._claims[token] = _Claim(run, index, blob, worker_id)
        self._m_claims.inc()
        logger.debug("leased task %s/%d to worker %s", run, index, worker_id)
        return run, index, blob, token

    def _requeue(self, token: Any) -> None:
        """Return a claimed task to its run's pending set (failed hand-back).

        A ``None``/unknown token is a no-op: the lease was already
        reclaimed, so the task is pending (or completed by its re-claimer)
        already.  A task of a run cancelled or removed meanwhile is simply
        dropped with its lease.
        """
        with self._lock:
            claim = self._claims.pop(token, None) if token else None
            if claim is not None:
                state = self._runs.get(claim.run)
                if state is not None and not state.cancelled:
                    state.pending[claim.index] = claim.payload

    def _complete(
        self, index: int, run: str, result: Any, token: str | None
    ) -> None:
        accepted = False
        with self._lock:
            if token is not None:
                self._claims.pop(token, None)
            state = self._runs.get(run)
            if state is not None and not state.cancelled:
                state.results[index] = result
                accepted = True
        self._m_completions.inc()
        if accepted:
            self._m_run_completions.inc(run=run)
        # else: a late answer for an unknown or cancelled run — lease
        # released, result ignored, matching FileWorkQueue.collect's
        # run filter.

    def _check_auth(self, request: dict[str, Any]) -> dict[str, Any] | None:
        """Denied-response for an unauthenticated request, ``None`` when ok.

        The check is constant-time (:func:`hmac.compare_digest`) and the
        responses never echo either token.  ``denied: "auth"`` is the
        distinct marker clients turn into a
        :class:`~repro.campaign.workqueue.WorkQueueAuthError` instead of
        the silent degrade every other failure gets.
        """
        accepted = self._auth_tokens
        if accepted is None:
            return None
        supplied = request.get("token")
        if not isinstance(supplied, str):
            self._m_denied.inc()
            logger.warning(
                "denied wire request op=%r: no auth token supplied",
                request.get("op"),
            )
            return {
                "ok": False,
                "denied": "auth",
                "error": "unauthenticated: this coordinator requires an "
                         "auth token and none was supplied (pass "
                         "--auth-token or set REPRO_CAMPAIGN_AUTH_TOKEN)",
            }
        supplied_bytes = supplied.encode("utf-8")
        matched = False
        for token in accepted:
            # No early break: every accepted token (primary + rotated-out
            # previous ones) is compared, so response timing reveals
            # neither which token matched nor how many are accepted.
            if hmac.compare_digest(supplied_bytes, token.encode("utf-8")):
                matched = True
        if not matched:
            self._m_denied.inc()
            logger.warning(
                "denied wire request op=%r: auth token rejected",
                request.get("op"),
            )
            return {
                "ok": False,
                "denied": "auth",
                "error": "unauthenticated: auth token rejected by the "
                         "coordinator",
            }
        return None

    def _handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Serve one wire request (called from server handler threads)."""
        denied = self._check_auth(request)
        if denied is not None:
            return denied
        op = request.get("op")
        if op == "claim":
            claimed = self._claim_blob(str(request.get("worker", "?")))
            if claimed is None:
                # A claim that finds nothing proves the worker is idle at
                # this very moment — the only state in which a retire
                # credit may dismiss it.  Answering the retire question
                # here saves the worker a dedicated round trip per poll.
                return {"ok": True, "index": None, "retire": self.try_retire()}
            run, index, blob, token = claimed
            return {
                "ok": True,
                "index": index,
                "run": run,
                "payload": base64.b64encode(blob).decode("ascii"),
                "lease": token,
            }
        if op == "heartbeat":
            self.heartbeat(str(request.get("lease", "")))
            return {"ok": True}
        if op == "complete":
            try:
                result = _decode(request["result"])
            except Exception as exc:
                # A result the coordinator cannot decode is dropped, but
                # the task must not be lost with it: put the claimed
                # payload straight back into the pending set (releasing
                # the lease alone would strand the task — reclaim only
                # scans live claims) so another worker re-flies it.
                self._requeue(request.get("lease"))
                return {"ok": False, "error": f"undecodable result: {exc!r}"}
            self._complete(
                int(request["index"]),
                str(request.get("run", "")),
                result,
                request.get("lease"),
            )
            return {"ok": True}
        if op == "stop":
            return {"ok": True, "stop": self.stop_requested()}
        if op == "retire":
            return {"ok": True, "retire": self.try_retire()}
        if op == "ping":
            return self.ping_info()
        return {"ok": False, "error": f"unknown op {op!r}"}


class SocketWorkQueue(NetworkWorkQueue):
    """Coordinator-hosted TCP work queue (server side of the transport).

    Constructing the queue binds and starts the server — ``port=0`` picks an
    ephemeral port, published via :attr:`address`.  The object itself is a
    full :class:`~repro.campaign.workqueue.WorkQueue`: the coordinator calls
    the same ``enqueue``/``collect``/``reclaim_expired`` methods it would on
    a :class:`~repro.campaign.workqueue.FileWorkQueue`, while remote workers
    reach the worker-side half through :class:`SocketWorkQueueClient`.
    """

    def _make_server(self, host: str, port: int) -> socketserver.BaseServer:
        return _Server((host, port), _Handler)


class NetworkWorkQueueClient:
    """Worker-side :class:`~repro.campaign.workqueue.WorkQueue` over a wire.

    Every operation is one short-lived request, so a worker holds no state
    the coordinator could leak: a dropped connection mid-task only stops
    the heartbeat, and the lease expires like any other death.  A
    temporarily unreachable coordinator degrades instead of raising —
    ``claim`` returns ``None``, ``stop_requested`` returns ``False`` — so a
    worker survives a coordinator *restart* on the same address and resumes
    claiming from the new run; :meth:`coordinator_age` grows from the last
    successful round trip so the standard orphan timeout eventually ends a
    worker whose coordinator never comes back.

    The one failure that does *not* degrade is an authentication rejection
    (``denied: "auth"`` from the server): polling can never fix a wrong
    shared secret, so it raises
    :class:`~repro.campaign.workqueue.WorkQueueAuthError` for the worker to
    surface and exit on.

    Subclasses provide :meth:`_send` — one message out, one parsed JSON
    response back (``None`` on any transport failure).
    """

    def __init__(
        self, timeout: float = 10.0, auth_token: str | None = None
    ) -> None:
        if auth_token is not None and not auth_token:
            raise ValueError("auth_token must be a non-empty string")
        self._timeout = timeout
        self._auth_token = auth_token
        self._last_contact = time.time()
        self._retire_answer: bool | None = None
        #: Failed round trips since the last successful one.  The worker
        #: loop reads this to back off exponentially while the coordinator
        #: is unreachable, instead of hammering a restarting daemon with
        #: fixed-interval ticks from the whole fleet at once.
        self.consecutive_failures = 0

    def _send(self, message: dict[str, Any]) -> dict[str, Any] | None:
        raise NotImplementedError  # pragma: no cover - subclass hook

    # -- worker side -------------------------------------------------------------

    def claim(self, worker_id: str) -> tuple[int, Any, Any] | None:
        response = self._request({"op": "claim", "worker": worker_id})
        if response is None:
            return None
        if response.get("index") is None:
            # An idle claim carries the retire answer (see the server);
            # cache it for the try_retire call that follows in the worker
            # loop, sparing it a connection per poll tick.
            self._retire_answer = bool(response.get("retire"))
            return None
        index = int(response["index"])
        lease = _Lease(str(response["lease"]), str(response["run"]), index)
        try:
            payload = _decode(response["payload"])
        except Exception as exc:
            # Same poison-pill rule as the file transport: a payload whose
            # function is not importable here must come back as a failed
            # result, not crash-loop every worker that claims it.
            self.complete(
                index, ("error", f"unreadable task payload: {exc!r}"), lease
            )
            return None
        return index, payload, lease

    def heartbeat(self, lease: Any) -> None:
        self._request({"op": "heartbeat", "lease": lease.token})

    def complete(self, index: int, result: Any, lease: Any | None = None) -> None:
        message = {
            "op": "complete",
            "index": index,
            "run": lease.run if isinstance(lease, _Lease) else "",
            "result": _encode(result),
        }
        if isinstance(lease, _Lease):
            message["lease"] = lease.token
        # Best effort: if the coordinator is gone the result is lost, the
        # lease expires on whatever coordinator replaces it, and the task is
        # re-issued — exactly the crashed-worker path.
        self._request(message)

    def stop_requested(self) -> bool:
        response = self._request({"op": "stop"})
        return bool(response and response.get("stop"))

    def coordinator_age(self) -> float | None:
        age = max(0.0, time.time() - self._last_contact)
        if age < self._timeout:
            # The stop/claim polls of the current worker tick already
            # probed reachability and refreshed the contact time; a
            # dedicated ping here would be a wasted connection per tick.
            return age
        if self._request({"op": "ping"}) is not None:
            return 0.0
        return max(0.0, time.time() - self._last_contact)

    def try_retire(self) -> bool:
        answer, self._retire_answer = self._retire_answer, None
        if answer is not None:
            return answer  # piggybacked on the preceding idle claim
        response = self._request({"op": "retire"})
        return bool(response and response.get("retire"))

    def ping(self) -> dict[str, Any] | None:
        """One reachability round trip; the coordinator's structured ping
        body on success, ``None`` when unreachable."""
        return self._request({"op": "ping"})

    def check_protocol(self) -> dict[str, Any] | None:
        """Fail fast on daemon/client protocol skew.

        Returns the ping body when the versions agree and ``None`` when the
        coordinator is unreachable (the standard degrade path owns that
        case).  Raises
        :class:`~repro.campaign.workqueue.WorkQueueProtocolError` when the
        coordinator answers with a missing or different protocol version —
        a version-1 server is recognised by the *absence* of the field in
        its bare ``{"ok": true}`` ping reply.
        """
        response = self.ping()
        if response is None:
            return None
        version = response.get("protocol")
        if version != PROTOCOL_VERSION:
            described = "1 (no version field)" if version is None else version
            raise WorkQueueProtocolError(
                f"coordinator speaks work-queue protocol {described} but "
                f"this client requires {PROTOCOL_VERSION}; upgrade the "
                "older side"
            )
        return response

    # -- coordinator-side protocol methods (a client is worker-only) -------------

    def enqueue(self, index: int, payload: Any) -> None:
        raise NotImplementedError("enqueue tasks on the coordinator's work queue")

    def reset(self) -> None:
        raise NotImplementedError("reset happens on the coordinator's work queue")

    def reclaim_expired(self, lease_timeout: float) -> list[int]:
        raise NotImplementedError("leases are reclaimed by the coordinator")

    def collect(self, seen: Iterable[int] = ()) -> dict[int, Any]:
        raise NotImplementedError("results are collected by the coordinator")

    def pending_count(self) -> int:
        raise NotImplementedError("pending counts live on the coordinator")

    def request_stop(self) -> None:
        raise NotImplementedError("stop is requested by the coordinator")

    def touch_coordinator(self) -> None:
        raise NotImplementedError("only the coordinator heartbeats itself")

    def set_retire_credits(self, count: int) -> None:
        raise NotImplementedError("retire credits are granted by the coordinator")

    # -- internal ----------------------------------------------------------------

    def _request(self, message: dict[str, Any]) -> dict[str, Any] | None:
        """One round trip: ``None`` on failure, raises on auth rejection."""
        if self._auth_token is not None:
            message = {**message, "token": self._auth_token}
        response = self._send(message)
        if not response:
            self.consecutive_failures += 1
            return None
        # Any parsed response — even a denial — proves the coordinator is
        # reachable, which is all the reconnect backoff cares about.
        self.consecutive_failures = 0
        if not response.get("ok"):
            if response.get("denied") == "auth":
                # The one non-degradable failure: retrying cannot fix a
                # wrong shared secret, so surface it loudly.  The server's
                # message never contains a token.
                raise WorkQueueAuthError(
                    str(response.get("error") or "unauthenticated")
                )
            return None
        self._last_contact = time.time()
        return response


class SocketWorkQueueClient(NetworkWorkQueueClient):
    """Worker-side :class:`~repro.campaign.workqueue.WorkQueue` over TCP:
    one short-lived connection and one JSON line per operation."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        auth_token: str | None = None,
    ) -> None:
        super().__init__(timeout=timeout, auth_token=auth_token)
        self._address = (host, port)

    def _send(self, message: dict[str, Any]) -> dict[str, Any] | None:
        try:
            with socket.create_connection(
                self._address, timeout=self._timeout
            ) as connection:
                connection.sendall((json.dumps(message) + "\n").encode("ascii"))
                with connection.makefile("rb") as reader:
                    line = reader.readline()
            return json.loads(line) if line else None
        except (OSError, ValueError):
            return None

"""Tests for the security monitor, its rules and the Simplex decision module."""

import numpy as np
import pytest

from repro.control import ActuatorCommand
from repro.core import (
    AttitudeErrorRule,
    ContainerDroneConfig,
    ControlSource,
    DecisionModule,
    MonitorConfig,
    MonitorContext,
    ReceivingIntervalRule,
    SecurityMonitor,
    SecurityRule,
)


def context(now=10.0, engaged_at=0.0, last_receive=9.99, roll=0.0, pitch=0.0, yaw=0.0):
    return MonitorContext(
        now=now,
        engaged_at=engaged_at,
        last_receive_time=last_receive,
        roll_error=roll,
        pitch_error=pitch,
        yaw_error=yaw,
    )


class TestReceivingIntervalRule:
    def test_within_threshold_no_violation(self):
        rule = ReceivingIntervalRule(0.1)
        assert rule.check(context(now=10.0, last_receive=9.95)) is None

    def test_gap_exceeding_threshold_violates(self):
        rule = ReceivingIntervalRule(0.1)
        violation = rule.check(context(now=10.0, last_receive=9.8))
        assert violation is not None
        assert violation.rule == "receiving-interval"

    def test_never_received_uses_engagement_time(self):
        rule = ReceivingIntervalRule(0.1)
        assert rule.check(context(now=0.05, engaged_at=0.0, last_receive=None)) is None
        assert rule.check(context(now=0.5, engaged_at=0.0, last_receive=None)) is not None

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            ReceivingIntervalRule(0.0)


class TestAttitudeErrorRule:
    def setup_method(self):
        self.rule = AttitudeErrorRule(max_roll=0.3, max_pitch=0.3, max_yaw=0.8)

    def test_small_errors_pass(self):
        assert self.rule.check(context(roll=0.1, pitch=-0.1, yaw=0.2)) is None

    def test_roll_violation(self):
        violation = self.rule.check(context(roll=0.5))
        assert violation is not None
        assert "roll" in violation.message

    def test_pitch_violation_negative_side(self):
        assert self.rule.check(context(pitch=-0.5)) is not None

    def test_yaw_violation(self):
        assert self.rule.check(context(yaw=1.0)) is not None

    def test_rejects_nonpositive_bounds(self):
        with pytest.raises(ValueError):
            AttitudeErrorRule(0.0, 0.3, 0.3)


class TestSecurityMonitor:
    def test_default_rules_installed(self):
        monitor = SecurityMonitor()
        rule_names = {type(rule).__name__ for rule in monitor.rules}
        assert rule_names == {"ReceivingIntervalRule", "AttitudeErrorRule"}

    def test_disabled_monitor_never_fires(self):
        monitor = SecurityMonitor(MonitorConfig(enabled=False))
        assert monitor.check(context(roll=3.0, last_receive=0.0)) is None
        assert not monitor.violated

    def test_grace_period_suppresses_rules(self):
        monitor = SecurityMonitor(MonitorConfig(arming_grace_period=5.0))
        assert monitor.check(context(now=3.0, engaged_at=0.0, roll=3.0)) is None
        assert monitor.check(context(now=6.0, engaged_at=0.0, roll=3.0)) is not None

    def test_violations_recorded_in_order(self):
        monitor = SecurityMonitor()
        monitor.check(context(roll=3.0))
        monitor.check(context(pitch=3.0))
        assert monitor.violated
        assert monitor.first_violation.rule == "attitude-error"
        assert len(monitor.violations) == 2

    def test_interval_rule_checked_before_attitude(self):
        monitor = SecurityMonitor()
        violation = monitor.check(context(last_receive=0.0, roll=3.0))
        assert violation.rule == "receiving-interval"

    def test_custom_rule_can_be_added(self):
        class AlwaysViolate(SecurityRule):
            name = "always"

            def check(self, ctx):
                from repro.core.security_monitor import Violation

                return Violation(rule=self.name, time=ctx.now, message="test")

        monitor = SecurityMonitor()
        monitor.add_rule(AlwaysViolate())
        violation = monitor.check(context())
        assert violation is None or violation.rule in {"always"}
        # With benign context only the custom rule can fire.
        assert monitor.check(context()).rule == "always"

    def test_checks_counted(self):
        monitor = SecurityMonitor()
        for _ in range(5):
            monitor.check(context())
        assert monitor.checks_performed == 5


class TestDecisionModule:
    def command(self, source="complex", sequence=1):
        return ActuatorCommand(motors=np.full(4, 0.5), timestamp=0.0, source=source,
                               sequence=sequence)

    def test_starts_with_complex_source(self):
        assert DecisionModule().source is ControlSource.COMPLEX

    def test_select_prefers_complex_when_active(self):
        decision = DecisionModule()
        decision.submit_safety(self.command(source="safety"))
        decision.submit_complex(self.command(source="complex"), received_at=1.0)
        assert decision.select().source == "complex"

    def test_select_falls_back_to_safety_before_first_complex(self):
        decision = DecisionModule()
        decision.submit_safety(self.command(source="safety"))
        assert decision.select().source == "safety"

    def test_select_none_when_nothing_submitted(self):
        assert DecisionModule().select() is None

    def test_switch_to_safety_latches(self):
        decision = DecisionModule()
        decision.submit_complex(self.command(), received_at=1.0)
        decision.submit_safety(self.command(source="safety"))
        decision.switch_to_safety(2.0, "violation")
        decision.submit_complex(self.command(sequence=2), received_at=3.0)
        assert decision.select().source == "safety"
        assert decision.switched_to_safety
        assert len(decision.switch_events) == 1

    def test_switch_is_idempotent(self):
        decision = DecisionModule()
        decision.switch_to_safety(1.0, "a")
        decision.switch_to_safety(2.0, "b")
        assert len(decision.switch_events) == 1

    def test_switch_back_to_complex_is_possible(self):
        decision = DecisionModule()
        decision.submit_safety(self.command(source="safety"))
        decision.switch_to_safety(1.0, "violation")
        decision.switch_to_complex(5.0)
        decision.submit_complex(self.command(), received_at=6.0)
        assert decision.select().source == "complex"
        assert len(decision.switch_events) == 2

    def test_last_complex_received_tracked_after_switch(self):
        decision = DecisionModule()
        decision.switch_to_safety(1.0, "violation")
        decision.submit_complex(self.command(), received_at=2.5)
        # Reception is still tracked (for diagnostics) even though the
        # command is not used.
        assert decision.last_complex_received == 2.5

    def test_commands_are_clipped_on_submission(self):
        decision = DecisionModule()
        decision.submit_complex(
            ActuatorCommand(motors=np.array([2.0, -1.0, 0.5, 0.5])), received_at=0.0
        )
        assert decision.select().motors.max() <= 1.0
        assert decision.select().motors.min() >= 0.0

    def test_counters(self):
        decision = DecisionModule()
        decision.submit_complex(self.command(), received_at=0.0)
        decision.submit_safety(self.command(source="safety"))
        decision.submit_safety(self.command(source="safety"))
        assert decision.complex_commands_received == 1
        assert decision.safety_commands_received == 2

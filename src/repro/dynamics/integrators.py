"""Fixed-step numerical integrators for the vehicle dynamics.

The co-simulation engine advances the physics with a fixed step, so only
explicit fixed-step schemes are provided.  RK4 is the default for the
quadrotor model; the forward-Euler scheme is kept for speed-sensitive tests
and for cross-checking.

Both schemes are shape-agnostic: every operation is elementwise in ``y``, so
the same functions integrate a single ``(13,)`` state vector (the scalar
plant) and an ``(L, 13)`` state stack (the batched plant in
:mod:`repro.sim.batch` — see :func:`repro.dynamics.quadrotor.batched_derivative`)
with identical per-lane arithmetic.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["euler_step", "rk4_step", "INTEGRATORS"]

Derivative = Callable[[float, np.ndarray], np.ndarray]


def euler_step(f: Derivative, t: float, y: np.ndarray, dt: float) -> np.ndarray:
    """One forward-Euler step of ``y' = f(t, y)``."""
    return y + dt * f(t, y)


def rk4_step(f: Derivative, t: float, y: np.ndarray, dt: float) -> np.ndarray:
    """One classical Runge-Kutta 4 step of ``y' = f(t, y)``."""
    k1 = f(t, y)
    k2 = f(t + dt / 2.0, y + dt / 2.0 * k1)
    k3 = f(t + dt / 2.0, y + dt / 2.0 * k2)
    k4 = f(t + dt, y + dt * k3)
    return y + dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


#: Registry of available integrators keyed by name.
INTEGRATORS: dict[str, Callable[[Derivative, float, np.ndarray, float], np.ndarray]] = {
    "euler": euler_step,
    "rk4": rk4_step,
}

"""Campaign throughput benchmark: the ISSUE's 3-axis acceptance sweep.

Runs the 2 MemGuard budgets x 2 attack starts x 3 seeds = 12-flight grid
through the :class:`~repro.campaign.CampaignRunner` twice — serial and
process-pool — and checks that

* both runs complete with no failed variants,
* serial and parallel summaries are *identical* (execution strategy must not
  leak into results),
* on machines with at least four cores the pool is >= 1.5x faster than
  serial (informational on smaller machines, where the pool cannot win), and
* the observability instrumentation costs nothing measurable: a third
  serial run with :func:`repro.obs.set_enabled` off must be within 2% of
  the instrumented one.

The instrumented serial run additionally writes
``benchmarks/results/metrics_sample.jsonl`` — a sample of the structured
event log (campaign/variant events plus a closing metrics snapshot) that CI
uploads next to the ``BENCH_*.json`` records.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.analysis.report import format_table
from repro.campaign import CampaignRunner, ScenarioGrid
from repro.sim import FlightScenario

#: Per-flight duration [s]; short enough to keep the benchmark affordable,
#: long enough that each flight sees the attack start and settle.
FLIGHT_DURATION = 3.0

SPEEDUP_CORES = 4
SPEEDUP_TARGET = 1.5

#: Ceiling on the instrumentation's serial wall-time cost [%].
OVERHEAD_LIMIT_PCT = 2.0


def acceptance_grid() -> ScenarioGrid:
    """The ISSUE's 3-axis sweep: 2 budgets x 2 attack starts x 3 seeds."""
    return ScenarioGrid(
        FlightScenario.figure5(duration=FLIGHT_DURATION).with_name("campaign-bench"),
        axes={
            "memguard_budget": [1500, 3000],
            "attack_start": [1.0, 2.0],
            "seed": [101, 102, 103],
        },
    )


@pytest.fixture(scope="module")
def campaign_runs(results_dir):
    """Fly the acceptance grid serially (with a JSONL event-log sample),
    on the pool, and serially again with observability disabled."""
    grid = acceptance_grid()
    assert len(grid) == 12
    # Untimed warmup pass: the first flights of a fresh process run with
    # cold allocator/page caches and an unscaled CPU clock, measurably
    # slower than identical flights minutes later.  Without this, the
    # overhead comparison below charges that cold-start cost to whichever
    # run happens to go first (the instrumented one) and the 2% gate fails
    # on machine state, not instrumentation.
    obs.set_enabled(False)
    try:
        CampaignRunner(mode="serial", telemetry=False).run(grid)
    finally:
        obs.set_enabled(True)
    sample_path = results_dir / "metrics_sample.jsonl"
    sample_path.unlink(missing_ok=True)
    with obs.EventLog(sample_path, run_id="bench") as log:
        previous = obs.set_event_log(log)
        try:
            serial = CampaignRunner(mode="serial").run(grid)
            obs.emit(
                "metrics-snapshot", "benchmarks",
                metrics=obs.default_registry().snapshot(),
            )
        finally:
            obs.set_event_log(previous)
    parallel = CampaignRunner(mode="parallel").run(grid)
    obs.set_enabled(False)
    try:
        bare = CampaignRunner(mode="serial", telemetry=False).run(grid)
    finally:
        obs.set_enabled(True)
    return serial, parallel, bare


def test_serial_and_parallel_campaigns_agree(campaign_runs, report):
    serial, parallel, bare = campaign_runs
    assert len(serial) == len(parallel) == len(bare) == 12
    assert serial.failures() == ()
    assert parallel.failures() == ()
    # Execution strategy must not change results — and neither may the
    # observability switch.
    assert serial.summaries() == parallel.summaries() == bare.summaries()

    cores = os.cpu_count() or 1
    speedup = serial.wall_time / parallel.wall_time if parallel.wall_time else 0.0
    overhead_pct = (
        (serial.wall_time - bare.wall_time) / bare.wall_time * 100.0
        if bare.wall_time else 0.0
    )
    rows = [
        ["serial", f"{serial.wall_time:.1f} s", f"{serial.wall_time / 12:.2f} s"],
        ["serial, obs off", f"{bare.wall_time:.1f} s", f"{bare.wall_time / 12:.2f} s"],
        ["process pool", f"{parallel.wall_time:.1f} s", f"{parallel.wall_time / 12:.2f} s"],
    ]
    text = format_table(
        ["Mode", "Campaign wall time", "Per flight"],
        rows,
        title=(
            f"Campaign throughput: 12 x {FLIGHT_DURATION:.0f} s flights on "
            f"{cores} core(s), speedup {speedup:.2f}x, "
            f"instrumentation overhead {overhead_pct:+.2f}%"
        ),
    )
    report("campaign_throughput", text + "\n\n" + serial.to_text(), data={
        "flights": len(serial),
        "flight_duration_s": FLIGHT_DURATION,
        "serial_wall_s": round(serial.wall_time, 3),
        "serial_no_obs_wall_s": round(bare.wall_time, 3),
        "parallel_wall_s": round(parallel.wall_time, 3),
        "speedup": round(speedup, 3),
        "obs_overhead_pct": round(overhead_pct, 3),
    })


def test_metrics_sample_written(campaign_runs, results_dir):
    """The serial run leaves a well-formed JSONL event-log sample behind."""
    import json

    sample_path = results_dir / "metrics_sample.jsonl"
    assert sample_path.exists()
    records = [
        json.loads(line)
        for line in sample_path.read_text().splitlines() if line
    ]
    assert records, "event-log sample is empty"
    for record in records:
        assert record["schema"] == 1
        assert record["run"] == "bench"
        assert record["component"]
        assert record["event"]
    events = [record["event"] for record in records]
    assert "campaign-start" in events
    assert "campaign-end" in events
    assert events[-1] == "metrics-snapshot"
    assert "repro_campaign_variants_total" in records[-1]["metrics"]


def test_observability_overhead(campaign_runs):
    """Instrumented serial run within OVERHEAD_LIMIT_PCT of the bare one."""
    serial, _parallel, bare = campaign_runs
    assert bare.wall_time > 0
    overhead_pct = (serial.wall_time - bare.wall_time) / bare.wall_time * 100.0
    if os.environ.get("CI"):
        # Same reasoning as the speedup gate: shared runners jitter more
        # than the margin being measured.  Report, don't block.
        if overhead_pct > OVERHEAD_LIMIT_PCT:
            pytest.skip(
                f"informational on CI: measured {overhead_pct:+.2f}% "
                f"(limit {OVERHEAD_LIMIT_PCT}%)"
            )
        return
    assert overhead_pct <= OVERHEAD_LIMIT_PCT, (
        f"observability instrumentation costs {overhead_pct:+.2f}% serial "
        f"wall time (limit {OVERHEAD_LIMIT_PCT}%)"
    )


def test_parallel_speedup(campaign_runs):
    cores = os.cpu_count() or 1
    serial, parallel, _bare = campaign_runs
    speedup = serial.wall_time / parallel.wall_time if parallel.wall_time else 0.0
    if cores < SPEEDUP_CORES:
        pytest.skip(
            f"speedup target needs >= {SPEEDUP_CORES} cores, "
            f"machine has {cores} (measured {speedup:.2f}x)"
        )
    if os.environ.get("CI"):
        # Shared CI runners are too noisy for a hard wall-clock gate: a
        # contended VM measuring 1.4x would block unrelated PRs.  Report
        # instead of asserting there; dedicated machines still enforce it.
        if speedup < SPEEDUP_TARGET:
            pytest.skip(
                f"informational on CI: measured {speedup:.2f}x on {cores} cores "
                f"(target {SPEEDUP_TARGET}x)"
            )
        return
    assert speedup >= SPEEDUP_TARGET, (
        f"parallel campaign only {speedup:.2f}x faster than serial "
        f"on {cores} cores (target {SPEEDUP_TARGET}x)"
    )

"""Table I — rate and size of the data transfer between the HCE and the CCE.

Paper values:

=============  ==========  ======  =========  ======
Component      Direction   Rate    Size       Port
=============  ==========  ======  =========  ======
IMU            HCE -> CCE  250 Hz  52 bytes   14660
Barometer      HCE -> CCE  50 Hz   32 bytes   14660
GPS            HCE -> CCE  10 Hz   44 bytes   14660
RC             HCE -> CCE  50 Hz   50 bytes   14660
Motor Output   CCE -> HCE  400 Hz  29 bytes   14600
=============  ==========  ======  =========  ======

The benchmark runs a short undisturbed flight, counts every MAVLink message
crossing the docker0 bridge per stream, and reproduces the table.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.mavlink import (
    ActuatorOutputs,
    GpsRawInt,
    HighresImu,
    MavlinkCodec,
    RcChannelsOverride,
    ScaledPressure,
)
from repro.sim import FlightScenario, FlightSimulation


DURATION = 6.0

PAPER_ROWS = {
    "IMU": (250.0, 52, 14660),
    "Barometer": (50.0, 32, 14660),
    "GPS": (10.0, 44, 14660),
    "RC": (50.0, 50, 14660),
    "Motor Output": (400.0, 29, 14600),
}

MESSAGE_TYPES = {
    "IMU": HighresImu,
    "Barometer": ScaledPressure,
    "GPS": GpsRawInt,
    "RC": RcChannelsOverride,
    "Motor Output": ActuatorOutputs,
}


def run_and_count() -> dict[str, tuple[float, int, int]]:
    """Run the baseline flight and measure per-stream rates, sizes and ports."""
    simulation = FlightSimulation(FlightScenario.baseline(duration=DURATION))

    counters = {name: 0 for name in PAPER_ROWS}
    original_send = simulation.network.send

    def counting_send(now, payload, source_namespace, source_port,
                      destination_namespace, destination_port):
        try:
            frame = MavlinkCodec().decode(payload)
        except Exception:
            frame = None
        if frame is not None:
            for name, message_type in MESSAGE_TYPES.items():
                if isinstance(frame.message, message_type):
                    counters[name] += 1
        return original_send(now, payload, source_namespace, source_port,
                             destination_namespace, destination_port)

    simulation.network.send = counting_send
    simulation.run()
    duration = simulation.scheduler.time

    codec = MavlinkCodec()
    sizes = {name: codec.frame_size(message_type()) for name, message_type in MESSAGE_TYPES.items()}
    communication = simulation.scenario.config.communication
    ports = {
        "IMU": communication.sensor_port,
        "Barometer": communication.sensor_port,
        "GPS": communication.sensor_port,
        "RC": communication.sensor_port,
        "Motor Output": communication.motor_port,
    }
    return {name: (counters[name] / duration, sizes[name], ports[name]) for name in PAPER_ROWS}


def test_table1_data_rates(benchmark, report):
    measured = benchmark.pedantic(run_and_count, rounds=1, iterations=1)

    rows = []
    for name, (paper_rate, paper_size, paper_port) in PAPER_ROWS.items():
        rate, size, port = measured[name]
        direction = "CCE->HCE" if name == "Motor Output" else "HCE->CCE"
        rows.append([
            name, direction,
            f"{rate:.1f} Hz (paper {paper_rate:.0f} Hz)",
            f"{size} B (paper {paper_size} B)",
            f"{port} (paper {paper_port})",
        ])
    report("table1_data_rates", format_table(
        ["Component", "Direction", "Rate", "Size", "Port"], rows,
        title="Table I — HCE/CCE data streams (measured vs paper)",
    ))

    for name, (paper_rate, paper_size, paper_port) in PAPER_ROWS.items():
        rate, size, port = measured[name]
        assert rate == pytest.approx(paper_rate, rel=0.05), name
        assert size == paper_size, name
        assert port == paper_port, name

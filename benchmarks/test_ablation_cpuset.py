"""Ablation A4 — CPU DoS attack with and without the CPU protection.

The paper's CPU protection (Section III-C) pins the container to one core and
denies it high real-time priorities.  There is no figure for a CPU attack in
the paper; this ablation supplies the missing experiment: a four-thread
SCHED_FIFO-99 busy-loop attack launched inside the container, with the
protection on (cpuset {3}, priority cap 10) and off (all cores, any priority).
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import format_table
from repro.attacks import CpuHogAttack
from repro.sim import FlightScenario, FlightSimulation

ATTACK_START = 5.0
DURATION = 15.0


def run_case(protected: bool):
    scenario = FlightScenario(
        name="cpu-hog-protected" if protected else "cpu-hog-unprotected",
        duration=DURATION,
        attacks=(CpuHogAttack(start_time=ATTACK_START, threads=4),),
    )
    if not protected:
        config = scenario.config
        config = replace(config, cpu=replace(config.cpu, enabled=False))
        scenario = scenario.with_config(config)
    simulation = FlightSimulation(scenario)
    result = simulation.run()
    hog_cores = sorted(
        {task.config.core for task in simulation.scheduler.tasks if task.name.startswith("cpu-hog")}
    )
    hog_priority = max(
        (task.config.priority for task in simulation.scheduler.tasks
         if task.name.startswith("cpu-hog")),
        default=0,
    )
    return result, hog_cores, hog_priority


def run_both():
    return {"protection ON": run_case(True), "protection OFF": run_case(False)}


def test_ablation_cpuset(benchmark, report):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for label, (result, cores, priority) in results.items():
        metrics = result.metrics
        rows.append([
            label,
            ",".join(str(core) for core in cores),
            str(priority),
            "yes" if result.crashed else "no",
            f"{metrics.max_deviation_after:.2f} m",
        ])
    report("ablation_cpuset", format_table(
        ["Configuration", "Hog cores", "Hog priority", "Crashed", "Max deviation after attack"],
        rows,
        title="Ablation A4 — CPU-hog attack with and without cpuset/priority protection",
    ))

    protected, protected_cores, protected_priority = results["protection ON"]
    unprotected, unprotected_cores, unprotected_priority = results["protection OFF"]

    # With the protection the hogs are confined to the CCE core at low
    # priority.  The complex controller inside the container may be starved by
    # them (and the Simplex monitor then switches to the safety controller),
    # but the HCE keeps the drone flying.
    assert protected_cores == [3]
    assert protected_priority <= 10
    assert not protected.crashed
    assert protected.metrics.recovered
    # Without it the hogs occupy every core at priority 99 and the HCE control
    # pipeline is starved: the drone crashes or is blown far off its setpoint.
    assert unprotected_cores == [0, 1, 2, 3]
    assert unprotected_priority == 99
    assert unprotected.crashed or unprotected.metrics.max_deviation_after > 1.0

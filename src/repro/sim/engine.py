"""System-level simulation used for the overhead comparison (Table II).

The Table II experiment does not fly the drone: it boots the host system and
measures the per-core CPU idle rates in three configurations — native, with
one QEMU virtual machine, and with one (idle) container.  This module builds
the host background load and runs the scheduler for a configurable amount of
time, returning the per-core idle rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..container.container import ContainerConfig
from ..container.runtime import ContainerRuntime, RuntimeConfig
from ..container.vm import VirtualMachine, VmConfig
from ..network.stack import NetworkStack
from ..rtos.scheduler import MulticoreScheduler
from ..rtos.task import Task, TaskConfig

__all__ = ["HostLoadConfig", "SystemSimulation"]


@dataclass(frozen=True)
class HostLoadConfig:
    """Background load of the bare host OS.

    The defaults reproduce the native row of Table II: the boot core carries
    the kernel housekeeping threads and interrupt handling (~5 % load), the
    remaining cores only see per-CPU kernel threads (~1 % load each).
    """

    boot_core_load: float = 0.05
    other_core_load: float = 0.01
    activity_period: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 <= self.boot_core_load < 1.0 or not 0.0 <= self.other_core_load < 1.0:
            raise ValueError("background loads must be within [0, 1)")


class SystemSimulation:
    """Idle-system simulation measuring per-core CPU idle rates."""

    def __init__(
        self,
        num_cores: int = 4,
        host_load: HostLoadConfig | None = None,
        quantum: float = 0.001,
    ) -> None:
        self.host_load = host_load or HostLoadConfig()
        self.scheduler = MulticoreScheduler(num_cores=num_cores, quantum=quantum)
        self.network = NetworkStack()
        self.runtime = ContainerRuntime(self.scheduler, self.network, RuntimeConfig())
        self.vm: VirtualMachine | None = None
        self._add_host_background()

    def _add_host_background(self) -> None:
        period = self.host_load.activity_period
        for core in range(self.scheduler.num_cores):
            load = self.host_load.boot_core_load if core == 0 else self.host_load.other_core_load
            if load <= 0.0:
                continue
            self.scheduler.add_task(
                Task(
                    TaskConfig(
                        name=f"kworker/{core}",
                        period=period,
                        execution_time=load * period,
                        priority=40,
                        core=core,
                        memory_stall_fraction=0.1,
                        accesses_per_job=100,
                    )
                )
            )

    # -- configurations under test -------------------------------------------------

    def add_container(self, config: ContainerConfig | None = None) -> None:
        """Start one idle container (the Table II "one container" case)."""
        container = self.runtime.create(config or ContainerConfig(name="idle-container"))
        self.runtime.run(container)
        # The container's init process is essentially idle: a shell waiting on
        # a descriptor wakes up only a few times per second.
        self.runtime.spawn_process(
            container,
            TaskConfig(
                name=f"{container.name}-init",
                period=0.1,
                execution_time=0.0001,
                priority=5,
                core=min(container.config.cpuset_cores),
                memory_stall_fraction=0.05,
                accesses_per_job=50,
            ),
        )

    def add_vm(self, config: VmConfig | None = None) -> VirtualMachine:
        """Start one QEMU-style VM (the Table II "one VM" case)."""
        self.vm = VirtualMachine(config)
        self.vm.start(self.scheduler)
        return self.vm

    # -- measurement ------------------------------------------------------------------

    def run(self, duration: float = 10.0) -> list[float]:
        """Run for ``duration`` seconds and return the per-core idle rates."""
        self.scheduler.advance(duration)
        return self.scheduler.idle_rates()

"""Multicore fixed-priority (SCHED_FIFO) scheduler with memory contention.

The scheduler advances in fixed quanta (1 ms by default, matching both the
physics step of the co-simulation and the MemGuard regulation period).  Within
a quantum each core executes its ready jobs in priority order; execution times
are stretched by the DRAM contention model and cores can be throttled by
MemGuard when their access budget is exhausted.

This is the substrate on which both the CPU DoS protection (cpuset pinning,
priority restrictions) and the memory DoS protection (MemGuard) act.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memsys.dram import DramModel
from ..memsys.memguard import MemGuard
from .cpu import CpuCore
from .task import Job, Task, TaskConfig

__all__ = ["MulticoreScheduler"]

_EPSILON = 1e-9


class MulticoreScheduler:
    """Fixed-priority multicore scheduler coupled to the memory subsystem."""

    def __init__(
        self,
        num_cores: int = 4,
        quantum: float = 0.001,
        dram: DramModel | None = None,
        memguard: MemGuard | None = None,
    ) -> None:
        if num_cores < 1:
            raise ValueError("num_cores must be at least 1")
        if quantum <= 0.0:
            raise ValueError("quantum must be positive")
        self.quantum = float(quantum)
        self.cores = [CpuCore(index) for index in range(num_cores)]
        self.dram = dram or DramModel()
        self.memguard = memguard
        self.tasks: list[Task] = []
        self.time = 0.0

    @property
    def num_cores(self) -> int:
        """Number of CPU cores."""
        return len(self.cores)

    # -- task management ---------------------------------------------------------

    def add_task(self, task: Task) -> Task:
        """Register a task; its first release is at ``config.offset``."""
        if task.config.core >= self.num_cores:
            raise ValueError(
                f"task {task.name!r} requests core {task.config.core}, "
                f"but only {self.num_cores} cores exist"
            )
        self.tasks.append(task)
        return task

    def task(self, name: str) -> Task:
        """Look up a task by name."""
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError(name)

    def remove_task(self, name: str) -> None:
        """Stop a task and drop its queued jobs (models killing a process)."""
        task = self.task(name)
        task.stop()
        for core in self.cores:
            core.remove_jobs_of(name)
        self.tasks.remove(task)

    # -- simulation --------------------------------------------------------------

    def advance(self, duration: float) -> None:
        """Advance the scheduler by ``duration`` seconds (multiple of quantum)."""
        if duration <= 0.0:
            raise ValueError("duration must be positive")
        steps = int(round(duration / self.quantum))
        if abs(steps * self.quantum - duration) > 1e-9:
            raise ValueError("duration must be an integer multiple of the quantum")
        for _ in range(max(1, steps)):
            self._advance_quantum()

    def _advance_quantum(self) -> None:
        start = self.time
        end = start + self.quantum

        if self.memguard is not None:
            self.memguard.advance_to(start)

        # Release due jobs onto their cores.
        for task in list(self.tasks):
            for job in task.release_due_jobs(start):
                self.cores[task.config.core].enqueue(job)

        # Estimate DRAM demand from the job each core would run this quantum.
        latency_factor = self.dram.latency_factor(self._total_demand())

        for core in self.cores:
            self._run_core(core, start, end, latency_factor)
            core.elapsed_time += self.quantum

        self.time = end

    def _total_demand(self) -> float:
        """Sum of access rates demanded by the cores for the coming quantum."""
        total = 0.0
        for core in self.cores:
            job = core.current_job()
            if job is None:
                continue
            rate = job.access_rate
            if self.memguard is not None:
                allowed = self.memguard.allowed_accesses(core.index)
                if allowed is not None:
                    rate = min(rate, allowed / self.quantum)
                if self.memguard.is_throttled(core.index):
                    rate = 0.0
            total += rate
        return total

    def _run_core(self, core: CpuCore, start: float, end: float, latency_factor: float) -> None:
        now = start
        while now < end - _EPSILON and core.ready:
            if self.memguard is not None and self.memguard.is_throttled(core.index):
                core.throttled_time += end - now
                return

            job = core.current_job()
            assert job is not None
            stretch = self.dram.stretch_execution(
                latency_factor, job.task.config.memory_stall_fraction
            )
            wall_needed = job.remaining * stretch
            run_time = min(end - now, wall_needed)

            # MemGuard: cap the run so the core does not exceed its remaining
            # budget; hitting the cap throttles the core for the rest of the
            # regulation period.
            throttle_after = False
            if self.memguard is not None:
                allowed = self.memguard.allowed_accesses(core.index)
                if allowed is not None and job.access_rate > 0.0:
                    progress_possible = run_time / stretch
                    accesses_needed = job.access_rate * progress_possible
                    if accesses_needed > allowed:
                        progress_possible = allowed / job.access_rate
                        run_time = progress_possible * stretch
                        throttle_after = True

            progress = run_time / stretch
            accesses = int(round(job.access_rate * progress))
            if self.memguard is not None and accesses > 0:
                self.memguard.record_accesses(core.index, accesses)

            job.remaining -= progress
            core.busy_time += run_time
            now += run_time

            if job.remaining <= _EPSILON:
                core.pop_current()
                job.task.complete_job(job, now)

            if throttle_after or (
                self.memguard is not None and self.memguard.is_throttled(core.index)
            ):
                core.throttled_time += end - now
                return

    # -- reporting ---------------------------------------------------------------

    def idle_rates(self) -> list[float]:
        """Per-core idle rates since the start of the simulation."""
        return [core.idle_rate for core in self.cores]

    def utilizations(self) -> list[float]:
        """Per-core busy fractions since the start of the simulation."""
        return [core.utilization for core in self.cores]

"""Inertial measurement unit model (gyroscope + accelerometer).

Models one of the Navio2's IMU chips (MPU9250-class) with white noise and a
slowly drifting bias on each axis.  Sampled at 250 Hz, the rate at which the
HCE forwards IMU data to the container (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dynamics.quadrotor import Quadrotor
from .base import PeriodicSensor
from .noise import GaussianNoise, RandomWalkBias

__all__ = ["ImuParameters", "ImuReading", "Imu", "IMU_RATE_HZ"]

#: Table I: IMU stream rate from HCE to CCE.
IMU_RATE_HZ = 250.0


@dataclass(frozen=True)
class ImuParameters:
    """Noise characteristics of the IMU."""

    gyro_noise_sigma: float = 0.005
    gyro_bias_sigma: float = 0.0005
    gyro_bias_walk: float = 1e-5
    accel_noise_sigma: float = 0.05
    accel_bias_sigma: float = 0.01
    accel_bias_walk: float = 1e-4


@dataclass(frozen=True)
class ImuReading:
    """One IMU measurement in the body frame."""

    gyro: np.ndarray = field(default_factory=lambda: np.zeros(3))
    accel: np.ndarray = field(default_factory=lambda: np.zeros(3))


class Imu(PeriodicSensor):
    """Gyroscope + accelerometer with bias drift and white noise."""

    def __init__(
        self,
        params: ImuParameters | None = None,
        rate_hz: float = IMU_RATE_HZ,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(rate_hz, name="imu")
        self.params = params or ImuParameters()
        rng = rng or np.random.default_rng(0)
        self._gyro_noise = GaussianNoise(self.params.gyro_noise_sigma, rng)
        self._accel_noise = GaussianNoise(self.params.accel_noise_sigma, rng)
        self._gyro_bias = RandomWalkBias(
            rng.normal(0.0, self.params.gyro_bias_sigma, size=3),
            self.params.gyro_bias_walk,
            rng,
        )
        self._accel_bias = RandomWalkBias(
            rng.normal(0.0, self.params.accel_bias_sigma, size=3),
            self.params.accel_bias_walk,
            rng,
        )

    def _measure(self, time: float, plant: Quadrotor) -> ImuReading:
        self._gyro_bias.step(self.period)
        self._accel_bias.step(self.period)

        gyro_true = plant.state.angular_velocity
        gyro = gyro_true + self._gyro_bias.value + self._gyro_noise.sample((3,))

        # Accelerometers measure specific force (thrust and drag, no gravity)
        # expressed in the body frame; on the ground the plant model returns
        # the gravity reaction instead.
        accel_true = plant.specific_force_body()
        accel = accel_true + self._accel_bias.value + self._accel_noise.sample((3,))
        return ImuReading(gyro=gyro, accel=accel)

"""Message router: dispatches decoded frames to per-type handlers.

Both control environments use a router to fan incoming messages out to the
right consumer (IMU samples to the attitude filter, RC frames to the mode
logic, actuator outputs to the output selector, and so on).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

from .codec import Frame
from .messages import MavlinkMessage

__all__ = ["MessageRouter"]

Handler = Callable[[MavlinkMessage, float], None]


class MessageRouter:
    """Registers handlers per message class and dispatches frames to them."""

    def __init__(self) -> None:
        self._handlers: dict[type[MavlinkMessage], list[Handler]] = defaultdict(list)
        self.dispatched = 0
        self.unhandled = 0

    def subscribe(self, message_type: type[MavlinkMessage], handler: Handler) -> None:
        """Register ``handler`` for messages of ``message_type``."""
        self._handlers[message_type].append(handler)

    def dispatch(self, frame: Frame, now: float) -> bool:
        """Dispatch one frame; returns True if at least one handler consumed it."""
        handlers = self._handlers.get(type(frame.message), [])
        if not handlers:
            self.unhandled += 1
            return False
        for handler in handlers:
            handler(frame.message, now)
        self.dispatched += 1
        return True

    def dispatch_all(self, frames: list[Frame], now: float) -> int:
        """Dispatch a batch of frames; returns the number consumed."""
        return sum(1 for frame in frames if self.dispatch(frame, now))

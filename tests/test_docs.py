"""The documentation is checked mechanically, as part of tier-1.

``tools/check_docs.py`` guards against doc drift: broken relative links,
fenced spec examples the spec machinery would reject, and console commands
using CLI flags that no longer exist.  This test runs the real checker over
the real docs — a PR that renames a flag or spec key without updating the
docs fails here — and exercises the checker's own detection logic on
synthetic drift so "0 problems" is trustworthy.
"""

import importlib.util
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_docs", ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


class TestRealDocs:
    def test_repository_docs_are_clean(self, capsys):
        assert check_docs.main() == 0, capsys.readouterr().err

    def test_docs_exist(self):
        for name in ("README.md", "docs/architecture.md", "docs/campaigns.md",
                     "docs/adaptive.md", "docs/distributed.md"):
            assert (ROOT / name).exists(), name


class TestLinkCheck:
    def test_broken_relative_link_is_reported(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [other](missing.md) and [ok](exists.md)")
        (tmp_path / "exists.md").touch()
        errors = []
        check_docs.check_links(page, page.read_text(), errors)
        assert len(errors) == 1 and "missing.md" in errors[0]

    def test_external_and_anchor_links_are_ignored(self, tmp_path):
        page = tmp_path / "page.md"
        text = "[a](https://example.org/x) [b](#section) [c](mailto:x@y.z)"
        errors = []
        check_docs.check_links(page, text, errors)
        assert errors == []


class TestSpecBlocks:
    def test_valid_spec_builds(self):
        errors = []
        check_docs.check_spec_block(
            "toml",
            '[scenario]\nfigure = "figure5"\n'
            "[axes]\nseed = [0, 1]\n",
            "synthetic", errors,
        )
        assert errors == []

    def test_unknown_runner_key_is_reported(self):
        errors = []
        check_docs.check_spec_block(
            "toml", "[runner]\nturbo = true\n", "synthetic", errors
        )
        assert len(errors) == 1 and "does not build" in errors[0]

    def test_unknown_backend_option_is_reported(self):
        errors = []
        check_docs.check_spec_block(
            "toml",
            '[runner]\nbackend = "distributed"\n'
            'backend_options = { transport = "telepathy" }\n',
            "synthetic", errors,
        )
        assert len(errors) == 1

    def test_non_spec_blocks_are_skipped(self):
        errors = []
        check_docs.check_spec_block(
            "toml", "[tool.pytest]\nfoo = 1\n", "synthetic", errors
        )
        check_docs.check_spec_block("json", '{"rows": []}', "synthetic", errors)
        assert errors == []


class TestConsoleBlocks:
    def test_continuation_lines_are_joined(self):
        content = "$ python -m repro.campaign spec.toml \\\n      --serial\nignored output"
        assert list(check_docs.iter_commands(content)) == [
            "python -m repro.campaign spec.toml --serial"
        ]

    def test_unknown_module_flag_is_reported(self):
        errors = []
        check_docs.ConsoleChecker().check(
            "$ python -m repro.campaign spec.toml --warp-speed",
            "synthetic", errors,
        )
        assert len(errors) == 1 and "--warp-speed" in errors[0]

    def test_known_worker_flags_pass(self):
        errors = []
        check_docs.ConsoleChecker().check(
            "$ python -m repro.campaign.worker /q --lease-timeout 30\n"
            "$ python -m repro.campaign.worker --connect host:9100",
            "synthetic", errors,
        )
        assert errors == []

    def test_missing_example_script_is_reported(self):
        errors = []
        check_docs.ConsoleChecker().check(
            "$ python examples/definitely_not_there.py --x", "synthetic", errors
        )
        assert len(errors) == 1 and "missing script" in errors[0]

    def test_env_prefixes_are_ignored(self):
        errors = []
        check_docs.ConsoleChecker().check(
            "$ PYTHONPATH=src python -m repro.campaign spec.toml --serial",
            "synthetic", errors,
        )
        assert errors == []

"""Barometric altimeter model.

Models the Navio2's MS5611 barometer: pressure is converted from true
altitude with the standard atmosphere, with additive noise and a slow drift.
Sampled at 50 Hz per Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dynamics.quadrotor import Quadrotor
from .base import PeriodicSensor
from .noise import GaussianNoise, RandomWalkBias

__all__ = ["BarometerParameters", "BarometerReading", "Barometer", "BARO_RATE_HZ"]

#: Table I: barometer stream rate from HCE to CCE.
BARO_RATE_HZ = 50.0

#: Sea-level standard pressure [Pa].
SEA_LEVEL_PRESSURE = 101325.0
#: Pressure decay scale used for the altitude-to-pressure conversion [m].
PRESSURE_SCALE_HEIGHT = 8434.0


def altitude_to_pressure(altitude_m: float) -> float:
    """Convert altitude above sea level to static pressure [Pa]."""
    return SEA_LEVEL_PRESSURE * np.exp(-altitude_m / PRESSURE_SCALE_HEIGHT)


def pressure_to_altitude(pressure_pa: float) -> float:
    """Convert static pressure [Pa] to altitude above sea level [m]."""
    return -PRESSURE_SCALE_HEIGHT * np.log(pressure_pa / SEA_LEVEL_PRESSURE)


@dataclass(frozen=True)
class BarometerParameters:
    """Noise characteristics of the barometer."""

    noise_sigma_m: float = 0.05
    drift_walk_m: float = 0.002
    reference_altitude_m: float = 220.0


@dataclass(frozen=True)
class BarometerReading:
    """One barometer measurement."""

    pressure_pa: float
    altitude_m: float
    temperature_c: float = 25.0


class Barometer(PeriodicSensor):
    """Static-pressure altimeter with noise and drift."""

    def __init__(
        self,
        params: BarometerParameters | None = None,
        rate_hz: float = BARO_RATE_HZ,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(rate_hz, name="baro")
        self.params = params or BarometerParameters()
        rng = rng or np.random.default_rng(1)
        self._noise = GaussianNoise(self.params.noise_sigma_m, rng)
        self._drift = RandomWalkBias(0.0, self.params.drift_walk_m, rng)

    def _measure(self, time: float, plant: Quadrotor) -> BarometerReading:
        self._drift.step(self.period)
        altitude_asl = (
            self.params.reference_altitude_m
            + plant.altitude
            + float(self._drift.value[0])
            + float(self._noise.sample(()))
        )
        return BarometerReading(
            pressure_pa=float(altitude_to_pressure(altitude_asl)),
            altitude_m=altitude_asl,
        )

"""Tests for the quad-X geometry and force/torque composition."""

import numpy as np
import pytest

from repro.dynamics import QuadGeometry, forces_and_torques


@pytest.fixture
def geometry():
    return QuadGeometry()


class TestQuadGeometry:
    def test_rejects_nonpositive_arm(self):
        with pytest.raises(ValueError):
            QuadGeometry(arm_length=0.0)

    def test_rejects_wrong_spin_count(self):
        with pytest.raises(ValueError):
            QuadGeometry(spin_directions=(1, 1, -1))

    def test_rejects_invalid_spin_values(self):
        with pytest.raises(ValueError):
            QuadGeometry(spin_directions=(1, 1, -1, 0))

    def test_spin_directions_accepts_list(self):
        geometry = QuadGeometry(spin_directions=[1, 1, -1, -1])
        assert geometry.spin_directions == (1, 1, -1, -1)
        # The frozen geometry must stay hashable despite the list input.
        hash(geometry)
        force, torque = forces_and_torques(
            np.full(4, 2.0), np.zeros(4), geometry
        )
        assert np.allclose(force, [0.0, 0.0, -8.0])

    def test_rotor_positions_symmetric(self, geometry):
        positions = geometry.rotor_positions
        assert positions.shape == (4, 3)
        assert np.allclose(np.sum(positions, axis=0), 0.0)
        radii = np.linalg.norm(positions, axis=1)
        assert np.allclose(radii, geometry.arm_length)


class TestForcesAndTorques:
    def test_equal_thrust_gives_pure_lift(self, geometry):
        force, torque = forces_and_torques(np.full(4, 2.0), np.full(4, 0.05), geometry)
        assert np.allclose(force, [0.0, 0.0, -8.0])
        assert np.allclose(torque[:2], 0.0, atol=1e-12)
        # CCW/CW reaction torques cancel for equal rotor speeds.
        assert torque[2] == pytest.approx(0.0, abs=1e-12)

    def test_roll_torque_sign(self, geometry):
        # More thrust on the left rotors (1: rear-left, 2: front-left) rolls right (+).
        force, torque = forces_and_torques(
            np.array([1.0, 2.0, 2.0, 1.0]), np.zeros(4), geometry
        )
        assert torque[0] > 0.0
        assert torque[1] == pytest.approx(0.0, abs=1e-12)

    def test_pitch_torque_sign(self, geometry):
        # More thrust on the front rotors (0, 2) pitches the nose up (+).
        force, torque = forces_and_torques(
            np.array([2.0, 1.0, 2.0, 1.0]), np.zeros(4), geometry
        )
        assert torque[1] > 0.0
        assert torque[0] == pytest.approx(0.0, abs=1e-12)

    def test_yaw_torque_from_ccw_rotors(self, geometry):
        # Only the CCW rotors (0, 1) spin: their reaction torque is positive yaw.
        force, torque = forces_and_torques(
            np.zeros(4), np.array([0.1, 0.1, 0.0, 0.0]), geometry
        )
        assert torque[2] > 0.0

    def test_yaw_torque_from_cw_rotors(self, geometry):
        force, torque = forces_and_torques(
            np.zeros(4), np.array([0.0, 0.0, 0.1, 0.1]), geometry
        )
        assert torque[2] < 0.0

    def test_rejects_wrong_rotor_count(self, geometry):
        with pytest.raises(ValueError):
            forces_and_torques(np.ones(3), np.ones(3), geometry)

    def test_force_is_sum_of_thrusts(self, geometry):
        thrusts = np.array([1.0, 2.0, 3.0, 4.0])
        force, _ = forces_and_torques(thrusts, np.zeros(4), geometry)
        assert force[2] == pytest.approx(-10.0)

"""Complex-controller kill attack.

Since the complex controller has potential vulnerabilities, the attacker can
simply terminate it — both to endanger the drone and to free the container's
resources for other attacks.  This is the attack of Figure 6: the controller
is killed mid-flight and the HCE stops receiving actuator outputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import Attack

__all__ = ["ControllerKillAttack"]


@dataclass(frozen=True)
class ControllerKillAttack(Attack):
    """Terminate the complex controller at ``start_time``."""

    start_time: float = 12.0
    duration: float | None = None

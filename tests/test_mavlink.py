"""Tests for the MAVLink-like message set, codec, connection and router."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mavlink import (
    MESSAGE_REGISTRY,
    ActuatorOutputs,
    AttitudeTarget,
    DecodeError,
    GpsRawInt,
    Heartbeat,
    HighresImu,
    LocalPositionNed,
    MavlinkCodec,
    MavlinkConnection,
    MessageRouter,
    MOTOR_PORT,
    RcChannelsOverride,
    SENSOR_PORT,
    ScaledPressure,
    crc16,
    message_class_for_id,
)
from repro.network import CONTAINER_NAMESPACE, HOST_NAMESPACE, NetworkStack


class TestTableOneFrameSizes:
    """Framed message sizes must reproduce Table I of the paper."""

    @pytest.mark.parametrize(
        "message, expected_size",
        [
            (HighresImu(), 52),
            (ScaledPressure(), 32),
            (GpsRawInt(), 44),
            (RcChannelsOverride(), 50),
            (ActuatorOutputs(), 29),
        ],
    )
    def test_frame_size_matches_table1(self, message, expected_size):
        codec = MavlinkCodec()
        assert len(codec.encode(message)) == expected_size
        assert codec.frame_size(message) == expected_size

    def test_table1_ports(self):
        assert SENSOR_PORT == 14660
        assert MOTOR_PORT == 14600


class TestMessageRoundtrips:
    @pytest.mark.parametrize(
        "message",
        [
            Heartbeat(time_ms=1234, system_status=3),
            HighresImu(time_ms=5, gyro=(0.1, -0.2, 0.3), accel=(0.0, 0.1, -9.8)),
            ScaledPressure(time_ms=7, pressure_abs=99000.0, altitude_m=220.5),
            GpsRawInt(time_ms=11, lat_e7=401106000, lon_e7=-882073000, alt_mm=220000),
            RcChannelsOverride(time_ms=13, channels=tuple(range(1000, 1016))),
            LocalPositionNed(time_ms=17, x=1.0, y=-2.0, z=-1.5, yaw=0.3),
            ActuatorOutputs(time_ms=19, motors=(0.1, 0.2, 0.3, 0.4), sequence=42),
            AttitudeTarget(time_ms=23, roll=0.1, pitch=-0.1, yaw=0.5, thrust=0.6),
        ],
    )
    def test_pack_unpack_roundtrip(self, message):
        rebuilt = type(message).unpack(message.pack())
        assert rebuilt.time_ms == message.time_ms

    def test_actuator_outputs_preserves_motor_values(self):
        message = ActuatorOutputs.from_command(100, np.array([0.11, 0.22, 0.33, 0.44]), 5)
        rebuilt = ActuatorOutputs.unpack(message.pack())
        assert np.allclose(rebuilt.motors, [0.11, 0.22, 0.33, 0.44], atol=1e-6)
        assert rebuilt.sequence == 5

    def test_highres_imu_from_arrays(self):
        message = HighresImu.from_arrays(77, np.array([1.0, 2.0, 3.0]), np.array([4.0, 5.0, 6.0]))
        rebuilt = HighresImu.unpack(message.pack())
        assert np.allclose(rebuilt.gyro, [1.0, 2.0, 3.0], atol=1e-6)
        assert np.allclose(rebuilt.accel, [4.0, 5.0, 6.0], atol=1e-6)

    def test_registry_ids_unique_and_resolvable(self):
        for msg_id, cls in MESSAGE_REGISTRY.items():
            assert message_class_for_id(msg_id) is cls

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            message_class_for_id(9999)


class TestCodec:
    def test_encode_decode_roundtrip(self):
        codec = MavlinkCodec(system_id=7)
        frame = MavlinkCodec().decode(codec.encode(Heartbeat(time_ms=9)))
        assert isinstance(frame.message, Heartbeat)
        assert frame.system_id == 7
        assert frame.message.time_ms == 9

    def test_sequence_increments_and_wraps(self):
        codec = MavlinkCodec()
        decoder = MavlinkCodec()
        first = decoder.decode(codec.encode(Heartbeat()))
        second = decoder.decode(codec.encode(Heartbeat()))
        assert second.sequence == (first.sequence + 1) % 256

    def test_truncated_datagram_rejected(self):
        codec = MavlinkCodec()
        with pytest.raises(DecodeError):
            codec.decode(b"\xfd\x01")
        assert codec.decode_errors == 1

    def test_bad_magic_rejected(self):
        codec = MavlinkCodec()
        data = bytearray(codec.encode(Heartbeat()))
        data[0] = 0x55
        with pytest.raises(DecodeError):
            MavlinkCodec().decode(bytes(data))

    def test_corrupted_payload_fails_crc(self):
        codec = MavlinkCodec()
        data = bytearray(codec.encode(HighresImu()))
        data[12] ^= 0xFF
        with pytest.raises(DecodeError):
            MavlinkCodec().decode(bytes(data))

    def test_garbage_flood_payload_rejected(self):
        codec = MavlinkCodec()
        with pytest.raises(DecodeError):
            codec.decode(b"\x00" * 64)

    def test_crc16_known_properties(self):
        assert crc16(b"") == 0xFFFF
        assert crc16(b"hello") != crc16(b"hellp")

    @given(st.binary(min_size=0, max_size=128))
    @settings(max_examples=100, deadline=None)
    def test_decoder_never_crashes_on_garbage(self, data):
        codec = MavlinkCodec()
        try:
            codec.decode(data)
        except DecodeError:
            pass


@pytest.fixture
def stack():
    return NetworkStack()


class TestMavlinkConnection:
    def test_send_and_receive(self, stack):
        sender = MavlinkConnection(stack, HOST_NAMESPACE, 47001, CONTAINER_NAMESPACE, SENSOR_PORT)
        receiver = MavlinkConnection(stack, CONTAINER_NAMESPACE, SENSOR_PORT, HOST_NAMESPACE, 0)
        assert sender.send(0.0, Heartbeat(time_ms=1))
        frames = receiver.receive(0.01)
        assert len(frames) == 1
        assert isinstance(frames[0].message, Heartbeat)

    def test_receive_before_latency_elapses_is_empty(self, stack):
        sender = MavlinkConnection(stack, HOST_NAMESPACE, 47001, CONTAINER_NAMESPACE, SENSOR_PORT)
        receiver = MavlinkConnection(stack, CONTAINER_NAMESPACE, SENSOR_PORT, HOST_NAMESPACE, 0)
        sender.send(0.0, Heartbeat())
        assert receiver.receive(0.0) == []

    def test_malformed_datagram_counted(self, stack):
        receiver = MavlinkConnection(stack, HOST_NAMESPACE, MOTOR_PORT, CONTAINER_NAMESPACE, 0)
        stack.send(0.0, b"\x00" * 32, CONTAINER_NAMESPACE, 5555, HOST_NAMESPACE, MOTOR_PORT)
        frames = receiver.receive(0.01)
        assert frames == []
        assert receiver.malformed_received == 1

    def test_close_unbinds_endpoint(self, stack):
        receiver = MavlinkConnection(stack, HOST_NAMESPACE, MOTOR_PORT, CONTAINER_NAMESPACE, 0)
        receiver.close()
        assert receiver.closed
        assert receiver.receive(1.0) == []
        assert not stack.send(1.0, b"x", CONTAINER_NAMESPACE, 5555, HOST_NAMESPACE, MOTOR_PORT)

    def test_duplicate_bind_rejected(self, stack):
        MavlinkConnection(stack, HOST_NAMESPACE, MOTOR_PORT, CONTAINER_NAMESPACE, 0)
        with pytest.raises(ValueError):
            MavlinkConnection(stack, HOST_NAMESPACE, MOTOR_PORT, CONTAINER_NAMESPACE, 0)


class TestMessageRouter:
    def test_dispatch_to_subscribed_handler(self):
        router = MessageRouter()
        received = []
        router.subscribe(Heartbeat, lambda message, now: received.append((message, now)))
        codec = MavlinkCodec()
        frame = MavlinkCodec().decode(codec.encode(Heartbeat(time_ms=3)))
        assert router.dispatch(frame, 1.5)
        assert received[0][1] == 1.5

    def test_unhandled_message_counted(self):
        router = MessageRouter()
        codec = MavlinkCodec()
        frame = MavlinkCodec().decode(codec.encode(Heartbeat()))
        assert not router.dispatch(frame, 0.0)
        assert router.unhandled == 1

    def test_dispatch_all_counts_consumed(self):
        router = MessageRouter()
        router.subscribe(Heartbeat, lambda message, now: None)
        codec = MavlinkCodec()
        decoder = MavlinkCodec()
        frames = [decoder.decode(codec.encode(Heartbeat())) for _ in range(3)]
        assert router.dispatch_all(frames, 0.0) == 3
        assert router.dispatched == 3

    def test_multiple_handlers_all_called(self):
        router = MessageRouter()
        calls = []
        router.subscribe(Heartbeat, lambda message, now: calls.append("a"))
        router.subscribe(Heartbeat, lambda message, now: calls.append("b"))
        codec = MavlinkCodec()
        router.dispatch(MavlinkCodec().decode(codec.encode(Heartbeat())), 0.0)
        assert calls == ["a", "b"]

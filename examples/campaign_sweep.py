#!/usr/bin/env python3
"""Scenario-campaign sweep: the Figure 5 experiment as a parameter grid.

Instead of flying the paper's single hand-picked memory-DoS experiment, this
example sweeps MemGuard budgets x attack start times x seeds with the
``repro.campaign`` engine, fans the flights out over a process pool, and
reports the crash rate and deviation statistics per grid cell.

Usage::

    python examples/campaign_sweep.py [--duration SECONDS] [--seeds N]
        [--budgets B1,B2,...] [--attack-starts T1,T2,...] [--serial]
        [--backend serial|process-pool|distributed|service] [--workers N]
        [--transport file|socket|http] [--port PORT] [--auth-token TOKEN]
        [--connect-http URL] [--max-workers N] [--store DIR]
        [--record-arrays] [--csv PATH] [--json PATH]

With ``--backend service --connect-http http://host:port`` the flights run
on an already-running campaign-service daemon's worker fleet instead of
locally spawned processes (start one with ``python -m
repro.campaign.service``).
"""

from __future__ import annotations

import argparse

from repro import CampaignRunner, FlightScenario, ScenarioGrid


def _floats(text: str) -> list[float]:
    return [float(part) for part in text.split(",") if part]


def _ints(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=12.0)
    parser.add_argument("--seeds", type=int, default=3,
                        help="number of replicate seeds per grid cell")
    parser.add_argument("--budgets", type=_ints, default=[1000, 3000],
                        help="comma-separated MemGuard budgets [accesses/period]")
    parser.add_argument("--attack-starts", type=_floats, default=[2.0, 4.0],
                        help="comma-separated attack start times [s]")
    policy = parser.add_mutually_exclusive_group()
    policy.add_argument("--serial", action="store_true",
                        help="force serial execution (default: process pool)")
    policy.add_argument("--backend",
                        choices=("serial", "process-pool", "distributed",
                                 "service"),
                        default=None,
                        help="explicit executor backend (distributed spawns "
                             "local worker processes over a file work-queue; "
                             "service submits to a running campaign-service "
                             "daemon, see --connect-http)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for --backend distributed "
                             "(default: 2)")
    parser.add_argument("--transport", choices=("file", "socket", "http"),
                        default="file",
                        help="work-queue transport for --backend distributed: "
                             "a shared directory, the coordinator's TCP "
                             "server, or its HTTP server (default: file)")
    parser.add_argument("--port", type=int, default=None,
                        help="fixed coordinator port for the socket/http "
                             "transports (lets an external probe scrape "
                             "GET /metrics and GET /status mid-campaign)")
    parser.add_argument("--auth-token", default=None,
                        help="shared-secret token for the socket/http "
                             "transports or the service backend (default: "
                             "$REPRO_CAMPAIGN_AUTH_TOKEN)")
    parser.add_argument("--connect-http", default=None, metavar="URL",
                        help="campaign-service base URL for --backend "
                             "service (e.g. http://127.0.0.1:8765)")
    parser.add_argument("--max-workers", type=int, default=None,
                        help="autoscale ceiling for --backend distributed: "
                             "grow the fleet up to this many workers on "
                             "backlog, retire idle ones (default: off)")
    parser.add_argument("--store", type=str, default=None,
                        help="cache flights in this result-store directory "
                             "(re-runs fly only changed cells)")
    parser.add_argument("--record-arrays", action="store_true",
                        help="persist trajectory arrays alongside cached "
                             "cells (requires --store)")
    parser.add_argument("--csv", type=str, default=None,
                        help="write per-variant summaries to this CSV file")
    parser.add_argument("--json", type=str, default=None,
                        help="write the full campaign summary to this JSON file")
    args = parser.parse_args()
    if args.record_arrays and not args.store:
        parser.error("--record-arrays requires --store")
    if args.auth_token and args.backend not in ("distributed", "service"):
        parser.error("--auth-token requires --backend distributed or service")
    if args.port is not None and (args.backend != "distributed"
                                  or args.transport == "file"):
        parser.error("--port requires --backend distributed with a "
                     "socket or http transport")
    if (args.connect_http is None) != (args.backend != "service"):
        parser.error("--backend service and --connect-http URL go together")

    base = FlightScenario.figure5(duration=args.duration)
    grid = ScenarioGrid(base, axes={
        "memguard_budget": args.budgets,
        "attack_start": args.attack_starts,
        "seed": list(range(args.seeds)),
    })
    backend = None
    if args.backend is not None:
        from repro.campaign import get_backend

        options = {}
        if args.backend == "distributed":
            options = {"workers": args.workers, "transport": args.transport,
                       "max_workers": args.max_workers,
                       "auth_token": args.auth_token}
            if args.port is not None:
                options["port"] = args.port
        elif args.backend == "service":
            import os

            options = {"url": args.connect_http,
                       "auth_token": args.auth_token
                       or os.environ.get("REPRO_CAMPAIGN_AUTH_TOKEN")
                       or None,
                       "label": "campaign-sweep-example"}
        backend = get_backend(args.backend, **options)
    mode = "serial" if args.serial else "auto"
    label = args.backend or f"{mode} mode"
    print(f"Expanding {base.name}: "
          f"{len(args.budgets)} budgets x {len(args.attack_starts)} attack starts "
          f"x {args.seeds} seeds = {len(grid)} flights ({label})")

    store = None
    if args.store:
        from repro import CampaignStore

        store = CampaignStore(args.store)
    result = CampaignRunner(mode=mode, backend=backend, store=store,
                            record_arrays=args.record_arrays).run(grid)
    if store is not None:
        print(f"Result store {args.store}: {result.cache_hits} cached, "
              f"{result.cache_misses} flown")
    for event in result.scale_events:
        print(f"Autoscaler {event['event']}: {event['workers']} worker(s), "
              f"backlog {event['backlog']} (t={event['elapsed']:.1f}s)")

    print()
    print(result.to_text())
    print()
    print(f"Campaign wall time: {result.wall_time:.1f} s "
          f"({result.wall_time / len(result):.1f} s per flight)")

    telemetry = result.telemetry or {}
    spans = telemetry.get("spans") or {}
    if spans:
        print("Phase timings:")
        for phase, stats in spans.items():
            print(f"  {phase}: {stats['count']}x, "
                  f"total {stats['total_s']:.2f} s, "
                  f"mean {stats['mean_s']:.3f} s")
    store_stats = telemetry.get("store")
    if store_stats is not None:
        print(f"Store: {store_stats['hits']} hits, "
              f"{store_stats['misses']} misses, "
              f"{store_stats['writes']} writes, "
              f"{store_stats['corrupt']} corrupt")
    queue = telemetry.get("queue")
    if queue:
        print(f"Queue: {queue['enqueued']} enqueued, "
              f"peak depth {queue.get('pending_peak', 0)}, "
              f"{queue['lease_reissues']} lease re-issue(s), "
              f"{queue.get('auth_denials', 0)} auth denial(s)")

    for outcome in result.failures():
        print(f"FAILED: {outcome.name}\n{outcome.error}")

    if args.csv:
        rows = result.to_csv(args.csv)
        print(f"Wrote {rows} rows to {args.csv}")
    if args.json:
        result.to_json(args.json)
        print(f"Wrote campaign JSON to {args.json}")


if __name__ == "__main__":
    main()

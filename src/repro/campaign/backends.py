"""Executor backends: how a campaign's variants are mapped to outcomes.

:class:`~repro.campaign.runner.CampaignRunner` is policy (ordering, caching,
fallback); an :class:`ExecutorBackend` is mechanism.  A backend maps a pure
worker function over variants and yields the results **in input order** —
nothing about grids, stores or summaries leaks into it, so alternative
execution substrates (a cluster scheduler, a batch queue) only have to
implement :meth:`ExecutorBackend.map`.

Backends must yield results as they become available (lazily) rather than
collecting them first: the runner's fallback logic keeps every outcome that
was produced before a mid-campaign pool failure.  Backends whose ``map``
additionally accepts an ``on_complete(index, result)`` keyword invoke it the
moment each item finishes, **in completion order** — the runner uses it to
persist flights that completed but cannot be yielded yet because an earlier
item is still running, so a killed campaign loses nothing that finished.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import time
import uuid
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator, Protocol, Sequence, runtime_checkable

from .workqueue import FileWorkQueue

__all__ = [
    "ExecutorBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "DistributedBackend",
    "get_backend",
]

#: Completion-order callback: ``on_complete(input_index, result)``.
CompletionCallback = Callable[[int, Any], None]


@runtime_checkable
class ExecutorBackend(Protocol):
    """Maps a worker function over items, yielding results in input order."""

    #: Short identifier used in reports and CLI specs.
    name: str

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Any]:  # pragma: no cover - protocol signature
        ...


@dataclass(frozen=True)
class SerialBackend:
    """In-process, one-at-a-time execution (also the fallback substrate)."""

    name = "serial"

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> Iterator[Any]:
        for item in items:
            yield fn(item)


@dataclass(frozen=True)
class ProcessPoolBackend:
    """``concurrent.futures.ProcessPoolExecutor`` fan-out.

    Attributes
    ----------
    max_workers:
        Pool size; ``None`` uses the CPU count.  The effective size is
        additionally capped at the number of items.
    """

    max_workers: int | None = None

    name = "process-pool"

    def __post_init__(self) -> None:
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        on_complete: CompletionCallback | None = None,
    ) -> Iterator[Any]:
        items = list(items)
        if not items:
            return
        workers = min(self.max_workers or os.cpu_count() or 1, len(items))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if on_complete is None:
                yield from pool.map(fn, items)
                return
            futures = [pool.submit(fn, item) for item in items]
            index_of = {future: index for index, future in enumerate(futures)}
            pending = set(futures)
            next_index = 0
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                # Report completions immediately (completion order) so the
                # caller can persist them; an interrupt between completions
                # then loses nothing that already ran.
                for future in sorted(done, key=index_of.__getitem__):
                    on_complete(index_of[future], future.result())
                while next_index < len(futures) and futures[next_index].done():
                    yield futures[next_index].result()
                    next_index += 1
            while next_index < len(futures):
                yield futures[next_index].result()
                next_index += 1


@dataclass(frozen=True)
class DistributedBackend:
    """File work-queue executor: a coordinator plus N worker *processes*.

    The coordinator serialises every item into a shared
    :class:`~repro.campaign.workqueue.FileWorkQueue` directory, spawns
    ``workers`` local worker processes (``python -m repro.campaign.worker``),
    and polls for results.  Because the queue is just a directory, additional
    workers may attach from anywhere that shares it (other shells,
    containers, machines on a network filesystem) — pass ``queue_dir`` and
    ``workers=0`` to bring your own fleet.

    Fault tolerance: workers heartbeat their lease's mtime every quarter of
    ``lease_timeout``; a worker that dies mid-task stops heartbeating, the
    coordinator re-queues the task, and another worker picks it up.  Results
    arrive out of order and are yielded in input order; ``on_complete`` fires
    the moment each item finishes so the runner can persist it immediately.

    Attributes
    ----------
    workers:
        Local worker processes to spawn (``0`` = rely on external workers;
        requires an explicit ``queue_dir``).
    queue_dir:
        Shared queue directory; ``None`` creates (and removes) a temporary
        one, which confines the campaign to local spawned workers.
    lease_timeout:
        Seconds without a heartbeat before a claimed task is re-issued.
        Must exceed the slowest single flight's heartbeat gap (the heartbeat
        runs on a thread, so only a hard worker death stops it).
    poll_interval:
        Coordinator/worker filesystem polling period [s].
    """

    workers: int = 2
    queue_dir: str | None = None
    lease_timeout: float = 30.0
    poll_interval: float = 0.05

    name = "distributed"

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.workers == 0 and self.queue_dir is None:
            raise ValueError(
                "workers=0 requires an explicit queue_dir for external "
                "workers to attach to"
            )
        if self.lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        on_complete: CompletionCallback | None = None,
    ) -> Iterator[Any]:
        items = list(items)
        if not items:
            return
        owns_dir = self.queue_dir is None
        root = (
            Path(tempfile.mkdtemp(prefix="repro-campaign-queue-"))
            if owns_dir
            else Path(self.queue_dir)
        )
        # A per-run id namespaces this campaign's tasks and results: a
        # worker of a previous killed run finishing late on a reused
        # directory answers under the old id and is ignored by collect().
        queue = FileWorkQueue(root, run_id=f"r{uuid.uuid4().hex[:12]}")
        processes: list[subprocess.Popen] = []
        try:
            # A queue directory hosts one campaign at a time: purge stale
            # tasks/results/stop from a previous run of an explicit
            # queue_dir before enqueueing, or old result files would be
            # collected as this campaign's outcomes.
            queue.reset()
            for index, item in enumerate(items):
                queue.enqueue(index, (fn, item))
            processes = [self._spawn_worker(root) for _ in range(self.workers)]
            yield from self._drain(queue, len(items), processes, on_complete)
        finally:
            queue.request_stop()
            self._reap(processes)
            if owns_dir:
                shutil.rmtree(root, ignore_errors=True)

    # ------------------------------------------------------------------ internal --

    def _spawn_worker(self, root: Path) -> subprocess.Popen:
        env = dict(os.environ)
        # Whatever is importable here must be importable in the worker: the
        # task payloads reference functions by module path.
        env["PYTHONPATH"] = os.pathsep.join(
            entry for entry in sys.path if entry
        )
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.campaign.worker",
                str(root),
                "--lease-timeout",
                str(self.lease_timeout),
                "--poll",
                str(self.poll_interval),
            ],
            env=env,
        )

    def _drain(
        self,
        queue: FileWorkQueue,
        total: int,
        processes: list[subprocess.Popen],
        on_complete: CompletionCallback | None,
    ) -> Iterator[Any]:
        seen: set[int] = set()
        ready: dict[int, Any] = {}
        next_index = 0
        # Housekeeping (coordinator heartbeat, lease-expiry scan) has
        # lease-timeout granularity; doing it every poll tick would hammer
        # a network filesystem with metadata traffic for nothing.  Only
        # result collection runs at the fast poll.
        housekeeping_period = self.lease_timeout / 4.0
        last_housekeeping = float("-inf")
        while next_index < total:
            now = time.monotonic()
            if now - last_housekeeping >= housekeeping_period:
                last_housekeeping = now
                # Heartbeat for the workers' orphan detection: a coordinator
                # killed without cleanup stops touching this, and idle
                # workers exit on their own instead of polling forever.
                queue.touch_coordinator()
                queue.reclaim_expired(self.lease_timeout)
            fresh = queue.collect(seen)
            for index in sorted(fresh):
                status, value = fresh[index]
                seen.add(index)
                if status != "ok":
                    raise RuntimeError(
                        f"distributed worker failed on item {index}:\n{value}"
                    )
                ready[index] = value
                if on_complete is not None:
                    on_complete(index, value)
            while next_index in ready:
                yield ready.pop(next_index)
                next_index += 1
            if next_index >= total:
                return
            if processes and all(proc.poll() is not None for proc in processes):
                # Every worker this coordinator spawned is gone.  External
                # workers could still drain an explicit queue_dir, but with
                # spawned workers dead the far likelier outcome is a hang —
                # fail loudly and let the runner fall back to serial.
                raise RuntimeError(
                    f"all {len(processes)} distributed workers exited with "
                    f"{total - len(seen)} of {total} items outstanding"
                )
            time.sleep(self.poll_interval)

    def _reap(self, processes: list[subprocess.Popen]) -> None:
        deadline = time.time() + max(1.0, 4 * self.poll_interval)
        for proc in processes:
            try:
                proc.wait(timeout=max(0.0, deadline - time.time()))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()


#: Registry of backend factories selectable by name (CLI / spec files).
_BACKENDS: dict[str, Callable[..., ExecutorBackend]] = {
    "serial": SerialBackend,
    "process-pool": ProcessPoolBackend,
    "distributed": DistributedBackend,
}


def get_backend(name: str, **options: Any) -> ExecutorBackend:
    """Instantiate a backend by registry name.

    ``options`` are passed to the backend constructor (e.g.
    ``get_backend("process-pool", max_workers=4)`` or
    ``get_backend("distributed", workers=2)``).
    """
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown executor backend {name!r} (available: {sorted(_BACKENDS)})"
        ) from None
    return factory(**options)

#!/usr/bin/env python3
"""Documentation checker: links resolve, fenced examples match the code.

Guards against doc drift mechanically, in three passes over ``README.md``
and ``docs/*.md``:

1. **Links** — every relative markdown link target must exist on disk.
2. **Spec blocks** — every fenced ``toml``/``json`` block that looks like a
   campaign spec (has ``scenario``/``axes``/``adaptive``/``runner`` tables)
   is built through the real spec machinery (``repro.campaign.spec``), so a
   documented key that ``build_runner``/``build_grid`` would reject fails
   the check.  Validation runs in a temporary working directory — store
   paths in examples create their directories there, not in the repo.
3. **Console blocks** — every ``$ python ...`` command in a fenced
   ``console`` block has its ``--flags`` cross-checked against the target's
   actual argparse parser (imported for ``-m repro.campaign`` /
   ``-m repro.campaign.worker``, ``--help`` output for example scripts), so
   a renamed or removed CLI flag fails the check.

Run from the repository root::

    PYTHONPATH=src python tools/check_docs.py

Exit status: 0 when clean, 1 with one line per problem on stderr.
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import shlex
import subprocess
import sys
import tempfile
import tomllib
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^```(\S*)\s*$")
_FLAG = re.compile(r"--[A-Za-z0-9][A-Za-z0-9-]*")

#: Spec tables that mark a toml/json block as a campaign-spec example.
_SPEC_KEYS = {"scenario", "axes", "adaptive", "runner"}


def doc_files() -> list[Path]:
    return [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def iter_fences(text: str):
    """Yield ``(language, content, first_line_number)`` per fenced block."""
    language = None
    start = 0
    lines: list[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        match = _FENCE.match(line)
        if match and language is None:
            language, start, lines = match.group(1), number, []
        elif line.strip() == "```" and language is not None:
            yield language, "\n".join(lines), start
            language = None
        elif language is not None:
            lines.append(line)


def check_links(path: Path, text: str, errors: list[str]) -> None:
    for match in _LINK.finditer(text):
        target = match.group(1)
        if "://" in target or target.startswith(("mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            errors.append(f"{path.name}: broken link to {target!r}")


def check_spec_block(
    language: str, content: str, where: str, errors: list[str]
) -> None:
    try:
        data = tomllib.loads(content) if language == "toml" else json.loads(content)
    except Exception as exc:
        errors.append(f"{where}: unparsable {language} block ({exc})")
        return
    if not isinstance(data, dict) or not (_SPEC_KEYS & set(data)):
        return  # not a campaign-spec example
    from repro.campaign.spec import (
        build_grid,
        build_runner,
        build_scenario,
        build_search,
    )

    try:
        if "axes" in data:
            build_grid(data)
            build_runner(data)
        elif "adaptive" in data:
            build_search(data)
            build_runner(data)
        else:
            # A fragment: validate the tables it does have.
            if "scenario" in data:
                build_scenario(data["scenario"])
            if "runner" in data:
                build_runner({"runner": data["runner"]})
    except Exception as exc:
        errors.append(f"{where}: spec example does not build: {exc}")


def _module_flags(module: str) -> set[str] | None:
    """Option strings of an in-repo argparse CLI, ``None`` if unknown.

    Subcommand CLIs (``repro.campaign.client``) contribute their
    subparsers' flags too: a documented ``submit --wait`` must resolve even
    though ``--wait`` lives on the subparser, not the root.
    """
    import argparse

    if module == "repro.campaign":
        from repro.campaign.__main__ import _build_parser
    elif module == "repro.campaign.worker":
        from repro.campaign.worker import _build_parser
    elif module == "repro.campaign.service":
        from repro.campaign.service import _build_parser
    elif module == "repro.campaign.client":
        from repro.campaign.client import _build_parser
    else:
        return None
    flags: set[str] = set()
    parsers = [_build_parser()]
    while parsers:
        parser = parsers.pop()
        for action in parser._actions:
            flags.update(action.option_strings)
            if isinstance(action, argparse._SubParsersAction):
                parsers.extend(action.choices.values())
    return flags


def _script_flags(script: Path) -> set[str]:
    """Option strings scraped from a script's ``--help`` output."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(ROOT / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    result = subprocess.run(
        [sys.executable, str(script), "--help"],
        capture_output=True, text=True, env=env, timeout=120,
    )
    return set(_FLAG.findall(result.stdout))


def iter_commands(content: str):
    """Yield the ``$ ``-prefixed commands of a console block, with
    backslash line continuations joined."""
    pending: str | None = None
    for line in content.splitlines():
        stripped = line.strip()
        if pending is not None:
            pending += " " + stripped.rstrip("\\").strip()
            if not stripped.endswith("\\"):
                yield pending
                pending = None
        elif stripped.startswith("$ "):
            command = stripped[2:].rstrip("\\").strip()
            if stripped.endswith("\\"):
                pending = command
            else:
                yield command


class ConsoleChecker:
    """Cross-checks documented command flags against the real parsers."""

    def __init__(self) -> None:
        self._flag_cache: dict[str, set[str] | None] = {}

    def _flags_for(self, target: str) -> set[str] | None:
        if target not in self._flag_cache:
            if target.endswith(".py"):
                script = ROOT / target
                self._flag_cache[target] = (
                    _script_flags(script) if script.exists() else None
                )
            else:
                self._flag_cache[target] = _module_flags(target)
        return self._flag_cache[target]

    def check(self, content: str, where: str, errors: list[str]) -> None:
        for command in iter_commands(content):
            tokens = [
                token for token in shlex.split(command)
                if "=" not in token or not token.partition("=")[0].isupper()
            ]  # drop VAR=value environment prefixes
            if not tokens or tokens[0] not in ("python", "python3"):
                continue
            if len(tokens) >= 3 and tokens[1] == "-m":
                target, rest = tokens[2], tokens[3:]
            elif len(tokens) >= 2 and tokens[1].endswith(".py"):
                target, rest = tokens[1], tokens[2:]
            else:
                continue
            if target.endswith(".py") and not (ROOT / target).exists():
                errors.append(f"{where}: references missing script {target!r}")
                continue
            known = self._flags_for(target)
            if known is None:
                continue  # not an in-repo CLI (e.g. pip)
            for token in rest:
                flag = token.partition("=")[0]
                if flag.startswith("--") and flag not in known:
                    errors.append(
                        f"{where}: {target} has no flag {flag!r} "
                        f"(documented in: {command})"
                    )


def main() -> int:
    errors: list[str] = []
    console = ConsoleChecker()
    fences: list[tuple[str, str, str]] = []
    for path in doc_files():
        text = path.read_text()
        check_links(path, text, errors)
        for language, content, line in iter_fences(text):
            fences.append((language, content, f"{path.name}:{line}"))

    # Spec validation touches the filesystem (store directories); run it
    # in a scratch working directory so examples never pollute the repo.
    with tempfile.TemporaryDirectory(prefix="check-docs-") as scratch:
        with contextlib.chdir(scratch):
            for language, content, where in fences:
                if language in ("toml", "json"):
                    check_spec_block(language, content, where, errors)

    for language, content, where in fences:
        if language == "console":
            console.check(content, where, errors)

    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    checked = len(fences)
    print(f"check_docs: {len(doc_files())} files, {checked} fenced blocks, "
          f"{len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())

"""Ablation A3 — iptables rate-limit sweep under the UDP flood.

The paper uses iptables to "limit communication package rate of the network
interfaces to reduce damage caused by DoS attacks" without quantifying the
effect.  This ablation runs the Figure 7 flood with the rate limit enabled
and disabled and compares how much hostile traffic reaches the HCE socket and
how the flight fares.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.attacks import UdpFloodAttack
from repro.sim import FlightScenario, FlightSimulation

ATTACK_START = 6.0
DURATION = 18.0


def run_case(iptables_enabled: bool):
    scenario = FlightScenario.figure7(attack_start=ATTACK_START, duration=DURATION)
    if not iptables_enabled:
        scenario = scenario.with_config(scenario.config.without_iptables()).with_name(
            "fig7-no-iptables"
        )
    simulation = FlightSimulation(scenario)
    motor_endpoint = simulation.hce_motor_rx.endpoint
    result = simulation.run()
    stats = simulation.network.stats
    return result, stats.dropped_firewall, motor_endpoint.stats.dropped_queue_full


def run_both():
    return {
        "iptables ON": run_case(True),
        "iptables OFF": run_case(False),
    }


def test_ablation_iptables(benchmark, report):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for label, (result, dropped_firewall, dropped_queue) in results.items():
        metrics = result.metrics
        rows.append([
            label,
            f"{dropped_firewall}",
            f"{dropped_queue}",
            "yes" if result.crashed else "no",
            "yes" if result.switch_time is not None else "no",
            "yes" if metrics.recovered else "no",
        ])
    report("ablation_iptables", format_table(
        ["Configuration", "Dropped by firewall", "Dropped at socket queue",
         "Crashed", "Switched to safety", "Recovered"],
        rows,
        title="Ablation A3 — UDP flood with and without the iptables rate limit",
    ))

    with_limit, firewall_drops_with, queue_drops_with = results["iptables ON"]
    without_limit, firewall_drops_without, queue_drops_without = results["iptables OFF"]

    # With the rate limit the firewall absorbs the bulk of the flood before it
    # reaches the HCE socket; without it the flood is only stopped at (and
    # after) the socket, so nothing is dropped on the bridge.
    assert firewall_drops_with > 20_000
    assert firewall_drops_without == 0
    # In both cases the Simplex monitor ends up saving the drone.
    assert not with_limit.crashed and with_limit.metrics.recovered
    assert not without_limit.crashed and without_limit.metrics.recovered

"""Tests for the framework configuration, protection builders and the HCE framework."""

import numpy as np
import pytest

from repro.container import ContainerConfig
from repro.control import PositionSetpoint
from repro.core import (
    ContainerDroneConfig,
    ContainerDroneFramework,
    ControlSource,
    MonitorConfig,
    ProtectionStatus,
    build_container_config,
    build_memguard,
    build_network,
)
from repro.mavlink import ActuatorOutputs, Heartbeat, MavlinkCodec
from repro.sensors.imu import ImuReading
from repro.sensors.mocap import MocapReading


def hover_imu():
    return ImuReading(gyro=np.zeros(3), accel=np.array([0.0, 0.0, -9.80665]))


def feed_framework(framework, position=np.array([0.0, 0.0, -1.0]), steps=50, start=0.0):
    for step in range(steps):
        t = start + step * 0.004
        framework.on_imu(hover_imu(), t)
        if step % 5 == 0:
            framework.on_mocap(MocapReading(position_ned=position.copy(), yaw=0.0), t)
    return start + steps * 0.004


def actuator_frame(motors=(0.5, 0.5, 0.5, 0.5), sequence=1):
    codec = MavlinkCodec()
    return MavlinkCodec().decode(codec.encode(ActuatorOutputs(motors=motors, sequence=sequence)))


class TestConfig:
    def test_default_core_partition(self):
        config = ContainerDroneConfig()
        assert config.cpu.cce_cores == frozenset({3})
        assert config.cpu.hce_cores == frozenset({0, 1, 2})

    def test_default_priorities_match_paper(self):
        cpu = ContainerDroneConfig().cpu
        assert cpu.driver_priority == 90
        assert cpu.safety_priority == 20
        assert cpu.safety_priority < cpu.interrupt_priority < cpu.driver_priority

    def test_without_memguard(self):
        config = ContainerDroneConfig().without_memguard()
        assert not config.memory.enabled
        assert config.monitor.enabled

    def test_without_monitor(self):
        config = ContainerDroneConfig().without_monitor()
        assert not config.monitor.enabled
        assert config.memory.enabled

    def test_without_iptables(self):
        config = ContainerDroneConfig().without_iptables()
        assert not config.communication.iptables_enabled

    def test_with_memguard_budget(self):
        config = ContainerDroneConfig().with_memguard_budget(1234)
        assert config.memory.cce_budget_accesses_per_period == 1234
        assert config.memory.enabled
        with pytest.raises(ValueError):
            ContainerDroneConfig().with_memguard_budget(0)
        # Fractional budgets must be rejected, not silently truncated.
        with pytest.raises(ValueError):
            ContainerDroneConfig().with_memguard_budget(0.5)
        with pytest.raises(ValueError, match="integral"):
            ContainerDroneConfig().with_memguard_budget(1500.7)
        # Integral floats are fine.
        assert (
            ContainerDroneConfig().with_memguard_budget(2000.0)
            .memory.cce_budget_accesses_per_period == 2000
        )

    def test_with_protections_toggles_individually(self):
        config = ContainerDroneConfig().with_protections(memguard=False)
        assert not config.memory.enabled
        assert config.monitor.enabled
        assert config.communication.iptables_enabled

        config = config.with_protections(memguard=True, monitor=False, iptables=False)
        assert config.memory.enabled
        assert not config.monitor.enabled
        assert not config.communication.iptables_enabled

    def test_table1_ports(self):
        communication = ContainerDroneConfig().communication
        assert communication.sensor_port == 14660
        assert communication.motor_port == 14600

    def test_table1_rates(self):
        rates = ContainerDroneConfig().rates
        assert rates.imu_hz == 250.0
        assert rates.baro_hz == 50.0
        assert rates.gps_hz == 10.0
        assert rates.rc_hz == 50.0
        assert rates.motor_output_hz == 400.0


class TestProtectionBuilders:
    def test_status_flags(self):
        status = ProtectionStatus.from_config(ContainerDroneConfig())
        assert status.cpu_pinning and status.memguard and status.iptables and status.security_monitor
        status = ProtectionStatus.from_config(ContainerDroneConfig().without_memguard())
        assert not status.memguard

    def test_container_config_protected(self):
        container = build_container_config(ContainerDroneConfig())
        assert container.cpuset_cores == frozenset({3})
        assert container.max_priority == 10

    def test_container_config_unprotected_baseline(self):
        from dataclasses import replace

        config = ContainerDroneConfig()
        config = replace(config, cpu=replace(config.cpu, enabled=False))
        container = build_container_config(config)
        assert container.cpuset_cores == frozenset({0, 1, 2, 3})
        assert container.max_priority == 99

    def test_memguard_budgets_only_cce_core(self):
        memguard = build_memguard(ContainerDroneConfig())
        assert memguard.budget(3) == ContainerDroneConfig().memory.cce_budget_accesses_per_period
        assert memguard.budget(0) is None
        assert memguard.enabled

    def test_memguard_disabled_when_configured_off(self):
        memguard = build_memguard(ContainerDroneConfig().without_memguard())
        assert not memguard.enabled

    def test_network_firewall_rules(self):
        network = build_network(ContainerDroneConfig())
        ports = {rule.destination_port for rule in network.firewall.rules}
        assert ports == {14600, 14660}
        network = build_network(ContainerDroneConfig().without_iptables())
        assert network.firewall.rules == []


class TestFramework:
    def make(self, config=None):
        framework = ContainerDroneFramework(
            config=config or ContainerDroneConfig(),
            setpoint=PositionSetpoint.hover_at(0.0, 0.0, 1.0),
        )
        return framework

    def test_initial_source_is_complex(self):
        assert self.make().active_source is ControlSource.COMPLEX

    def test_safety_controller_command_registered(self):
        framework = self.make()
        t = feed_framework(framework)
        command = framework.run_safety_controller(t)
        assert command.source == "safety"
        assert framework.decision.safety_commands_received == 1

    def test_actuator_frames_accepted(self):
        framework = self.make()
        accepted = framework.handle_actuator_frames([actuator_frame()], now=1.0)
        assert accepted == 1
        assert framework.decision.last_complex_received == 1.0

    def test_non_actuator_frames_ignored(self):
        framework = self.make()
        codec = MavlinkCodec()
        frame = MavlinkCodec().decode(codec.encode(Heartbeat()))
        assert framework.handle_actuator_frames([frame], now=1.0) == 0

    def test_select_prefers_complex(self):
        framework = self.make()
        t = feed_framework(framework)
        framework.run_safety_controller(t)
        framework.handle_actuator_frames([actuator_frame(motors=(0.9, 0.9, 0.9, 0.9))], now=t)
        assert framework.select_command().source == "complex"

    def test_receive_timeout_triggers_switch_and_kills_receiver(self):
        framework = self.make()
        killed = []
        framework.on_kill_receiver = lambda now, violation: killed.append(violation.rule)
        t = feed_framework(framework)
        framework.handle_actuator_frames([actuator_frame()], now=t)
        framework.run_safety_controller(t)
        # Long silence from the CCE, checked after the arming grace period.
        violation = framework.run_monitor(t + 3.0)
        assert violation is not None
        assert violation.rule == "receiving-interval"
        assert framework.active_source is ControlSource.SAFETY
        assert framework.receiver_killed
        assert killed == ["receiving-interval"]
        assert framework.select_command().source == "safety"

    def test_attitude_error_triggers_switch(self):
        framework = self.make()
        # Hover normally past the arming grace period, CCE output flowing.
        t = 0.0
        for step in range(600):
            t = step * 0.004
            framework.on_imu(hover_imu(), t)
            framework.handle_actuator_frames([actuator_frame(sequence=step)], now=t)
        # Then the drone rolls hard (0.2 s at 2.5 rad/s ~ 29 deg) while CCE
        # output keeps arriving, so only the attitude rule can fire.
        for step in range(50):
            t += 0.004
            framework.on_imu(ImuReading(gyro=np.array([2.5, 0.0, 0.0]), accel=np.zeros(3)), t)
            framework.handle_actuator_frames([actuator_frame(sequence=600 + step)], now=t)
        violation = framework.run_monitor(t)
        assert violation is not None
        assert violation.rule == "attitude-error"
        assert framework.active_source is ControlSource.SAFETY

    def test_monitor_respects_grace_period(self):
        framework = self.make()
        # No CCE output ever received, but still inside the grace period.
        assert framework.run_monitor(1.0) is None
        assert framework.active_source is ControlSource.COMPLEX

    def test_disabled_monitor_never_switches(self):
        framework = self.make(ContainerDroneConfig().without_monitor())
        feed_framework(framework)
        assert framework.run_monitor(100.0) is None
        assert framework.active_source is ControlSource.COMPLEX

    def test_frames_ignored_after_receiver_killed(self):
        framework = self.make()
        feed_framework(framework)
        framework.run_monitor(10.0)  # interval rule fires (nothing ever received)
        assert framework.receiver_killed
        assert framework.handle_actuator_frames([actuator_frame()], now=11.0) == 0

    def test_host_complex_command_submission(self):
        from repro.control import ActuatorCommand

        framework = self.make(ContainerDroneConfig().without_monitor())
        command = ActuatorCommand(motors=np.full(4, 0.6), timestamp=1.0, source="complex")
        framework.submit_host_complex_command(command, now=1.0)
        assert framework.select_command().source == "complex"

    def test_attitude_errors_relative_to_setpoint_yaw(self):
        framework = ContainerDroneFramework(
            setpoint=PositionSetpoint(position=np.array([0.0, 0.0, -1.0]), yaw=0.5)
        )
        feed_framework(framework)
        roll_error, pitch_error, yaw_error = framework.attitude_errors()
        assert abs(roll_error) < 0.05
        assert abs(pitch_error) < 0.05
        assert yaw_error == pytest.approx(-0.5, abs=0.05)

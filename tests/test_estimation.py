"""Tests for the attitude complementary filter and the position estimator."""

import numpy as np
import pytest

from repro.estimation import ComplementaryFilter, PositionEstimator
from repro.sensors.imu import ImuReading


def level_imu(gravity: float = 9.80665) -> ImuReading:
    """IMU reading of a level, non-rotating vehicle in hover."""
    return ImuReading(gyro=np.zeros(3), accel=np.array([0.0, 0.0, -gravity]))


class TestComplementaryFilter:
    def test_rejects_invalid_gain(self):
        with pytest.raises(ValueError):
            ComplementaryFilter(accel_gain=1.5)

    def test_initial_estimate_is_level(self):
        estimate = ComplementaryFilter().estimate
        assert estimate.roll == pytest.approx(0.0)
        assert estimate.pitch == pytest.approx(0.0)

    def test_gyro_integration_tracks_roll(self):
        filt = ComplementaryFilter(accel_gain=0.0)
        reading = ImuReading(gyro=np.array([0.5, 0.0, 0.0]), accel=np.zeros(3))
        for _ in range(250):
            filt.update(reading, 1.0 / 250.0)
        assert filt.estimate.roll == pytest.approx(0.5, abs=0.01)

    def test_gyro_integration_tracks_yaw(self):
        filt = ComplementaryFilter(accel_gain=0.0)
        reading = ImuReading(gyro=np.array([0.0, 0.0, 1.0]), accel=np.zeros(3))
        for _ in range(125):
            filt.update(reading, 1.0 / 250.0)
        assert filt.estimate.yaw == pytest.approx(0.5, abs=0.01)

    def test_accel_correction_pulls_towards_measured_tilt(self):
        filt = ComplementaryFilter(accel_gain=0.2)
        # Specific force of a stationary vehicle rolled by 0.2 rad: the
        # accelerometer reads the gravity reaction -R^T [0, 0, g].
        roll = 0.2
        accel = np.array([0.0, -9.80665 * np.sin(roll), -9.80665 * np.cos(roll)])
        reading = ImuReading(gyro=np.zeros(3), accel=accel)
        for _ in range(200):
            filt.update(reading, 1.0 / 250.0)
        assert filt.estimate.roll == pytest.approx(roll, abs=0.02)

    def test_accel_correction_ignored_during_high_acceleration(self):
        filt = ComplementaryFilter(accel_gain=0.5)
        # Specific force far from 1 g: the tilt correction must not engage.
        reading = ImuReading(gyro=np.zeros(3), accel=np.array([0.0, 30.0, -30.0]))
        for _ in range(100):
            filt.update(reading, 1.0 / 250.0)
        assert abs(filt.estimate.roll) < 1e-6

    def test_set_yaw_preserves_tilt(self):
        filt = ComplementaryFilter(accel_gain=0.0)
        reading = ImuReading(gyro=np.array([0.4, 0.0, 0.0]), accel=np.zeros(3))
        for _ in range(125):
            filt.update(reading, 1.0 / 250.0)
        roll_before = filt.estimate.roll
        filt.set_yaw(1.0)
        assert filt.estimate.yaw == pytest.approx(1.0, abs=1e-6)
        assert filt.estimate.roll == pytest.approx(roll_before, abs=1e-6)

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ValueError):
            ComplementaryFilter().update(level_imu(), 0.0)

    def test_rates_exposed(self):
        filt = ComplementaryFilter()
        filt.update(ImuReading(gyro=np.array([0.1, 0.2, 0.3]), accel=np.zeros(3)), 0.004)
        assert np.allclose(filt.estimate.rates, [0.1, 0.2, 0.3])


class TestPositionEstimator:
    def test_initially_invalid(self):
        assert not PositionEstimator().estimate.valid

    def test_mocap_fix_sets_position(self):
        estimator = PositionEstimator()
        estimator.update_mocap(np.array([1.0, -2.0, -3.0]))
        estimate = estimator.estimate
        assert estimate.valid
        assert np.allclose(estimate.position, [1.0, -2.0, -3.0], atol=0.3)

    def test_velocity_estimated_from_moving_fixes(self):
        estimator = PositionEstimator()
        dt = 0.02
        for step in range(200):
            estimator.predict(dt)
            estimator.update_mocap(np.array([0.5 * step * dt, 0.0, -1.0]))
        velocity = estimator.estimate.velocity
        assert velocity[0] == pytest.approx(0.5, abs=0.1)
        assert abs(velocity[1]) < 0.1

    def test_prediction_propagates_with_velocity(self):
        estimator = PositionEstimator()
        dt = 0.02
        for step in range(200):
            estimator.predict(dt)
            estimator.update_mocap(np.array([step * dt, 0.0, -1.0]))
        position_before = estimator.estimate.position[0]
        for _ in range(50):
            estimator.predict(dt)
        assert estimator.estimate.position[0] > position_before + 0.5

    def test_gps_noisier_than_mocap(self):
        mocap_estimator = PositionEstimator()
        gps_estimator = PositionEstimator()
        rng = np.random.default_rng(3)
        truth = np.array([2.0, 2.0, -5.0])
        for _ in range(50):
            mocap_estimator.predict(0.02)
            gps_estimator.predict(0.02)
            mocap_estimator.update_mocap(truth + rng.normal(0.0, 0.002, 3))
            gps_estimator.update_gps(truth + rng.normal(0.0, 1.5, 3))
        mocap_error = np.linalg.norm(mocap_estimator.estimate.position - truth)
        gps_error = np.linalg.norm(gps_estimator.estimate.position - truth)
        assert mocap_error < gps_error

    def test_baro_ignored_until_first_fix(self):
        estimator = PositionEstimator()
        estimator.update_baro_altitude(220.0)
        estimator.update_baro_altitude(225.0)
        assert not estimator.estimate.valid
        assert estimator.estimate.position[2] == pytest.approx(0.0)

    def test_baro_constrains_vertical_after_fix(self):
        estimator = PositionEstimator()
        estimator.update_mocap(np.array([0.0, 0.0, -1.0]))
        estimator.update_baro_altitude(221.0)  # establishes the reference
        for _ in range(100):
            estimator.predict(0.02)
            estimator.update_baro_altitude(222.0)  # one metre higher than reference
        assert estimator.estimate.position[2] == pytest.approx(-2.0, abs=0.3)

    def test_predict_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            PositionEstimator().predict(-0.01)

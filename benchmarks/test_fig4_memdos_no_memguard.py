"""Figure 4 — memory-bandwidth DoS with MemGuard disabled.

Paper: "the drone starts to drift right after the Bandwidth task is launched
by the attacker and results in a crash shortly after."

The benchmark flies the 30 s hover mission, launches the IsolBench-style
Bandwidth attacker inside the container at t = 10 s with MemGuard disabled,
and regenerates the X/Y/Z position traces.  The reproduced claim is the
*shape*: tracking degrades after the attack and the flight ends in a crash.
"""

from __future__ import annotations

from repro.sim import FlightScenario, run_scenario

from figure_report import render_figure

ATTACK_START = 10.0


def run_figure4():
    return run_scenario(FlightScenario.figure4(attack_start=ATTACK_START))


def test_fig4_memdos_without_memguard(benchmark, report):
    result = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    report("fig4_memdos_no_memguard",
           render_figure(result, "memory-bandwidth DoS at t=10 s, MemGuard OFF"))

    metrics = result.metrics
    # Tracking diverges after the attack starts...
    assert metrics.max_deviation_after > 1.0
    # ...and the flight ends in a crash (the paper's drone crashed before the
    # end of its 30 s trace), with no recovery.
    assert result.crashed
    assert result.crash_time is not None and result.crash_time > ATTACK_START
    assert not metrics.recovered

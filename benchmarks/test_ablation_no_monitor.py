"""Ablation A1 — what happens without the security monitor?

The paper's defence against the controller-kill and UDP-flood attacks is the
Simplex switch driven by the security monitor.  This ablation repeats the
Figure 6 attack with the monitor disabled and shows that the drone is left
uncontrolled: the flight either crashes or drifts far from its setpoint,
whereas the protected flight recovers.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.sim import FlightScenario, run_scenario

KILL_TIME = 8.0
DURATION = 22.0


def run_both():
    protected = run_scenario(
        FlightScenario.figure6(kill_time=KILL_TIME, duration=DURATION)
    )
    unprotected = run_scenario(
        FlightScenario.figure6(kill_time=KILL_TIME, duration=DURATION)
        .with_config(FlightScenario.figure6().config.without_monitor())
        .with_name("fig6-no-monitor")
    )
    return protected, unprotected


def test_ablation_without_monitor(benchmark, report):
    protected, unprotected = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for label, result in (("monitor ON", protected), ("monitor OFF", unprotected)):
        metrics = result.metrics
        rows.append([
            label,
            "yes" if result.crashed else "no",
            f"{metrics.max_deviation_after:.2f} m",
            f"{metrics.final_deviation:.2f} m" if not result.crashed else "-",
            "yes" if metrics.recovered else "no",
        ])
    report("ablation_no_monitor", format_table(
        ["Configuration", "Crashed", "Max deviation after kill", "Final deviation", "Recovered"],
        rows,
        title="Ablation A1 — controller-kill attack with and without the security monitor",
    ))

    assert not protected.crashed and protected.metrics.recovered
    assert unprotected.crashed or unprotected.metrics.max_deviation_after > 1.0
    assert not unprotected.metrics.recovered
